//! Distributed fan-out + retention integration suite.
//!
//! Two laws are pinned here. First, engine law 7 (the distributed
//! merge law) as a differential test over every paper app: a run plan
//! sharded across workers — each with its *own* `CheckpointStore`
//! handle on one shared disk directory, exactly the cross-process
//! topology — merges back to the single-process result byte for byte.
//! Second, the jobs-directory retention contract: `--retain N` only
//! ever collects terminal jobs, so a daemon SIGKILLed mid-job can be
//! restarted with an aggressive retention cap and the interrupted job
//! still resumes to byte-identical completion while the old terminal
//! directories disappear.
//!
//! (The true multi-*process* differential — spawned worker binaries —
//! lives in the bench crate's `distributed_process` test and the
//! `distributed-smoke` CI job, which diff `DIGESTS.txt` between a
//! `--workers 2` invocation and a single-process control.)

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ffis_core::engine::{index_ranges, journal, merge_segments};
use ffis_core::{CampaignSpec, CompletionStatus, JobState};
use ffis_daemon::distributed::{open_memo, open_store, run_worker};
use ffis_daemon::{execute_spec, Client, Daemon, DaemonConfig, ExecHooks};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffis-dist-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn paced_spec(runs: usize, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("paced", "BF");
    spec.runs = runs;
    spec.seed = seed;
    spec.parallel = false;
    spec
}

fn start_daemon(root: &Path, retain: Option<usize>) -> Daemon {
    let mut config = DaemonConfig::new(root);
    config.workers = 1;
    config.retain = retain;
    Daemon::start(config).unwrap()
}

fn wait_terminal(client: &Client, id: u64) -> ffis_daemon::JobView {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let view = client.job(id).unwrap();
        if !view.state.is_active() {
            return view;
        }
        assert!(Instant::now() < deadline, "job {} never reached a terminal state", id);
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// The law-7 differential for one app: shard across three workers
/// (each opening its own store view on one shared directory), merge
/// the segments, resume over the merged journal, and demand the
/// single-process control's exact tally, fingerprint, and digest.
fn assert_sharded_matches_serial(app: &str, seed: u64) {
    let mut spec = CampaignSpec::new(app, "BF");
    spec.site = "write".into();
    spec.grid = 16;
    spec.runs = 10;
    spec.seed = seed;
    let control = execute_spec(&spec, &ExecHooks::default()).unwrap();
    assert_eq!(control.status, CompletionStatus::Complete, "{app}: control");

    let dir = tmp_root(&format!("law7-{}", app));
    let store_dir = dir.join("store");
    let ranges = index_ranges(spec.runs, 3);
    let segments: Vec<PathBuf> =
        (0..ranges.len()).map(|i| dir.join(format!("seg-{i}.journal"))).collect();
    std::thread::scope(|s| {
        for (range, segment) in ranges.iter().zip(&segments) {
            let (spec, store_dir) = (&spec, &store_dir);
            s.spawn(move || {
                let (res, _) = run_worker(spec, *range, segment, Some(store_dir), None).unwrap();
                assert_eq!(res.status, CompletionStatus::Complete, "{app}: shard {range:?}");
                assert_eq!(res.executed, range.1 - range.0, "{app}: shard {range:?}");
            });
        }
    });

    let (meta, _) = journal::scan(&segments[0]).unwrap();
    let merged = dir.join("merged.journal");
    let records = merge_segments(&merged, &meta, &segments).unwrap();
    assert_eq!(records as usize, spec.runs, "{app}: merged journal must cover the plan");

    let mut fspec = spec.clone();
    fspec.journal = true;
    fspec.resume = true;
    let hooks = ExecHooks {
        journal: Some(merged),
        cancel: None,
        checkpoints: Some(open_store(&store_dir)),
        memo: None,
        observer: None,
        index_range: None,
    };
    let merged_result = execute_spec(&fspec, &hooks).unwrap();
    assert_eq!(merged_result.status, CompletionStatus::Complete, "{app}");
    assert_eq!(merged_result.executed, 0, "{app}: nothing may execute twice");
    assert_eq!(merged_result.resumed, spec.runs, "{app}");
    assert_eq!(merged_result.tally, control.tally, "{app}: tally diverged");
    assert_eq!(merged_result.plan_fingerprint, control.plan_fingerprint, "{app}");
    assert_eq!(merged_result.run_digest(), control.run_digest(), "{app}: digest diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_nyx_merges_to_the_single_process_result() {
    assert_sharded_matches_serial("nyx", 0x51AB);
}

#[test]
fn sharded_qmc_merges_to_the_single_process_result() {
    assert_sharded_matches_serial("qmc", 0x51AC);
}

#[test]
fn sharded_montage_merges_to_the_single_process_result() {
    assert_sharded_matches_serial("montage", 0x51AD);
}

/// Memo sharing across fan-out workers, the way the checkpoint blob
/// store is already shared: two workers split a multi-file Montage
/// write campaign (the regime where the analyze memo engages), each
/// opening its own `MemoStore` handle on one shared disk directory.
/// The merged result must equal the single-process control byte for
/// byte, and the shared memo tier must have actually persisted
/// sub-step artifacts to disk — one worker's analyze is the other's
/// (and a restarted daemon's) disk hit.
#[test]
fn workers_sharing_a_memo_disk_tier_merge_to_the_single_process_digest() {
    let mut spec = CampaignSpec::new("montage", "BF");
    spec.site = "write".into();
    spec.grid = 16;
    spec.files = 4;
    spec.runs = 10;
    spec.seed = 0x51AE;
    let control = execute_spec(&spec, &ExecHooks::default()).unwrap();
    assert_eq!(control.status, CompletionStatus::Complete, "control");

    let dir = tmp_root("memo-share");
    let store_dir = dir.join("store");
    let memo_dir = dir.join("memo");
    let ranges = index_ranges(spec.runs, 2);
    let segments: Vec<PathBuf> =
        (0..ranges.len()).map(|i| dir.join(format!("seg-{i}.journal"))).collect();
    std::thread::scope(|s| {
        for (range, segment) in ranges.iter().zip(&segments) {
            let (spec, store_dir, memo_dir) = (&spec, &store_dir, &memo_dir);
            s.spawn(move || {
                let (res, _) =
                    run_worker(spec, *range, segment, Some(store_dir), Some(memo_dir)).unwrap();
                assert_eq!(res.status, CompletionStatus::Complete, "shard {range:?}");
            });
        }
    });
    let persisted = std::fs::read_dir(&memo_dir).map(|entries| entries.count()).unwrap_or(0);
    assert!(persisted > 0, "the shared memo disk tier persisted nothing");

    let (meta, _) = journal::scan(&segments[0]).unwrap();
    let merged = dir.join("merged.journal");
    let records = merge_segments(&merged, &meta, &segments).unwrap();
    assert_eq!(records as usize, spec.runs, "merged journal must cover the plan");

    let mut fspec = spec.clone();
    fspec.journal = true;
    fspec.resume = true;
    let hooks = ExecHooks {
        journal: Some(merged),
        checkpoints: Some(open_store(&store_dir)),
        memo: Some(open_memo(&memo_dir)),
        ..ExecHooks::default()
    };
    let merged_result = execute_spec(&fspec, &hooks).unwrap();
    assert_eq!(merged_result.status, CompletionStatus::Complete);
    assert_eq!(merged_result.executed, 0, "nothing may execute twice");
    assert_eq!(merged_result.tally, control.tally, "tally diverged");
    assert_eq!(merged_result.run_digest(), control.run_digest(), "digest diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-exec marker: when set, this test binary is the daemon *victim* —
/// it serves the queue root named by the variable until SIGKILLed.
const CHILD_ENV: &str = "FFIS_DIST_RETENTION_CHILD";

#[test]
fn retention_gc_spares_interrupted_jobs_which_resume_after_restart() {
    if let Ok(root) = std::env::var(CHILD_ENV) {
        // Child mode: serve (no retention) until the parent kills us.
        let daemon = start_daemon(Path::new(&root), None);
        std::fs::write(Path::new(&root).join("addr.txt"), daemon.addr().to_string()).unwrap();
        loop {
            std::thread::sleep(Duration::from_secs(1));
        }
    }

    const RUNS: usize = 96;
    let spec = paced_spec(RUNS, 0xCAFE);
    let control = execute_spec(&spec, &ExecHooks::default()).unwrap();

    let root = tmp_root("retention");
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(&exe)
        .args([
            "--exact",
            "retention_gc_spares_interrupted_jobs_which_resume_after_restart",
            "--test-threads",
            "1",
            "--nocapture",
        ])
        .env(CHILD_ENV, &root)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    let addr_file = root.join("addr.txt");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "child daemon never published its address");
        std::thread::sleep(Duration::from_millis(10));
    };
    let client = Client::new(addr);

    // Two quick jobs reach terminal state (GC fodder), then the victim
    // job starts and the daemon dies mid-run.
    let a = client.submit(&paced_spec(4, 1)).unwrap();
    let b = client.submit(&paced_spec(4, 2)).unwrap();
    assert_eq!(wait_terminal(&client, a).state, JobState::Complete);
    assert_eq!(wait_terminal(&client, b).state, JobState::Complete);
    let id = client.submit(&spec).unwrap();

    let jpath = root.join("jobs").join(id.to_string()).join("run.journal");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut seen = 0usize;
    loop {
        if let Ok((_, ends)) = journal::scan(&jpath) {
            seen = ends.len();
            if seen >= 8 {
                break;
            }
        }
        if matches!(child.try_wait(), Ok(Some(_))) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(seen >= 1, "the daemon never journaled a run");
    let job_dir = |id: u64| root.join("jobs").join(id.to_string());
    assert!(job_dir(a).exists() && job_dir(b).exists(), "no GC ran in the child");

    // Restart with retain=1: the open-time sweep may only collect
    // *terminal* jobs beyond the cap — the interrupted job is not GC
    // fodder and must resume to byte-identical completion.
    let mut daemon = start_daemon(&root, Some(1));
    let client = Client::new(daemon.addr().to_string());
    let view = wait_terminal(&client, id);
    assert_eq!(view.state, JobState::Complete);
    assert!(view.resumed >= 1, "nothing was replayed from the journal");
    assert_eq!(view.executed + view.resumed, RUNS, "every run accounted for exactly once");
    assert_eq!(view.tally, control.tally);
    assert_eq!(view.run_digest, Some(control.run_digest()));
    assert!(job_dir(id).join("result.json").exists(), "the survivor keeps its terminal result");

    // The oldest terminal job went at open; once the resumed job turned
    // terminal a second sweep leaves it as the single retained job.
    assert!(!job_dir(a).exists(), "oldest terminal job must be collected at open");
    let deadline = Instant::now() + Duration::from_secs(30);
    while job_dir(b).exists() {
        assert!(Instant::now() < deadline, "post-completion sweep never collected job {}", b);
        std::thread::sleep(Duration::from_millis(10));
    }
    let listed = client.jobs().unwrap();
    assert!(listed.iter().any(|j| j.id == id), "the resumed job stays listed");
    assert!(!listed.iter().any(|j| j.id == a), "collected jobs leave the listing");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
