//! Daemon integration suite — the REST/NDJSON surface end to end.
//!
//! The tentpole law: a campaign submitted over HTTP produces an
//! [`OutcomeTally`] and run digest byte-identical to an in-process
//! run of the same spec — including when the daemon is SIGKILLed
//! mid-job and a fresh daemon recovers the queue root. Alongside the
//! law, the suite pins the validation surface (HTTP 400 with the CLI's
//! own messages), cancellation, structured failure reasons
//! (plan-mismatch, fuel-exhausted), and the admission cap's real
//! concurrency.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ffis_core::engine::journal;
use ffis_core::{CampaignSpec, JobState, OutcomeTally};
use ffis_daemon::api::{self, StreamEvent};
use ffis_daemon::{execute_spec, Client, Daemon, DaemonConfig, ExecHooks, JobView};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffis-daemon-api-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A paced-app spec: deterministic, a few ms per run (so kill/cancel
/// tests have a window), serial so the window is wide and predictable.
fn paced_spec(runs: usize, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("paced", "BF");
    spec.runs = runs;
    spec.seed = seed;
    spec.parallel = false;
    spec
}

fn start_daemon(root: &Path, workers: usize) -> Daemon {
    let mut config = DaemonConfig::new(root);
    config.workers = workers;
    Daemon::start(config).unwrap()
}

fn wait_terminal(client: &Client, id: u64) -> JobView {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let view = client.job(id).unwrap();
        if !view.state.is_active() {
            return view;
        }
        assert!(Instant::now() < deadline, "job {} never reached a terminal state", id);
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// One raw HTTP exchange, for requests the typed [`Client`] refuses to
/// produce (malformed JSON, unknown fields). Returns (status, body).
fn raw_exchange(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(
        conn,
        "{} {} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        method,
        path,
        body.len(),
        body
    )
    .unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 =
        out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn http_submission_matches_the_in_process_control_byte_for_byte() {
    let spec = paced_spec(24, 0xBEE5);
    let control = execute_spec(&spec, &ExecHooks::default()).unwrap();

    let root = tmp_root("control");
    let mut daemon = start_daemon(&root, 2);
    let client = Client::new(daemon.addr().to_string());

    let id = client.submit(&spec).unwrap();
    let mut events: Vec<StreamEvent> = Vec::new();
    let final_view = client.watch(id, |ev| events.push(ev.clone())).unwrap();

    // Terminal state and the tentpole equality: same tally, same plan,
    // same FNV digest as the in-process run of the same spec.
    assert_eq!(final_view.state, JobState::Complete);
    assert_eq!(final_view.executed, 24);
    assert_eq!(final_view.tally, control.tally);
    assert_eq!(final_view.plan_fingerprint, Some(control.plan_fingerprint));
    assert_eq!(final_view.run_digest, Some(control.run_digest()));

    // Stream shape: snapshot first, exactly one run event per plan
    // index, done last — and the event-folded tally converges on the
    // job's final tally (no_fire law included).
    assert!(matches!(events.first(), Some(StreamEvent::Snapshot(_))), "stream opens with snapshot");
    assert!(matches!(events.last(), Some(StreamEvent::Done(_))), "stream closes with done");
    let mut indices = Vec::new();
    let mut folded = OutcomeTally::default();
    for ev in &events {
        if let StreamEvent::Run { run, outcome, fired, resumed, aborted } = ev {
            indices.push(*run);
            api::fold_run_event(&mut folded, *outcome, *fired);
            assert!(!resumed, "nothing to resume in a fresh job");
            assert!(aborted.is_none(), "no liveness limits configured");
        }
    }
    indices.sort_unstable();
    assert_eq!(indices, (0..24).collect::<Vec<_>>());
    assert_eq!(folded, final_view.tally);

    // The job also shows up in the listing, terminal, with its spec.
    let listed = client.jobs().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].id, id);
    assert_eq!(listed[0].spec, spec);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bad_submissions_are_rejected_with_the_cli_validation_messages() {
    let root = tmp_root("reject");
    let mut daemon = start_daemon(&root, 1);
    let addr = daemon.addr();

    let cases: [(&str, &str); 6] = [
        ("not json at all", "malformed JSON"),
        (r#"{"app":"paced","model":"BF","sead":7}"#, "unknown spec field 'sead'"),
        (r#"{"app":"paced","model":"BF","runs":0}"#, "runs must be at least 1"),
        (r#"{"app":"nyx","model":"BF","grid":8}"#, "below the minimum"),
        (r#"{"app":"nyx","model":"meteor"}"#, "unknown fault model"),
        (r#"{"app":"fortran","model":"BF"}"#, "unknown application 'fortran'"),
    ];
    for (body, needle) in cases {
        let (status, reply) = raw_exchange(addr, "POST", "/api/v0/jobs", body);
        assert_eq!(status, 400, "{body} => {reply}");
        assert!(reply.contains(needle), "{body}: expected {needle:?} in {reply}");
    }
    // Nothing bad ever occupied a queue slot.
    assert!(Client::new(addr.to_string()).jobs().unwrap().is_empty());

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn delete_cancels_running_and_queued_jobs() {
    let root = tmp_root("cancel");
    let mut daemon = start_daemon(&root, 1);
    let client = Client::new(daemon.addr().to_string());

    // One worker slot: the first job runs, the second queues behind it.
    let running = client.submit(&paced_spec(400, 1)).unwrap();
    let queued = client.submit(&paced_spec(400, 2)).unwrap();

    // Cancel the queued job first — it interrupts immediately, without
    // ever occupying the slot.
    let view = client.cancel(queued).unwrap();
    assert_eq!(view.state, JobState::Interrupted);
    assert_eq!(view.executed, 0);

    // Let the running job make real progress, then cancel it: it parks
    // as interrupted after the in-flight run, with a partial tally.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let view = client.job(running).unwrap();
        if view.executed >= 3 {
            break;
        }
        assert!(Instant::now() < deadline, "job never started executing");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.cancel(running).unwrap();
    let view = wait_terminal(&client, running);
    assert_eq!(view.state, JobState::Interrupted);
    assert!(view.executed >= 3);
    assert!(
        (view.tally.total() as usize) < 400,
        "cancellation must land before the campaign finishes"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Re-exec marker: when set, this test binary is the daemon *victim* —
/// it serves the queue root named by the variable until SIGKILLed.
const CHILD_ENV: &str = "FFIS_DAEMON_API_CHILD";

#[test]
fn sigkill_the_daemon_mid_job_then_restart_resumes_byte_identically() {
    if let Ok(root) = std::env::var(CHILD_ENV) {
        // Child mode: serve until the parent kills us — no cleanup, no
        // journal flush beyond the engine's per-run appends.
        let daemon = start_daemon(Path::new(&root), 1);
        std::fs::write(Path::new(&root).join("addr.txt"), daemon.addr().to_string()).unwrap();
        loop {
            std::thread::sleep(Duration::from_secs(1));
        }
    }

    const RUNS: usize = 96;
    let spec = paced_spec(RUNS, 0xD1E5);
    let control = execute_spec(&spec, &ExecHooks::default()).unwrap();

    let root = tmp_root("sigkill");
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(&exe)
        .args([
            "--exact",
            "sigkill_the_daemon_mid_job_then_restart_resumes_byte_identically",
            "--test-threads",
            "1",
            "--nocapture",
        ])
        .env(CHILD_ENV, &root)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the child daemon's serve handshake, then submit.
    let addr_file = root.join("addr.txt");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "child daemon never published its address");
        std::thread::sleep(Duration::from_millis(10));
    };
    let id = Client::new(addr).submit(&spec).unwrap();

    // SIGKILL once the job's journal shows real progress — the
    // mid-job crash the persistent queue exists for.
    let jpath = root.join("jobs").join(id.to_string()).join("run.journal");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut seen = 0usize;
    loop {
        if let Ok((_, ends)) = journal::scan(&jpath) {
            seen = ends.len();
            if seen >= 8 {
                break;
            }
        }
        if matches!(child.try_wait(), Ok(Some(_))) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(seen >= 1, "the daemon never journaled a run");

    // A fresh daemon on the same root recovers the queue and resumes
    // the interrupted job; the resume law makes the result
    // byte-identical to the uninterrupted in-process control.
    let mut daemon = start_daemon(&root, 1);
    let client = Client::new(daemon.addr().to_string());
    let view = wait_terminal(&client, id);
    assert_eq!(view.state, JobState::Complete);
    assert!(view.resumed >= 1, "nothing was replayed from the journal");
    assert_eq!(view.executed + view.resumed, RUNS, "every run accounted for exactly once");
    assert_eq!(view.tally, control.tally);
    assert_eq!(view.plan_fingerprint, Some(control.plan_fingerprint));
    assert_eq!(view.run_digest, Some(control.run_digest()));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_drifted_spec_fails_with_a_structured_plan_mismatch() {
    let root = tmp_root("mismatch");
    let mut daemon = start_daemon(&root, 1);
    let client = Client::new(daemon.addr().to_string());
    let id = client.submit(&paced_spec(12, 77)).unwrap();
    let view = wait_terminal(&client, id);
    assert_eq!(view.state, JobState::Complete);
    daemon.shutdown();

    // Drift the persisted spec under the completed journal and drop
    // the terminal result: recovery re-runs the job, the journal's
    // plan fingerprint no longer matches, and the API surfaces a
    // structured `plan-mismatch` failure — not a log line.
    let dir = root.join("jobs").join(id.to_string());
    let spec_path = dir.join("spec.json");
    let text = std::fs::read_to_string(&spec_path).unwrap();
    let mut spec = api::spec_from_json(&ffis_daemon::json::parse(&text).unwrap()).unwrap();
    spec.seed += 1;
    std::fs::write(&spec_path, api::spec_to_json(&spec).render()).unwrap();
    std::fs::remove_file(dir.join("result.json")).unwrap();

    let mut daemon = start_daemon(&root, 1);
    let client = Client::new(daemon.addr().to_string());
    let view = wait_terminal(&client, id);
    assert_eq!(view.state, JobState::Failed);
    let failure = view.failure.expect("failed jobs carry a failure reason");
    assert_eq!(failure.kind(), "plan-mismatch");
    match failure {
        ffis_core::JobFailure::PlanMismatch { found, expected } => {
            assert_ne!(found, expected, "the two fingerprints must differ");
        }
        other => panic!("wrong failure: {other}"),
    }

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fuel_exhaustion_surfaces_as_counters_and_stream_fields() {
    let root = tmp_root("fuel");
    let mut daemon = start_daemon(&root, 1);
    let client = Client::new(daemon.addr().to_string());

    // One I/O op of fuel: every injection run's mount unwinds almost
    // immediately (the golden run is never fueled).
    let mut spec = paced_spec(6, 5);
    spec.fuel = Some(1);
    let id = client.submit(&spec).unwrap();
    let mut aborted_events = 0usize;
    let view = client
        .watch(id, |ev| {
            if let StreamEvent::Run { aborted: Some(reason), .. } = ev {
                assert_eq!(reason, "fuel-exhausted");
                aborted_events += 1;
            }
        })
        .unwrap();
    assert_eq!(view.state, JobState::Complete);
    assert!(view.fuel_exhausted > 0, "the fuel watchdog must have fired");
    assert_eq!(view.fuel_exhausted as usize, aborted_events);
    assert_eq!(view.deadline_exceeded, 0);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn the_admission_cap_runs_jobs_concurrently_and_deterministically() {
    let root = tmp_root("concurrent");
    let mut daemon = start_daemon(&root, 2);
    let client = Client::new(daemon.addr().to_string());

    // Two worker slots, two long-enough jobs: both must actually hold
    // a slot at the same time.
    let a = client.submit(&paced_spec(200, 0xA)).unwrap();
    let b = client.submit(&paced_spec(200, 0xB)).unwrap();
    let view_a = wait_terminal(&client, a);
    let view_b = wait_terminal(&client, b);
    assert_eq!(view_a.state, JobState::Complete);
    assert_eq!(view_b.state, JobState::Complete);
    let (_, _, max_concurrent) = client.health().unwrap();
    assert!(max_concurrent >= 2, "two jobs never overlapped (max_concurrent {})", max_concurrent);

    // Determinism under concurrency: resubmitting job A's spec yields
    // its exact digest, regardless of what ran beside it.
    let again = client.submit(&paced_spec(200, 0xA)).unwrap();
    let view_again = wait_terminal(&client, again);
    assert_eq!(view_again.tally, view_a.tally);
    assert_eq!(view_again.run_digest, view_a.run_digest);
    assert_ne!(view_a.run_digest, view_b.run_digest, "different seeds, different digests");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
