//! A zero-dependency JSON value, parser, and renderer.
//!
//! The workspace is offline (no serde), so the daemon's wire types
//! round-trip through this module instead. Two properties matter for
//! the API and are pinned by the tests here:
//!
//! * **Objects preserve member order and keep duplicates visible.**
//!   [`Json::Obj`] is a `Vec<(String, Json)>`, not a map, so the
//!   API layer can reject unknown fields (HTTP 400) instead of
//!   silently dropping a typo like `"sead"`.
//! * **`u64` survives.** Campaign seeds and plan fingerprints are full
//!   64-bit values; an `f64` number loses integer precision past
//!   2⁵³. [`u64_value`] therefore emits big values as decimal
//!   *strings*, and [`Json::as_u64`] accepts a number, a decimal
//!   string, or a `0x…` hex string interchangeably.

use std::fmt::Write as _;

/// Nesting depth cap for the parser: far beyond any API payload,
/// small enough that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2⁵³ should travel as strings;
    /// see [`u64_value`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order, duplicates preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (first match) on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` view: a non-negative integral number, a decimal string,
    /// or a `0x…` hex string (the spellings [`u64_value`] and the
    /// report files use).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => {
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 {
                    Some(*n as u64)
                } else {
                    None
                }
            }
            Json::Str(s) => {
                if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    u64::from_str_radix(&hex.replace('_', ""), 16).ok()
                } else {
                    s.parse().ok()
                }
            }
            _ => None,
        }
    }

    /// `usize` view via [`Json::as_u64`].
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact wire string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{}", n);
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// The wire value for a `u64`: a plain number when `f64`-exact,
/// otherwise a decimal string (see the module docs).
pub fn u64_value(v: u64) -> Json {
    if v <= 9_007_199_254_740_992 {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing non-whitespace is an
/// error — a request body is one value, not a stream).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".into());
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte '{}' at {}", c as char, self.pos)),
            None => Err("unexpected end of document".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number '{}' at byte {}", text, start))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates are replaced, not paired — the
                            // API never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi \\\"there\\\"\\n\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn object_member_order_and_duplicates_survive() {
        let v = parse(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        match &v {
            Json::Obj(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "z"]);
            }
            _ => panic!("not an object"),
        }
        assert_eq!(v.get("z"), Some(&Json::Num(1.0)), "get returns the first match");
    }

    #[test]
    fn u64_values_survive_above_f64_precision() {
        for v in [0u64, 1, 4279640097, 1 << 53, u64::MAX, 0xFF15_2021] {
            let wire = u64_value(v).render();
            assert_eq!(parse(&wire).unwrap().as_u64(), Some(v), "{v}");
        }
        assert_eq!(parse("\"0xFF152021\"").unwrap().as_u64(), Some(0xFF15_2021));
        assert_eq!(parse("\"0x00ff_15_2021\"").unwrap().as_u64(), Some(0xFF15_2021));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"not a number\"").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "nul",
            "{\"a\":}",
            "[1 2]",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn control_characters_escape() {
        let v = Json::Str("a\u{1}b\tc".into());
        assert_eq!(v.render(), "\"a\\u0001b\\tc\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
