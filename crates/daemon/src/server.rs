//! The REST/NDJSON surface: route table, request decoding, and the
//! [`Daemon`] handle that ties the HTTP listener to the job queue.
//!
//! ## Routes (optionally prefixed `/api/v0`)
//!
//! | method & path | behaviour |
//! |---|---|
//! | `POST /jobs` | submit a [`CampaignSpec`](ffis_core::CampaignSpec); 200 `{"id": n}`, 400 on any spec error |
//! | `GET /jobs` | list every job (snapshot array) |
//! | `GET /jobs/:id` | one job's live status + partial tally |
//! | `GET /jobs/:id/stream` | chunked NDJSON: `snapshot`, then one `run` event per plan index, then `done` |
//! | `DELETE /jobs/:id` | cancel (queued → interrupted now; running → after the in-flight run) |
//! | `GET /healthz` | `{"status":"ok", "running", "queued", "max_concurrent"}` |
//! | `GET /bench` | list `BENCH_*.json` artifacts; `GET /bench/:name` serves one |

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::api;
use crate::http::{HttpServer, Reply, Request};
use crate::jobs::JobQueue;
use crate::json::{self, Json};

/// Daemon settings: queue root, bind address, admission cap.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// State directory (job specs, journals, results live under
    /// `<root>/jobs/`).
    pub root: PathBuf,
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Admission cap: number of campaign worker threads (= maximum
    /// concurrently running jobs; the rest queue FIFO).
    pub workers: usize,
    /// Directory scanned for `BENCH_*.json` artifacts (`GET /bench`).
    pub bench_dir: Option<PathBuf>,
    /// Terminal job-directory retention cap (`--retain N`): keep at
    /// most this many `complete`/`failed` job directories, collecting
    /// the oldest first. Resumable jobs are never collected. `None`
    /// keeps everything.
    pub retain: Option<usize>,
    /// Worker *processes* per job (`--fanout N`): `N > 1` shards each
    /// journaled job's run plan across `N` spawned worker processes
    /// that share the disk-backed checkpoint store (engine law 7).
    /// `1` runs jobs in-process.
    pub fanout: usize,
}

impl DaemonConfig {
    /// A config rooted at `root` on an ephemeral localhost port with
    /// two worker slots.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            root: root.into(),
            addr: "127.0.0.1:0".into(),
            workers: 2,
            bench_dir: None,
            retain: None,
            fanout: 1,
        }
    }
}

/// A running daemon: HTTP listener + job queue. Dropping the handle
/// does **not** stop it; call [`Daemon::shutdown`].
pub struct Daemon {
    queue: Arc<JobQueue>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Bind, recover the queue (resuming interrupted jobs), and serve.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let options = crate::jobs::QueueOptions {
            retain: config.retain,
            fanout: config.fanout,
            worker_cmd: None,
        };
        let queue = JobQueue::open_with(&config.root, config.workers, options)?;
        let server = HttpServer::bind(&config.addr)?;
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let handler = {
            let queue = Arc::clone(&queue);
            let bench_dir = config.bench_dir.clone();
            Arc::new(move |req: &Request| route(&queue, bench_dir.as_deref(), req))
        };
        let listener = {
            let stop = Arc::clone(&stop);
            // Two HTTP threads per worker slot: streams occupy one for
            // a job's whole lifetime, so status polls need headroom.
            let http_workers = config.workers.max(1) * 2 + 2;
            std::thread::spawn(move || {
                if let Err(e) = server.serve(http_workers, handler, stop) {
                    eprintln!("[ffis-daemon] listener error: {}", e);
                }
            })
        };
        Ok(Daemon { queue, addr, stop, listener: Some(listener) })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The underlying queue (for in-process submission in tests).
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// Graceful shutdown: stop accepting connections, cancel active
    /// jobs, flush journals, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.shutdown();
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Best effort: a dropped handle still stops the listener so
        // tests cannot leak accept loops.
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Dispatch one request against the queue. Public so tests can drive
/// the route table without a socket.
pub fn route(queue: &Arc<JobQueue>, bench_dir: Option<&Path>, req: &Request) -> Reply {
    let path = req.path.strip_prefix("/api/v0").unwrap_or(&req.path);
    let path = if path.is_empty() { "/" } else { path };
    let segments: Vec<&str> = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (running, queued, max_concurrent) = queue.counts();
            Reply::Json(
                200,
                Json::Obj(vec![
                    ("status".into(), Json::Str("ok".into())),
                    ("running".into(), Json::Num(running as f64)),
                    ("queued".into(), Json::Num(queued as f64)),
                    ("max_concurrent".into(), Json::Num(max_concurrent as f64)),
                ]),
            )
        }
        ("POST", ["jobs"]) => submit(queue, &req.body),
        ("GET", ["jobs"]) => {
            let views = queue.jobs().iter().map(api::job_to_json).collect();
            Reply::Json(200, Json::Arr(views))
        }
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match queue.job(id) {
                Some(view) => Reply::Json(200, api::job_to_json(&view)),
                None => Reply::error(404, format!("no job {}", id)),
            },
            None => Reply::error(400, format!("bad job id '{}'", id)),
        },
        ("DELETE", ["jobs", id]) => match parse_id(id) {
            Some(id) => match queue.cancel(id) {
                Some(view) => Reply::Json(200, api::job_to_json(&view)),
                None => Reply::error(404, format!("no job {}", id)),
            },
            None => Reply::error(400, format!("bad job id '{}'", id)),
        },
        ("GET", ["jobs", id, "stream"]) => match parse_id(id) {
            Some(id) => match queue.subscribe(id) {
                Some((snapshot, rx)) => Reply::Stream(Box::new(move |out| {
                    out.line(&api::snapshot_line(&snapshot))?;
                    // The queue sends pre-rendered lines and drops the
                    // sender after `done`; recv errors end the stream.
                    while let Ok(line) = rx.recv() {
                        out.line(&line)?;
                    }
                    Ok(())
                })),
                None => Reply::error(404, format!("no job {}", id)),
            },
            None => Reply::error(400, format!("bad job id '{}'", id)),
        },
        ("GET", ["bench"]) => bench_index(bench_dir),
        ("GET", ["bench", name]) => bench_artifact(bench_dir, name),
        _ => Reply::error(404, format!("no route for {} {}", req.method, req.path)),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn submit(queue: &Arc<JobQueue>, body: &[u8]) -> Reply {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Reply::error(400, "body is not UTF-8"),
    };
    let value = match json::parse(text) {
        Ok(value) => value,
        Err(e) => return Reply::error(400, format!("malformed JSON: {}", e)),
    };
    let spec = match api::spec_from_json(&value) {
        Ok(spec) => spec,
        Err(e) => return Reply::error(400, &e),
    };
    match queue.submit(spec) {
        Ok(id) => Reply::Json(200, Json::Obj(vec![("id".into(), json::u64_value(id))])),
        Err(e) => Reply::error(400, &e),
    }
}

fn bench_index(dir: Option<&Path>) -> Reply {
    let Some(dir) = dir else {
        return Reply::error(404, "no bench directory configured");
    };
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.file_name().into_string().ok())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    if names.is_empty() {
        // A structured 404, not an empty 200: "nothing published yet"
        // and "no artifacts match" are client-visible conditions, not
        // a silent empty list.
        return Reply::error(404, "no bench artifacts published yet (no BENCH_*.json files)");
    }
    names.sort();
    Reply::Json(200, Json::Arr(names.into_iter().map(Json::Str).collect()))
}

fn bench_artifact(dir: Option<&Path>, name: &str) -> Reply {
    let Some(dir) = dir else {
        return Reply::error(404, "no bench directory configured");
    };
    // The artifact namespace is flat BENCH_*.json; anything else (in
    // particular path traversal) is not a bench name.
    if !name.starts_with("BENCH_") || !name.ends_with(".json") || name.contains(['/', '\\']) {
        return Reply::error(404, format!("no bench artifact '{}'", name));
    }
    match std::fs::read(dir.join(name)) {
        Ok(bytes) => Reply::Raw(200, "application/json", bytes),
        Err(_) => Reply::error(404, format!("no bench artifact '{}'", name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_core::engine::job::CampaignSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ffis-daemon-route-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), body: Vec::new() }
    }

    #[test]
    fn routes_strip_the_api_prefix_and_404_unknowns() {
        let root = temp_root("prefix");
        let queue = JobQueue::open(&root, 1).unwrap();
        for path in ["/healthz", "/api/v0/healthz"] {
            match route(&queue, None, &get(path)) {
                Reply::Json(200, Json::Obj(fields)) => {
                    assert!(fields.iter().any(|(k, _)| k == "status"));
                }
                other => panic!("{} => {:?}", path, reply_tag(&other)),
            }
        }
        match route(&queue, None, &get("/nope")) {
            Reply::Json(404, _) => {}
            other => panic!("{:?}", reply_tag(&other)),
        }
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submit_rejects_bad_bodies_with_400() {
        let root = temp_root("submit");
        let queue = JobQueue::open(&root, 1).unwrap();
        let cases: [&[u8]; 3] = [
            b"not json",
            br#"{"app":"paced","model":"BF","bogus":1}"#,
            br#"{"app":"paced","model":"BF","runs":0}"#,
        ];
        for body in cases {
            let req = Request { method: "POST".into(), path: "/jobs".into(), body: body.to_vec() };
            match route(&queue, None, &req) {
                Reply::Json(400, _) => {}
                other => panic!("{:?} for {:?}", reply_tag(&other), String::from_utf8_lossy(body)),
            }
        }
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bench_routes_serve_only_flat_bench_json() {
        let root = temp_root("bench");
        let bench = root.join("bench");
        std::fs::create_dir_all(&bench).unwrap();
        std::fs::write(bench.join("BENCH_demo.json"), b"{\"ok\":true}").unwrap();
        std::fs::write(bench.join("notes.txt"), b"x").unwrap();
        let queue = JobQueue::open(&root, 1).unwrap();
        match route(&queue, Some(&bench), &get("/bench")) {
            Reply::Json(200, Json::Arr(names)) => {
                assert_eq!(names, vec![Json::Str("BENCH_demo.json".into())]);
            }
            other => panic!("{:?}", reply_tag(&other)),
        }
        match route(&queue, Some(&bench), &get("/bench/BENCH_demo.json")) {
            Reply::Raw(200, "application/json", bytes) => assert_eq!(bytes, b"{\"ok\":true}"),
            other => panic!("{:?}", reply_tag(&other)),
        }
        for bad in ["/bench/notes.txt", "/bench/..%2fBENCH_x.json", "/bench/BENCH_missing.json"] {
            match route(&queue, Some(&bench), &get(bad)) {
                Reply::Json(404, _) => {}
                other => panic!("{:?} for {}", reply_tag(&other), bad),
            }
        }
        // A dir with no artifacts answers a *structured* 404, never an
        // empty 200 body.
        let empty = root.join("empty-bench");
        std::fs::create_dir_all(&empty).unwrap();
        match route(&queue, Some(&empty), &get("/bench")) {
            Reply::Json(404, body) => {
                let msg = body.get("error").and_then(Json::as_str).unwrap_or("");
                assert!(msg.contains("no bench artifacts published yet"), "{msg}");
            }
            other => panic!("{:?} for empty bench dir", reply_tag(&other)),
        }
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submitted_jobs_run_to_completion_through_the_queue() {
        let root = temp_root("run");
        let queue = JobQueue::open(&root, 1).unwrap();
        let mut spec = CampaignSpec::new("paced", "BF");
        spec.runs = 6;
        spec.seed = 7;
        let id = queue.submit(spec).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let view = loop {
            let view = queue.job(id).unwrap();
            if !view.state.is_active() {
                break view;
            }
            assert!(std::time::Instant::now() < deadline, "job did not finish");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert_eq!(view.state, ffis_core::engine::job::JobState::Complete);
        assert_eq!(view.executed, 6);
        assert_eq!(view.tally.total(), 6);
        assert!(view.run_digest.is_some());
        assert!(root.join("jobs").join(id.to_string()).join("result.json").exists());
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    fn reply_tag(reply: &Reply) -> String {
        match reply {
            Reply::Json(status, v) => format!("Json({}, {})", status, v.render()),
            Reply::Raw(status, ct, _) => format!("Raw({}, {})", status, ct),
            Reply::Stream(_) => "Stream".into(),
        }
    }
}
