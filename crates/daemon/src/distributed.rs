//! Multi-process campaign fan-out: shard the engine's index-addressed
//! run plan across worker *processes*, merge their journal segments,
//! and re-derive the final result through the engine's resume path.
//!
//! This is engine law 7 ("serial == parallel == distributed, byte for
//! byte") made operational:
//!
//! 1. The coordinator partitions `0..spec.runs` with
//!    [`index_ranges`] and spawns one
//!    worker process per range (`repro daemon worker …`, or whatever
//!    command the caller supplies).
//! 2. Every worker runs the *same* spec through the *same*
//!    [`execute_spec`] the in-process path uses — identical planning,
//!    identical golden run, identical journal header — restricted to
//!    its range via `ExecHooks::index_range`, journaling into its own
//!    segment file. Workers share checkpoints through the
//!    content-addressed `CheckpointStore` disk tier, so the expensive
//!    checkpoint build happens once per store directory, not once per
//!    process — and share analyze memoization the same way through the
//!    `MemoStore` disk tier, so a sub-step artifact computed by one
//!    worker is a disk hit for every other.
//! 3. The coordinator merges the segments index-addressed
//!    ([`merge_segments`], first
//!    wins — exactly the resume law's dedup rule) and executes the
//!    spec once more with `resume = true` over the merged journal.
//!    Journaled indices feed the sink directly; only indices a worker
//!    failed to cover re-execute. The result is therefore
//!    byte-identical to a single-process run of the same spec — the
//!    coordinator's final pass *is* a crash-resume, and law 6 already
//!    guarantees those.
//!
//! A killed coordinator (or daemon) restarted over the same work
//! directory reuses everything: workers resume their own segments, the
//! merge re-runs, and the final pass still re-derives the one answer.

use std::collections::HashMap;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffis_core::engine::{index_ranges, journal, merge_segments};
use ffis_core::{CampaignError, CampaignResult, CampaignSpec};
use ffis_vfs::{CheckpointStore, MemoStore};

use crate::api;
use crate::apps::{execute_spec, ExecHooks};
use crate::json;

/// Marker prefix of the one machine-readable line a worker prints on
/// stdout (`key=value` pairs; see [`WorkerStats`]).
pub const WORKER_STATS_PREFIX: &str = "FFIS_WORKER";

/// What one worker process reports back on its stdout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// The half-open plan-index range this worker executed.
    pub start: u64,
    /// Exclusive end of the range.
    pub end: u64,
    /// Runs the worker executed (excludes resumed segment entries).
    pub executed: u64,
    /// Wall-clock seconds for the worker's whole campaign.
    pub wall_s: f64,
    /// Checkpoint sets built from scratch in this process.
    pub builds: u64,
    /// In-memory checkpoint cache hits.
    pub mem_hits: u64,
    /// Checkpoint sets loaded from the shared disk tier.
    pub disk_hits: u64,
    /// Unique blobs indexed in this worker's store view.
    pub blobs: u64,
    /// Bytes offered to the blob store (before dedup).
    pub logical_bytes: u64,
    /// Bytes actually written for unique blobs (after dedup).
    pub physical_bytes: u64,
    /// `put` calls answered by an existing blob.
    pub dedup_hits: u64,
    /// Blobs faulted in from disk.
    pub disk_loads: u64,
    /// Corrupt disk frames discarded and rebuilt.
    pub corrupt_discards: u64,
}

impl WorkerStats {
    /// Render as the stdout line the coordinator parses.
    pub fn render(&self) -> String {
        format!(
            "{} start={} end={} executed={} wall_ms={} builds={} mem_hits={} disk_hits={} \
             blobs={} logical={} physical={} dedup_hits={} disk_loads={} corrupt_discards={}",
            WORKER_STATS_PREFIX,
            self.start,
            self.end,
            self.executed,
            (self.wall_s * 1000.0).round() as u64,
            self.builds,
            self.mem_hits,
            self.disk_hits,
            self.blobs,
            self.logical_bytes,
            self.physical_bytes,
            self.dedup_hits,
            self.disk_loads,
            self.corrupt_discards,
        )
    }

    /// Parse a worker stdout line (`None` if it is not a stats line).
    pub fn parse(line: &str) -> Option<WorkerStats> {
        let rest = line.trim().strip_prefix(WORKER_STATS_PREFIX)?;
        let mut stats = WorkerStats::default();
        for token in rest.split_whitespace() {
            let (key, value) = token.split_once('=')?;
            let n: u64 = value.parse().ok()?;
            match key {
                "start" => stats.start = n,
                "end" => stats.end = n,
                "executed" => stats.executed = n,
                "wall_ms" => stats.wall_s = n as f64 / 1000.0,
                "builds" => stats.builds = n,
                "mem_hits" => stats.mem_hits = n,
                "disk_hits" => stats.disk_hits = n,
                "blobs" => stats.blobs = n,
                "logical" => stats.logical_bytes = n,
                "physical" => stats.physical_bytes = n,
                "dedup_hits" => stats.dedup_hits = n,
                "disk_loads" => stats.disk_loads = n,
                "corrupt_discards" => stats.corrupt_discards = n,
                _ => return None,
            }
        }
        Some(stats)
    }
}

/// Blob-store and checkpoint accounting aggregated across every
/// worker process of one fan-out.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreTotals {
    /// Checkpoint sets built from scratch (across all workers).
    pub builds: u64,
    /// Checkpoint sets loaded from the shared disk tier.
    pub disk_hits: u64,
    /// Unique blobs (max over workers — they share one directory).
    pub blobs: u64,
    /// Total bytes offered to the store across workers.
    pub logical_bytes: u64,
    /// Total bytes written for unique blobs across workers.
    pub physical_bytes: u64,
    /// Content-dedup hits across workers.
    pub dedup_hits: u64,
    /// Corrupt frames discarded and healed across workers.
    pub corrupt_discards: u64,
}

impl StoreTotals {
    /// Logical-over-physical byte ratio across the whole fan-out: how
    /// many times each byte actually written to the shared store was
    /// referenced by some checkpoint page.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }

    fn absorb(&mut self, w: &WorkerStats) {
        self.builds += w.builds;
        self.disk_hits += w.disk_hits;
        self.blobs = self.blobs.max(w.blobs);
        self.logical_bytes += w.logical_bytes;
        self.physical_bytes += w.physical_bytes;
        self.dedup_hits += w.dedup_hits;
        self.corrupt_discards += w.corrupt_discards;
    }

    /// Fold another fan-out's totals into this one (campaigns sharing
    /// one store directory: blob counts take the max, everything else
    /// sums).
    pub fn merge(&mut self, other: &StoreTotals) {
        self.builds += other.builds;
        self.disk_hits += other.disk_hits;
        self.blobs = self.blobs.max(other.blobs);
        self.logical_bytes += other.logical_bytes;
        self.physical_bytes += other.physical_bytes;
        self.dedup_hits += other.dedup_hits;
        self.corrupt_discards += other.corrupt_discards;
    }
}

/// Everything a distributed campaign hands back: the (byte-identical)
/// campaign result plus the fan-out's own accounting.
pub struct FanoutReport {
    /// The final campaign result, re-derived from the merged journal.
    /// By engine law 7 its tally, kept records, and run digest are
    /// byte-identical to a single-process run of the same spec.
    pub result: CampaignResult,
    /// Worker processes spawned.
    pub workers: usize,
    /// Records the merged journal held before the final pass.
    pub merged_records: u64,
    /// Plan indices the coordinator itself had to execute because no
    /// worker segment covered them (0 when every worker completed).
    pub coordinator_filled: usize,
    /// Per-worker stats, range-ordered (`None` where a worker died
    /// without reporting — its indices land in `coordinator_filled`).
    pub worker_stats: Vec<Option<WorkerStats>>,
    /// Store accounting aggregated across workers.
    pub store: StoreTotals,
}

/// Why a distributed run failed — callers treat the two cases very
/// differently: a [`FanoutError::Setup`] failure happened *before*
/// any campaign ran (spawn, merge, filesystem), so falling back to
/// the in-process path is safe; a [`FanoutError::Campaign`] failure
/// came out of the final resume pass itself and is the job's real
/// outcome (re-running would double-execute).
#[derive(Debug)]
pub enum FanoutError {
    /// The fan-out could not be orchestrated; no result was derived.
    Setup(String),
    /// The final merged-resume campaign failed.
    Campaign(CampaignError),
}

impl std::fmt::Display for FanoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanoutError::Setup(m) => write!(f, "{}", m),
            FanoutError::Campaign(e) => write!(f, "{}", e),
        }
    }
}

/// The worker command for re-invoking the current executable's hidden
/// `daemon worker` subcommand — what `repro` passes to
/// [`run_distributed`].
pub fn self_worker_cmd() -> std::io::Result<Vec<String>> {
    let exe = std::env::current_exe()?;
    Ok(vec![exe.display().to_string(), "daemon".into(), "worker".into()])
}

/// Execute one worker shard in-process: the spec (journaling forced
/// on, resume on so a re-spawned worker reuses its own segment),
/// restricted to `range`, journaled into `segment`, checkpoints via
/// the shared disk store under `store_dir` and analyze memoization via
/// the shared memo store under `memo_dir` when given.
pub fn run_worker(
    spec: &CampaignSpec,
    range: (usize, usize),
    segment: &Path,
    store_dir: Option<&Path>,
    memo_dir: Option<&Path>,
) -> Result<(CampaignResult, Option<Arc<CheckpointStore>>), CampaignError> {
    let mut spec = spec.clone();
    spec.journal = true;
    spec.resume = true;
    let store = store_dir.map(open_store);
    let hooks = ExecHooks {
        journal: Some(segment.to_path_buf()),
        checkpoints: store.clone(),
        memo: memo_dir.map(open_memo),
        index_range: Some(range),
        ..ExecHooks::default()
    };
    let result = execute_spec(&spec, &hooks)?;
    Ok((result, store))
}

/// A disk-backed store at `dir`, degrading to memory-only (with a
/// stderr note) if the directory cannot be created — the store is a
/// cache, so degradation costs time, never correctness.
pub fn open_store(dir: &Path) -> Arc<CheckpointStore> {
    match CheckpointStore::with_dir(dir) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!(
                "[ffis-daemon] checkpoint store at {} unavailable ({}); using memory only",
                dir.display(),
                e
            );
            Arc::new(CheckpointStore::new())
        }
    }
}

/// A disk-backed memo store at `dir`, degrading to memory-only (with
/// a stderr note) if the directory cannot be created — like the
/// checkpoint store, the memo layer is a cache, so degradation costs
/// recomputation, never correctness.
pub fn open_memo(dir: &Path) -> Arc<MemoStore> {
    match MemoStore::at_dir(dir) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!(
                "[ffis-daemon] memo store at {} unavailable ({}); using memory only",
                dir.display(),
                e
            );
            Arc::new(MemoStore::in_memory())
        }
    }
}

/// The `repro daemon worker` entry point: load the spec from
/// `--spec`, execute `[--start, --end)` into `--journal`, share
/// checkpoints under `--store` and analyze memoization under
/// `--memo`, and print one [`WorkerStats`] line.
/// Exit code 0 when the shard completed, 130 when interrupted, and an
/// `Err` (the caller prints it and exits 2) on any structural failure.
pub fn worker_cli(flags: &HashMap<String, String>) -> Result<i32, String> {
    let spec_path = flags.get("spec").ok_or("--spec is required")?;
    let segment = PathBuf::from(flags.get("journal").ok_or("--journal is required")?);
    let parse = |key: &str| -> Result<usize, String> {
        let v = flags.get(key).ok_or_else(|| format!("--{} is required", key))?;
        v.parse().map_err(|_| format!("bad --{} '{}'", key, v))
    };
    let (start, end) = (parse("start")?, parse("end")?);
    if start >= end {
        return Err(format!("empty worker range [{}, {})", start, end));
    }
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("read spec {}: {}", spec_path, e))?;
    let spec = json::parse(&text).and_then(|v| api::spec_from_json(&v))?;
    let store_dir = flags.get("store").map(PathBuf::from);
    let memo_dir = flags.get("memo").map(PathBuf::from);
    let started = Instant::now();
    let (result, store) =
        run_worker(&spec, (start, end), &segment, store_dir.as_deref(), memo_dir.as_deref())
            .map_err(|e| e.to_string())?;
    let blob = store.as_ref().and_then(|s| s.blob_stats()).unwrap_or_default();
    let stats = WorkerStats {
        start: start as u64,
        end: end as u64,
        executed: result.executed as u64,
        wall_s: started.elapsed().as_secs_f64(),
        builds: store.as_ref().map_or(0, |s| s.builds() as u64),
        mem_hits: store.as_ref().map_or(0, |s| s.hits() as u64),
        disk_hits: store.as_ref().map_or(0, |s| s.disk_hits() as u64),
        blobs: blob.blobs as u64,
        logical_bytes: blob.logical_bytes,
        physical_bytes: blob.physical_bytes,
        dedup_hits: blob.dedup_hits,
        disk_loads: blob.disk_loads,
        corrupt_discards: blob.corrupt_discards,
    };
    println!("{}", stats.render());
    Ok(if result.status == ffis_core::CompletionStatus::Complete { 0 } else { 130 })
}

/// Run `spec` across `workers` processes (engine law 7; see the
/// module docs for the three-step shape).
///
/// `work_dir` holds the spec file, per-worker journal segments, and
/// the merged journal; re-running over the same directory resumes.
/// `store_dir` (when given) is the shared disk-backed checkpoint
/// store every worker *and* the final pass mount; `memo_dir` is its
/// analyze-memo sibling, shared the same way. `worker_cmd` is the
/// argv prefix for one worker process (usually [`self_worker_cmd`]);
/// the coordinator appends
/// `--spec/--start/--end/--journal[/--store][/--memo]`.
/// `hooks` applies to the final resume pass (its `journal`,
/// `checkpoints`, and `index_range` fields are overridden); its
/// `cancel` token is also polled while workers run — cancellation
/// kills the children, and the final pass then reports honestly
/// interrupted partial results, every completed run already merged.
pub fn run_distributed(
    spec: &CampaignSpec,
    workers: usize,
    work_dir: &Path,
    store_dir: Option<&Path>,
    memo_dir: Option<&Path>,
    worker_cmd: &[String],
    mut hooks: ExecHooks,
) -> Result<FanoutReport, FanoutError> {
    let setup = FanoutError::Setup;
    let workers = workers.max(1);
    let (exe, prefix_args) = worker_cmd
        .split_first()
        .ok_or_else(|| setup("worker command must name an executable".into()))?;
    std::fs::create_dir_all(work_dir).map_err(|e| setup(format!("work dir: {}", e)))?;

    // Workers must journal; everything else is the caller's spec,
    // verbatim, so planning (and the journal header) is identical in
    // every process.
    let mut worker_spec = spec.clone();
    worker_spec.journal = true;
    let spec_path = work_dir.join("spec.json");
    std::fs::write(&spec_path, api::spec_to_json(&worker_spec).render())
        .map_err(|e| setup(format!("write spec: {}", e)))?;

    let ranges = index_ranges(spec.runs, workers);
    let segments: Vec<PathBuf> =
        (0..ranges.len()).map(|i| work_dir.join(format!("segment-{:02}.journal", i))).collect();

    let mut children: Vec<(Child, Instant)> = Vec::new();
    for ((start, end), segment) in ranges.iter().zip(&segments) {
        let mut cmd = Command::new(exe);
        cmd.args(prefix_args)
            .arg("--spec")
            .arg(&spec_path)
            .arg("--start")
            .arg(start.to_string())
            .arg("--end")
            .arg(end.to_string())
            .arg("--journal")
            .arg(segment)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(dir) = store_dir {
            cmd.arg("--store").arg(dir);
        }
        if let Some(dir) = memo_dir {
            cmd.arg("--memo").arg(dir);
        }
        let child = match cmd.spawn() {
            Ok(child) => child,
            Err(e) => {
                // Reap what already started before reporting: spawn
                // failure is a setup error, and orphaned workers would
                // otherwise keep executing.
                for (running, _) in children.iter_mut() {
                    let _ = running.kill();
                    let _ = running.wait();
                }
                return Err(setup(format!("spawn worker {}: {}", exe, e)));
            }
        };
        children.push((child, Instant::now()));
    }

    // Babysit the children: poll for exit, kill on cancellation. A
    // killed worker's segment keeps its CRC-complete prefix — the
    // merge skips the torn tail and the final pass fills (or honestly
    // interrupts on) the gap.
    let cancel = hooks.cancel.clone();
    let mut worker_stats: Vec<Option<WorkerStats>> = vec![None; children.len()];
    let mut live: Vec<usize> = (0..children.len()).collect();
    while !live.is_empty() {
        if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            for &i in &live {
                let _ = children[i].0.kill();
            }
        }
        live.retain(|&i| match children[i].0.try_wait() {
            Ok(Some(_)) => {
                let mut out = String::new();
                if let Some(mut stdout) = children[i].0.stdout.take() {
                    let _ = stdout.read_to_string(&mut out);
                }
                worker_stats[i] = out.lines().find_map(WorkerStats::parse);
                false
            }
            Ok(None) => true,
            Err(_) => false,
        });
        if !live.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Merge whatever the workers produced. Zero segments (every spawn
    // died before its header) degrades to a plain single-process run.
    let produced: Vec<PathBuf> = segments.iter().filter(|p| p.exists()).cloned().collect();
    let merged = work_dir.join("merged.journal");
    let mut merged_records = 0;
    let mut final_spec = spec.clone();
    if let Some(first) = produced.first() {
        let (meta, _) =
            journal::scan(first).map_err(|e| setup(format!("scan {}: {}", first.display(), e)))?;
        merged_records = merge_segments(&merged, &meta, &produced)
            .map_err(|e| setup(format!("merge segments: {}", e)))?;
        final_spec.journal = true;
        final_spec.resume = true;
        hooks.journal = Some(merged.clone());
    } else {
        hooks.journal = None;
    }
    hooks.index_range = None;
    if hooks.checkpoints.is_none() {
        hooks.checkpoints = store_dir.map(open_store);
    }
    if hooks.memo.is_none() {
        hooks.memo = memo_dir.map(open_memo);
    }
    let result = execute_spec(&final_spec, &hooks).map_err(FanoutError::Campaign)?;

    let mut store = StoreTotals::default();
    for stats in worker_stats.iter().flatten() {
        store.absorb(stats);
    }
    Ok(FanoutReport {
        coordinator_filled: result.executed,
        result,
        workers: ranges.len(),
        merged_records,
        worker_stats,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_stats_lines_round_trip() {
        let stats = WorkerStats {
            start: 4,
            end: 9,
            executed: 5,
            wall_s: 1.25,
            builds: 1,
            mem_hits: 2,
            disk_hits: 3,
            blobs: 40,
            logical_bytes: 81920,
            physical_bytes: 4096,
            dedup_hits: 19,
            disk_loads: 7,
            corrupt_discards: 0,
        };
        let line = stats.render();
        assert!(line.starts_with(WORKER_STATS_PREFIX), "{line}");
        assert_eq!(WorkerStats::parse(&line), Some(stats));
        assert_eq!(WorkerStats::parse("run      3 benign"), None);
        assert_eq!(WorkerStats::parse("FFIS_WORKER start=x"), None);
    }

    #[test]
    fn store_totals_aggregate_and_report_dedup() {
        let mut totals = StoreTotals::default();
        totals.absorb(&WorkerStats {
            builds: 1,
            blobs: 10,
            logical_bytes: 4096,
            physical_bytes: 4096,
            ..WorkerStats::default()
        });
        totals.absorb(&WorkerStats {
            disk_hits: 1,
            blobs: 10,
            logical_bytes: 8192,
            physical_bytes: 0,
            dedup_hits: 2,
            ..WorkerStats::default()
        });
        assert_eq!(totals.builds, 1);
        assert_eq!(totals.disk_hits, 1);
        assert_eq!(totals.blobs, 10);
        assert!((totals.dedup_ratio() - 3.0).abs() < 1e-9, "{}", totals.dedup_ratio());
    }

    #[test]
    fn in_process_worker_shards_complete_relative_to_their_range() {
        let dir = std::env::temp_dir().join(format!("ffis-worker-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = CampaignSpec::new("paced", "BF");
        spec.runs = 6;
        spec.seed = 3;
        let segment = dir.join("seg.journal");
        let (result, _) = run_worker(&spec, (0, 3), &segment, None, None).unwrap();
        assert_eq!(result.status, ffis_core::CompletionStatus::Complete);
        assert_eq!(result.executed, 3);
        assert!(segment.exists());
        // Re-running the same shard resumes its own segment: nothing
        // executes twice.
        let (again, _) = run_worker(&spec, (0, 3), &segment, None, None).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.resumed, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_cli_rejects_malformed_invocations() {
        let flags: HashMap<String, String> = HashMap::new();
        assert!(worker_cli(&flags).unwrap_err().contains("--spec is required"));
        let mut flags = HashMap::new();
        flags.insert("spec".to_string(), "/nonexistent.json".to_string());
        flags.insert("journal".to_string(), "/tmp/x.journal".to_string());
        flags.insert("start".to_string(), "5".to_string());
        flags.insert("end".to_string(), "5".to_string());
        assert!(worker_cli(&flags).unwrap_err().contains("empty worker range"));
    }
}
