//! The daemon's application registry: resolve a [`CampaignSpec`]'s
//! `app` name and execute the spec through the in-process campaign
//! engine.
//!
//! This is the *one* spec-to-campaign translation in the workspace —
//! the daemon's workers, the `repro daemon submit --local` fallback,
//! and `repro scale`'s cells all call [`execute_spec`], so an HTTP
//! submission and an in-process run of the same spec are the same
//! campaign by construction (the end-to-end byte-identity the
//! integration suite pins).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ffis_core::engine::job::CampaignSpec;
use ffis_core::{
    Campaign, CampaignConfig, CampaignError, CampaignResult, CancelToken, FaultApp, Outcome,
    RunObserver,
};
use ffis_vfs::{CheckpointStore, FileSystem, FileSystemExt, MemoStore};
use montage_sim::MontageApp;
use nyx_sim::{NyxApp, NyxConfig};
use qmc_sim::{QmcApp, QmcConfig};

/// Application names [`execute_spec`] resolves.
pub const APPS: [&str; 4] = ["nyx", "qmc", "montage", "paced"];

/// Validate the spec's `app` against the registry (the daemon answers
/// HTTP 400 with this message at submit time, so an unknown app never
/// occupies a queue slot).
pub fn check_app(spec: &CampaignSpec) -> Result<(), String> {
    let name = spec.app.to_ascii_lowercase();
    if APPS.contains(&name.as_str()) {
        Ok(())
    } else {
        Err(format!("unknown application '{}' (expected one of: {})", spec.app, APPS.join(", ")))
    }
}

/// The Nyx workload at grid side `n` — the same grid/volume scaling
/// `repro` uses everywhere: the sieve-buffer write size scales with
/// the grid volume so the data-write count (and with it the
/// metadata-write hit probability, i.e. the crash share) stays at the
/// paper-scale proportion for smaller grids.
pub fn nyx_at_grid(grid: usize) -> NyxApp {
    nyx_app(grid, 1)
}

/// [`nyx_at_grid`] with `files` plotfile snapshots — the multi-file
/// regime a [`CampaignSpec::files`] > 1 requests.
pub fn nyx_app(grid: usize, files: usize) -> NyxApp {
    let mut cfg = NyxConfig::paper_scale();
    cfg.field.n = grid;
    cfg.plotfiles = files.max(1);
    let scale = (grid as f64 / 96.0).powi(3);
    let chunk = (64.0 * 1024.0 * scale / 4096.0).round().max(1.0) as usize * 4096;
    cfg.write_chunk = chunk;
    NyxApp::new(cfg)
}

/// Execution environment the job runner supplies around a spec: where
/// to journal, whether to share checkpoints, how to cancel, and the
/// live event tap. All optional — `ExecHooks::default()` runs the
/// spec bare.
#[derive(Default)]
pub struct ExecHooks {
    /// Journal path (the daemon keeps one per job directory). `None`
    /// disables journaling even if the spec asks for it — there is
    /// nowhere to put the file.
    pub journal: Option<PathBuf>,
    /// Cooperative cancellation token.
    pub cancel: Option<Arc<CancelToken>>,
    /// Shared checkpoint store (reused across jobs of the same
    /// app/grid).
    pub checkpoints: Option<Arc<CheckpointStore>>,
    /// Shared analyze memo store (reused across every job of a daemon
    /// root — keys are content-addressed over app, sub-step, and input
    /// fingerprints, so one store serves all apps).
    pub memo: Option<Arc<MemoStore>>,
    /// Live run-event observer.
    pub observer: Option<RunObserver>,
    /// Restrict execution to the half-open plan-index range
    /// `[start, end)` — the distributed fan-out's worker shard.
    /// Planning, the golden run, and the journal header stay those of
    /// the *full* plan (engine law 7), so segments from different
    /// workers merge index-addressed.
    pub index_range: Option<(usize, usize)>,
}

/// Run a validated spec through the campaign engine. The spec's
/// `journal`/`resume` flags gate durability; `hooks.journal` supplies
/// the path.
pub fn execute_spec(
    spec: &CampaignSpec,
    hooks: &ExecHooks,
) -> Result<CampaignResult, CampaignError> {
    check_app(spec).map_err(CampaignError::BadSignature)?;
    let signature = spec.signature().map_err(CampaignError::BadSignature)?;
    let mut cfg = CampaignConfig::new(signature)
        .with_runs(spec.runs)
        .with_seed(spec.seed)
        .with_keep_runs(spec.keep_runs)
        .with_index_range(hooks.index_range);
    cfg.parallel = spec.parallel;
    if let Some(budget) = spec.fuel {
        cfg = cfg.with_fuel(budget);
    }
    if let Some(ms) = spec.wall_limit_ms {
        cfg = cfg.with_wall_limit(Duration::from_millis(ms));
    }
    if spec.journal {
        if let Some(path) = &hooks.journal {
            cfg = cfg.with_journal(path).with_resume(spec.resume);
        }
    }
    if let Some(store) = &hooks.checkpoints {
        cfg = cfg.with_checkpoints(Arc::clone(store));
    }
    cfg = cfg.with_memo(spec.memo).with_replay_opt(spec.replay_opt);
    if let Some(store) = &hooks.memo {
        cfg = cfg.with_memo_store(Arc::clone(store));
    }
    if let Some(cancel) = &hooks.cancel {
        cfg = cfg.with_cancel(Arc::clone(cancel));
    }
    if let Some(observer) = &hooks.observer {
        cfg = cfg.with_observer(observer.clone());
    }
    match spec.app.to_ascii_lowercase().as_str() {
        "nyx" => Campaign::new(&nyx_app(spec.grid, spec.files), cfg).run(),
        "qmc" => {
            // Multi-file QMC runs also block the DMC series, so a
            // dirty checkpoint restart re-derives one block of steps
            // instead of the whole series (single-file stays the
            // legacy byte-identical layout).
            let files = spec.files.max(1);
            let blocks = if files > 1 { 4 } else { 1 };
            Campaign::new(
                &QmcApp::new(QmcConfig {
                    restarts: files,
                    dmc_blocks: blocks,
                    ..QmcConfig::default()
                }),
                cfg,
            )
            .run()
        }
        "montage" => Campaign::new(&MontageApp::multi_tile(spec.files.max(1)), cfg).run(),
        "paced" => Campaign::new(&PacedApp, cfg).run(),
        other => Err(CampaignError::BadSignature(format!("unknown application '{}'", other))),
    }
}

/// A deliberately slow synthetic workload for daemon tests and CI
/// smoke: `analyze` sleeps a few milliseconds per run, giving kill-
/// and cancel-mid-job tests a wide window, while the data path stays
/// fully deterministic (pacing never touches the bytes, so paced
/// campaigns over one seed are byte-identical regardless of timing).
#[derive(Default)]
pub struct PacedApp;

/// Per-run analyze pacing.
const PACE: Duration = Duration::from_millis(3);
const PACED_LEN: usize = 4096 * 6;

/// Analyze artifacts of one [`PacedApp`] run.
#[derive(Clone)]
pub struct PacedOutput {
    bytes: Vec<u8>,
    checksum: u64,
}

impl FaultApp for PacedApp {
    type Output = PacedOutput;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        let data: Vec<u8> = (0..PACED_LEN).map(|i| (i as u64 * 31 % 251) as u8).collect();
        fs.write_file_chunked("/out.bin", &data, 4096).map_err(|e| e.to_string())?;
        fs.write_file("/meta.log", b"paced\n").map_err(|e| e.to_string())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&PacedOutput>,
    ) -> Result<PacedOutput, String> {
        std::thread::sleep(PACE);
        let bytes = fs.read_to_vec("/out.bin").map_err(|e| e.to_string())?;
        if bytes.len() != PACED_LEN {
            return Err(format!("short read: {}", bytes.len()));
        }
        let checksum = bytes.iter().map(|&b| u64::from(b)).sum();
        Ok(PacedOutput { bytes, checksum })
    }

    fn classify(&self, golden: &PacedOutput, faulty: &PacedOutput) -> Outcome {
        if golden.bytes == faulty.bytes {
            Outcome::Benign
        } else if faulty.checksum.abs_diff(golden.checksum) > 500 {
            Outcome::Detected
        } else {
            Outcome::Sdc
        }
    }

    fn name(&self) -> String {
        "PACED".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn small_spec(app: &str) -> CampaignSpec {
        let mut spec = CampaignSpec::new(app, "BF");
        spec.grid = 16;
        spec.runs = 8;
        spec.seed = 11;
        spec.journal = false;
        spec
    }

    #[test]
    fn unknown_apps_are_rejected_by_name() {
        let spec = small_spec("nonesuch");
        let err = check_app(&spec).unwrap_err();
        assert!(err.contains("unknown application 'nonesuch'"), "{err}");
        assert!(matches!(
            execute_spec(&spec, &ExecHooks::default()),
            Err(CampaignError::BadSignature(_))
        ));
    }

    #[test]
    fn paced_campaigns_are_deterministic_and_observable() {
        let spec = small_spec("paced");
        let a = execute_spec(&spec, &ExecHooks::default()).unwrap();
        let events: Arc<Mutex<Vec<(usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let hooks = ExecHooks {
            observer: Some(RunObserver::new(move |r, resumed| {
                sink.lock().unwrap().push((r.run, resumed));
            })),
            ..ExecHooks::default()
        };
        let b = execute_spec(&spec, &hooks).unwrap();
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.run_digest(), b.run_digest());
        let mut seen: Vec<usize> = events.lock().unwrap().iter().map(|&(run, _)| run).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..spec.runs).collect::<Vec<_>>());
        assert!(events.lock().unwrap().iter().all(|&(_, resumed)| !resumed));
    }

    #[test]
    fn nyx_specs_execute_at_small_grids() {
        let mut spec = small_spec("nyx");
        spec.runs = 4;
        let result = execute_spec(&spec, &ExecHooks::default()).unwrap();
        assert_eq!(result.tally.total(), 4);
    }
}
