//! The thin client: a blocking HTTP/1.1 client over [`TcpStream`]
//! for the daemon's REST/NDJSON surface. `repro daemon submit|status|
//! watch|cancel|jobs` and the integration suite both drive the
//! daemon exclusively through this module, so the wire format is
//! exercised on every test run.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ffis_core::engine::job::CampaignSpec;

use crate::api::{self, JobView, StreamEvent};
use crate::json::{self, Json};

/// Connect timeout for every request.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// A client bound to one daemon address (`host:port`).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// `GET /healthz` → `(running, queued, max_concurrent)`.
    pub fn health(&self) -> Result<(u64, u64, u64), String> {
        let value = self.request_json("GET", "/api/v0/healthz", None)?;
        let get = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok((get("running"), get("queued"), get("max_concurrent")))
    }

    /// `POST /jobs` → job id.
    pub fn submit(&self, spec: &CampaignSpec) -> Result<u64, String> {
        let body = api::spec_to_json(spec).render();
        let value = self.request_json("POST", "/api/v0/jobs", Some(&body))?;
        value.get("id").and_then(Json::as_u64).ok_or_else(|| "submit reply without id".into())
    }

    /// `GET /jobs/:id`.
    pub fn job(&self, id: u64) -> Result<JobView, String> {
        let value = self.request_json("GET", &format!("/api/v0/jobs/{}", id), None)?;
        api::job_from_json(&value)
    }

    /// `GET /jobs`.
    pub fn jobs(&self) -> Result<Vec<JobView>, String> {
        let value = self.request_json("GET", "/api/v0/jobs", None)?;
        let items = value.as_arr().ok_or("jobs reply is not an array")?;
        items.iter().map(api::job_from_json).collect()
    }

    /// `DELETE /jobs/:id` → the view after cancellation.
    pub fn cancel(&self, id: u64) -> Result<JobView, String> {
        let value = self.request_json("DELETE", &format!("/api/v0/jobs/{}", id), None)?;
        api::job_from_json(&value)
    }

    /// `GET /bench` → artifact names. An empty artifact store is a
    /// structured 404 on the wire; mirror it as a clear error message
    /// rather than an empty list, so callers can tell "nothing
    /// published yet" from "published nothing".
    pub fn bench_list(&self) -> Result<Vec<String>, String> {
        let value = self
            .request_json("GET", "/api/v0/bench", None)
            .map_err(|e| format!("bench artifacts: {}", e))?;
        let items = value.as_arr().ok_or("bench reply is not an array")?;
        Ok(items.iter().filter_map(|v| v.as_str().map(str::to_string)).collect())
    }

    /// `GET /jobs/:id/stream`: decode the chunked NDJSON stream,
    /// calling `on_event` for every line, and return the terminal
    /// view from the `done` event. The connection stays open for the
    /// job's whole lifetime.
    pub fn watch(
        &self,
        id: u64,
        mut on_event: impl FnMut(&StreamEvent),
    ) -> Result<JobView, String> {
        let mut stream = self.connect()?;
        let path = format!("/api/v0/jobs/{}/stream", id);
        write!(stream, "GET {} HTTP/1.1\r\nHost: ffis\r\nConnection: close\r\n\r\n", path)
            .map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let (status, chunked, content_length) = read_head(&mut reader)?;
        if status != 200 {
            let body = read_body(&mut reader, chunked, content_length)?;
            return Err(error_message(status, &body));
        }
        let body = read_body(&mut reader, chunked, content_length)?;
        let text = String::from_utf8_lossy(&body);
        let mut done = None;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let event = api::stream_event(line)?;
            if let StreamEvent::Done(view) = &event {
                done = Some(view.clone());
            }
            on_event(&event);
        }
        done.ok_or_else(|| "stream ended without a done event".into())
    }

    /// `watch`, but incremental: events are delivered as each chunk
    /// arrives rather than after the stream closes. This is what the
    /// CLI `repro daemon watch` uses to print runs live.
    pub fn watch_live(
        &self,
        id: u64,
        mut on_event: impl FnMut(&StreamEvent),
    ) -> Result<JobView, String> {
        let mut stream = self.connect()?;
        let path = format!("/api/v0/jobs/{}/stream", id);
        write!(stream, "GET {} HTTP/1.1\r\nHost: ffis\r\nConnection: close\r\n\r\n", path)
            .map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let (status, chunked, content_length) = read_head(&mut reader)?;
        if status != 200 {
            let body = read_body(&mut reader, chunked, content_length)?;
            return Err(error_message(status, &body));
        }
        let mut done = None;
        let mut pending = String::new();
        let mut visit = |line: &str| -> Result<(), String> {
            if line.trim().is_empty() {
                return Ok(());
            }
            let event = api::stream_event(line)?;
            if let StreamEvent::Done(view) = &event {
                done = Some(view.clone());
            }
            on_event(&event);
            Ok(())
        };
        if chunked {
            while let Some(chunk) = read_chunk(&mut reader)? {
                pending.push_str(&String::from_utf8_lossy(&chunk));
                while let Some(pos) = pending.find('\n') {
                    let line: String = pending.drain(..=pos).collect();
                    visit(line.trim_end())?;
                }
            }
        } else {
            let body = read_body(&mut reader, false, content_length)?;
            pending.push_str(&String::from_utf8_lossy(&body));
        }
        for line in pending.lines() {
            visit(line)?;
        }
        done.ok_or_else(|| "stream ended without a done event".into())
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let mut last = String::from("no address resolved");
        let addrs = std::net::ToSocketAddrs::to_socket_addrs(&self.addr)
            .map_err(|e| format!("resolve {}: {}", self.addr, e))?;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = e.to_string(),
            }
        }
        Err(format!("connect {}: {}", self.addr, last))
    }

    fn request_json(&self, method: &str, path: &str, body: Option<&str>) -> Result<Json, String> {
        let mut stream = self.connect()?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
        let body_bytes = body.unwrap_or("").as_bytes();
        write!(
            stream,
            "{} {} HTTP/1.1\r\nHost: ffis\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            method,
            path,
            body_bytes.len()
        )
        .map_err(|e| e.to_string())?;
        stream.write_all(body_bytes).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let (status, chunked, content_length) = read_head(&mut reader)?;
        let body = read_body(&mut reader, chunked, content_length)?;
        let text = String::from_utf8_lossy(&body);
        let value =
            json::parse(&text).map_err(|e| format!("HTTP {}: unparseable body ({})", status, e))?;
        if (200..300).contains(&status) {
            Ok(value)
        } else {
            Err(error_message(status, &body))
        }
    }
}

fn error_message(status: u16, body: &[u8]) -> String {
    let text = String::from_utf8_lossy(body);
    let detail = json::parse(&text)
        .ok()
        .and_then(|v| v.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| text.trim().to_string());
    // Mirror the server's body-framing rejects with actionable advice:
    // this client always sends Content-Length-framed bodies, so a 411
    // or 501 here means some other intermediary or caller re-framed
    // the request.
    match status {
        411 | 501 => format!(
            "HTTP {}: {} (the daemon only accepts Content-Length-framed request bodies; \
             chunked and other transfer codings are not supported)",
            status, detail
        ),
        _ => format!("HTTP {}: {}", status, detail),
    }
}

/// Parse the status line and headers; returns `(status, chunked,
/// content_length)`.
fn read_head<R: BufRead>(reader: &mut R) -> Result<(u16, bool, Option<usize>), String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {:?}", line.trim()))?;
    let mut chunked = false;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "transfer-encoding" if value.eq_ignore_ascii_case("chunked") => chunked = true,
                "content-length" => content_length = value.parse().ok(),
                _ => {}
            }
        }
    }
    Ok((status, chunked, content_length))
}

/// Read one chunk of a chunked body; `None` at the terminal chunk.
fn read_chunk<R: BufRead>(reader: &mut R) -> Result<Option<Vec<u8>>, String> {
    let mut size_line = String::new();
    reader.read_line(&mut size_line).map_err(|e| e.to_string())?;
    let size_line = size_line.trim();
    if size_line.is_empty() {
        // Tolerate a stray CRLF between chunks.
        return read_chunk(reader);
    }
    let size = usize::from_str_radix(size_line.split(';').next().unwrap_or(""), 16)
        .map_err(|_| format!("bad chunk size {:?}", size_line))?;
    if size == 0 {
        let mut trailer = String::new();
        let _ = reader.read_line(&mut trailer);
        return Ok(None);
    }
    let mut chunk = vec![0u8; size];
    reader.read_exact(&mut chunk).map_err(|e| e.to_string())?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf).map_err(|e| e.to_string())?;
    Ok(Some(chunk))
}

fn read_body<R: BufRead>(
    reader: &mut R,
    chunked: bool,
    content_length: Option<usize>,
) -> Result<Vec<u8>, String> {
    if chunked {
        let mut body = Vec::new();
        while let Some(chunk) = read_chunk(reader)? {
            body.extend_from_slice(&chunk);
        }
        Ok(body)
    } else if let Some(len) = content_length {
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| e.to_string())?;
        Ok(body)
    } else {
        let mut body = Vec::new();
        match reader.read_to_end(&mut body) {
            Ok(_) => Ok(body),
            // Connection: close without a length — a torn read still
            // yields what arrived.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(body),
            Err(e) => Err(e.to_string()),
        }
    }
}
