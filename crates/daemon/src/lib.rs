//! # ffis-daemon — campaign-as-a-service
//!
//! A long-running fault-injection campaign service over the FFIS
//! engine: submit a [`CampaignSpec`](ffis_core::engine::job::CampaignSpec)
//! over HTTP, watch per-run events stream back as NDJSON, and get the
//! same byte-identical [`OutcomeTally`](ffis_core::OutcomeTally) and
//! run digest an in-process `repro` invocation produces — including
//! across a daemon kill and restart mid-job.
//!
//! The workspace is fully offline, so the daemon is hand-rolled on
//! `std` only: an HTTP/1.1 server over [`std::net::TcpListener`] with
//! a bounded worker pool ([`http`]), a zero-dependency JSON module
//! ([`json`]), and a blocking thin client ([`client`]) that `repro
//! daemon …` and the integration suite share.
//!
//! ## API reference (prefix `/api/v0` optional)
//!
//! | method & path | body | reply |
//! |---|---|---|
//! | `POST /jobs` | spec JSON | `{"id": n}`; HTTP 400 with the CLI's own validation message on any spec error |
//! | `GET /jobs` | — | array of job views |
//! | `GET /jobs/:id` | — | job view: state, spec, live partial tally, fuel/deadline abort counters, structured failure |
//! | `GET /jobs/:id/stream` | — | chunked NDJSON: one `snapshot` line, one `run` line per plan index (resumed indices first), one `done` line |
//! | `DELETE /jobs/:id` | — | cancel; queued jobs interrupt immediately, running jobs after the in-flight run |
//! | `GET /healthz` | — | `{"status":"ok","running","queued","max_concurrent"}` |
//! | `GET /bench`, `GET /bench/:name` | — | list / serve `BENCH_*.json` artifacts |
//!
//! ## Queue and persistence model
//!
//! Admission control is a fixed pool of campaign worker threads (the
//! `--workers` cap): at most that many jobs run concurrently and the
//! overflow waits in FIFO order. Jobs of the same `(app, grid)` share
//! one [`CheckpointStore`](ffis_vfs::CheckpointStore), so concurrent
//! jobs over the same golden run build its checkpoint cache once.
//!
//! Each job is a directory `<root>/jobs/<id>/` holding `spec.json`
//! (the accepted spec), `run.journal` (the engine's CRC-framed run
//! journal, appended per run), `result.json` (the terminal view,
//! written only on `complete`/`failed`), and a `cancelled` marker when
//! the operator deleted the job. There is no separate queue file —
//! the queue *is* the directory listing.
//!
//! ## Resume-on-restart law
//!
//! A killed or interrupted daemon loses nothing: on start,
//! [`JobQueue::open`](jobs::JobQueue::open) re-lists the job
//! directories, loads terminal results as-is, and re-enqueues every
//! non-terminal, non-cancelled job with resume forced on. The engine's
//! resume law (law 6 in `ffis_core::engine`) then guarantees the
//! recovered campaign — journal replay for completed indices, fresh
//! execution for the pending set — produces a tally and run digest
//! byte-identical to an uninterrupted run. The integration suite
//! SIGKILLs a daemon mid-job and pins exactly that equality.
//!
//! Structured failure reasons survive the same way: a campaign that
//! dies on a journal/spec divergence surfaces as a `plan-mismatch`
//! [`JobFailure`](ffis_core::engine::job::JobFailure) in the job view
//! (with both fingerprints), and per-run fuel/deadline aborts are
//! live counters (`fuel_exhausted`, `deadline_exceeded`) — API
//! fields, not log lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod apps;
pub mod client;
pub mod distributed;
pub mod http;
pub mod jobs;
pub mod json;
pub mod server;

pub use api::{JobView, StreamEvent};
pub use apps::{execute_spec, ExecHooks, PacedApp};
pub use client::Client;
pub use distributed::{run_distributed, self_worker_cmd, FanoutReport, StoreTotals, WorkerStats};
pub use jobs::{JobQueue, QueueOptions};
pub use server::{Daemon, DaemonConfig};
