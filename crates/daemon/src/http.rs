//! A small HTTP/1.1 server over `std::net::TcpListener`.
//!
//! The workspace is offline — no tokio, no hyper — and the daemon's
//! needs are modest: short JSON request/response exchanges plus one
//! long-lived chunked NDJSON stream per watcher. So this is the
//! simplest server that does that correctly:
//!
//! * a **bounded worker pool** (blocking I/O, one connection per
//!   worker at a time; excess connections queue in a bounded channel,
//!   and beyond that in the kernel accept backlog),
//! * `Connection: close` semantics (one exchange per connection — the
//!   thin client opens cheap local connections per call),
//! * hard caps on header and body size, and read timeouts on request
//!   parsing, so a stalled or hostile peer cannot wedge a worker
//!   forever (streaming responses clear the timeout — a watcher may
//!   idle as long as the job runs),
//! * a poll-based accept loop (non-blocking accept + shutdown flag)
//!   so the daemon can stop serving without a self-connection trick.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::Json;

/// Request line + headers cap — far beyond any client of this API.
const MAX_HEAD: usize = 16 * 1024;
/// Body cap: a `CampaignSpec` is a few hundred bytes; a megabyte is
/// generous headroom, and anything larger is not a spec.
const MAX_BODY: usize = 1024 * 1024;
/// How long a connection may take to deliver its request.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …
    pub method: String,
    /// Request target, query string stripped.
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// The body writer a [`Reply::Stream`] hands the connection: it owns
/// the stream for the job's lifetime, writing one NDJSON line per
/// chunk.
pub type StreamBody = Box<dyn FnOnce(&mut LineStream<'_>) -> io::Result<()> + Send>;

/// What a handler tells the server to send.
pub enum Reply {
    /// A JSON document with this status code.
    Json(u16, Json),
    /// A raw body with an explicit content type (used to serve the
    /// `BENCH_*.json` report files verbatim).
    Raw(u16, &'static str, Vec<u8>),
    /// `Transfer-Encoding: chunked` NDJSON: the closure drives the
    /// stream, writing one line per chunk, for as long as it likes.
    Stream(StreamBody),
}

impl Reply {
    /// A `{"error": message}` document with this status code.
    pub fn error(status: u16, message: impl Into<String>) -> Reply {
        Reply::Json(status, Json::Obj(vec![("error".into(), Json::Str(message.into()))]))
    }
}

/// Writer side of a [`Reply::Stream`]: one NDJSON line per chunk,
/// flushed eagerly so watchers see events as they happen.
pub struct LineStream<'a> {
    stream: &'a mut TcpStream,
}

impl LineStream<'_> {
    /// Send one line (newline appended) as one chunk.
    pub fn line(&mut self, line: &str) -> io::Result<()> {
        write!(self.stream, "{:x}\r\n", line.len() + 1)?;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n\r\n")?;
        self.stream.flush()
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Why a request never reached the handler: either the socket/framing
/// failed ([`ParseError::Io`], answered 400) or the request was
/// well-formed but asked for something this server deliberately does
/// not speak ([`ParseError::Reject`], answered with its own status).
enum ParseError {
    Io,
    Reject(u16, String),
}

impl From<io::Error> for ParseError {
    fn from(_: io::Error) -> ParseError {
        ParseError::Io
    }
}

fn write_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    length: Option<usize>,
) -> io::Result<()> {
    write!(stream, "HTTP/1.1 {} {}\r\n", status, status_text(status))?;
    write!(stream, "Content-Type: {}\r\n", content_type)?;
    match length {
        Some(n) => write!(stream, "Content-Length: {}\r\n", n)?,
        None => write!(stream, "Transfer-Encoding: chunked\r\n")?,
    }
    write!(stream, "Connection: close\r\n\r\n")
}

fn parse_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).map_err(ParseError::from)?;
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; BufReader makes this cheap
    // and never over-reads into the body.
    loop {
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line)?;
        if line.is_empty() {
            return Err(ParseError::Io);
        }
        let blank = line == b"\r\n" || line == b"\n";
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD {
            return Err(ParseError::Io);
        }
        if blank {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    if method.is_empty() || !target.starts_with('/') {
        return Err(ParseError::Io);
    }
    let path = target.split('?').next().unwrap_or("/").to_string();
    let mut content_length: Option<usize> = None;
    let mut transfer_encoding: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse().map_err(|_| ParseError::Io)?);
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                transfer_encoding = Some(value.trim().to_string());
            }
        }
    }
    // Request bodies are Content-Length-framed only. A chunked (or any
    // other transfer-coded) body would otherwise parse as *empty* and
    // fail downstream with a misleading spec-validation error — say
    // what is actually unsupported instead.
    if let Some(encoding) = transfer_encoding {
        return Err(ParseError::Reject(
            501,
            format!(
                "Transfer-Encoding '{}' is not implemented; send a Content-Length-framed body",
                encoding
            ),
        ));
    }
    let content_length = match (content_length, method.as_str()) {
        (Some(n), _) => n,
        // Body-bearing methods must declare their length explicitly.
        (None, "POST" | "PUT" | "PATCH") => {
            return Err(ParseError::Reject(
                411,
                format!("{} requires a Content-Length header", method),
            ));
        }
        (None, _) => 0,
    };
    if content_length > MAX_BODY {
        return Err(ParseError::Io);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn handle_connection(mut stream: TcpStream, handler: &dyn Fn(&Request) -> Reply) {
    let request = match parse_request(&mut stream) {
        Ok(r) => r,
        Err(ParseError::Reject(status, message)) => {
            // Understood but unsupported: answer with the specific
            // status so the client can say what to change.
            let body = Json::Obj(vec![("error".into(), Json::Str(message))]).render();
            let _ = write_head(&mut stream, status, "application/json", Some(body.len()))
                .and_then(|()| stream.write_all(body.as_bytes()));
            return;
        }
        Err(ParseError::Io) => {
            // Unparseable request: best-effort 400, then hang up.
            let body = b"{\"error\":\"malformed request\"}";
            let _ = write_head(&mut stream, 400, "application/json", Some(body.len()))
                .and_then(|()| stream.write_all(body));
            return;
        }
    };
    match handler(&request) {
        Reply::Json(status, value) => {
            let body = value.render();
            let _ = write_head(&mut stream, status, "application/json", Some(body.len()))
                .and_then(|()| stream.write_all(body.as_bytes()));
        }
        Reply::Raw(status, content_type, body) => {
            let _ = write_head(&mut stream, status, content_type, Some(body.len()))
                .and_then(|()| stream.write_all(&body));
        }
        Reply::Stream(drive) => {
            // A watcher may sit on the stream for the whole campaign.
            let _ = stream.set_read_timeout(None);
            if write_head(&mut stream, 200, "application/x-ndjson", None).is_err() {
                return;
            }
            let mut lines = LineStream { stream: &mut stream };
            if drive(&mut lines).is_ok() {
                let _ = stream.write_all(b"0\r\n\r\n");
            }
        }
    }
}

/// The server: a bound listener plus the worker pool `serve` runs.
pub struct HttpServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl HttpServer {
    /// Bind (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(HttpServer { listener, addr })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept until `shutdown` is set, dispatching connections to
    /// `workers` pool threads. Returns once the flag is observed and
    /// every in-flight connection has finished.
    pub fn serve(
        self,
        workers: usize,
        handler: Arc<dyn Fn(&Request) -> Reply + Send + Sync>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<()> {
        let workers = workers.max(1);
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = sync_channel::<TcpStream>(workers * 2);
        let rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::new(Mutex::new(rx));
        let pool: Vec<_> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    // Hold the lock only to receive; disconnection
                    // (sender dropped at shutdown) ends the worker.
                    let conn = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                        Ok(conn) => conn,
                        Err(_) => return,
                    };
                    let _ = conn.set_nodelay(true);
                    handle_connection(conn, handler.as_ref());
                })
            })
            .collect();

        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((conn, _)) => {
                    let mut pending = conn;
                    // The queue is bounded; while it is full, poll for
                    // space (still honoring shutdown).
                    loop {
                        match tx.try_send(pending) {
                            Ok(()) => break,
                            Err(TrySendError::Full(back)) => {
                                if shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                                pending = back;
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    fn start(
        handler: impl Fn(&Request) -> Reply + Send + Sync + 'static,
    ) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = std::thread::spawn(move || {
            server.serve(2, Arc::new(handler), flag).unwrap();
        });
        (addr, shutdown, join)
    }

    #[test]
    fn request_response_and_clean_shutdown() {
        let (addr, shutdown, join) = start(|req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/ping") => Reply::Json(200, Json::Str("pong".into())),
            ("POST", "/echo") => Reply::Raw(200, "text/plain", req.body.clone()),
            _ => Reply::error(404, "no such route"),
        });
        let out = exchange(addr, "GET /ping?x=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.ends_with("\"pong\""), "{out}");
        let out = exchange(addr, "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(out.ends_with("hello"), "{out}");
        let out = exchange(addr, "GET /missing HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        let out = exchange(addr, "garbage\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap();
    }

    #[test]
    fn chunked_stream_delivers_lines() {
        let (addr, shutdown, join) = start(|_req| {
            Reply::Stream(Box::new(|s| {
                s.line("{\"n\":1}")?;
                s.line("{\"n\":2}")
            }))
        });
        let out = exchange(addr, "GET /stream HTTP/1.1\r\n\r\n");
        assert!(out.contains("Transfer-Encoding: chunked"), "{out}");
        assert!(out.contains("{\"n\":1}\n"), "{out}");
        assert!(out.contains("{\"n\":2}\n"), "{out}");
        assert!(out.ends_with("0\r\n\r\n"), "{out}");
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap();
    }

    #[test]
    fn transfer_coded_bodies_get_501_and_lengthless_posts_411() {
        let (addr, shutdown, join) = start(|req| Reply::Raw(200, "text/plain", req.body.clone()));
        // A chunked POST would otherwise be read as an *empty* body and
        // fail downstream with a misleading validation error.
        let out = exchange(
            addr,
            "POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 501 Not Implemented"), "{out}");
        assert!(out.contains("Transfer-Encoding 'chunked' is not implemented"), "{out}");
        // Exotic codings are equally unimplemented, not silently empty.
        let out = exchange(addr, "POST /jobs HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 501"), "{out}");
        // Body-bearing methods must declare a length.
        let out = exchange(addr, "POST /jobs HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 411 Length Required"), "{out}");
        assert!(out.contains("POST requires a Content-Length"), "{out}");
        // GET without a length stays fine — there is no body to frame.
        let out = exchange(addr, "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap();
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let (addr, shutdown, join) = start(|_req| Reply::Json(200, Json::Null));
        // No terminating blank line: the server trips the head cap
        // mid-parse (and the client never has unread bytes in flight,
        // so the 400 arrives without a reset race).
        let big = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n", "x".repeat(MAX_HEAD));
        let out = exchange(addr, &big);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap();
    }
}
