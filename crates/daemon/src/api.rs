//! Wire types of the REST/NDJSON API: JSON encoders and decoders for
//! [`CampaignSpec`], [`OutcomeTally`], [`JobFailure`], the per-job
//! [`JobView`], and the stream's per-run event lines.
//!
//! Decoding is strict where the input is a *request* (a submitted spec
//! rejects unknown fields and out-of-range values with the same
//! messages the CLI validation prints — they become HTTP 400), and
//! lenient where the input is the daemon's own state being read back
//! (job files, stream lines): those decoders take the fields they
//! know.

use ffis_core::engine::job::{CampaignSpec, JobFailure, JobState};
use ffis_core::{Outcome, OutcomeTally, RunAborted, RunResult};

use crate::json::{parse, u64_value, Json};

fn field(name: &str, value: Json) -> (String, Json) {
    (name.to_string(), value)
}

/// Encode a spec (round-trips through [`spec_from_json`]).
pub fn spec_to_json(spec: &CampaignSpec) -> Json {
    let opt_u64 = |v: Option<u64>| v.map(u64_value).unwrap_or(Json::Null);
    Json::Obj(vec![
        field("app", Json::Str(spec.app.clone())),
        field("model", Json::Str(spec.model.clone())),
        field("site", Json::Str(spec.site.clone())),
        field("grid", u64_value(spec.grid as u64)),
        field("files", u64_value(spec.files as u64)),
        field("memo", Json::Bool(spec.memo)),
        field("replay_opt", Json::Bool(spec.replay_opt)),
        field("runs", u64_value(spec.runs as u64)),
        field("seed", u64_value(spec.seed)),
        field("keep_runs", opt_u64(spec.keep_runs.map(|v| v as u64))),
        field("parallel", Json::Bool(spec.parallel)),
        field("fuel", opt_u64(spec.fuel)),
        field("wall_limit_ms", opt_u64(spec.wall_limit_ms)),
        field("journal", Json::Bool(spec.journal)),
        field("resume", Json::Bool(spec.resume)),
    ])
}

/// Decode and validate a submitted spec. Strict: unknown fields,
/// wrong types, and out-of-range values are all errors (the daemon
/// answers HTTP 400 with the message).
pub fn spec_from_json(value: &Json) -> Result<CampaignSpec, String> {
    let members = match value {
        Json::Obj(members) => members,
        _ => return Err("spec must be a JSON object".into()),
    };
    let mut spec = CampaignSpec::new("", "");
    for (key, v) in members {
        match key.as_str() {
            "app" => spec.app = req_str(v, key)?,
            "model" => spec.model = req_str(v, key)?,
            "site" => spec.site = req_str(v, key)?,
            "grid" => spec.grid = req_usize(v, key)?,
            "files" => spec.files = req_usize(v, key)?,
            "memo" => spec.memo = req_bool(v, key)?,
            "replay_opt" => spec.replay_opt = req_bool(v, key)?,
            "runs" => spec.runs = req_usize(v, key)?,
            "seed" => spec.seed = req_u64(v, key)?,
            "keep_runs" => spec.keep_runs = opt_usize(v, key)?,
            "parallel" => spec.parallel = req_bool(v, key)?,
            "fuel" => spec.fuel = opt_u64_field(v, key)?,
            "wall_limit_ms" => spec.wall_limit_ms = opt_u64_field(v, key)?,
            "journal" => spec.journal = req_bool(v, key)?,
            "resume" => spec.resume = req_bool(v, key)?,
            other => return Err(format!("unknown spec field '{}'", other)),
        }
    }
    if spec.app.is_empty() {
        return Err("spec is missing 'app'".into());
    }
    if spec.model.is_empty() {
        return Err("spec is missing 'model'".into());
    }
    spec.validate()?;
    Ok(spec)
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.as_str().map(str::to_string).ok_or_else(|| format!("'{}' must be a string", key))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.as_bool().ok_or_else(|| format!("'{}' must be a boolean", key))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| format!("'{}' must be a non-negative integer", key))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.as_usize().ok_or_else(|| format!("'{}' must be a non-negative integer", key))
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match v {
        Json::Null => Ok(None),
        other => req_usize(other, key).map(Some),
    }
}

fn opt_u64_field(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v {
        Json::Null => Ok(None),
        other => req_u64(other, key).map(Some),
    }
}

/// Encode a tally.
pub fn tally_to_json(tally: &OutcomeTally) -> Json {
    Json::Obj(vec![
        field("benign", u64_value(tally.benign)),
        field("detected", u64_value(tally.detected)),
        field("sdc", u64_value(tally.sdc)),
        field("crash", u64_value(tally.crash)),
        field("no_fire", u64_value(tally.no_fire)),
    ])
}

/// Decode a tally (lenient: missing counters read as zero).
pub fn tally_from_json(value: &Json) -> OutcomeTally {
    let get = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
    OutcomeTally {
        benign: get("benign"),
        detected: get("detected"),
        sdc: get("sdc"),
        crash: get("crash"),
        no_fire: get("no_fire"),
    }
}

/// Encode a structured failure reason.
pub fn failure_to_json(failure: &JobFailure) -> Json {
    let mut members = vec![
        field("kind", Json::Str(failure.kind().into())),
        field("message", Json::Str(failure.to_string())),
    ];
    if let JobFailure::PlanMismatch { found, expected } = failure {
        members.push(field("found", u64_value(*found)));
        members.push(field("expected", u64_value(*expected)));
    }
    Json::Obj(members)
}

/// Decode a failure reason written by [`failure_to_json`].
pub fn failure_from_json(value: &Json) -> Option<JobFailure> {
    let kind = value.get("kind")?.as_str()?;
    let message = value.get("message").and_then(Json::as_str).unwrap_or("").to_string();
    Some(match kind {
        "bad-spec" => JobFailure::BadSpec(message),
        "golden-run-failed" => JobFailure::GoldenRunFailed(message),
        "no-eligible-instances" => JobFailure::NoEligibleInstances,
        "plan-mismatch" => JobFailure::PlanMismatch {
            found: value.get("found").and_then(Json::as_u64).unwrap_or(0),
            expected: value.get("expected").and_then(Json::as_u64).unwrap_or(0),
        },
        _ => JobFailure::Journal(message),
    })
}

/// Everything `GET /jobs/:id` reports about one job. While the job
/// runs, `tally`/`executed`/`resumed` are live partial counts off the
/// engine's event tap; once terminal they are final.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job id (monotonic per daemon root).
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// The spec as accepted.
    pub spec: CampaignSpec,
    /// Runs executed so far by the daemon (excludes resumed).
    pub executed: usize,
    /// Runs recovered from the job's journal at cost 0.
    pub resumed: usize,
    /// Outcome tally over all runs seen so far.
    pub tally: OutcomeTally,
    /// Runs aborted by the fuel watchdog
    /// ([`RunAborted::FuelExhausted`]) — surfaced as a counter, not a
    /// log line.
    pub fuel_exhausted: u64,
    /// Runs aborted by the wall-clock backstop.
    pub deadline_exceeded: u64,
    /// Memo-store hits attributable to this job (sub-step artifacts
    /// served from cache), once the campaign has reported.
    pub memo_hits: u64,
    /// Memo-store misses (live sub-step computations).
    pub memo_misses: u64,
    /// Sub-step artifacts a fault injection dirtied — the
    /// dirty-cascade counter.
    pub memo_invalidations: u64,
    /// Memo-layer status token: `memoized` when engaged, else the
    /// fallback reason (`no-substeps`, `memo-disabled`, ...). `None`
    /// until the campaign reports.
    pub memo_reason: Option<String>,
    /// Plan fingerprint, once the campaign has planned.
    pub plan_fingerprint: Option<u64>,
    /// FNV digest over the kept run records, once complete.
    pub run_digest: Option<u64>,
    /// Structured failure reason, when `state` is `Failed`.
    pub failure: Option<JobFailure>,
}

impl JobView {
    /// A fresh view for a just-accepted spec.
    pub fn queued(id: u64, spec: CampaignSpec) -> JobView {
        JobView {
            id,
            state: JobState::Queued,
            spec,
            executed: 0,
            resumed: 0,
            tally: OutcomeTally::default(),
            fuel_exhausted: 0,
            deadline_exceeded: 0,
            memo_hits: 0,
            memo_misses: 0,
            memo_invalidations: 0,
            memo_reason: None,
            plan_fingerprint: None,
            run_digest: None,
            failure: None,
        }
    }
}

/// Encode a job view (round-trips through [`job_from_json`]).
pub fn job_to_json(job: &JobView) -> Json {
    let opt_u64 = |v: Option<u64>| v.map(u64_value).unwrap_or(Json::Null);
    Json::Obj(vec![
        field("id", u64_value(job.id)),
        field("state", Json::Str(job.state.token().into())),
        field("spec", spec_to_json(&job.spec)),
        field("executed", u64_value(job.executed as u64)),
        field("resumed", u64_value(job.resumed as u64)),
        field("tally", tally_to_json(&job.tally)),
        field("fuel_exhausted", u64_value(job.fuel_exhausted)),
        field("deadline_exceeded", u64_value(job.deadline_exceeded)),
        field("memo_hits", u64_value(job.memo_hits)),
        field("memo_misses", u64_value(job.memo_misses)),
        field("memo_invalidations", u64_value(job.memo_invalidations)),
        field("memo_reason", job.memo_reason.clone().map(Json::Str).unwrap_or(Json::Null)),
        field("plan_fingerprint", opt_u64(job.plan_fingerprint)),
        field("run_digest", opt_u64(job.run_digest)),
        field("failure", job.failure.as_ref().map(failure_to_json).unwrap_or(Json::Null)),
    ])
}

/// Decode a job view written by [`job_to_json`].
pub fn job_from_json(value: &Json) -> Result<JobView, String> {
    let state = value
        .get("state")
        .and_then(Json::as_str)
        .and_then(JobState::from_token)
        .ok_or("job is missing a valid 'state'")?;
    let spec = spec_from_json(value.get("spec").ok_or("job is missing 'spec'")?)?;
    let get_u64 = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
    let get_opt = |key: &str| value.get(key).and_then(Json::as_u64);
    Ok(JobView {
        id: get_u64("id"),
        state,
        spec,
        executed: get_u64("executed") as usize,
        resumed: get_u64("resumed") as usize,
        tally: value.get("tally").map(tally_from_json).unwrap_or_default(),
        fuel_exhausted: get_u64("fuel_exhausted"),
        deadline_exceeded: get_u64("deadline_exceeded"),
        memo_hits: get_u64("memo_hits"),
        memo_misses: get_u64("memo_misses"),
        memo_invalidations: get_u64("memo_invalidations"),
        memo_reason: value.get("memo_reason").and_then(Json::as_str).map(str::to_string),
        plan_fingerprint: get_opt("plan_fingerprint"),
        run_digest: get_opt("run_digest"),
        failure: value.get("failure").and_then(failure_from_json),
    })
}

/// One `/jobs/:id/stream` NDJSON line, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// Stream opener: the job as of subscription.
    Snapshot(JobView),
    /// One run landed.
    Run {
        /// Plan index of the run.
        run: usize,
        /// Classified outcome.
        outcome: Outcome,
        /// Did the armed injector fire?
        fired: bool,
        /// Replayed from the journal rather than executed.
        resumed: bool,
        /// Liveness-abort reason token, when the run was aborted.
        aborted: Option<String>,
    },
    /// Stream closer: the job's terminal view.
    Done(JobView),
}

/// Encode the stream-opener line.
pub fn snapshot_line(job: &JobView) -> String {
    event_line("snapshot", job)
}

/// Encode the stream-closer line.
pub fn done_line(job: &JobView) -> String {
    event_line("done", job)
}

fn event_line(event: &str, job: &JobView) -> String {
    let mut members = vec![field("event", Json::Str(event.into()))];
    if let Json::Obj(rest) = job_to_json(job) {
        members.extend(rest);
    }
    Json::Obj(members).render()
}

/// Encode one per-run event line from the engine's observer tap.
pub fn run_line(result: &RunResult, resumed: bool) -> String {
    Json::Obj(vec![
        field("event", Json::Str("run".into())),
        field("run", u64_value(result.run as u64)),
        field("outcome", Json::Str(result.outcome.name().into())),
        field("fired", Json::Bool(result.injection.is_some())),
        field("resumed", Json::Bool(resumed)),
        field(
            "aborted",
            result.aborted.map(|a| Json::Str(a.reason().into())).unwrap_or(Json::Null),
        ),
    ])
    .render()
}

/// Decode one stream line.
pub fn stream_event(line: &str) -> Result<StreamEvent, String> {
    let value = parse(line)?;
    match value.get("event").and_then(Json::as_str) {
        Some("snapshot") => Ok(StreamEvent::Snapshot(job_from_json(&value)?)),
        Some("done") => Ok(StreamEvent::Done(job_from_json(&value)?)),
        Some("run") => {
            let outcome = match value.get("outcome").and_then(Json::as_str) {
                Some("Benign") => Outcome::Benign,
                Some("Detected") => Outcome::Detected,
                Some("SDC") => Outcome::Sdc,
                Some("Crash") => Outcome::Crash,
                other => return Err(format!("unknown outcome {:?}", other)),
            };
            Ok(StreamEvent::Run {
                run: value.get("run").and_then(Json::as_usize).ok_or("run event without index")?,
                outcome,
                fired: value.get("fired").and_then(Json::as_bool).unwrap_or(false),
                resumed: value.get("resumed").and_then(Json::as_bool).unwrap_or(false),
                aborted: value.get("aborted").and_then(Json::as_str).map(str::to_string),
            })
        }
        other => Err(format!("unknown stream event {:?}", other)),
    }
}

/// Counter used by [`StreamEvent`] consumers to rebuild a tally from
/// run events — the integration tests assert it converges on the
/// job's final tally (the sink's `no_fire` law included).
pub fn fold_run_event(tally: &mut OutcomeTally, outcome: Outcome, fired: bool) {
    if !fired && outcome == Outcome::Benign {
        tally.no_fire += 1;
    }
    tally.record(outcome);
}

/// Marker for [`RunAborted::FuelExhausted`] counting.
pub fn aborted_counters(view: &mut JobView, aborted: Option<&RunAborted>) {
    match aborted {
        Some(RunAborted::FuelExhausted { .. }) => view.fuel_exhausted += 1,
        Some(RunAborted::DeadlineExceeded { .. }) => view.deadline_exceeded += 1,
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("nyx", "SW");
        spec.site = "read".into();
        spec.grid = 64;
        spec.files = 4;
        spec.memo = true;
        spec.runs = 96;
        spec.seed = 0xFF15_2021 + 951;
        spec.keep_runs = Some(64);
        spec.fuel = Some(2_000_000);
        spec.wall_limit_ms = None;
        spec
    }

    #[test]
    fn spec_round_trips() {
        let spec = sample_spec();
        let back = spec_from_json(&parse(&spec_to_json(&spec).render()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_rejects_unknown_fields_and_bad_values() {
        let spec = sample_spec();
        let mut with_typo = match spec_to_json(&spec) {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        with_typo.push(("sead".into(), u64_value(7)));
        let err = spec_from_json(&Json::Obj(with_typo)).unwrap_err();
        assert!(err.contains("unknown spec field 'sead'"), "{err}");

        let parse_err = |body: &str| spec_from_json(&parse(body).unwrap()).unwrap_err();
        assert!(
            parse_err(r#"{"app":"nyx","model":"BF","runs":0}"#).contains("runs must be at least 1")
        );
        assert!(parse_err(r#"{"app":"nyx","model":"BF","grid":8}"#).contains("below the minimum"));
        assert!(parse_err(r#"{"app":"nyx","model":"nope"}"#).contains("unknown fault model"));
        assert!(parse_err(r#"{"app":"nyx"}"#).contains("missing 'model'"));
        assert!(parse_err(r#"{"app":"nyx","model":"BF","runs":"many"}"#)
            .contains("'runs' must be a non-negative integer"));
        assert!(spec_from_json(&Json::Arr(vec![])).unwrap_err().contains("JSON object"));
    }

    #[test]
    fn tally_and_failure_round_trip() {
        let tally = OutcomeTally { benign: 10, detected: 3, sdc: 2, crash: 1, no_fire: 4 };
        assert_eq!(tally_from_json(&parse(&tally_to_json(&tally).render()).unwrap()), tally);

        for failure in [
            JobFailure::BadSpec("x".into()),
            JobFailure::GoldenRunFailed("g".into()),
            JobFailure::NoEligibleInstances,
            JobFailure::PlanMismatch { found: u64::MAX, expected: 0xFF15_2021 },
            JobFailure::Journal("io".into()),
        ] {
            let value = parse(&failure_to_json(&failure).render()).unwrap();
            let back = failure_from_json(&value).unwrap();
            assert_eq!(back.kind(), failure.kind());
            if let JobFailure::PlanMismatch { found, expected } = back {
                assert_eq!(found, u64::MAX);
                assert_eq!(expected, 0xFF15_2021);
            }
        }
    }

    #[test]
    fn job_view_round_trips() {
        let mut job = JobView::queued(17, sample_spec());
        job.state = JobState::Failed;
        job.executed = 40;
        job.resumed = 8;
        job.tally = OutcomeTally { benign: 30, detected: 9, sdc: 5, crash: 4, no_fire: 2 };
        job.fuel_exhausted = 3;
        job.deadline_exceeded = 1;
        job.memo_hits = 12;
        job.memo_misses = 4;
        job.memo_invalidations = 6;
        job.memo_reason = Some("memoized".into());
        job.plan_fingerprint = Some(u64::MAX - 5);
        job.run_digest = Some(0xDEAD_BEEF_DEAD_BEEF);
        job.failure = Some(JobFailure::PlanMismatch { found: 1, expected: 2 });
        let back = job_from_json(&parse(&job_to_json(&job).render()).unwrap()).unwrap();
        assert_eq!(back.id, 17);
        assert_eq!(back.state, JobState::Failed);
        assert_eq!(back.spec, job.spec);
        assert_eq!(back.tally, job.tally);
        assert_eq!(back.plan_fingerprint, job.plan_fingerprint);
        assert_eq!(back.run_digest, job.run_digest);
        assert_eq!(back.fuel_exhausted, 3);
        assert_eq!(back.deadline_exceeded, 1);
        assert_eq!(back.memo_hits, 12);
        assert_eq!(back.memo_misses, 4);
        assert_eq!(back.memo_invalidations, 6);
        assert_eq!(back.memo_reason.as_deref(), Some("memoized"));
        assert!(matches!(back.failure, Some(JobFailure::PlanMismatch { found: 1, expected: 2 })));
    }

    #[test]
    fn stream_lines_round_trip() {
        let job = JobView::queued(3, sample_spec());
        match stream_event(&snapshot_line(&job)).unwrap() {
            StreamEvent::Snapshot(back) => assert_eq!(back.spec, job.spec),
            other => panic!("wrong event: {other:?}"),
        }
        match stream_event(&done_line(&job)).unwrap() {
            StreamEvent::Done(back) => assert_eq!(back.id, 3),
            other => panic!("wrong event: {other:?}"),
        }
        let line = r#"{"event":"run","run":7,"outcome":"SDC","fired":true,"resumed":false,"aborted":"fuel-exhausted"}"#;
        match stream_event(line).unwrap() {
            StreamEvent::Run { run, outcome, fired, resumed, aborted } => {
                assert_eq!(run, 7);
                assert_eq!(outcome, Outcome::Sdc);
                assert!(fired);
                assert!(!resumed);
                assert_eq!(aborted.as_deref(), Some("fuel-exhausted"));
            }
            other => panic!("wrong event: {other:?}"),
        }
        assert!(stream_event("{\"event\":\"bogus\"}").is_err());
        assert!(stream_event("not json").is_err());
    }
}
