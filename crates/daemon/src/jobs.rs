//! The persistent job queue: accepted specs on disk, a FIFO admission
//! queue, a bounded worker pool executing campaigns, live per-run
//! event fan-out to stream subscribers, and crash-safe recovery.
//!
//! ## Disk layout (`<root>/jobs/<id>/`)
//!
//! | file | written | meaning |
//! |---|---|---|
//! | `spec.json` | at submit | the accepted [`CampaignSpec`] |
//! | `run.journal` | per run | the engine's CRC-framed [`RunJournal`](ffis_core::engine::journal::RunJournal) |
//! | `result.json` | at terminal state | final [`JobView`] (`complete`/`failed`) |
//! | `cancelled` | on `DELETE` | operator cancelled; do not auto-resume |
//!
//! The queue is persistent *by construction*: a job is its spec file
//! plus its journal. [`JobQueue::open`] re-lists the directory, loads
//! terminal results as-is, and re-enqueues every non-terminal job with
//! resume forced on — the engine's resume law (law 6) then makes
//! recovery byte-identical, whether the daemon was killed mid-run or
//! cleanly interrupted. A job cancelled by the operator is the one
//! non-terminal state that does **not** auto-resume (the `cancelled`
//! marker); its journal stays on disk, so resubmitting the same spec
//! directory would still resume it.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ffis_core::engine::job::{CampaignSpec, JobFailure, JobState};
use ffis_core::{CancelToken, CompletionStatus, RunObserver};
use ffis_vfs::{CheckpointStore, MemoStore};

use crate::api::{self, JobView};
use crate::apps::{check_app, execute_spec, ExecHooks};
use crate::distributed::{self, run_distributed};
use crate::json;

/// Queue tuning beyond the admission cap — all optional; the
/// defaults reproduce the historical single-process, keep-everything
/// behaviour.
#[derive(Debug, Clone)]
pub struct QueueOptions {
    /// Keep at most this many **terminal** (`complete`/`failed`) job
    /// directories; older terminal jobs are garbage-collected at
    /// startup and whenever a job reaches a terminal state. Jobs that
    /// are queued, running, or interrupted — anything that may still
    /// resume — are never collected. `None` keeps everything.
    pub retain: Option<usize>,
    /// Worker *processes* per job (engine law 7 fan-out). `1` runs
    /// jobs in-process; `N > 1` shards each journaled job's run plan
    /// across `N` spawned workers sharing the disk-backed checkpoint
    /// store, then merges and resumes. Requires [`QueueOptions::
    /// worker_cmd`] (or a host binary with a `daemon worker`
    /// subcommand, the [`distributed::self_worker_cmd`] default).
    pub fanout: usize,
    /// Argv prefix for one worker process; defaults to re-invoking
    /// the current executable's `daemon worker` subcommand.
    pub worker_cmd: Option<Vec<String>>,
}

impl Default for QueueOptions {
    fn default() -> Self {
        QueueOptions { retain: None, fanout: 1, worker_cmd: None }
    }
}

struct Job {
    view: JobView,
    cancel: Arc<CancelToken>,
    /// Operator cancellation (`DELETE`) — distinguishes "do not
    /// auto-resume" from a daemon interruption.
    cancelled: bool,
    /// Live NDJSON lines fan out to these; cleared (disconnecting the
    /// receivers) after the `done` line.
    subscribers: Vec<Sender<String>>,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    fifo: VecDeque<u64>,
    next_id: u64,
}

/// The queue (shared between the HTTP server and the worker pool).
pub struct JobQueue {
    root: PathBuf,
    inner: Mutex<Inner>,
    ready: Condvar,
    shutdown: AtomicBool,
    running_now: AtomicUsize,
    max_concurrent: AtomicUsize,
    /// One shared checkpoint store per `(app, grid)`: concurrent and
    /// successive jobs over the same golden run share one built
    /// checkpoint cache. Stores are disk-backed under
    /// `<root>/store/<app>-g<grid>`, so the cache also survives
    /// daemon restarts and is shared with fan-out worker processes.
    stores: Mutex<HashMap<(String, usize), Arc<CheckpointStore>>>,
    /// One shared analyze memo store per daemon root, disk-backed
    /// under `<root>/store/memo`. Keys are content-addressed over app,
    /// sub-step, and input fingerprints, so every job (and fan-out
    /// worker process) of this root shares one store, and warm jobs
    /// replay their clean sub-steps across daemon restarts.
    memo: Mutex<Option<Arc<MemoStore>>>,
    options: QueueOptions,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobQueue {
    /// Open (or create) a queue root, recover persisted jobs, and
    /// start `workers` executor threads (the admission cap: at most
    /// that many jobs run concurrently; the rest wait in FIFO order).
    pub fn open(root: &Path, workers: usize) -> io::Result<Arc<JobQueue>> {
        Self::open_with(root, workers, QueueOptions::default())
    }

    /// [`JobQueue::open`] with explicit [`QueueOptions`] (retention
    /// cap, fan-out width, worker command).
    pub fn open_with(
        root: &Path,
        workers: usize,
        options: QueueOptions,
    ) -> io::Result<Arc<JobQueue>> {
        let jobs_dir = root.join("jobs");
        std::fs::create_dir_all(&jobs_dir)?;
        let queue = Arc::new(JobQueue {
            root: root.to_path_buf(),
            inner: Mutex::new(Inner { jobs: BTreeMap::new(), fifo: VecDeque::new(), next_id: 1 }),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running_now: AtomicUsize::new(0),
            max_concurrent: AtomicUsize::new(0),
            stores: Mutex::new(HashMap::new()),
            memo: Mutex::new(None),
            options,
            workers: Mutex::new(Vec::new()),
        });
        queue.recover(&jobs_dir)?;
        // Retention runs before any new work: a restart over a full
        // disk should free space first, and recovery has just parked
        // every resumable job where the GC cannot touch it.
        queue.gc_terminal();
        let mut pool = queue.workers.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..workers.max(1) {
            let q = Arc::clone(&queue);
            pool.push(std::thread::spawn(move || q.worker_loop()));
        }
        drop(pool);
        Ok(queue)
    }

    /// Re-list the jobs directory: terminal results load as-is,
    /// cancelled jobs surface as `interrupted`, and everything else —
    /// queued or killed mid-run — re-enqueues with resume forced on.
    fn recover(&self, jobs_dir: &Path) -> io::Result<()> {
        let mut ids: Vec<u64> = std::fs::read_dir(jobs_dir)?
            .filter_map(|e| e.ok()?.file_name().to_str()?.parse().ok())
            .collect();
        ids.sort_unstable();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for id in ids {
            let dir = jobs_dir.join(id.to_string());
            let spec = match std::fs::read_to_string(dir.join("spec.json"))
                .map_err(|e| e.to_string())
                .and_then(|text| json::parse(&text))
                .and_then(|v| api::spec_from_json(&v))
            {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("[ffis-daemon] skipping job {}: unreadable spec: {}", id, e);
                    continue;
                }
            };
            inner.next_id = inner.next_id.max(id + 1);
            let view = match std::fs::read_to_string(dir.join("result.json")) {
                Ok(text) => match json::parse(&text).and_then(|v| api::job_from_json(&v)) {
                    Ok(view) => view,
                    Err(e) => {
                        eprintln!(
                            "[ffis-daemon] job {}: corrupt result.json ({}); re-running",
                            id, e
                        );
                        JobView::queued(id, spec)
                    }
                },
                Err(_) => JobView::queued(id, spec),
            };
            let mut job = Job {
                view,
                cancel: CancelToken::new(),
                cancelled: dir.join("cancelled").exists(),
                subscribers: Vec::new(),
            };
            if job.view.state.is_active() {
                if job.cancelled {
                    job.view.state = JobState::Interrupted;
                } else {
                    // Resume law: re-execution replays the journal and
                    // finishes the pending set, byte-identically.
                    job.view.state = JobState::Queued;
                    job.view.spec.resume = true;
                    inner.fifo.push_back(id);
                }
            }
            inner.jobs.insert(id, job);
        }
        Ok(())
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.root.join("jobs").join(id.to_string())
    }

    /// Accept a validated spec: persist it, assign an id, enqueue.
    pub fn submit(&self, spec: CampaignSpec) -> Result<u64, String> {
        spec.validate()?;
        check_app(&spec)?;
        if self.shutdown.load(Ordering::SeqCst) {
            return Err("daemon is shutting down".into());
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = inner.next_id;
        inner.next_id += 1;
        let dir = self.job_dir(id);
        std::fs::create_dir_all(&dir).map_err(|e| format!("persist job {}: {}", id, e))?;
        std::fs::write(dir.join("spec.json"), api::spec_to_json(&spec).render())
            .map_err(|e| format!("persist job {}: {}", id, e))?;
        inner.jobs.insert(
            id,
            Job {
                view: JobView::queued(id, spec),
                cancel: CancelToken::new(),
                cancelled: false,
                subscribers: Vec::new(),
            },
        );
        inner.fifo.push_back(id);
        drop(inner);
        self.ready.notify_one();
        Ok(id)
    }

    /// Snapshot one job.
    pub fn job(&self, id: u64) -> Option<JobView> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.jobs.get(&id).map(|j| j.view.clone())
    }

    /// Snapshot every job, id-ordered.
    pub fn jobs(&self) -> Vec<JobView> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.jobs.values().map(|j| j.view.clone()).collect()
    }

    /// `(running, queued, max ever concurrent)` — the health numbers.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (
            self.running_now.load(Ordering::SeqCst),
            inner.fifo.len(),
            self.max_concurrent.load(Ordering::SeqCst),
        )
    }

    /// Cancel a job: a queued job is interrupted immediately; a
    /// running one gets its token cancelled and parks as
    /// `interrupted` when the in-flight run finishes. Terminal jobs
    /// are unchanged. Returns the (possibly updated) view.
    pub fn cancel(&self, id: u64) -> Option<JobView> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let dir = self.job_dir(id);
        let job = inner.jobs.get_mut(&id)?;
        if job.view.state.is_active() {
            job.cancelled = true;
            job.cancel.cancel();
            let _ = std::fs::write(dir.join("cancelled"), b"");
            if job.view.state == JobState::Queued {
                job.view.state = JobState::Interrupted;
                let done = api::done_line(&job.view);
                for tx in job.subscribers.drain(..) {
                    let _ = tx.send(done.clone());
                }
            }
        }
        Some(job.view.clone())
    }

    /// Subscribe to a job's event stream: the snapshot to send first,
    /// plus a receiver of NDJSON lines. For a terminal job the
    /// receiver is already disconnected — the stream is just
    /// `snapshot` + `done`.
    pub fn subscribe(&self, id: u64) -> Option<(JobView, Receiver<String>)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let job = inner.jobs.get_mut(&id)?;
        let (tx, rx) = channel();
        if job.view.state.is_active() {
            job.subscribers.push(tx);
        } else {
            let _ = tx.send(api::done_line(&job.view));
        }
        Some((job.view.clone(), rx))
    }

    /// Graceful shutdown: stop admitting, cancel every active job,
    /// and join the workers. In-flight runs finish (cancellation is
    /// between-runs), journals are already flushed per run, and
    /// interrupted jobs resume on the next `open` of the same root.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            for job in inner.jobs.values_mut() {
                if job.view.state.is_active() {
                    job.cancel.cancel();
                }
            }
            // Queued jobs will not run in this process; park them as
            // interrupted (their files make them resume next start).
            let queued: Vec<u64> = inner.fifo.drain(..).collect();
            for id in queued {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    if job.view.state == JobState::Queued {
                        job.view.state = JobState::Interrupted;
                        let done = api::done_line(&job.view);
                        for tx in job.subscribers.drain(..) {
                            let _ = tx.send(done.clone());
                        }
                    }
                }
            }
        }
        self.ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in workers {
            let _ = handle.join();
        }
    }

    /// Disk directory of the shared checkpoint store for this spec's
    /// `(app, grid)` — the same directory fan-out worker processes
    /// mount.
    fn store_dir(&self, spec: &CampaignSpec) -> PathBuf {
        self.root.join("store").join(format!("{}-g{}", spec.app.to_ascii_lowercase(), spec.grid))
    }

    fn checkpoint_store(&self, spec: &CampaignSpec) -> Arc<CheckpointStore> {
        let key = (spec.app.to_ascii_lowercase(), spec.grid);
        let dir = self.store_dir(spec);
        let mut stores = self.stores.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(stores.entry(key).or_insert_with(|| distributed::open_store(&dir)))
    }

    /// Disk directory of the root-wide shared memo store — the same
    /// directory fan-out worker processes mount via `--memo`.
    fn memo_dir(&self) -> PathBuf {
        self.root.join("store").join("memo")
    }

    /// The root-wide shared memo store (disk-backed when the directory
    /// is writable, memory-only otherwise — the memo layer is an
    /// optimization, never a reason a job fails).
    fn memo_store(&self) -> Arc<MemoStore> {
        let mut memo = self.memo.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(memo.get_or_insert_with(|| {
            let dir = self.memo_dir();
            Arc::new(MemoStore::at_dir(&dir).unwrap_or_else(|e| {
                eprintln!(
                    "[ffis-daemon] memo store at {} unavailable ({}); using memory tier",
                    dir.display(),
                    e
                );
                MemoStore::in_memory()
            }))
        }))
    }

    /// Enforce [`QueueOptions::retain`]: drop the oldest terminal
    /// (`complete`/`failed`) job directories beyond the cap. Anything
    /// that may still resume — queued, running, interrupted, or
    /// cancelled jobs — is never touched: a job is only collectable
    /// once its `result.json` is the complete record of its outcome.
    fn gc_terminal(&self) {
        let Some(retain) = self.options.retain else { return };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut terminal: Vec<u64> = inner
            .jobs
            .iter()
            .filter(|(_, job)| matches!(job.view.state, JobState::Complete | JobState::Failed))
            .map(|(&id, _)| id)
            .collect();
        terminal.sort_unstable();
        let excess = terminal.len().saturating_sub(retain);
        for id in terminal.into_iter().take(excess) {
            if let Err(e) = std::fs::remove_dir_all(self.job_dir(id)) {
                eprintln!("[ffis-daemon] retention: could not remove job {}: {}", id, e);
                continue;
            }
            inner.jobs.remove(&id);
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let claimed = {
                let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(id) = inner.fifo.pop_front() {
                        match inner.jobs.get_mut(&id) {
                            Some(job) if job.view.state == JobState::Queued => {
                                job.view.state = JobState::Running;
                                break Some((id, job.view.spec.clone(), Arc::clone(&job.cancel)));
                            }
                            // Cancelled while queued (or gone): skip.
                            _ => continue,
                        }
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some((id, spec, cancel)) = claimed else { return };
            let now = self.running_now.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_concurrent.fetch_max(now, Ordering::SeqCst);
            self.run_job(id, spec, cancel);
            self.running_now.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn run_job(self: &Arc<Self>, id: u64, spec: CampaignSpec, cancel: Arc<CancelToken>) {
        let dir = self.job_dir(id);
        let queue = Arc::clone(self);
        let observer = RunObserver::new(move |result, resumed| {
            let mut inner = queue.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(job) = inner.jobs.get_mut(&id) {
                if resumed {
                    job.view.resumed += 1;
                } else {
                    job.view.executed += 1;
                }
                api::fold_run_event(
                    &mut job.view.tally,
                    result.outcome,
                    result.injection.is_some(),
                );
                api::aborted_counters(&mut job.view, result.aborted.as_ref());
                let line = api::run_line(result, resumed);
                job.subscribers.retain(|tx| tx.send(line.clone()).is_ok());
            }
        });
        // Fan-out (engine law 7): shard journaled multi-run jobs
        // across worker processes sharing the disk store, merge the
        // segments, and resume — byte-identical to the in-process
        // path, which stays the fallback if the fan-out cannot even
        // start (missing worker binary, unwritable work dir).
        let fanout = self.options.fanout.min(spec.runs);
        let mut outcome = None;
        if fanout > 1 && spec.journal {
            let worker_cmd =
                self.options.worker_cmd.clone().or_else(|| distributed::self_worker_cmd().ok());
            if let Some(cmd) = worker_cmd {
                // The coordinator overrides `journal`/`index_range`;
                // the observer rides the final merged-resume pass, so
                // stream subscribers still see one event per index.
                let hooks = ExecHooks {
                    journal: None,
                    cancel: Some(Arc::clone(&cancel)),
                    checkpoints: Some(self.checkpoint_store(&spec)),
                    memo: Some(self.memo_store()),
                    observer: Some(observer.clone()),
                    index_range: None,
                };
                match run_distributed(
                    &spec,
                    fanout,
                    &dir.join("fanout"),
                    Some(&self.store_dir(&spec)),
                    Some(&self.memo_dir()),
                    &cmd,
                    hooks,
                ) {
                    Ok(report) => outcome = Some(Ok(report.result)),
                    // A campaign failure from the final pass is the
                    // job's real outcome; only orchestration failures
                    // fall back to the in-process path.
                    Err(distributed::FanoutError::Campaign(e)) => outcome = Some(Err(e)),
                    Err(distributed::FanoutError::Setup(e)) => eprintln!(
                        "[ffis-daemon] job {}: fan-out unavailable ({}); running in-process",
                        id, e
                    ),
                }
            }
        }
        let outcome = outcome.unwrap_or_else(|| {
            let hooks = ExecHooks {
                journal: spec.journal.then(|| dir.join("run.journal")),
                cancel: Some(cancel),
                checkpoints: Some(self.checkpoint_store(&spec)),
                memo: Some(self.memo_store()),
                observer: Some(observer),
                index_range: None,
            };
            execute_spec(&spec, &hooks)
        });

        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = inner.jobs.get_mut(&id) else { return };
        match outcome {
            Ok(result) => {
                job.view.executed = result.executed;
                job.view.resumed = result.resumed;
                job.view.tally = result.tally;
                job.view.memo_hits = result.memo.stats.hits;
                job.view.memo_misses = result.memo.stats.misses;
                job.view.memo_invalidations = result.memo.stats.invalidations;
                job.view.memo_reason = Some(result.memo.reason().to_string());
                job.view.plan_fingerprint = Some(result.plan_fingerprint);
                if result.status == CompletionStatus::Complete {
                    job.view.state = JobState::Complete;
                    job.view.run_digest = Some(result.run_digest());
                } else {
                    job.view.state = JobState::Interrupted;
                }
            }
            Err(e) => {
                job.view.state = JobState::Failed;
                job.view.failure = Some(JobFailure::from_campaign_error(&e));
            }
        }
        let terminal = matches!(job.view.state, JobState::Complete | JobState::Failed);
        if terminal {
            let _ = std::fs::write(dir.join("result.json"), api::job_to_json(&job.view).render());
        }
        let done = api::done_line(&job.view);
        for tx in job.subscribers.drain(..) {
            let _ = tx.send(done.clone());
        }
        drop(inner);
        if terminal {
            // This job just became collectable; an older terminal job
            // may now exceed the retention cap.
            self.gc_terminal();
        }
    }
}
