//! `FfisFs` — the FFISFS mount layer.
//!
//! "FFISFS works similarly to what \[a\] normal FUSE-based file system
//! does: at the time the FFISFS file system is mounted, the file system
//! handler is registered with the OS kernel. If an application issues,
//! for example read/write/stat requests for the mounted FFISFS, the
//! kernel forwards these IO-requests to the handler" (paper §III-A).
//!
//! Here the "kernel forwarding" is a direct trait-object call: the
//! application holds a `&dyn FileSystem` that happens to be an
//! [`FfisFs`], which forwards each primitive to the inner filesystem
//! through the attached [`Interceptor`] chain while maintaining
//! per-primitive dynamic execution counters. `mount`/`unmount` bracket
//! each fault-injection run, as in the paper ("in each run, FFISFS
//! would be mounted and unmounted to mimic the real scenario").

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::error::{FsError, FsResult};
use crate::fs::{DirEntry, Fd, FileSystem, LockKind, Metadata, NodeKind, OpenFlags, StatFs};
use crate::interceptor::{
    CallContext, Interceptor, Primitive, ReadAction, WriteAction, PRIMITIVES,
};
use crate::trace::TraceOp;

/// Snapshot of the per-primitive dynamic execution counters — the
/// output of the paper's I/O profiler stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    counts: [u64; PRIMITIVES.len()],
}

impl CounterSnapshot {
    /// Dynamic count for one primitive.
    pub fn get(&self, p: Primitive) -> u64 {
        self.counts[p.index()]
    }

    /// Total calls across all primitives.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterate `(primitive, count)` pairs with non-zero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (Primitive, u64)> + '_ {
        PRIMITIVES.iter().copied().map(move |p| (p, self.get(p))).filter(|&(_, c)| c > 0)
    }

    /// Add `n` to one primitive's count (checkpoint builders
    /// accumulate replay-issued ops into a snapshot).
    pub(crate) fn bump(&mut self, p: Primitive, n: u64) {
        self.counts[p.index()] += n;
    }

    /// Per-primitive difference `self − earlier` (saturating at 0).
    /// Batched replay uses this to turn two absolute snapshots into
    /// the additive [`FfisFs::preseed_counters`] delta that restores
    /// full-replay numbering after a suffix is applied off-mount.
    pub fn diff(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut counts = [0u64; PRIMITIVES.len()];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        CounterSnapshot { counts }
    }

    /// Raw counts in [`PRIMITIVES`] order (checkpoint serialization).
    pub(crate) fn to_raw(self) -> [u64; PRIMITIVES.len()] {
        self.counts
    }

    /// Rebuild from raw counts in [`PRIMITIVES`] order; `None` when
    /// the slice length disagrees (a corrupt or cross-version image).
    pub(crate) fn from_raw(counts: &[u64]) -> Option<Self> {
        let counts: [u64; PRIMITIVES.len()] = counts.try_into().ok()?;
        Some(CounterSnapshot { counts })
    }
}

/// Panic payload thrown by [`FfisFs`] when an armed I/O-op fuel
/// budget runs out ([`FfisFs::set_fuel`]).
///
/// Fuel exhaustion is the mount's deterministic hang detector: a run
/// wedged in an I/O loop (an infinite retry induced by corrupted
/// data) keeps crossing the mount, burns its budget, and unwinds here
/// — landing in the campaign's existing `catch_unwind` crash
/// classification instead of hanging the executor. Because the budget
/// counts primitive crossings, not wall-clock time, the same run
/// exhausts at the same crossing on every machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuelExhausted {
    /// The budget that was armed ([`FfisFs::set_fuel`]).
    pub budget: u64,
}

/// Panic payload thrown by [`FfisFs`] when the optional wall-clock
/// backstop elapses ([`FfisFs::set_deadline`]).
///
/// Unlike [`FuelExhausted`] this is *not* deterministic — it exists as
/// a second line of defense for the parallel path, where a run hung
/// *between* mount crossings (a pure CPU spin) would never burn fuel.
/// It only fires when the hung run eventually crosses the mount again;
/// a loop that performs no I/O at all is out of reach of both
/// detectors by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// The armed limit, in milliseconds.
    pub limit_ms: u64,
}

/// The FFISFS mount: an interceptable pass-through [`FileSystem`].
pub struct FfisFs {
    inner: Arc<dyn FileSystem>,
    interceptors: RwLock<Vec<Arc<dyn Interceptor>>>,
    mounted: AtomicBool,
    seq: AtomicU64,
    counters: [AtomicU64; PRIMITIVES.len()],
    /// True when some attached interceptor wants [`TraceOp`]s;
    /// cached so the hot path skips op materialization (which clones
    /// write buffers) entirely when nothing records.
    ops_wanted: AtomicBool,
    /// fd → path, so fd-addressed primitives (write/pwrite/...) carry
    /// their target path in the [`CallContext`] — fault signatures can
    /// then be scoped to specific files, as FFIS scopes injections to
    /// files residing in the FFISFS mount point.
    fd_paths: RwLock<HashMap<Fd, String>>,
    /// Remaining I/O-op fuel; `u64::MAX` means no budget armed.
    fuel: AtomicU64,
    /// The armed budget (for the panic payload); `u64::MAX` = unarmed.
    fuel_budget: AtomicU64,
    /// Wall-clock backstop: `(deadline, limit_ms)` when armed.
    deadline: RwLock<Option<(Instant, u64)>>,
    /// Cached "deadline armed" flag so the hot path skips the lock.
    deadline_armed: AtomicBool,
}

impl FfisFs {
    /// Mount FFISFS over an inner filesystem. The returned handle *is*
    /// a [`FileSystem`]; hand it to the application.
    pub fn mount(inner: Arc<dyn FileSystem>) -> Arc<Self> {
        Arc::new(FfisFs {
            inner,
            interceptors: RwLock::new(Vec::new()),
            mounted: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            ops_wanted: AtomicBool::new(false),
            fd_paths: RwLock::new(HashMap::new()),
            fuel: AtomicU64::new(u64::MAX),
            fuel_budget: AtomicU64::new(u64::MAX),
            deadline: RwLock::new(None),
            deadline_armed: AtomicBool::new(false),
        })
    }

    /// Arm an I/O-op fuel budget: the mount allows `budget` further
    /// primitive crossings, then unwinds with a [`FuelExhausted`]
    /// panic payload on the crossing after the budget is spent. The
    /// paper's fault models can corrupt data into shapes that send an
    /// analysis phase into an unbounded I/O loop; fuel turns that hang
    /// into a deterministic, classifiable abort (see
    /// `ffis_core::RunAborted`). A budget of `u64::MAX` disarms.
    pub fn set_fuel(&self, budget: u64) {
        self.fuel.store(budget, Ordering::SeqCst);
        self.fuel_budget.store(budget, Ordering::SeqCst);
    }

    /// Remaining fuel, or `None` when no budget is armed.
    pub fn fuel_remaining(&self) -> Option<u64> {
        let b = self.fuel_budget.load(Ordering::SeqCst);
        (b != u64::MAX).then(|| self.fuel.load(Ordering::SeqCst))
    }

    /// Arm the wall-clock backstop: any primitive crossing after
    /// `limit` has elapsed (measured from now) unwinds with a
    /// [`DeadlineExceeded`] panic payload. Non-deterministic by
    /// nature — prefer [`FfisFs::set_fuel`]; this exists so a parallel
    /// campaign has a second, time-based bound.
    pub fn set_deadline(&self, limit: Duration) {
        let limit_ms = limit.as_millis().min(u64::MAX as u128) as u64;
        *self.deadline.write().unwrap_or_else(|e| e.into_inner()) =
            Some((Instant::now() + limit, limit_ms));
        self.deadline_armed.store(true, Ordering::SeqCst);
    }

    /// Burn one unit of fuel and check the deadline; unwinds with
    /// [`FuelExhausted`] / [`DeadlineExceeded`] when a bound is hit.
    /// Runs on every primitive crossing, before the interceptors —
    /// a wedged run cannot fire further faults once out of fuel.
    fn check_liveness(&self) {
        if self.fuel_budget.load(Ordering::Relaxed) != u64::MAX {
            let spent = self
                .fuel
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_err();
            if spent {
                std::panic::panic_any(FuelExhausted {
                    budget: self.fuel_budget.load(Ordering::SeqCst),
                });
            }
        }
        if self.deadline_armed.load(Ordering::Relaxed) {
            let armed = *self.deadline.read().unwrap_or_else(|e| e.into_inner());
            if let Some((deadline, limit_ms)) = armed {
                if Instant::now() >= deadline {
                    std::panic::panic_any(DeadlineExceeded { limit_ms });
                }
            }
        }
    }

    /// Unmount: all subsequent primitives fail with `ENODEV`. Ends an
    /// injection run; the paper unmounts FFISFS after every run.
    pub fn unmount(&self) {
        self.mounted.store(false, Ordering::SeqCst);
    }

    /// Re-mount after an [`FfisFs::unmount`] (campaigns normally build
    /// a fresh mount instead, but the lifecycle is reversible).
    pub fn remount(&self) {
        self.mounted.store(true, Ordering::SeqCst);
    }

    /// Is the mount live?
    pub fn is_mounted(&self) -> bool {
        self.mounted.load(Ordering::SeqCst)
    }

    /// Attach an interceptor. Interceptors run in attachment order;
    /// for write-class calls the first non-`Forward` action wins.
    pub fn attach(&self, i: Arc<dyn Interceptor>) {
        if i.wants_ops() {
            self.ops_wanted.store(true, Ordering::SeqCst);
        }
        self.interceptors.write().unwrap_or_else(|e| e.into_inner()).push(i);
    }

    /// Detach all interceptors.
    pub fn clear_interceptors(&self) {
        self.ops_wanted.store(false, Ordering::SeqCst);
        self.interceptors.write().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Pre-seed the dynamic execution counters (and the global call
    /// sequence) with counts accumulated *before* this mount existed —
    /// i.e. by the trace prefix behind a mid-trace checkpoint. Suffix
    /// ops replayed through this mount then observe the same
    /// `prim_seq`/`seq` numbering a full-trace replay would produce,
    /// so injection records stay comparable across execution
    /// strategies. See [`crate::trace::TraceCheckpoint::mount_fork`].
    pub fn preseed_counters(&self, snap: &CounterSnapshot) {
        for p in PRIMITIVES {
            let n = snap.get(p);
            if n > 0 {
                self.counters[p.index()].fetch_add(n, Ordering::SeqCst);
            }
        }
        self.seq.fetch_add(snap.total(), Ordering::SeqCst);
    }

    /// Snapshot the dynamic execution counters.
    pub fn counters(&self) -> CounterSnapshot {
        let mut snap = CounterSnapshot::default();
        for (i, c) in self.counters.iter().enumerate() {
            snap.counts[i] = c.load(Ordering::SeqCst);
        }
        snap
    }

    /// Borrow the inner filesystem (post-run inspection).
    pub fn inner(&self) -> &Arc<dyn FileSystem> {
        &self.inner
    }

    fn check_mounted(&self) -> FsResult<()> {
        if self.is_mounted() {
            Ok(())
        } else {
            Err(FsError::NotMounted)
        }
    }

    /// Path behind an open descriptor, if tracked.
    pub fn path_of_fd(&self, fd: Fd) -> Option<String> {
        self.fd_paths.read().unwrap_or_else(|e| e.into_inner()).get(&fd).cloned()
    }

    /// Register a descriptor that was opened *before* this mount
    /// existed — i.e. a descriptor carried into a forked filesystem by
    /// a mid-trace snapshot. Without adoption, fd-addressed primitives
    /// replayed on that descriptor would cross the mount with no
    /// target path, making them invisible to path-filtered injectors.
    /// See [`crate::trace::ReplayCursor::seed_mount`].
    pub fn adopt_fd(&self, fd: Fd, path: &str) {
        self.track_fd(fd, path);
    }

    /// Deliver a [`TraceOp`] to recording interceptors. `build` runs
    /// only when recording is active, so the hot path never clones
    /// write buffers.
    fn emit_op(&self, build: impl FnOnce() -> TraceOp) {
        if !self.ops_wanted.load(Ordering::Relaxed) {
            return;
        }
        let op = build();
        let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
        for i in guards.iter() {
            if i.wants_ops() {
                i.on_op(&op);
            }
        }
    }

    fn track_fd(&self, fd: Fd, path: &str) {
        self.fd_paths
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fd, crate::path::normalize(path).unwrap_or_else(|_| path.to_string()));
    }

    fn untrack_fd(&self, fd: Fd) {
        self.fd_paths.write().unwrap_or_else(|e| e.into_inner()).remove(&fd);
    }

    /// Count the call and build its context.
    fn enter(
        &self,
        primitive: Primitive,
        path: Option<&str>,
        fd: Option<Fd>,
        offset: Option<u64>,
        len: usize,
    ) -> FsResult<CallContext> {
        self.check_mounted()?;
        self.check_liveness();
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let prim_seq = self.counters[primitive.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let path = path.map(str::to_string).or_else(|| fd.and_then(|fd| self.path_of_fd(fd)));
        let cx = CallContext { primitive, seq, prim_seq, path, fd, offset, len };
        let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
        for i in guards.iter() {
            i.on_call(&cx);
        }
        Ok(cx)
    }

    /// Run the write-action pipeline: first interceptor that returns a
    /// non-`Forward` action decides the fate of the buffer.
    fn write_action(&self, cx: &CallContext, buf: &[u8]) -> WriteAction {
        let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
        for i in guards.iter() {
            match i.on_write(cx, buf) {
                WriteAction::Forward => continue,
                other => return other,
            }
        }
        WriteAction::Forward
    }

    /// Ask the interceptor chain whether this read crossing needs a
    /// pre-call buffer snapshot ([`ReadAction::Stale`]'s restore
    /// source). Runs after [`Interceptor::on_call`], so an injector
    /// can answer `true` for exactly its armed instance and no other
    /// read of the run pays the copy.
    fn read_snapshot_wanted(&self, cx: &CallContext) -> bool {
        let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
        guards.iter().any(|i| i.wants_read_snapshot(cx))
    }

    /// Run the read-action pipeline over the filled buffer and apply
    /// the winning action, returning the byte count reported to the
    /// caller (never more than the inner filesystem's `n` — a fault
    /// can lie about content, not conjure bytes). `pre` is the
    /// pre-call snapshot of the buffer (present when some interceptor
    /// opted in via [`Interceptor::wants_read_snapshot`]); a stale
    /// region beyond the reported length — or a dropped transfer — is
    /// restored from it, degrading to zeros without one.
    fn finish_read(
        &self,
        cx: &CallContext,
        buf: &mut [u8],
        n: usize,
        pre: Option<Vec<u8>>,
    ) -> usize {
        let action = {
            let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
            let mut action = ReadAction::Forward;
            for i in guards.iter() {
                match i.on_read(cx, buf, n) {
                    ReadAction::Forward => continue,
                    other => {
                        action = other;
                        break;
                    }
                }
            }
            action
        };
        let restore = |buf: &mut [u8], from: usize| match &pre {
            Some(pre) => buf[from..n].copy_from_slice(&pre[from..n]),
            None => buf[from..n].fill(0),
        };
        match action {
            ReadAction::Forward => n,
            ReadAction::Stale { reported_len } => {
                restore(buf, 0);
                reported_len.min(n)
            }
            ReadAction::Short { reported_len } => {
                let keep = reported_len.min(n);
                restore(buf, keep);
                keep
            }
        }
    }
}

impl FileSystem for FfisFs {
    fn getattr(&self, path: &str) -> FsResult<Metadata> {
        self.enter(Primitive::Getattr, Some(path), None, None, 0)?;
        self.inner.getattr(path)
    }

    fn mknod(&self, path: &str, kind: NodeKind, mode: u32, dev: u64) -> FsResult<()> {
        let cx = self.enter(Primitive::Mknod, Some(path), None, None, 0)?;
        let issued_mode = mode;
        let issued_dev = dev;
        let mut mode = mode;
        let mut dev = dev;
        {
            let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
            for i in guards.iter() {
                i.on_mknod(&cx, &mut mode, &mut dev);
            }
        }
        self.inner.mknod(path, kind, mode, dev)?;
        // Recorded as-issued (pre-interception): the replay mount's
        // own interceptors get their chance to rewrite the parameters.
        self.emit_op(|| TraceOp::Mknod {
            path: path.to_string(),
            kind,
            mode: issued_mode,
            dev: issued_dev,
        });
        Ok(())
    }

    fn mkdir(&self, path: &str, mode: u32) -> FsResult<()> {
        self.enter(Primitive::Mkdir, Some(path), None, None, 0)?;
        self.inner.mkdir(path, mode)?;
        self.emit_op(|| TraceOp::Mkdir { path: path.to_string(), mode });
        Ok(())
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.enter(Primitive::Unlink, Some(path), None, None, 0)?;
        self.inner.unlink(path)?;
        self.emit_op(|| TraceOp::Unlink { path: path.to_string() });
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.enter(Primitive::Rmdir, Some(path), None, None, 0)?;
        self.inner.rmdir(path)?;
        self.emit_op(|| TraceOp::Rmdir { path: path.to_string() });
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        self.enter(Primitive::Rename, Some(from), None, None, 0)?;
        self.inner.rename(from, to)?;
        self.emit_op(|| TraceOp::Rename { from: from.to_string(), to: to.to_string() });
        Ok(())
    }

    fn chmod(&self, path: &str, mode: u32) -> FsResult<()> {
        let cx = self.enter(Primitive::Chmod, Some(path), None, None, 0)?;
        let issued_mode = mode;
        let mut mode = mode;
        {
            let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
            for i in guards.iter() {
                i.on_chmod(&cx, &mut mode);
            }
        }
        self.inner.chmod(path, mode)?;
        self.emit_op(|| TraceOp::Chmod { path: path.to_string(), mode: issued_mode });
        Ok(())
    }

    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        let cx = self.enter(Primitive::Truncate, Some(path), None, None, 0)?;
        let issued_size = size;
        let mut size = size;
        {
            let guards = self.interceptors.read().unwrap_or_else(|e| e.into_inner());
            for i in guards.iter() {
                i.on_truncate(&cx, &mut size);
            }
        }
        self.inner.truncate(path, size)?;
        self.emit_op(|| TraceOp::Truncate { path: path.to_string(), size: issued_size });
        Ok(())
    }

    fn create(&self, path: &str, mode: u32) -> FsResult<Fd> {
        self.enter(Primitive::Create, Some(path), None, None, 0)?;
        let fd = self.inner.create(path, mode)?;
        self.track_fd(fd, path);
        self.emit_op(|| TraceOp::Create { path: path.to_string(), mode, fd });
        Ok(fd)
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.enter(Primitive::Open, Some(path), None, None, 0)?;
        let fd = self.inner.open(path, flags)?;
        self.track_fd(fd, path);
        // Read-only opens cannot mutate state and are not replayed.
        if flags.write {
            self.emit_op(|| TraceOp::Open { path: path.to_string(), flags, fd });
        }
        Ok(fd)
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let cx = self.enter(Primitive::Read, None, Some(fd), None, buf.len())?;
        let pre = self.read_snapshot_wanted(&cx).then(|| buf.to_vec());
        let n = self.inner.read(fd, buf)?;
        Ok(self.finish_read(&cx, buf, n, pre))
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], offset: u64) -> FsResult<usize> {
        let cx = self.enter(Primitive::Read, None, Some(fd), Some(offset), buf.len())?;
        let pre = self.read_snapshot_wanted(&cx).then(|| buf.to_vec());
        let n = self.inner.pread(fd, buf, offset)?;
        Ok(self.finish_read(&cx, buf, n, pre))
    }

    fn write(&self, fd: Fd, buf: &[u8]) -> FsResult<usize> {
        let cx = self.enter(Primitive::Write, None, Some(fd), None, buf.len())?;
        let n = match self.write_action(&cx, buf) {
            WriteAction::Forward => self.inner.write(fd, buf)?,
            WriteAction::Replace { buf: replaced, reported_len } => {
                self.inner.write(fd, &replaced)?;
                reported_len
            }
            WriteAction::Drop { reported_len } => reported_len,
        };
        self.emit_op(|| TraceOp::Write {
            fd,
            path: cx.path.clone(),
            offset: None,
            data: buf.to_vec(),
        });
        Ok(n)
    }

    fn pwrite(&self, fd: Fd, buf: &[u8], offset: u64) -> FsResult<usize> {
        let cx = self.enter(Primitive::Write, None, Some(fd), Some(offset), buf.len())?;
        let n = match self.write_action(&cx, buf) {
            WriteAction::Forward => self.inner.pwrite(fd, buf, offset)?,
            WriteAction::Replace { buf: replaced, reported_len } => {
                self.inner.pwrite(fd, &replaced, offset)?;
                reported_len
            }
            WriteAction::Drop { reported_len } => reported_len,
        };
        self.emit_op(|| TraceOp::Write {
            fd,
            path: cx.path.clone(),
            offset: Some(offset),
            data: buf.to_vec(),
        });
        Ok(n)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        self.enter(Primitive::Fsync, None, Some(fd), None, 0)?;
        self.inner.fsync(fd)?;
        self.emit_op(|| TraceOp::Fsync { fd });
        Ok(())
    }

    fn release(&self, fd: Fd) -> FsResult<()> {
        self.enter(Primitive::Release, None, Some(fd), None, 0)?;
        let r = self.inner.release(fd);
        if r.is_ok() {
            self.untrack_fd(fd);
            self.emit_op(|| TraceOp::Release { fd });
        }
        r
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.enter(Primitive::Readdir, Some(path), None, None, 0)?;
        self.inner.readdir(path)
    }

    fn statfs(&self) -> FsResult<StatFs> {
        self.enter(Primitive::Statfs, None, None, None, 0)?;
        self.inner.statfs()
    }

    fn lock(&self, fd: Fd, kind: LockKind) -> FsResult<()> {
        self.enter(Primitive::Lock, None, Some(fd), None, 0)?;
        self.inner.lock(fd, kind)?;
        self.emit_op(|| TraceOp::Lock { fd, kind });
        Ok(())
    }

    fn unlock(&self, fd: Fd) -> FsResult<()> {
        self.enter(Primitive::Unlock, None, Some(fd), None, 0)?;
        self.inner.unlock(fd)?;
        self.emit_op(|| TraceOp::Unlock { fd });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FileSystemExt;
    use crate::memfs::MemFs;
    use std::sync::Mutex;

    fn mounted() -> Arc<FfisFs> {
        FfisFs::mount(Arc::new(MemFs::new()))
    }

    #[test]
    fn passthrough_when_no_interceptor() {
        let fs = mounted();
        fs.write_file("/a", b"payload").unwrap();
        assert_eq!(fs.read_to_vec("/a").unwrap(), b"payload");
    }

    #[test]
    fn counters_track_primitives() {
        let fs = mounted();
        fs.write_file_chunked("/a", &[0u8; 10], 2).unwrap(); // create + 5 pwrites + fsync + release
        let snap = fs.counters();
        assert_eq!(snap.get(Primitive::Create), 1);
        assert_eq!(snap.get(Primitive::Write), 5);
        assert_eq!(snap.get(Primitive::Fsync), 1);
        assert_eq!(snap.get(Primitive::Release), 1);
        assert_eq!(snap.get(Primitive::Mknod), 0);
        assert!(snap.total() >= 8);
        let nz: Vec<_> = snap.nonzero().collect();
        assert!(nz.contains(&(Primitive::Write, 5)));
    }

    #[test]
    fn unmount_fails_all_primitives() {
        let fs = mounted();
        fs.write_file("/a", b"x").unwrap();
        fs.unmount();
        assert_eq!(fs.getattr("/a"), Err(FsError::NotMounted));
        assert_eq!(fs.create("/b", 0o644), Err(FsError::NotMounted));
        fs.remount();
        assert!(fs.getattr("/a").is_ok());
    }

    /// Interceptor that replaces byte 0 of the Nth write with 0xFF.
    struct FlipFirstByte {
        target: u64,
        fired: Mutex<bool>,
    }

    impl Interceptor for FlipFirstByte {
        fn on_write(&self, cx: &CallContext, buf: &[u8]) -> WriteAction {
            if cx.prim_seq == self.target && !buf.is_empty() {
                *self.fired.lock().unwrap() = true;
                let mut b = buf.to_vec();
                b[0] = 0xFF;
                return WriteAction::Replace { buf: b, reported_len: buf.len() };
            }
            WriteAction::Forward
        }
    }

    #[test]
    fn replace_action_corrupts_silently() {
        let fs = mounted();
        let flip = Arc::new(FlipFirstByte { target: 2, fired: Mutex::new(false) });
        fs.attach(flip.clone());
        let fd = fs.create("/f", 0o644).unwrap();
        assert_eq!(fs.pwrite(fd, b"AA", 0).unwrap(), 2);
        // Second write gets corrupted but still reports success (silent).
        assert_eq!(fs.pwrite(fd, b"BB", 2).unwrap(), 2);
        fs.release(fd).unwrap();
        assert!(*flip.fired.lock().unwrap());
        assert_eq!(fs.read_to_vec("/f").unwrap(), b"AA\xFFB");
    }

    struct DropAll;
    impl Interceptor for DropAll {
        fn on_write(&self, _cx: &CallContext, buf: &[u8]) -> WriteAction {
            WriteAction::Drop { reported_len: buf.len() }
        }
    }

    #[test]
    fn drop_action_skips_device_write_but_reports_success() {
        let fs = mounted();
        fs.attach(Arc::new(DropAll));
        let fd = fs.create("/f", 0o644).unwrap();
        assert_eq!(fs.pwrite(fd, b"disappears", 0).unwrap(), 10);
        fs.release(fd).unwrap();
        assert_eq!(fs.getattr("/f").unwrap().size, 0);
    }

    struct ModeZeroer;
    impl Interceptor for ModeZeroer {
        fn on_mknod(&self, _cx: &CallContext, mode: &mut u32, _dev: &mut u64) {
            *mode = 0;
        }
        fn on_chmod(&self, _cx: &CallContext, mode: &mut u32) {
            *mode |= 0o111;
        }
        fn on_truncate(&self, _cx: &CallContext, size: &mut u64) {
            *size += 1;
        }
    }

    #[test]
    fn param_hooks_rewrite_scalars() {
        let fs = mounted();
        fs.attach(Arc::new(ModeZeroer));
        fs.mknod("/n", NodeKind::File, 0o644, 0).unwrap();
        assert_eq!(fs.getattr("/n").unwrap().mode, 0);
        fs.chmod("/n", 0o600).unwrap();
        assert_eq!(fs.getattr("/n").unwrap().mode, 0o711);
        fs.truncate("/n", 4).unwrap();
        assert_eq!(fs.getattr("/n").unwrap().size, 5);
    }

    #[test]
    fn first_nonforward_interceptor_wins() {
        struct A;
        impl Interceptor for A {
            fn on_write(&self, _cx: &CallContext, _buf: &[u8]) -> WriteAction {
                WriteAction::Drop { reported_len: 3 }
            }
        }
        struct B;
        impl Interceptor for B {
            fn on_write(&self, _cx: &CallContext, buf: &[u8]) -> WriteAction {
                WriteAction::Replace { buf: buf.to_vec(), reported_len: 99 }
            }
        }
        let fs = mounted();
        fs.attach(Arc::new(A));
        fs.attach(Arc::new(B));
        let fd = fs.create("/f", 0o644).unwrap();
        assert_eq!(fs.pwrite(fd, b"xyz", 0).unwrap(), 3); // A's Drop wins
        fs.release(fd).unwrap();
        assert_eq!(fs.getattr("/f").unwrap().size, 0);
    }

    #[test]
    fn sequential_write_also_intercepted() {
        let fs = mounted();
        fs.attach(Arc::new(DropAll));
        let fd = fs.create("/s", 0o644).unwrap();
        assert_eq!(fs.write(fd, b"gone").unwrap(), 4);
        fs.release(fd).unwrap();
        assert_eq!(fs.getattr("/s").unwrap().size, 0);
        // Both write entry points count as the Write primitive.
        assert_eq!(fs.counters().get(Primitive::Write), 1);
    }

    #[test]
    fn read_and_pread_count_as_read() {
        let fs = mounted();
        fs.write_file("/r", b"abcdef").unwrap();
        let fd = fs.open("/r", OpenFlags::read_only()).unwrap();
        let mut b = [0u8; 2];
        fs.read(fd, &mut b).unwrap();
        fs.pread(fd, &mut b, 4).unwrap();
        fs.release(fd).unwrap();
        assert_eq!(fs.counters().get(Primitive::Read), 2);
    }

    /// Interceptor driving the read-action pipeline directly: drops
    /// the first read (stale restore) and shortens the second.
    struct ReadActor;
    impl Interceptor for ReadActor {
        fn wants_read_snapshot(&self, cx: &CallContext) -> bool {
            cx.prim_seq == 1
        }
        fn on_read(&self, cx: &CallContext, _buf: &mut [u8], _n: usize) -> ReadAction {
            match cx.prim_seq {
                1 => ReadAction::Stale { reported_len: usize::MAX }, // clamped to n
                2 => ReadAction::Short { reported_len: 2 },
                _ => ReadAction::Forward,
            }
        }
    }

    #[test]
    fn read_actions_restore_stale_bytes_and_clamp_lengths() {
        let fs = mounted();
        fs.write_file("/r", b"abcdef").unwrap();
        fs.attach(Arc::new(ReadActor));
        let fd = fs.open("/r", OpenFlags::read_only()).unwrap();
        // Read #1: dropped transfer — pre-call bytes restored, success
        // reported for the full (clamped) inner count.
        let mut buf = [0x11u8; 6];
        assert_eq!(fs.pread(fd, &mut buf, 0).unwrap(), 6);
        assert_eq!(buf, [0x11u8; 6], "stale caller bytes restored");
        // Read #2: short transfer — prefix delivered, tail zeroed
        // (this crossing opted out of the snapshot).
        let mut buf = [0x22u8; 6];
        assert_eq!(fs.pread(fd, &mut buf, 0).unwrap(), 2);
        assert_eq!(&buf[..2], b"ab");
        assert!(buf[2..].iter().all(|&b| b == 0), "tail zeroed without a snapshot");
        // Read #3: forward — clean.
        let mut buf = [0u8; 6];
        assert_eq!(fs.pread(fd, &mut buf, 0).unwrap(), 6);
        assert_eq!(&buf, b"abcdef");
        fs.release(fd).unwrap();
        // The device never changed.
        assert_eq!(fs.read_to_vec("/r").unwrap(), b"abcdef");
    }

    #[test]
    fn clear_interceptors_restores_passthrough() {
        let fs = mounted();
        fs.attach(Arc::new(DropAll));
        fs.clear_interceptors();
        fs.write_file("/x", b"kept").unwrap();
        assert_eq!(fs.read_to_vec("/x").unwrap(), b"kept");
    }

    #[test]
    fn fd_paths_tracked_for_write_contexts() {
        use crate::counting::TraceInterceptor;
        let fs = mounted();
        let trace = Arc::new(TraceInterceptor::new());
        fs.attach(trace.clone());
        let fd = fs.create("/deep.h5", 0o644).unwrap();
        fs.pwrite(fd, b"1234", 0).unwrap();
        fs.release(fd).unwrap();
        let writes = trace.records_of(Primitive::Write);
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].path.as_deref(), Some("/deep.h5"));
        // After release the mapping is gone.
        assert_eq!(fs.path_of_fd(fd), None);
    }

    #[test]
    fn fuel_budget_unwinds_after_exhaustion() {
        let fs = mounted();
        fs.set_fuel(3);
        assert_eq!(fs.fuel_remaining(), Some(3));
        // create + 2 pwrites = 3 crossings: exactly the budget.
        let fd = fs.create("/f", 0o644).unwrap();
        fs.pwrite(fd, b"a", 0).unwrap();
        fs.pwrite(fd, b"b", 1).unwrap();
        assert_eq!(fs.fuel_remaining(), Some(0));
        // The 4th crossing unwinds with the typed payload.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = fs.pwrite(fd, b"c", 2);
        }))
        .unwrap_err();
        let payload = err.downcast_ref::<FuelExhausted>().expect("typed payload");
        assert_eq!(payload.budget, 3);
    }

    #[test]
    fn fuel_exhaustion_is_deterministic_across_runs() {
        let survived = |budget: u64| {
            let fs = mounted();
            fs.set_fuel(budget);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fs.write_file_chunked("/f", &[0u8; 16], 4).unwrap();
            }))
            .is_ok()
        };
        // Same workload, same budget → same verdict, every time.
        for _ in 0..3 {
            assert!(!survived(2));
            assert!(survived(64));
        }
    }

    #[test]
    fn unarmed_mount_never_burns_fuel() {
        let fs = mounted();
        assert_eq!(fs.fuel_remaining(), None);
        fs.write_file("/a", b"x").unwrap();
        assert_eq!(fs.fuel_remaining(), None);
    }

    #[test]
    fn deadline_backstop_unwinds_on_late_crossing() {
        let fs = mounted();
        fs.set_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = fs.getattr("/");
        }))
        .unwrap_err();
        let payload = err.downcast_ref::<DeadlineExceeded>().expect("typed payload");
        assert_eq!(payload.limit_ms, 0);
    }

    #[test]
    fn inner_is_reachable_for_inspection() {
        let mem = Arc::new(MemFs::new());
        let fs = FfisFs::mount(mem.clone());
        fs.write_file("/a", b"z").unwrap();
        assert_eq!(mem.snapshot("/a").unwrap(), b"z");
        assert_eq!(fs.inner().getattr("/a").unwrap().size, 1);
    }
}
