//! Path normalization for the in-process VFS.
//!
//! All [`crate::FileSystem`] primitives take absolute, `/`-separated
//! paths, as FUSE callbacks do. This module resolves `.` and `..`
//! lexically and enforces component length limits.

use crate::error::{FsError, FsResult};

/// Maximum length of a single path component, matching `NAME_MAX`.
pub const NAME_MAX: usize = 255;

/// Split an absolute path into normalized components.
///
/// * `"/"` → `[]` (the root).
/// * `"/a//b/./c"` → `["a", "b", "c"]`.
/// * `".."` pops a component; popping past the root is an error, as it
///   would escape the mount point.
/// * Relative paths are rejected: a FUSE mount only ever sees absolute
///   paths below its mount point.
pub fn components(path: &str) -> FsResult<Vec<String>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidArgument);
    }
    let mut out: Vec<String> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                if out.pop().is_none() {
                    return Err(FsError::InvalidArgument);
                }
            }
            name => {
                if name.len() > NAME_MAX {
                    return Err(FsError::NameTooLong);
                }
                out.push(name.to_string());
            }
        }
    }
    Ok(out)
}

/// Split into (parent components, final name). Errors on the root path,
/// which has no parent.
pub fn split_parent(path: &str) -> FsResult<(Vec<String>, String)> {
    let mut comps = components(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(FsError::InvalidArgument),
    }
}

/// Re-join components into a canonical absolute path string.
pub fn join(components: &[String]) -> String {
    if components.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::new();
        for c in components {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

/// Normalize a path to canonical form (`/a/b/c`).
pub fn normalize(path: &str) -> FsResult<String> {
    Ok(join(&components(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_components() {
        assert_eq!(components("/").unwrap(), Vec::<String>::new());
        assert_eq!(components("///").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn relative_paths_rejected() {
        assert_eq!(components("a/b"), Err(FsError::InvalidArgument));
        assert_eq!(components(""), Err(FsError::InvalidArgument));
    }

    #[test]
    fn dot_and_dotdot_resolve() {
        assert_eq!(components("/a/./b/../c").unwrap(), vec!["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn dotdot_past_root_rejected() {
        assert_eq!(components("/.."), Err(FsError::InvalidArgument));
        assert_eq!(components("/a/../.."), Err(FsError::InvalidArgument));
    }

    #[test]
    fn long_component_rejected() {
        let long = format!("/{}", "x".repeat(NAME_MAX + 1));
        assert_eq!(components(&long), Err(FsError::NameTooLong));
        let ok = format!("/{}", "x".repeat(NAME_MAX));
        assert!(components(&ok).is_ok());
    }

    #[test]
    fn split_parent_basic() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(name, "c");
        assert_eq!(split_parent("/"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn normalize_roundtrip() {
        assert_eq!(normalize("/a//b/./c/").unwrap(), "/a/b/c");
        assert_eq!(normalize("/").unwrap(), "/");
        assert_eq!(join(&components("/x/y").unwrap()), "/x/y");
    }
}
