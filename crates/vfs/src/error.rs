//! Filesystem error codes.
//!
//! Mirrors the errno vocabulary a FUSE filesystem reports back to the
//! kernel. In the paper's fault/error/failure chain (§II) these are the
//! *file system failures*: "unsuccessful file operations such as I/O
//! errors returned to the application".

use std::fmt;

/// Errno-like error returned by every [`crate::FileSystem`] primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsError {
    /// `ENOENT` — path component does not exist.
    NotFound,
    /// `EEXIST` — path already exists (exclusive create, mkdir, mknod).
    Exists,
    /// `ENOTDIR` — a non-final path component is not a directory.
    NotADirectory,
    /// `EISDIR` — operation requires a regular file but found a directory.
    IsADirectory,
    /// `EBADF` — file descriptor is closed or was never issued.
    BadFd,
    /// `EINVAL` — malformed argument (bad path, bad flag combination).
    InvalidArgument,
    /// `EIO` — low-level I/O failure (the device-level error class).
    Io,
    /// `ENOSPC` — filesystem capacity exhausted.
    NoSpace,
    /// `ENOTEMPTY` — rmdir on a non-empty directory.
    NotEmpty,
    /// `EACCES` — mode bits forbid the requested access.
    PermissionDenied,
    /// `EWOULDBLOCK` — advisory lock conflict.
    Locked,
    /// `ENODEV` — operation on an unmounted [`crate::FfisFs`].
    NotMounted,
    /// `ENAMETOOLONG` — path component exceeds the name limit.
    NameTooLong,
    /// `ESPIPE` — seek/positioned I/O on a non-seekable node (FIFO).
    IllegalSeek,
    /// `EROFS` — write to a read-only handle.
    ReadOnly,
}

impl FsError {
    /// The conventional Unix errno number, for log-compatibility with
    /// the paper's FUSE traces.
    pub fn errno(self) -> i32 {
        match self {
            FsError::NotFound => 2,
            FsError::Exists => 17,
            FsError::NotADirectory => 20,
            FsError::IsADirectory => 21,
            FsError::BadFd => 9,
            FsError::InvalidArgument => 22,
            FsError::Io => 5,
            FsError::NoSpace => 28,
            FsError::NotEmpty => 39,
            FsError::PermissionDenied => 13,
            FsError::Locked => 11,
            FsError::NotMounted => 19,
            FsError::NameTooLong => 36,
            FsError::IllegalSeek => 29,
            FsError::ReadOnly => 30,
        }
    }

    /// Short symbolic name (`"ENOENT"`, ...).
    pub fn symbol(self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::Exists => "EEXIST",
            FsError::NotADirectory => "ENOTDIR",
            FsError::IsADirectory => "EISDIR",
            FsError::BadFd => "EBADF",
            FsError::InvalidArgument => "EINVAL",
            FsError::Io => "EIO",
            FsError::NoSpace => "ENOSPC",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::PermissionDenied => "EACCES",
            FsError::Locked => "EWOULDBLOCK",
            FsError::NotMounted => "ENODEV",
            FsError::NameTooLong => "ENAMETOOLONG",
            FsError::IllegalSeek => "ESPIPE",
            FsError::ReadOnly => "EROFS",
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (errno {})", self.symbol(), self.errno())
    }
}

impl std::error::Error for FsError {}

/// Result alias used by every filesystem primitive.
pub type FsResult<T> = Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_values_match_unix() {
        assert_eq!(FsError::NotFound.errno(), 2);
        assert_eq!(FsError::Io.errno(), 5);
        assert_eq!(FsError::BadFd.errno(), 9);
        assert_eq!(FsError::Exists.errno(), 17);
        assert_eq!(FsError::InvalidArgument.errno(), 22);
    }

    #[test]
    fn display_contains_symbol_and_errno() {
        let s = FsError::NotFound.to_string();
        assert!(s.contains("ENOENT"));
        assert!(s.contains('2'));
    }

    #[test]
    fn symbols_are_unique() {
        let all = [
            FsError::NotFound,
            FsError::Exists,
            FsError::NotADirectory,
            FsError::IsADirectory,
            FsError::BadFd,
            FsError::InvalidArgument,
            FsError::Io,
            FsError::NoSpace,
            FsError::NotEmpty,
            FsError::PermissionDenied,
            FsError::Locked,
            FsError::NotMounted,
            FsError::NameTooLong,
            FsError::IllegalSeek,
            FsError::ReadOnly,
        ];
        let mut symbols: Vec<_> = all.iter().map(|e| e.symbol()).collect();
        symbols.sort_unstable();
        symbols.dedup();
        assert_eq!(symbols.len(), all.len());
        let mut errnos: Vec<_> = all.iter().map(|e| e.errno()).collect();
        errnos.sort_unstable();
        errnos.dedup();
        assert_eq!(errnos.len(), all.len());
    }
}
