//! Minimal length-prefixed binary encoding helpers shared by the
//! crate's on-disk formats (blob frames, checkpoint manifests,
//! filesystem images). Mirrors the `wire` idiom of the run journal in
//! `ffis-core`: little-endian fixed-width integers, `u32`
//! length-prefixed strings, and a bounds-checked reader that returns
//! `None` instead of panicking on truncated or torn input.

/// Append a `u8`.
pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u32`.
pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` length-prefixed UTF-8 string.
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked sequential reader over an encoded buffer. Every
/// accessor returns `None` on underflow so a torn or bit-rotted input
/// decodes to "corrupt" instead of panicking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.bytes(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.bytes(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn str_(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_str(&mut buf, "/out/data.bin");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.str_().as_deref(), Some("/out/data.bin"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn underflow_is_none_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), None);
        let mut r = Reader::new(&[5, 0, 0, 0, b'a']);
        // Declared length 5, only 1 byte present.
        assert_eq!(r.str_(), None);
    }

    #[test]
    fn invalid_utf8_is_none() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Reader::new(&buf).str_(), None);
    }
}
