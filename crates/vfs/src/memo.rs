//! Content-addressed memo store for incremental analyze.
//!
//! A campaign that splits `analyze` into declared sub-steps needs a
//! place to park each sub-step's serialized artifact, keyed by *what
//! the sub-step read* — the [`crate::ReadLedger`] fingerprint stream
//! of its input files. This store is that place: a thin key → value
//! index over the same content-addressed [`BlobStore`] tier the
//! checkpoint store rides, so identical artifacts dedup across
//! sub-steps, campaigns, and processes, and a disk-backed store
//! directory is shareable between worker processes exactly like the
//! checkpoint store's.
//!
//! ## Shape
//!
//! * **Keys** are opaque byte strings (the caller encodes app name,
//!   sub-step name, and ledger fingerprints); they are hashed to a
//!   32-byte address. The index maps key address → value blob hash.
//! * **Values** are opaque byte strings stored in the [`BlobStore`]
//!   (memory tier + optional CRC-framed disk tier).
//! * **Single flight** — [`MemoStore::get_or_compute`] guarantees one
//!   computation per key across racing threads: late arrivals block on
//!   a condvar until the builder publishes (or fails, in which case one
//!   waiter takes over). Same idiom as `CheckpointStore::get_or_build`.
//! * **Counters** — hits, misses, and invalidations
//!   ([`MemoStats`]) ride alongside the blob tier's [`BlobStats`];
//!   campaigns surface both. An *invalidation* is recorded by the
//!   campaign layer when a fault injection dirties a sub-step whose
//!   golden artifact was cached — the dirty-cascade counter.
//!
//! ## Disk layout
//!
//! `<dir>/index/<2 hex>/<64 hex>.memo` holds one `key address → value
//! hash` entry, framed `magic | key 32B | value 32B | crc32`; values
//! live under `<dir>/blobs/` in standard blob frames. Torn or
//! bit-rotted index frames are deleted and read as a miss — corruption
//! costs a recompute, never a wrong artifact, because the value fetch
//! re-verifies content hashes end to end.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::blobs::{crc32, hash_hex, sha256, BlobHash, BlobStats, BlobStore};

const INDEX_MAGIC: &[u8; 8] = b"FFISMEM1";

/// Hit/miss/invalidation counters for a [`MemoStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the store (memory or disk tier).
    pub hits: u64,
    /// Lookups that required a fresh computation.
    pub misses: u64,
    /// Cached sub-step artifacts a fault injection dirtied — the
    /// dirty-cascade counter, recorded by the campaign layer via
    /// [`MemoStore::note_invalidations`].
    pub invalidations: u64,
}

impl MemoStats {
    /// Merge another snapshot (for aggregating across stores/cells).
    pub fn merge(&mut self, other: &MemoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// Key → artifact memo store over a content-addressed blob tier.
#[derive(Debug)]
pub struct MemoStore {
    blobs: BlobStore,
    index: Mutex<HashMap<BlobHash, BlobHash>>,
    building: Mutex<HashMap<BlobHash, ()>>,
    cond: Condvar,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for MemoStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl MemoStore {
    /// Memory-only store (no persistence).
    pub fn in_memory() -> Self {
        MemoStore {
            blobs: BlobStore::in_memory(),
            index: Mutex::new(HashMap::new()),
            building: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Disk-backed store rooted at `dir` (created if missing). The
    /// directory may be shared by any number of processes; entries are
    /// published with temp-file + rename, so racing writers converge
    /// on identical frames.
    pub fn at_dir(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.join("index"))?;
        let blobs = BlobStore::at_dir(&dir.join("blobs"))?;
        let mut store = Self::in_memory();
        store.blobs = blobs;
        store.dir = Some(dir.to_path_buf());
        Ok(store)
    }

    /// The disk-tier root, when this store has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn index_path(&self, key: &BlobHash) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let hex = hash_hex(key);
        Some(dir.join("index").join(&hex[..2]).join(format!("{}.memo", hex)))
    }

    /// Look `key` up without counting a hit or miss (internal; the
    /// public entry points do the accounting).
    fn lookup(&self, key: &BlobHash) -> Option<Arc<Vec<u8>>> {
        let cached = self.index.lock().unwrap_or_else(|e| e.into_inner()).get(key).copied();
        let value_hash = match cached {
            Some(h) => h,
            None => {
                let h = self.load_index_frame(key)?;
                self.index.lock().unwrap_or_else(|e| e.into_inner()).insert(*key, h);
                h
            }
        };
        // A missing value blob (pruned or corrupt disk tier) degrades
        // to a miss: the caller recomputes and re-publishes.
        self.blobs.get(&value_hash)
    }

    fn load_index_frame(&self, key: &BlobHash) -> Option<BlobHash> {
        let path = self.index_path(key)?;
        let raw = std::fs::read(&path).ok()?;
        match decode_index_frame(&raw, key) {
            Some(value) => Some(value),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn publish(&self, key: BlobHash, value: &[u8]) {
        let value_hash = self.blobs.put(value);
        self.index.lock().unwrap_or_else(|e| e.into_inner()).insert(key, value_hash);
        if let Some(path) = self.index_path(&key) {
            // Best-effort persistence, like the blob tier: a failed
            // index write degrades sharing, never a campaign.
            let _ = write_index_frame(&path, &key, &value_hash);
        }
    }

    /// Fetch the artifact stored under `key_material`, counting a hit
    /// or miss.
    pub fn get(&self, key_material: &[u8]) -> Option<Arc<Vec<u8>>> {
        let key = sha256(key_material);
        match self.lookup(&key) {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `value` under `key_material` (no counters; pairs with a
    /// preceding [`MemoStore::get`] miss).
    pub fn put(&self, key_material: &[u8], value: &[u8]) {
        self.publish(sha256(key_material), value);
    }

    /// Fetch the artifact under `key_material`, computing and
    /// publishing it on a miss. Racing callers for the same key
    /// compute once: late arrivals block until the builder publishes.
    /// A failed computation propagates to its caller and wakes one
    /// waiter to take over the build.
    pub fn get_or_compute(
        &self,
        key_material: &[u8],
        compute: impl FnOnce() -> Result<Vec<u8>, String>,
    ) -> Result<Arc<Vec<u8>>, String> {
        let key = sha256(key_material);
        loop {
            if let Some(value) = self.lookup(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(value);
            }
            let mut building = self.building.lock().unwrap_or_else(|e| e.into_inner());
            if building.contains_key(&key) {
                let _guard = self.cond.wait(building).unwrap_or_else(|e| e.into_inner());
                continue; // re-check the index; builder may have failed
            }
            building.insert(key, ());
            break;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Clear the building mark on every exit path (including a
        // panicking `compute`) so waiters are never stranded.
        struct BuildGuard<'a> {
            store: &'a MemoStore,
            key: BlobHash,
        }
        impl Drop for BuildGuard<'_> {
            fn drop(&mut self) {
                self.store.building.lock().unwrap_or_else(|e| e.into_inner()).remove(&self.key);
                self.store.cond.notify_all();
            }
        }
        let _guard = BuildGuard { store: self, key };
        let value = compute()?;
        self.publish(key, &value);
        Ok(Arc::new(value))
    }

    /// Record `n` dirty-cascade invalidations (cached sub-step
    /// artifacts a fault injection made unusable for one run).
    pub fn note_invalidations(&self, n: u64) {
        self.invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` artifact reuses served from plan-resident handles to
    /// store entries — callers that pin `Arc`s to hot artifacts at
    /// plan time report their per-run reuse here instead of re-hashing
    /// the key on every run.
    pub fn note_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Accounting for the underlying value blob tier.
    pub fn blob_stats(&self) -> BlobStats {
        self.blobs.stats()
    }
}

fn write_index_frame(path: &Path, key: &BlobHash, value: &BlobHash) -> std::io::Result<()> {
    if path.exists() {
        return Ok(()); // Content-addressed: an existing frame is this frame.
    }
    let parent = path.parent().expect("index paths have a shard directory");
    std::fs::create_dir_all(parent)?;
    let mut frame = Vec::with_capacity(8 + 32 + 32 + 4);
    frame.extend_from_slice(INDEX_MAGIC);
    frame.extend_from_slice(key);
    frame.extend_from_slice(value);
    let crc = crc32(&frame[8..]);
    frame.extend_from_slice(&crc.to_le_bytes());
    let tmp = parent.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("memo")
    ));
    std::fs::write(&tmp, &frame)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn decode_index_frame(raw: &[u8], expect_key: &BlobHash) -> Option<BlobHash> {
    if raw.len() != 8 + 32 + 32 + 4 || &raw[..8] != INDEX_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(raw[72..76].try_into().ok()?);
    if crc32(&raw[8..72]) != crc || raw[8..40] != expect_key[..] {
        return None;
    }
    raw[40..72].try_into().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip_counts_hits_and_misses() {
        let store = MemoStore::in_memory();
        assert!(store.get(b"k1").is_none());
        store.put(b"k1", b"artifact-1");
        assert_eq!(store.get(b"k1").unwrap().as_slice(), b"artifact-1");
        assert_eq!(store.stats(), MemoStats { hits: 1, misses: 1, invalidations: 0 });
        store.note_invalidations(3);
        assert_eq!(store.stats().invalidations, 3);
    }

    #[test]
    fn identical_values_dedup_in_the_blob_tier() {
        let store = MemoStore::in_memory();
        store.put(b"key-a", b"same bytes");
        store.put(b"key-b", b"same bytes");
        let stats = store.blob_stats();
        assert_eq!(stats.blobs, 1);
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(store.get(b"key-a").unwrap(), store.get(b"key-b").unwrap());
    }

    #[test]
    fn get_or_compute_is_single_flight() {
        let store = Arc::new(MemoStore::in_memory());
        let computed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                store
                    .get_or_compute(b"shared-key", || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(b"built-once".to_vec())
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().as_slice(), b"built-once");
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn failed_compute_wakes_a_waiter_to_take_over() {
        let store = MemoStore::in_memory();
        let err = store.get_or_compute(b"k", || Err::<Vec<u8>, _>("boom".into())).unwrap_err();
        assert_eq!(err, "boom");
        // The key is not poisoned: the next caller computes fresh.
        let ok = store.get_or_compute(b"k", || Ok(b"second try".to_vec())).unwrap();
        assert_eq!(ok.as_slice(), b"second try");
    }

    #[test]
    fn disk_tier_survives_a_fresh_store_and_discards_corrupt_frames() {
        let dir = std::env::temp_dir().join(format!("ffis-memo-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = MemoStore::at_dir(&dir).unwrap();
            store.put(b"persisted", b"value-bytes");
        }
        let reopened = MemoStore::at_dir(&dir).unwrap();
        assert_eq!(reopened.get(b"persisted").unwrap().as_slice(), b"value-bytes");
        assert_eq!(reopened.stats().hits, 1);

        // Corrupt the index frame: the entry reads as a miss and the
        // frame is deleted, never a wrong artifact.
        let key = sha256(b"persisted");
        let hex = hash_hex(&key);
        let frame = dir.join("index").join(&hex[..2]).join(format!("{}.memo", hex));
        let mut bytes = std::fs::read(&frame).unwrap();
        bytes[40] ^= 0xFF;
        std::fs::write(&frame, &bytes).unwrap();
        let torn = MemoStore::at_dir(&dir).unwrap();
        assert!(torn.get(b"persisted").is_none());
        assert!(!frame.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
