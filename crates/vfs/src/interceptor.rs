//! Interception points on the FFISFS I/O path.
//!
//! Figure 3 of the paper shows FFIS "instrumenting" FUSE primitives:
//! the `FFIS_write` callback may modify the `buffer`, `size` and
//! `offset` parameters before forwarding to `pwrite`; `FFIS_mknod` may
//! modify `mode` and `dev` before forwarding to `mknod`/`mkfifo`.
//! The [`Interceptor`] trait is that instrumentation surface.

use crate::fs::Fd;

/// Enumeration of the instrumentable FUSE primitives.
///
/// `Write` covers both the sequential `write` and positioned `pwrite`
/// entry points — in FUSE both arrive at the same `FFIS_write`
/// callback, which is why the paper speaks of a single write primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Primitive {
    /// `getattr`.
    Getattr,
    /// `mknod` / `mkfifo`.
    Mknod,
    /// `mkdir`.
    Mkdir,
    /// `unlink`.
    Unlink,
    /// `rmdir`.
    Rmdir,
    /// `rename`.
    Rename,
    /// `chmod`.
    Chmod,
    /// `truncate`.
    Truncate,
    /// `create`.
    Create,
    /// `open`.
    Open,
    /// `read` / `pread`.
    Read,
    /// `write` / `pwrite` — the paper's principal injection target.
    Write,
    /// `fsync`.
    Fsync,
    /// `release`.
    Release,
    /// `readdir`.
    Readdir,
    /// `statfs`.
    Statfs,
    /// advisory `lock`.
    Lock,
    /// advisory `unlock`.
    Unlock,
}

/// All primitives, in a fixed order usable as a dense index.
pub const PRIMITIVES: [Primitive; 18] = [
    Primitive::Getattr,
    Primitive::Mknod,
    Primitive::Mkdir,
    Primitive::Unlink,
    Primitive::Rmdir,
    Primitive::Rename,
    Primitive::Chmod,
    Primitive::Truncate,
    Primitive::Create,
    Primitive::Open,
    Primitive::Read,
    Primitive::Write,
    Primitive::Fsync,
    Primitive::Release,
    Primitive::Readdir,
    Primitive::Statfs,
    Primitive::Lock,
    Primitive::Unlock,
];

impl Primitive {
    /// Dense index into [`PRIMITIVES`].
    pub fn index(self) -> usize {
        PRIMITIVES.iter().position(|&p| p == self).expect("primitive in table")
    }

    /// FFIS-style name (`FFIS_write`, ... — the paper's Table I naming).
    pub fn ffis_name(self) -> &'static str {
        match self {
            Primitive::Getattr => "FFIS_getattr",
            Primitive::Mknod => "FFIS_mknod",
            Primitive::Mkdir => "FFIS_mkdir",
            Primitive::Unlink => "FFIS_unlink",
            Primitive::Rmdir => "FFIS_rmdir",
            Primitive::Rename => "FFIS_rename",
            Primitive::Chmod => "FFIS_chmod",
            Primitive::Truncate => "FFIS_truncate",
            Primitive::Create => "FFIS_create",
            Primitive::Open => "FFIS_open",
            Primitive::Read => "FFIS_read",
            Primitive::Write => "FFIS_write",
            Primitive::Fsync => "FFIS_fsync",
            Primitive::Release => "FFIS_release",
            Primitive::Readdir => "FFIS_readdir",
            Primitive::Statfs => "FFIS_statfs",
            Primitive::Lock => "FFIS_lock",
            Primitive::Unlock => "FFIS_unlock",
        }
    }

    /// True for primitives that carry a data buffer toward the device
    /// (candidates for buffer-level fault models).
    pub fn carries_write_buffer(self) -> bool {
        matches!(self, Primitive::Write)
    }
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.ffis_name())
    }
}

/// Context describing one primitive invocation as it crosses FFISFS.
#[derive(Debug, Clone)]
pub struct CallContext {
    /// Which primitive.
    pub primitive: Primitive,
    /// Global sequence number across all primitives (1-based).
    pub seq: u64,
    /// Dynamic execution count of *this* primitive (1-based) — the
    /// quantity the paper's I/O profiler measures and the fault
    /// injector matches against.
    pub prim_seq: u64,
    /// Target path, when the primitive is path-addressed.
    pub path: Option<String>,
    /// File descriptor, when the primitive is fd-addressed.
    pub fd: Option<Fd>,
    /// Byte offset for positioned I/O.
    pub offset: Option<u64>,
    /// Buffer length for data-carrying primitives.
    pub len: usize,
}

/// What an interceptor tells FFISFS to do with the data a read-class
/// primitive is about to return.
///
/// The hook runs *after* the inner filesystem filled the caller's
/// buffer, so the on-device state is untouchable from here by
/// construction: read-site faults corrupt only the copy handed back to
/// the application — the silent-data-corruption-on-read regime, where
/// the stored bytes stay pristine and a later clean read would succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadAction {
    /// Deliver the (possibly in-place mutated) buffer with the inner
    /// filesystem's byte count. BIT FLIP and SHORN READ mutate
    /// `buf[..n]` in place and return this.
    Forward,
    /// Drop the device transfer: restore the caller's buffer to its
    /// pre-call bytes (the stale application buffer an ignored DMA
    /// leaves behind) while reporting `reported_len` bytes read — the
    /// DROPPED READ mirror of DROPPED WRITE's "ignored, success
    /// reported". Requires a pre-call snapshot; interceptors returning
    /// this must opt in via [`Interceptor::wants_read_snapshot`]
    /// (without one the mount degrades the stale region to zeros).
    /// The reported length is clamped to the inner filesystem's byte
    /// count — a fault can lie about content, not conjure bytes the
    /// device never transferred.
    Stale {
        /// Length reported back to the application.
        reported_len: usize,
    },
    /// Report a short transfer: deliver only `reported_len` bytes
    /// (clamped to the inner count) of the filled buffer; the tail
    /// beyond it is restored/zeroed like [`ReadAction::Stale`].
    ///
    /// Cursor caveat: on the *sequential* `read` path the inner
    /// filesystem has already advanced the descriptor cursor by the
    /// full inner count — the short report models a device that
    /// transferred and then discarded the tail, not a POSIX short read
    /// a caller could resume from. Positioned `pread` (what every
    /// workload in this workspace uses) has no cursor and is
    /// unaffected.
    Short {
        /// Length reported back to the application.
        reported_len: usize,
    },
}

/// What an interceptor tells FFISFS to do with a write-class call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteAction {
    /// Forward unchanged.
    Forward,
    /// Forward a *different* buffer to the device, while reporting
    /// `reported_len` bytes written back to the caller. Models silent
    /// bit corruption and shorn writes (the caller believes the full
    /// write succeeded).
    Replace {
        /// Bytes that actually reach the device.
        buf: Vec<u8>,
        /// Length reported back to the application.
        reported_len: usize,
    },
    /// Skip the device write entirely and report `reported_len`
    /// success — the paper's DROPPED WRITE ("the write operation is
    /// ignored ... sets the return value ... to the original size").
    Drop {
        /// Length reported back to the application.
        reported_len: usize,
    },
}

/// Hooks invoked by [`crate::FfisFs`] on every primitive crossing.
///
/// All hooks default to pass-through, so an interceptor implements only
/// what it instruments. Hooks receive `&self`; implementations use
/// interior mutability (the mount shares one interceptor across the
/// whole run).
pub trait Interceptor: Send + Sync {
    /// Observe any primitive invocation (profiling, tracing).
    fn on_call(&self, _cx: &CallContext) {}

    /// Intercept a write-class primitive carrying a data buffer.
    fn on_write(&self, _cx: &CallContext, _buf: &[u8]) -> WriteAction {
        WriteAction::Forward
    }

    /// Intercept the data *returned* by a read-class primitive (the
    /// paper's abstract: FFIS "plant\[s\] different I/O related faults
    /// into the data returned from underlying file systems"). Called
    /// after the inner filesystem filled `buf[..n]`; the hook may
    /// mutate those bytes in place and/or change the reported transfer
    /// via the returned [`ReadAction`]. The first non-`Forward` action
    /// wins, mirroring [`Interceptor::on_write`].
    fn on_read(&self, _cx: &CallContext, _buf: &mut [u8], _n: usize) -> ReadAction {
        ReadAction::Forward
    }

    /// Opt in to a pre-call buffer snapshot for *this* read crossing.
    /// [`crate::FfisFs`] asks after [`Interceptor::on_call`] ran (so
    /// an injector already knows whether this crossing is its armed
    /// instance) and copies the caller's buffer only on a `true`, so
    /// [`ReadAction::Stale`] can restore the exact stale bytes without
    /// taxing any other read of the run.
    fn wants_read_snapshot(&self, _cx: &CallContext) -> bool {
        false
    }

    /// Rewrite `mknod` parameters (paper Fig. 3b: `mode`, `dev`).
    fn on_mknod(&self, _cx: &CallContext, _mode: &mut u32, _dev: &mut u64) {}

    /// Rewrite `chmod` parameters.
    fn on_chmod(&self, _cx: &CallContext, _mode: &mut u32) {}

    /// Rewrite `truncate` parameters.
    fn on_truncate(&self, _cx: &CallContext, _size: &mut u64) {}

    /// Opt in to [`Interceptor::on_op`] delivery. [`crate::FfisFs`]
    /// only materializes [`TraceOp`](crate::trace::TraceOp)s (which
    /// clone write buffers) when at least one attached interceptor
    /// returns `true`, keeping the interception hot path allocation-
    /// free for profilers and injectors.
    fn wants_ops(&self) -> bool {
        false
    }

    /// Observe a successful state-mutating primitive as a replayable
    /// [`TraceOp`](crate::trace::TraceOp) — the golden-trace capture
    /// surface. Delivered only when [`Interceptor::wants_ops`] is
    /// `true` for some attached interceptor; the op records the call
    /// *as the application issued it* (pre-interception).
    fn on_op(&self, _op: &crate::trace::TraceOp) {}
}

/// A no-op interceptor (useful as a default and in tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullInterceptor;

impl Interceptor for NullInterceptor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_index_is_dense_and_stable() {
        for (i, p) in PRIMITIVES.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Primitive::Write.index(), 11);
    }

    #[test]
    fn ffis_names_unique_and_prefixed() {
        let mut names: Vec<_> = PRIMITIVES.iter().map(|p| p.ffis_name()).collect();
        assert!(names.iter().all(|n| n.starts_with("FFIS_")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PRIMITIVES.len());
    }

    #[test]
    fn only_write_carries_buffer() {
        for p in PRIMITIVES {
            assert_eq!(p.carries_write_buffer(), p == Primitive::Write);
        }
    }

    #[test]
    fn null_interceptor_forwards() {
        let n = NullInterceptor;
        let cx = CallContext {
            primitive: Primitive::Write,
            seq: 1,
            prim_seq: 1,
            path: None,
            fd: Some(3),
            offset: Some(0),
            len: 4,
        };
        assert_eq!(n.on_write(&cx, b"data"), WriteAction::Forward);
    }
}
