//! # ffis-vfs — user-space filesystem substrate for FFIS
//!
//! The FFIS paper ("Characterizing Impacts of Storage Faults on HPC
//! Applications", CLUSTER 2021) interposes on application I/O with a
//! FUSE-based user-space filesystem ("FFISFS"). FUSE's role there is
//! purely to provide a *chokepoint*: every file-operation primitive
//! (`open`, `read`, `write`, `mknod`, `chmod`, ...) issued by an
//! unmodified application passes through user-space callbacks where
//! faults can be planted (paper §II, §III-A, requirements R1/R2).
//!
//! This crate reproduces that chokepoint in-process:
//!
//! * [`FileSystem`] — the FUSE primitive vocabulary as an object-safe
//!   trait. Applications in this workspace are written once against
//!   `&dyn FileSystem` and never know whether they run on a pristine
//!   filesystem or a fault-injected mount (transparency, R1).
//! * [`MemFs`] — the reference implementation: a thread-safe in-memory
//!   inode filesystem with 512-byte sector granularity on file contents
//!   (so shorn writes have a physical granularity to respect), POSIX-ish
//!   semantics (short reads at EOF, `O_APPEND`, advisory file locks used
//!   by the HDF5 writer's lock/write/unlock protocol).
//! * [`FfisFs`] — the mountable wrapper ("FFISFS"): forwards every
//!   primitive to an inner [`FileSystem`] through a chain of
//!   [`Interceptor`]s, maintains per-primitive dynamic execution
//!   counters (the I/O profiler's data source), and enforces the
//!   mount/unmount-per-run lifecycle the paper uses.
//! * [`Interceptor`] — observe or rewrite a primitive invocation:
//!   forward unchanged, replace the buffer (bit flips, shorn writes),
//!   drop the device write while reporting success (dropped writes),
//!   or corrupt the data *returned* by a read while the stored bytes
//!   stay pristine ([`ReadAction`] — the read-site fault surface).
//!
//! ## Snapshot forking and golden-trace replay
//!
//! Injection campaigns repeat the same fault-free prefix thousands of
//! times. Two mechanisms in this crate collapse that cost:
//!
//! * **Copy-on-write forking** — [`MemFs`] stores file contents as
//!   4-KiB page extents behind `Arc`s ([`SectorFile`]), so
//!   [`MemFs::fork`] clones a whole filesystem — open descriptors and
//!   all — by copying page *pointers*. Pages are duplicated lazily on
//!   first write; an injection run that corrupts one metadata byte
//!   dirties exactly one page of the shared golden snapshot.
//! * **Golden-trace capture/replay** ([`trace`]) — a [`TraceRecorder`]
//!   attached to the golden run captures every state-mutating
//!   primitive (with its full write payload) as a replayable
//!   [`TraceOp`] stream; a [`ReplayCursor`] re-issues any slice of
//!   that stream against a bare [`MemFs`] (snapshot construction at
//!   memcpy speed) or through a mounted [`FfisFs`] with an armed
//!   injector (the fault lands in exactly the targeted instance).
//!
//! Together they turn a per-run cost of "re-execute the application"
//! into "fork + replay the post-injection suffix + verify" — see
//! `ffis_core::metadata_scan` for the end-to-end fast path.
//!
//! The fault *models* themselves live in `ffis-core`; this crate only
//! provides the mechanism.
//!
//! ```
//! use ffis_vfs::{MemFs, FfisFs, FileSystem, OpenFlags};
//! use std::sync::Arc;
//!
//! let ffs = FfisFs::mount(Arc::new(MemFs::new()));
//! let fd = ffs.create("/data.bin", 0o644).unwrap();
//! ffs.pwrite(fd, b"hello storage faults", 0).unwrap();
//! ffs.release(fd).unwrap();
//!
//! let fd = ffs.open("/data.bin", OpenFlags::read_only()).unwrap();
//! let mut buf = vec![0u8; 20];
//! let n = ffs.pread(fd, &mut buf, 0).unwrap();
//! assert_eq!(&buf[..n], b"hello storage faults");
//! ffs.unmount();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blobs;
pub mod bufio;
pub mod counting;
pub mod error;
pub mod ffisfs;
pub mod file;
pub mod fs;
pub mod inode;
pub mod interceptor;
pub mod memfs;
pub mod memo;
pub mod path;
pub mod trace;
mod wire;

pub use blobs::{BlobHash, BlobStats, BlobStore};
pub use bufio::BufFile;
pub use counting::{TraceInterceptor, TraceRecord};
pub use error::{FsError, FsResult};
pub use ffisfs::{CounterSnapshot, DeadlineExceeded, FfisFs, FuelExhausted};
pub use file::{SectorFile, BLOCK_SIZE, SECTOR_SIZE};
pub use fs::{
    DirEntry, Fd, FileSystem, FileSystemExt, LockKind, Metadata, NodeKind, OpenFlags, StatFs,
};
pub use interceptor::{CallContext, Interceptor, Primitive, ReadAction, WriteAction, PRIMITIVES};
pub use memfs::MemFs;
pub use memo::{MemoStats, MemoStore};
pub use trace::{
    BatchFork, BatchForks, CheckpointStore, CoalesceStats, Placement, ReadLedger, ReadRecord,
    ReplayCursor, ReplayError, TraceCheckpoint, TraceCheckpoints, TraceOp, TraceRecorder,
};
