//! The `FileSystem` trait: the FUSE primitive vocabulary.
//!
//! Table I of the paper lists the FUSE primitives FFIS instruments
//! (`FFIS_write`, `FFIS_mknod`, `FFIS_chmod`, ...). This trait is that
//! vocabulary as an object-safe Rust trait; applications talk to
//! `&dyn FileSystem` and therefore run unmodified on either the bare
//! [`crate::MemFs`] or a fault-injected [`crate::FfisFs`] mount —
//! the paper's transparency requirement (R1) and deployment-convenience
//! requirement (R2).

use crate::error::{FsError, FsResult};

/// File descriptor handed out by `open`/`create`.
pub type Fd = u64;

/// Kind of filesystem node. `mknod` can create any non-directory kind,
/// matching the FUSE callback of the same name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Named pipe (`mkfifo`).
    Fifo,
    /// Character device node.
    CharDev,
    /// Block device node.
    BlockDev,
}

impl NodeKind {
    /// True for kinds that carry byte contents.
    pub fn has_data(self) -> bool {
        matches!(self, NodeKind::File)
    }
}

/// Open flags. A plain struct rather than a bitfield so invalid
/// combinations are caught at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    /// Allow reads through the returned descriptor.
    pub read: bool,
    /// Allow writes through the returned descriptor.
    pub write: bool,
    /// Create the file if missing (`O_CREAT`).
    pub create: bool,
    /// Truncate to zero length on open (`O_TRUNC`).
    pub truncate: bool,
    /// All writes append at EOF (`O_APPEND`).
    pub append: bool,
    /// With `create`: fail if the file exists (`O_EXCL`).
    pub excl: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            write: false,
            create: false,
            truncate: false,
            append: false,
            excl: false,
        }
    }

    /// `O_WRONLY`.
    pub fn write_only() -> Self {
        OpenFlags {
            read: false,
            write: true,
            create: false,
            truncate: false,
            append: false,
            excl: false,
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: false,
            truncate: false,
            append: false,
            excl: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the classic "create for writing".
    pub fn create_truncate() -> Self {
        OpenFlags {
            read: false,
            write: true,
            create: true,
            truncate: true,
            append: false,
            excl: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND` — log-file style.
    pub fn append() -> Self {
        OpenFlags {
            read: false,
            write: true,
            create: true,
            truncate: false,
            append: true,
            excl: false,
        }
    }

    /// Validate the combination.
    pub fn validate(&self) -> FsResult<()> {
        if !self.read && !self.write {
            return Err(FsError::InvalidArgument);
        }
        if self.excl && !self.create {
            return Err(FsError::InvalidArgument);
        }
        if (self.truncate || self.append) && !self.write {
            return Err(FsError::InvalidArgument);
        }
        Ok(())
    }
}

/// `stat`-style node metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: u64,
    /// Node kind.
    pub kind: NodeKind,
    /// Size in bytes (0 for non-file kinds).
    pub size: u64,
    /// Permission bits (e.g. `0o644`).
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Modification stamp (logical clock ticks, not wall time —
    /// campaigns must be bitwise reproducible).
    pub mtime: u64,
    /// Device number for device nodes, 0 otherwise.
    pub rdev: u64,
}

/// One `readdir` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (single component).
    pub name: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Inode number.
    pub ino: u64,
}

/// `statfs` summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatFs {
    /// Total bytes stored across all regular files.
    pub bytes_used: u64,
    /// Number of inodes in the filesystem.
    pub inodes: u64,
    /// Device block size.
    pub block_size: u64,
}

/// Advisory lock kinds (`flock`-style). The HDF5 writer takes an
/// exclusive lock for the duration of file creation (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Shared (read) lock; multiple holders allowed.
    Shared,
    /// Exclusive (write) lock; sole holder.
    Exclusive,
}

/// The FUSE primitive vocabulary as an object-safe trait.
///
/// Every method corresponds to a FUSE callback the paper's FFISFS
/// implements; [`crate::FfisFs`] interposes on each of them.
pub trait FileSystem: Send + Sync {
    /// `getattr` — stat a path.
    fn getattr(&self, path: &str) -> FsResult<Metadata>;
    /// `mknod` — create a file/FIFO/device node.
    fn mknod(&self, path: &str, kind: NodeKind, mode: u32, dev: u64) -> FsResult<()>;
    /// `mkdir`.
    fn mkdir(&self, path: &str, mode: u32) -> FsResult<()>;
    /// `unlink` — remove a non-directory node.
    fn unlink(&self, path: &str) -> FsResult<()>;
    /// `rmdir` — remove an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;
    /// `rename` — move/replace.
    fn rename(&self, from: &str, to: &str) -> FsResult<()>;
    /// `chmod` — change permission bits.
    fn chmod(&self, path: &str, mode: u32) -> FsResult<()>;
    /// `truncate` by path.
    fn truncate(&self, path: &str, size: u64) -> FsResult<()>;
    /// `create` — create-and-open a regular file for writing
    /// (`O_WRONLY|O_CREAT|O_TRUNC` semantics).
    fn create(&self, path: &str, mode: u32) -> FsResult<Fd>;
    /// `open` an existing node (or create per flags).
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;
    /// Sequential `read` at the descriptor cursor.
    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize>;
    /// Positioned read (`pread`); does not move the cursor.
    fn pread(&self, fd: Fd, buf: &mut [u8], offset: u64) -> FsResult<usize>;
    /// Sequential `write` at the descriptor cursor (or EOF with append).
    fn write(&self, fd: Fd, buf: &[u8]) -> FsResult<usize>;
    /// Positioned write (`pwrite`); does not move the cursor. This is
    /// the primitive the paper's fault models target (§IV-B).
    fn pwrite(&self, fd: Fd, buf: &[u8], offset: u64) -> FsResult<usize>;
    /// Vectored sequential write (`writev`): apply `bufs` in order at
    /// the descriptor cursor, returning the total bytes written. The
    /// default loops [`FileSystem::write`]; implementations may batch
    /// (one lock, one timestamp tick) — replay coalescing relies on
    /// the result being byte-identical to the loop.
    fn writev(&self, fd: Fd, bufs: &[&[u8]]) -> FsResult<usize> {
        let mut total = 0;
        for buf in bufs {
            let n = self.write(fd, buf)?;
            total += n;
            if n != buf.len() {
                break;
            }
        }
        Ok(total)
    }
    /// Vectored positioned write (`pwritev`): apply `bufs` back to
    /// back starting at `offset` without moving the cursor, returning
    /// the total bytes written. Default loops [`FileSystem::pwrite`];
    /// same byte-identity contract as [`FileSystem::writev`].
    fn pwritev(&self, fd: Fd, bufs: &[&[u8]], offset: u64) -> FsResult<usize> {
        let mut total = 0;
        let mut off = offset;
        for buf in bufs {
            let n = self.pwrite(fd, buf, off)?;
            total += n;
            off += n as u64;
            if n != buf.len() {
                break;
            }
        }
        Ok(total)
    }
    /// `fsync` — flush (a no-op barrier for the in-memory store, but
    /// counted: it is an instrumentable primitive).
    fn fsync(&self, fd: Fd) -> FsResult<()>;
    /// `release` — close the descriptor, dropping any lock it holds.
    fn release(&self, fd: Fd) -> FsResult<()>;
    /// `readdir` — list a directory (sorted by name).
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;
    /// `statfs`.
    fn statfs(&self) -> FsResult<StatFs>;
    /// Acquire an advisory lock on the node behind `fd`.
    fn lock(&self, fd: Fd, kind: LockKind) -> FsResult<()>;
    /// Release the advisory lock held via `fd`.
    fn unlock(&self, fd: Fd) -> FsResult<()>;
}

/// Convenience operations composed from the primitive vocabulary.
///
/// These helpers are *not* part of the instrumentable surface — they
/// expand to primitive calls, each of which is individually intercepted
/// and counted, exactly like `libc` wrappers over syscalls.
pub trait FileSystemExt: FileSystem {
    /// Read an entire file into memory.
    fn read_to_vec(&self, path: &str) -> FsResult<Vec<u8>> {
        let meta = self.getattr(path)?;
        if meta.kind != NodeKind::File {
            return Err(FsError::IsADirectory);
        }
        let fd = self.open(path, OpenFlags::read_only())?;
        let mut out = vec![0u8; meta.size as usize];
        let mut done = 0usize;
        while done < out.len() {
            let n = self.pread(fd, &mut out[done..], done as u64)?;
            if n == 0 {
                out.truncate(done);
                break;
            }
            done += n;
        }
        self.release(fd)?;
        Ok(out)
    }

    /// Create `path` and write `data` in `chunk`-byte `pwrite` calls.
    ///
    /// HPC I/O libraries issue many block-sized writes; writing in
    /// chunks gives the fault injector a realistic population of write
    /// instances to sample from (requirement R4: uniform coverage over
    /// the set of file operations).
    fn write_file_chunked(&self, path: &str, data: &[u8], chunk: usize) -> FsResult<()> {
        let chunk = chunk.max(1);
        let fd = self.create(path, 0o644)?;
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + chunk).min(data.len());
            let n = self.pwrite(fd, &data[off..end], off as u64)?;
            if n == 0 {
                self.release(fd)?;
                return Err(FsError::Io);
            }
            off += n;
        }
        self.fsync(fd)?;
        self.release(fd)?;
        Ok(())
    }

    /// Whole-file write in a single `pwrite`.
    fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        self.write_file_chunked(path, data, data.len().max(1))
    }

    /// Does the path exist?
    fn exists(&self, path: &str) -> bool {
        self.getattr(path).is_ok()
    }

    /// Read a UTF-8 text file.
    fn read_to_string(&self, path: &str) -> FsResult<String> {
        String::from_utf8(self.read_to_vec(path)?).map_err(|_| FsError::Io)
    }

    /// Recursively create directories (like `mkdir -p`).
    fn mkdir_all(&self, path: &str) -> FsResult<()> {
        let comps = crate::path::components(path)?;
        let mut cur = String::new();
        for c in &comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(&cur, 0o755) {
                Ok(()) | Err(FsError::Exists) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl<T: FileSystem + ?Sized> FileSystemExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_validation() {
        assert!(OpenFlags::read_only().validate().is_ok());
        assert!(OpenFlags::write_only().validate().is_ok());
        assert!(OpenFlags::read_write().validate().is_ok());
        assert!(OpenFlags::create_truncate().validate().is_ok());
        assert!(OpenFlags::append().validate().is_ok());

        let no_access = OpenFlags {
            read: false,
            write: false,
            create: false,
            truncate: false,
            append: false,
            excl: false,
        };
        assert_eq!(no_access.validate(), Err(FsError::InvalidArgument));

        let excl_without_create = OpenFlags { excl: true, ..OpenFlags::read_write() };
        assert_eq!(excl_without_create.validate(), Err(FsError::InvalidArgument));

        let trunc_readonly = OpenFlags { truncate: true, ..OpenFlags::read_only() };
        assert_eq!(trunc_readonly.validate(), Err(FsError::InvalidArgument));
    }

    #[test]
    fn node_kind_data() {
        assert!(NodeKind::File.has_data());
        assert!(!NodeKind::Dir.has_data());
        assert!(!NodeKind::Fifo.has_data());
        assert!(!NodeKind::CharDev.has_data());
        assert!(!NodeKind::BlockDev.has_data());
    }
}
