//! `MemFs` — the reference in-memory filesystem.
//!
//! Plays the role of the "underline file system" in Figure 2 of the
//! paper (the client the FUSE daemon forwards to — ext4/lustre/GPFS in
//! the authors' deployments). Semantics are deliberately POSIX-ish:
//! short reads at EOF, sparse writes, `O_APPEND`, advisory `flock`-style
//! locks, and a logical (not wall-clock) mtime so every campaign run is
//! bitwise reproducible.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::error::{FsError, FsResult};
use crate::file::{Page, SectorFile, BLOCK_SIZE};
use crate::fs::{DirEntry, Fd, FileSystem, LockKind, Metadata, NodeKind, OpenFlags, StatFs};
use crate::inode::{Ino, Inode, NodeData, ROOT_INO};
use crate::path;
use crate::wire;

/// Open-descriptor state.
#[derive(Debug, Clone)]
struct Handle {
    ino: Ino,
    flags: OpenFlags,
    cursor: u64,
    /// Lock kind held through this descriptor, if any.
    lock: Option<LockKind>,
}

/// Per-inode advisory lock state.
#[derive(Debug, Clone, Copy, Default)]
struct LockState {
    shared: u32,
    exclusive: bool,
}

#[derive(Debug, Clone)]
struct MemFsInner {
    inodes: HashMap<Ino, Inode>,
    next_ino: Ino,
    handles: HashMap<Fd, Handle>,
    next_fd: Fd,
    locks: HashMap<Ino, LockState>,
    /// Logical clock; bumped on every mutation.
    clock: u64,
}

impl MemFsInner {
    fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, Inode::dir(ROOT_INO, 0o755, 0));
        MemFsInner {
            inodes,
            next_ino: ROOT_INO + 1,
            handles: HashMap::new(),
            next_fd: 3,
            locks: HashMap::new(),
            clock: 1,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        ino
    }

    fn alloc_fd(&mut self) -> Fd {
        let fd = self.next_fd;
        self.next_fd += 1;
        fd
    }

    /// Resolve a path to an inode number.
    fn resolve(&self, p: &str) -> FsResult<Ino> {
        let comps = path::components(p)?;
        let mut cur = ROOT_INO;
        for c in &comps {
            let node = self.inodes.get(&cur).ok_or(FsError::NotFound)?;
            let dir = node.as_dir().ok_or(FsError::NotADirectory)?;
            cur = *dir.get(c).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Resolve the parent directory of a path; returns (parent ino, final name).
    fn resolve_parent(&self, p: &str) -> FsResult<(Ino, String)> {
        let (parent_comps, name) = path::split_parent(p)?;
        let joined = path::join(&parent_comps);
        let parent = self.resolve(&joined)?;
        let node = self.inodes.get(&parent).ok_or(FsError::NotFound)?;
        if node.as_dir().is_none() {
            return Err(FsError::NotADirectory);
        }
        Ok((parent, name))
    }

    fn insert_child(&mut self, parent: Ino, name: &str, child: Ino) -> FsResult<()> {
        let t = self.tick();
        let dir = self.inodes.get_mut(&parent).ok_or(FsError::NotFound)?;
        dir.mtime = t;
        let map = dir.as_dir_mut().ok_or(FsError::NotADirectory)?;
        if map.contains_key(name) {
            return Err(FsError::Exists);
        }
        map.insert(name.to_string(), child);
        Ok(())
    }

    fn handle(&self, fd: Fd) -> FsResult<&Handle> {
        self.handles.get(&fd).ok_or(FsError::BadFd)
    }
}

/// Thread-safe in-memory filesystem. Cheap to construct — campaigns
/// build a fresh one per injection run, mirroring the paper's
/// mount/unmount-per-run protocol.
#[derive(Debug)]
pub struct MemFs {
    inner: RwLock<MemFsInner>,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// Empty filesystem containing only `/`.
    pub fn new() -> Self {
        MemFs { inner: RwLock::new(MemFsInner::new()) }
    }

    fn read_lock(&self) -> std::sync::RwLockReadGuard<'_, MemFsInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_lock(&self) -> std::sync::RwLockWriteGuard<'_, MemFsInner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Direct snapshot of a file's bytes (test/analysis convenience;
    /// not an instrumented primitive).
    pub fn snapshot(&self, p: &str) -> FsResult<Vec<u8>> {
        let g = self.read_lock();
        let ino = g.resolve(p)?;
        let node = g.inodes.get(&ino).ok_or(FsError::NotFound)?;
        node.as_file().map(|f| f.to_vec()).ok_or(FsError::IsADirectory)
    }

    /// Copy-on-write fork: an independent filesystem sharing all file
    /// pages with `self` until either side writes.
    ///
    /// The clone copies the inode table, directory maps, open-handle
    /// table, and lock state, but file contents are page-extent `Arc`
    /// clones ([`crate::SectorFile`]), so the cost is O(inodes + page
    /// *pointers*) — no file byte is touched. A fork taken mid-run
    /// (open descriptors and all) is the substrate of the golden-trace
    /// replay engine: every injection run forks the pristine snapshot
    /// instead of re-executing the application's fault-free prefix.
    pub fn fork(&self) -> MemFs {
        MemFs { inner: RwLock::new(self.read_lock().clone()) }
    }

    /// Total pages across all regular files whose backing allocation
    /// is still shared with another fork (CoW accounting; used by
    /// tests and capacity diagnostics).
    pub fn shared_pages(&self) -> usize {
        let g = self.read_lock();
        g.inodes.values().filter_map(Inode::as_file).map(|f| f.shared_pages()).sum()
    }

    /// Number of currently open descriptors (leak checking in tests).
    pub fn open_handles(&self) -> usize {
        self.read_lock().handles.len()
    }

    /// Serialize the complete filesystem state — inode table,
    /// directory maps, open handles (with cursors and held locks),
    /// advisory lock state, and the allocation/clock counters — into a
    /// deterministic byte image. File contents are externalized
    /// page-by-page through `put_page`, which returns each page's
    /// content address; the image stores only the 32-byte addresses,
    /// so identical pages across files, checkpoints, and campaigns
    /// dedupe in the blob store. Iteration is sorted, so the same
    /// state always encodes to the same bytes.
    pub(crate) fn export_image(&self, put_page: &mut dyn FnMut(&[u8]) -> [u8; 32]) -> Vec<u8> {
        let g = self.read_lock();
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, g.next_ino);
        wire::put_u64(&mut buf, g.next_fd);
        wire::put_u64(&mut buf, g.clock);

        let mut inos: Vec<&Inode> = g.inodes.values().collect();
        inos.sort_by_key(|n| n.ino);
        wire::put_u32(&mut buf, inos.len() as u32);
        for node in inos {
            wire::put_u64(&mut buf, node.ino);
            wire::put_u8(&mut buf, kind_code(node.kind));
            wire::put_u32(&mut buf, node.mode);
            wire::put_u32(&mut buf, node.nlink);
            wire::put_u64(&mut buf, node.mtime);
            wire::put_u64(&mut buf, node.rdev);
            match &node.data {
                NodeData::Bytes(f) => {
                    wire::put_u8(&mut buf, 0);
                    wire::put_u64(&mut buf, f.len());
                    wire::put_u32(&mut buf, f.pages().len() as u32);
                    for page in f.pages() {
                        buf.extend_from_slice(&put_page(&page[..]));
                    }
                }
                NodeData::Dir(map) => {
                    wire::put_u8(&mut buf, 1);
                    wire::put_u32(&mut buf, map.len() as u32);
                    for (name, child) in map {
                        wire::put_str(&mut buf, name);
                        wire::put_u64(&mut buf, *child);
                    }
                }
                NodeData::None => wire::put_u8(&mut buf, 2),
            }
        }

        let mut fds: Vec<(&Fd, &Handle)> = g.handles.iter().collect();
        fds.sort_by_key(|(fd, _)| **fd);
        wire::put_u32(&mut buf, fds.len() as u32);
        for (fd, h) in fds {
            wire::put_u64(&mut buf, *fd);
            wire::put_u64(&mut buf, h.ino);
            wire::put_u8(&mut buf, flags_code(&h.flags));
            wire::put_u64(&mut buf, h.cursor);
            wire::put_u8(&mut buf, lock_code(h.lock));
        }

        let mut locks: Vec<(&Ino, &LockState)> = g.locks.iter().collect();
        locks.sort_by_key(|(ino, _)| **ino);
        wire::put_u32(&mut buf, locks.len() as u32);
        for (ino, st) in locks {
            wire::put_u64(&mut buf, *ino);
            wire::put_u32(&mut buf, st.shared);
            wire::put_u8(&mut buf, u8::from(st.exclusive));
        }
        buf
    }

    /// Reconstruct a filesystem from an [`MemFs::export_image`] byte
    /// image, resolving page addresses through `get_page`. Returns
    /// `None` on any structural damage, invariant violation, or
    /// unresolvable page — a corrupt image decodes to "rebuild", never
    /// to a half-restored filesystem.
    pub(crate) fn import_image(
        image: &[u8],
        get_page: &mut dyn FnMut(&[u8; 32]) -> Option<Arc<Page>>,
    ) -> Option<MemFs> {
        let mut r = wire::Reader::new(image);
        let next_ino = r.u64()?;
        let next_fd = r.u64()?;
        let clock = r.u64()?;

        let n_inodes = r.u32()? as usize;
        let mut inodes = HashMap::with_capacity(n_inodes);
        for _ in 0..n_inodes {
            let ino = r.u64()?;
            let kind = kind_from_code(r.u8()?)?;
            let mode = r.u32()?;
            let nlink = r.u32()?;
            let mtime = r.u64()?;
            let rdev = r.u64()?;
            let data = match r.u8()? {
                0 => {
                    let len = r.u64()?;
                    let n_pages = r.u32()? as usize;
                    let mut pages = Vec::with_capacity(n_pages);
                    for _ in 0..n_pages {
                        let hash: [u8; 32] = r.bytes(32)?.try_into().ok()?;
                        pages.push(get_page(&hash)?);
                    }
                    NodeData::Bytes(SectorFile::from_pages(pages, len)?)
                }
                1 => {
                    let n = r.u32()? as usize;
                    let mut map = BTreeMap::new();
                    for _ in 0..n {
                        let name = r.str_()?;
                        let child = r.u64()?;
                        map.insert(name, child);
                    }
                    NodeData::Dir(map)
                }
                2 => NodeData::None,
                _ => return None,
            };
            inodes.insert(ino, Inode { ino, kind, mode, nlink, mtime, rdev, data });
        }
        if !inodes.contains_key(&ROOT_INO) {
            return None;
        }

        let n_handles = r.u32()? as usize;
        let mut handles = HashMap::with_capacity(n_handles);
        for _ in 0..n_handles {
            let fd = r.u64()?;
            let ino = r.u64()?;
            let flags = flags_from_code(r.u8()?)?;
            let cursor = r.u64()?;
            let lock = lock_from_code(r.u8()?)?;
            handles.insert(fd, Handle { ino, flags, cursor, lock });
        }

        let n_locks = r.u32()? as usize;
        let mut locks = HashMap::with_capacity(n_locks);
        for _ in 0..n_locks {
            let ino = r.u64()?;
            let shared = r.u32()?;
            let exclusive = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            locks.insert(ino, LockState { shared, exclusive });
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(MemFs {
            inner: RwLock::new(MemFsInner { inodes, next_ino, handles, next_fd, locks, clock }),
        })
    }
}

pub(crate) fn kind_code(k: NodeKind) -> u8 {
    match k {
        NodeKind::File => 0,
        NodeKind::Dir => 1,
        NodeKind::Fifo => 2,
        NodeKind::CharDev => 3,
        NodeKind::BlockDev => 4,
    }
}

pub(crate) fn kind_from_code(c: u8) -> Option<NodeKind> {
    Some(match c {
        0 => NodeKind::File,
        1 => NodeKind::Dir,
        2 => NodeKind::Fifo,
        3 => NodeKind::CharDev,
        4 => NodeKind::BlockDev,
        _ => return None,
    })
}

pub(crate) fn flags_code(f: &OpenFlags) -> u8 {
    u8::from(f.read)
        | u8::from(f.write) << 1
        | u8::from(f.create) << 2
        | u8::from(f.truncate) << 3
        | u8::from(f.append) << 4
        | u8::from(f.excl) << 5
}

pub(crate) fn flags_from_code(c: u8) -> Option<OpenFlags> {
    if c >= 64 {
        return None;
    }
    Some(OpenFlags {
        read: c & 1 != 0,
        write: c & 2 != 0,
        create: c & 4 != 0,
        truncate: c & 8 != 0,
        append: c & 16 != 0,
        excl: c & 32 != 0,
    })
}

pub(crate) fn lock_code(l: Option<LockKind>) -> u8 {
    match l {
        None => 0,
        Some(LockKind::Shared) => 1,
        Some(LockKind::Exclusive) => 2,
    }
}

pub(crate) fn lock_from_code(c: u8) -> Option<Option<LockKind>> {
    Some(match c {
        0 => None,
        1 => Some(LockKind::Shared),
        2 => Some(LockKind::Exclusive),
        _ => return None,
    })
}

impl FileSystem for MemFs {
    fn getattr(&self, p: &str) -> FsResult<Metadata> {
        let g = self.read_lock();
        let ino = g.resolve(p)?;
        Ok(g.inodes.get(&ino).ok_or(FsError::NotFound)?.metadata())
    }

    fn mknod(&self, p: &str, kind: NodeKind, mode: u32, dev: u64) -> FsResult<()> {
        if kind == NodeKind::Dir {
            return Err(FsError::InvalidArgument);
        }
        let mut g = self.write_lock();
        let (parent, name) = g.resolve_parent(p)?;
        let ino = g.alloc_ino();
        let t = g.tick();
        let node = match kind {
            NodeKind::File => Inode::file(ino, mode, t),
            k => Inode::special(ino, k, mode, dev, t),
        };
        g.inodes.insert(ino, node);
        if let Err(e) = g.insert_child(parent, &name, ino) {
            g.inodes.remove(&ino);
            return Err(e);
        }
        Ok(())
    }

    fn mkdir(&self, p: &str, mode: u32) -> FsResult<()> {
        let mut g = self.write_lock();
        let (parent, name) = g.resolve_parent(p)?;
        let ino = g.alloc_ino();
        let t = g.tick();
        g.inodes.insert(ino, Inode::dir(ino, mode, t));
        if let Err(e) = g.insert_child(parent, &name, ino) {
            g.inodes.remove(&ino);
            return Err(e);
        }
        if let Some(pn) = g.inodes.get_mut(&parent) {
            pn.nlink += 1; // `..` back-reference
        }
        Ok(())
    }

    fn unlink(&self, p: &str) -> FsResult<()> {
        let mut g = self.write_lock();
        let (parent, name) = g.resolve_parent(p)?;
        let child = {
            let dir = g.inodes.get(&parent).ok_or(FsError::NotFound)?;
            *dir.as_dir().ok_or(FsError::NotADirectory)?.get(&name).ok_or(FsError::NotFound)?
        };
        if g.inodes.get(&child).ok_or(FsError::NotFound)?.kind == NodeKind::Dir {
            return Err(FsError::IsADirectory);
        }
        let t = g.tick();
        if let Some(dirnode) = g.inodes.get_mut(&parent) {
            dirnode.mtime = t;
            dirnode.as_dir_mut().unwrap().remove(&name);
        }
        // Keep the inode alive while any handle references it (POSIX
        // unlink-while-open), reclaim otherwise.
        let still_open = g.handles.values().any(|h| h.ino == child);
        if !still_open {
            g.inodes.remove(&child);
            g.locks.remove(&child);
        } else if let Some(node) = g.inodes.get_mut(&child) {
            node.nlink = node.nlink.saturating_sub(1);
        }
        Ok(())
    }

    fn rmdir(&self, p: &str) -> FsResult<()> {
        let mut g = self.write_lock();
        let (parent, name) = g.resolve_parent(p)?;
        let child = {
            let dir = g.inodes.get(&parent).ok_or(FsError::NotFound)?;
            *dir.as_dir().ok_or(FsError::NotADirectory)?.get(&name).ok_or(FsError::NotFound)?
        };
        {
            let node = g.inodes.get(&child).ok_or(FsError::NotFound)?;
            let map = node.as_dir().ok_or(FsError::NotADirectory)?;
            if !map.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        let t = g.tick();
        if let Some(dirnode) = g.inodes.get_mut(&parent) {
            dirnode.mtime = t;
            dirnode.nlink = dirnode.nlink.saturating_sub(1);
            dirnode.as_dir_mut().unwrap().remove(&name);
        }
        g.inodes.remove(&child);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let mut g = self.write_lock();
        let (fparent, fname) = g.resolve_parent(from)?;
        let (tparent, tname) = g.resolve_parent(to)?;
        let child = {
            let dir = g.inodes.get(&fparent).ok_or(FsError::NotFound)?;
            *dir.as_dir().ok_or(FsError::NotADirectory)?.get(&fname).ok_or(FsError::NotFound)?
        };
        // Replace-target semantics: an existing non-directory target is
        // atomically unlinked; an existing directory target must be empty.
        if let Some(&existing) =
            g.inodes.get(&tparent).and_then(|n| n.as_dir()).and_then(|d| d.get(&tname))
        {
            if existing == child {
                return Ok(());
            }
            let enode = g.inodes.get(&existing).ok_or(FsError::NotFound)?;
            match &enode.data {
                NodeData::Dir(d) if !d.is_empty() => return Err(FsError::NotEmpty),
                _ => {}
            }
            g.inodes.remove(&existing);
            g.locks.remove(&existing);
        }
        let t = g.tick();
        if let Some(fp) = g.inodes.get_mut(&fparent) {
            fp.mtime = t;
            fp.as_dir_mut().unwrap().remove(&fname);
        }
        if let Some(tp) = g.inodes.get_mut(&tparent) {
            tp.mtime = t;
            tp.as_dir_mut().unwrap().insert(tname, child);
        }
        Ok(())
    }

    fn chmod(&self, p: &str, mode: u32) -> FsResult<()> {
        let mut g = self.write_lock();
        let ino = g.resolve(p)?;
        let t = g.tick();
        let node = g.inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
        node.mode = mode & 0o7777;
        node.mtime = t;
        Ok(())
    }

    fn truncate(&self, p: &str, size: u64) -> FsResult<()> {
        let mut g = self.write_lock();
        let ino = g.resolve(p)?;
        let t = g.tick();
        let node = g.inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
        node.mtime = t;
        node.as_file_mut().ok_or(FsError::IsADirectory)?.truncate(size)
    }

    fn create(&self, p: &str, mode: u32) -> FsResult<Fd> {
        let mut g = self.write_lock();
        let (parent, name) = g.resolve_parent(p)?;
        let existing =
            g.inodes.get(&parent).and_then(|n| n.as_dir()).and_then(|d| d.get(&name)).copied();
        let ino = match existing {
            Some(ino) => {
                let t = g.tick();
                let node = g.inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
                let f = node.as_file_mut().ok_or(FsError::IsADirectory)?;
                f.truncate(0)?;
                node.mtime = t;
                ino
            }
            None => {
                let ino = g.alloc_ino();
                let t = g.tick();
                g.inodes.insert(ino, Inode::file(ino, mode, t));
                if let Err(e) = g.insert_child(parent, &name, ino) {
                    g.inodes.remove(&ino);
                    return Err(e);
                }
                ino
            }
        };
        let fd = g.alloc_fd();
        g.handles
            .insert(fd, Handle { ino, flags: OpenFlags::create_truncate(), cursor: 0, lock: None });
        Ok(fd)
    }

    fn open(&self, p: &str, flags: OpenFlags) -> FsResult<Fd> {
        flags.validate()?;
        let mut g = self.write_lock();
        let ino = match g.resolve(p) {
            Ok(ino) => {
                if flags.excl && flags.create {
                    return Err(FsError::Exists);
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                let (parent, name) = g.resolve_parent(p)?;
                let ino = g.alloc_ino();
                let t = g.tick();
                g.inodes.insert(ino, Inode::file(ino, 0o644, t));
                if let Err(e) = g.insert_child(parent, &name, ino) {
                    g.inodes.remove(&ino);
                    return Err(e);
                }
                ino
            }
            Err(e) => return Err(e),
        };
        {
            let node = g.inodes.get(&ino).ok_or(FsError::NotFound)?;
            if node.kind == NodeKind::Dir {
                return Err(FsError::IsADirectory);
            }
        }
        if flags.truncate {
            let t = g.tick();
            let node = g.inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
            node.mtime = t;
            if let Some(f) = node.as_file_mut() {
                f.truncate(0)?;
            }
        }
        let fd = g.alloc_fd();
        g.handles.insert(fd, Handle { ino, flags, cursor: 0, lock: None });
        Ok(fd)
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let mut g = self.write_lock();
        let (ino, cursor, can_read) = {
            let h = g.handle(fd)?;
            (h.ino, h.cursor, h.flags.read)
        };
        if !can_read {
            return Err(FsError::PermissionDenied);
        }
        let node = g.inodes.get(&ino).ok_or(FsError::BadFd)?;
        let file = node.as_file().ok_or(FsError::IllegalSeek)?;
        let n = file.read_at(buf, cursor);
        if let Some(h) = g.handles.get_mut(&fd) {
            h.cursor += n as u64;
        }
        Ok(n)
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], offset: u64) -> FsResult<usize> {
        let g = self.read_lock();
        let h = g.handle(fd)?;
        if !h.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let node = g.inodes.get(&h.ino).ok_or(FsError::BadFd)?;
        let file = node.as_file().ok_or(FsError::IllegalSeek)?;
        Ok(file.read_at(buf, offset))
    }

    fn write(&self, fd: Fd, buf: &[u8]) -> FsResult<usize> {
        let mut g = self.write_lock();
        let (ino, mut cursor, flags) = {
            let h = g.handle(fd)?;
            (h.ino, h.cursor, h.flags)
        };
        if !flags.write {
            return Err(FsError::ReadOnly);
        }
        let t = g.tick();
        let node = g.inodes.get_mut(&ino).ok_or(FsError::BadFd)?;
        let file = node.as_file_mut().ok_or(FsError::IllegalSeek)?;
        if flags.append {
            cursor = file.len();
        }
        let n = file.write_at(buf, cursor)?;
        node.mtime = t;
        if let Some(h) = g.handles.get_mut(&fd) {
            h.cursor = cursor + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&self, fd: Fd, buf: &[u8], offset: u64) -> FsResult<usize> {
        let mut g = self.write_lock();
        let (ino, can_write) = {
            let h = g.handle(fd)?;
            (h.ino, h.flags.write)
        };
        if !can_write {
            return Err(FsError::ReadOnly);
        }
        let t = g.tick();
        let node = g.inodes.get_mut(&ino).ok_or(FsError::BadFd)?;
        let file = node.as_file_mut().ok_or(FsError::IllegalSeek)?;
        let n = file.write_at(buf, offset)?;
        node.mtime = t;
        Ok(n)
    }

    // The vectored overrides exist for replay coalescing: one lock
    // acquisition and one handle lookup for a whole run of adjacent
    // trace writes. Everything observable — clock ticks, mtime,
    // cursor motion, short-write behaviour — matches the trait's
    // write/pwrite loop byte for byte.
    fn writev(&self, fd: Fd, bufs: &[&[u8]]) -> FsResult<usize> {
        let mut g = self.write_lock();
        let (ino, mut cursor, flags) = {
            let h = g.handle(fd)?;
            (h.ino, h.cursor, h.flags)
        };
        if !flags.write {
            return Err(FsError::ReadOnly);
        }
        let mut total = 0;
        let mut result = Ok(());
        for buf in bufs {
            let t = g.tick();
            let node = match g.inodes.get_mut(&ino).ok_or(FsError::BadFd) {
                Ok(node) => node,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            let file = match node.as_file_mut().ok_or(FsError::IllegalSeek) {
                Ok(file) => file,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            if flags.append {
                cursor = file.len();
            }
            let n = match file.write_at(buf, cursor) {
                Ok(n) => n,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            node.mtime = t;
            cursor += n as u64;
            total += n;
            if n != buf.len() {
                break;
            }
        }
        // A mid-run failure still persists the cursor motion of the
        // buffers that landed, exactly like the looped default.
        if let Some(h) = g.handles.get_mut(&fd) {
            h.cursor = cursor;
        }
        result.map(|()| total)
    }

    fn pwritev(&self, fd: Fd, bufs: &[&[u8]], offset: u64) -> FsResult<usize> {
        let mut g = self.write_lock();
        let (ino, can_write) = {
            let h = g.handle(fd)?;
            (h.ino, h.flags.write)
        };
        if !can_write {
            return Err(FsError::ReadOnly);
        }
        let mut total = 0;
        let mut off = offset;
        for buf in bufs {
            let t = g.tick();
            let node = g.inodes.get_mut(&ino).ok_or(FsError::BadFd)?;
            let file = node.as_file_mut().ok_or(FsError::IllegalSeek)?;
            let n = file.write_at(buf, off)?;
            node.mtime = t;
            off += n as u64;
            total += n;
            if n != buf.len() {
                break;
            }
        }
        Ok(total)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let g = self.read_lock();
        g.handle(fd)?;
        Ok(())
    }

    fn release(&self, fd: Fd) -> FsResult<()> {
        let mut g = self.write_lock();
        let h = g.handles.remove(&fd).ok_or(FsError::BadFd)?;
        if let Some(kind) = h.lock {
            if let Some(state) = g.locks.get_mut(&h.ino) {
                match kind {
                    LockKind::Shared => state.shared = state.shared.saturating_sub(1),
                    LockKind::Exclusive => state.exclusive = false,
                }
            }
        }
        // Reclaim unlinked-and-now-closed inodes.
        let orphan = g
            .inodes
            .get(&h.ino)
            .map(|n| n.nlink == 0 && !g.handles.values().any(|x| x.ino == h.ino))
            .unwrap_or(false);
        if orphan {
            g.inodes.remove(&h.ino);
            g.locks.remove(&h.ino);
        }
        Ok(())
    }

    fn readdir(&self, p: &str) -> FsResult<Vec<DirEntry>> {
        let g = self.read_lock();
        let ino = g.resolve(p)?;
        let node = g.inodes.get(&ino).ok_or(FsError::NotFound)?;
        let map: &BTreeMap<String, Ino> = node.as_dir().ok_or(FsError::NotADirectory)?;
        let mut out = Vec::with_capacity(map.len());
        for (name, child) in map {
            let cnode = g.inodes.get(child).ok_or(FsError::Io)?;
            out.push(DirEntry { name: name.clone(), kind: cnode.kind, ino: *child });
        }
        Ok(out)
    }

    fn statfs(&self) -> FsResult<StatFs> {
        let g = self.read_lock();
        let bytes_used = g.inodes.values().map(Inode::size).sum();
        Ok(StatFs { bytes_used, inodes: g.inodes.len() as u64, block_size: BLOCK_SIZE as u64 })
    }

    fn lock(&self, fd: Fd, kind: LockKind) -> FsResult<()> {
        let mut g = self.write_lock();
        let ino = g.handle(fd)?.ino;
        let state = g.locks.entry(ino).or_default();
        match kind {
            LockKind::Shared => {
                if state.exclusive {
                    return Err(FsError::Locked);
                }
                state.shared += 1;
            }
            LockKind::Exclusive => {
                if state.exclusive || state.shared > 0 {
                    return Err(FsError::Locked);
                }
                state.exclusive = true;
            }
        }
        if let Some(h) = g.handles.get_mut(&fd) {
            h.lock = Some(kind);
        }
        Ok(())
    }

    fn unlock(&self, fd: Fd) -> FsResult<()> {
        let mut g = self.write_lock();
        let (ino, kind) = {
            let h = g.handle(fd)?;
            (h.ino, h.lock)
        };
        let kind = kind.ok_or(FsError::InvalidArgument)?;
        if let Some(state) = g.locks.get_mut(&ino) {
            match kind {
                LockKind::Shared => state.shared = state.shared.saturating_sub(1),
                LockKind::Exclusive => state.exclusive = false,
            }
        }
        if let Some(h) = g.handles.get_mut(&fd) {
            h.lock = None;
        }
        Ok(())
    }
}

/// Deep-copy the full state of one filesystem into another (used by
/// tests and the golden-run machinery to compare file trees).
pub fn copy_tree(src: &dyn FileSystem, dst: &dyn FileSystem, dir: &str) -> FsResult<()> {
    use crate::fs::FileSystemExt;
    for entry in src.readdir(dir)? {
        let p =
            if dir == "/" { format!("/{}", entry.name) } else { format!("{}/{}", dir, entry.name) };
        match entry.kind {
            NodeKind::Dir => {
                match dst.mkdir(&p, 0o755) {
                    Ok(()) | Err(FsError::Exists) => {}
                    Err(e) => return Err(e),
                }
                copy_tree(src, dst, &p)?;
            }
            NodeKind::File => {
                let data = src.read_to_vec(&p)?;
                dst.write_file(&p, &data)?;
            }
            k => {
                let meta = src.getattr(&p)?;
                dst.mknod(&p, k, meta.mode, meta.rdev)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FileSystemExt;

    fn fs() -> MemFs {
        MemFs::new()
    }

    #[test]
    fn root_exists() {
        let f = fs();
        let m = f.getattr("/").unwrap();
        assert_eq!(m.kind, NodeKind::Dir);
        assert_eq!(m.ino, ROOT_INO);
    }

    #[test]
    fn create_write_read() {
        let f = fs();
        let fd = f.create("/a.txt", 0o644).unwrap();
        assert_eq!(f.pwrite(fd, b"hello", 0).unwrap(), 5);
        f.release(fd).unwrap();
        assert_eq!(f.read_to_vec("/a.txt").unwrap(), b"hello");
    }

    #[test]
    fn create_truncates_existing() {
        let f = fs();
        f.write_file("/a", b"long content here").unwrap();
        let fd = f.create("/a", 0o644).unwrap();
        f.release(fd).unwrap();
        assert_eq!(f.getattr("/a").unwrap().size, 0);
    }

    #[test]
    fn open_missing_fails_without_create() {
        let f = fs();
        assert_eq!(f.open("/nope", OpenFlags::read_only()), Err(FsError::NotFound));
    }

    #[test]
    fn open_create_excl_semantics() {
        let f = fs();
        let mut flags = OpenFlags::create_truncate();
        flags.excl = true;
        let fd = f.open("/x", flags).unwrap();
        f.release(fd).unwrap();
        assert_eq!(f.open("/x", flags), Err(FsError::Exists));
    }

    #[test]
    fn sequential_read_write_cursor() {
        let f = fs();
        let fd = f.create("/s", 0o644).unwrap();
        f.write(fd, b"abc").unwrap();
        f.write(fd, b"def").unwrap();
        f.release(fd).unwrap();
        let fd = f.open("/s", OpenFlags::read_only()).unwrap();
        let mut b = [0u8; 4];
        assert_eq!(f.read(fd, &mut b).unwrap(), 4);
        assert_eq!(&b, b"abcd");
        assert_eq!(f.read(fd, &mut b).unwrap(), 2);
        assert_eq!(&b[..2], b"ef");
        assert_eq!(f.read(fd, &mut b).unwrap(), 0);
        f.release(fd).unwrap();
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let f = fs();
        f.write_file("/log", b"one\n").unwrap();
        let fd = f.open("/log", OpenFlags::append()).unwrap();
        f.write(fd, b"two\n").unwrap();
        f.release(fd).unwrap();
        assert_eq!(f.read_to_string("/log").unwrap(), "one\ntwo\n");
    }

    #[test]
    fn write_on_readonly_fd_fails() {
        let f = fs();
        f.write_file("/r", b"data").unwrap();
        let fd = f.open("/r", OpenFlags::read_only()).unwrap();
        assert_eq!(f.pwrite(fd, b"x", 0), Err(FsError::ReadOnly));
        assert_eq!(f.write(fd, b"x"), Err(FsError::ReadOnly));
        f.release(fd).unwrap();
    }

    #[test]
    fn read_on_writeonly_fd_fails() {
        let f = fs();
        let fd = f.create("/w", 0o644).unwrap();
        let mut b = [0u8; 1];
        assert_eq!(f.pread(fd, &mut b, 0), Err(FsError::PermissionDenied));
        f.release(fd).unwrap();
    }

    #[test]
    fn mkdir_and_nested_files() {
        let f = fs();
        f.mkdir("/d", 0o755).unwrap();
        f.mkdir("/d/e", 0o755).unwrap();
        f.write_file("/d/e/x", b"1").unwrap();
        assert_eq!(f.getattr("/d/e/x").unwrap().size, 1);
        assert_eq!(f.mkdir("/d", 0o755), Err(FsError::Exists));
    }

    #[test]
    fn mkdir_all_creates_chain() {
        let f = fs();
        f.mkdir_all("/a/b/c/d").unwrap();
        assert_eq!(f.getattr("/a/b/c/d").unwrap().kind, NodeKind::Dir);
        // Idempotent.
        f.mkdir_all("/a/b/c/d").unwrap();
    }

    #[test]
    fn mknod_kinds() {
        let f = fs();
        f.mknod("/fifo", NodeKind::Fifo, 0o644, 0).unwrap();
        f.mknod("/dev", NodeKind::CharDev, 0o600, 0x0102).unwrap();
        f.mknod("/plain", NodeKind::File, 0o644, 0).unwrap();
        assert_eq!(f.getattr("/fifo").unwrap().kind, NodeKind::Fifo);
        assert_eq!(f.getattr("/dev").unwrap().rdev, 0x0102);
        assert_eq!(f.getattr("/plain").unwrap().kind, NodeKind::File);
        assert_eq!(f.mknod("/dir", NodeKind::Dir, 0o755, 0), Err(FsError::InvalidArgument));
        assert_eq!(f.mknod("/fifo", NodeKind::Fifo, 0o644, 0), Err(FsError::Exists));
    }

    #[test]
    fn chmod_updates_mode() {
        let f = fs();
        f.write_file("/m", b"").unwrap();
        f.chmod("/m", 0o400).unwrap();
        assert_eq!(f.getattr("/m").unwrap().mode, 0o400);
        // Bits above 0o7777 masked off.
        f.chmod("/m", 0o170644).unwrap();
        assert_eq!(f.getattr("/m").unwrap().mode, 0o644);
    }

    #[test]
    fn truncate_by_path() {
        let f = fs();
        f.write_file("/t", b"0123456789").unwrap();
        f.truncate("/t", 4).unwrap();
        assert_eq!(f.read_to_vec("/t").unwrap(), b"0123");
        f.truncate("/t", 8).unwrap();
        assert_eq!(f.read_to_vec("/t").unwrap(), b"0123\0\0\0\0");
    }

    #[test]
    fn unlink_semantics() {
        let f = fs();
        f.write_file("/u", b"x").unwrap();
        f.unlink("/u").unwrap();
        assert_eq!(f.getattr("/u"), Err(FsError::NotFound));
        assert_eq!(f.unlink("/u"), Err(FsError::NotFound));
        f.mkdir("/d", 0o755).unwrap();
        assert_eq!(f.unlink("/d"), Err(FsError::IsADirectory));
    }

    #[test]
    fn unlink_while_open_keeps_data_until_release() {
        let f = fs();
        f.write_file("/u", b"alive").unwrap();
        let fd = f.open("/u", OpenFlags::read_only()).unwrap();
        f.unlink("/u").unwrap();
        let mut b = [0u8; 5];
        assert_eq!(f.pread(fd, &mut b, 0).unwrap(), 5);
        assert_eq!(&b, b"alive");
        f.release(fd).unwrap();
        assert_eq!(f.getattr("/u"), Err(FsError::NotFound));
    }

    #[test]
    fn rmdir_semantics() {
        let f = fs();
        f.mkdir("/d", 0o755).unwrap();
        f.write_file("/d/x", b"1").unwrap();
        assert_eq!(f.rmdir("/d"), Err(FsError::NotEmpty));
        f.unlink("/d/x").unwrap();
        f.rmdir("/d").unwrap();
        assert_eq!(f.getattr("/d"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let f = fs();
        f.write_file("/a", b"A").unwrap();
        f.write_file("/b", b"B").unwrap();
        f.rename("/a", "/c").unwrap();
        assert!(f.exists("/c"));
        assert!(!f.exists("/a"));
        // Replace existing target.
        f.rename("/c", "/b").unwrap();
        assert_eq!(f.read_to_vec("/b").unwrap(), b"A");
        // Into a directory.
        f.mkdir("/d", 0o755).unwrap();
        f.rename("/b", "/d/b").unwrap();
        assert_eq!(f.read_to_vec("/d/b").unwrap(), b"A");
    }

    #[test]
    fn readdir_sorted_and_typed() {
        let f = fs();
        f.mkdir("/dir", 0o755).unwrap();
        f.write_file("/zz", b"").unwrap();
        f.write_file("/aa", b"").unwrap();
        f.mknod("/ff", NodeKind::Fifo, 0o644, 0).unwrap();
        let names: Vec<_> = f.readdir("/").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["aa", "dir", "ff", "zz"]);
        assert_eq!(f.readdir("/zz"), Err(FsError::NotADirectory));
    }

    #[test]
    fn statfs_accounting() {
        let f = fs();
        f.write_file("/a", &[0u8; 100]).unwrap();
        f.write_file("/b", &[0u8; 50]).unwrap();
        let s = f.statfs().unwrap();
        assert_eq!(s.bytes_used, 150);
        assert_eq!(s.inodes, 3); // root + 2 files
        assert_eq!(s.block_size, BLOCK_SIZE as u64);
    }

    #[test]
    fn exclusive_lock_blocks_others() {
        let f = fs();
        f.write_file("/l", b"x").unwrap();
        let fd1 = f.open("/l", OpenFlags::read_write()).unwrap();
        let fd2 = f.open("/l", OpenFlags::read_only()).unwrap();
        f.lock(fd1, LockKind::Exclusive).unwrap();
        assert_eq!(f.lock(fd2, LockKind::Shared), Err(FsError::Locked));
        assert_eq!(f.lock(fd2, LockKind::Exclusive), Err(FsError::Locked));
        f.unlock(fd1).unwrap();
        f.lock(fd2, LockKind::Shared).unwrap();
        f.unlock(fd2).unwrap();
        f.release(fd1).unwrap();
        f.release(fd2).unwrap();
    }

    #[test]
    fn shared_locks_coexist_but_block_exclusive() {
        let f = fs();
        f.write_file("/l", b"x").unwrap();
        let fd1 = f.open("/l", OpenFlags::read_only()).unwrap();
        let fd2 = f.open("/l", OpenFlags::read_only()).unwrap();
        let fd3 = f.open("/l", OpenFlags::read_write()).unwrap();
        f.lock(fd1, LockKind::Shared).unwrap();
        f.lock(fd2, LockKind::Shared).unwrap();
        assert_eq!(f.lock(fd3, LockKind::Exclusive), Err(FsError::Locked));
        f.unlock(fd1).unwrap();
        assert_eq!(f.lock(fd3, LockKind::Exclusive), Err(FsError::Locked));
        f.unlock(fd2).unwrap();
        f.lock(fd3, LockKind::Exclusive).unwrap();
        for fd in [fd1, fd2, fd3] {
            f.release(fd).unwrap();
        }
    }

    #[test]
    fn release_drops_lock() {
        let f = fs();
        f.write_file("/l", b"x").unwrap();
        let fd1 = f.open("/l", OpenFlags::read_write()).unwrap();
        f.lock(fd1, LockKind::Exclusive).unwrap();
        f.release(fd1).unwrap();
        let fd2 = f.open("/l", OpenFlags::read_write()).unwrap();
        f.lock(fd2, LockKind::Exclusive).unwrap();
        f.release(fd2).unwrap();
    }

    #[test]
    fn bad_fd_everywhere() {
        let f = fs();
        let mut b = [0u8; 1];
        assert_eq!(f.read(999, &mut b), Err(FsError::BadFd));
        assert_eq!(f.pread(999, &mut b, 0), Err(FsError::BadFd));
        assert_eq!(f.write(999, &b), Err(FsError::BadFd));
        assert_eq!(f.pwrite(999, &b, 0), Err(FsError::BadFd));
        assert_eq!(f.fsync(999), Err(FsError::BadFd));
        assert_eq!(f.release(999), Err(FsError::BadFd));
        assert_eq!(f.lock(999, LockKind::Shared), Err(FsError::BadFd));
    }

    #[test]
    fn mtime_advances_monotonically() {
        let f = fs();
        f.write_file("/m", b"1").unwrap();
        let t1 = f.getattr("/m").unwrap().mtime;
        f.write_file("/m2", b"2").unwrap();
        let fd = f.open("/m", OpenFlags::write_only()).unwrap();
        f.pwrite(fd, b"x", 0).unwrap();
        f.release(fd).unwrap();
        let t2 = f.getattr("/m").unwrap().mtime;
        assert!(t2 > t1);
    }

    #[test]
    fn copy_tree_roundtrip() {
        let a = fs();
        a.mkdir("/d", 0o755).unwrap();
        a.write_file("/d/f1", b"one").unwrap();
        a.write_file("/top", b"two").unwrap();
        a.mknod("/pipe", NodeKind::Fifo, 0o644, 0).unwrap();
        let b = fs();
        copy_tree(&a, &b, "/").unwrap();
        assert_eq!(b.read_to_vec("/d/f1").unwrap(), b"one");
        assert_eq!(b.read_to_vec("/top").unwrap(), b"two");
        assert_eq!(b.getattr("/pipe").unwrap().kind, NodeKind::Fifo);
    }

    #[test]
    fn handles_leak_free() {
        let f = fs();
        f.write_file("/x", b"abc").unwrap();
        assert_eq!(f.open_handles(), 0);
        let fd = f.open("/x", OpenFlags::read_only()).unwrap();
        assert_eq!(f.open_handles(), 1);
        f.release(fd).unwrap();
        assert_eq!(f.open_handles(), 0);
    }

    #[test]
    fn fork_is_independent_and_cow() {
        let a = fs();
        a.mkdir("/d", 0o755).unwrap();
        a.write_file("/d/big", &[3u8; 5 * 4096]).unwrap();
        a.write_file("/top", b"golden").unwrap();

        let b = a.fork();
        // Identical view...
        assert_eq!(b.read_to_vec("/d/big").unwrap(), vec![3u8; 5 * 4096]);
        assert_eq!(b.read_to_string("/top").unwrap(), "golden");
        // ...with every data page still shared.
        assert!(b.shared_pages() >= 6);

        // Divergence is private in both directions.
        let fd = b.open("/d/big", OpenFlags::write_only()).unwrap();
        b.pwrite(fd, &[9u8; 4], 4096).unwrap();
        b.release(fd).unwrap();
        assert_eq!(a.read_to_vec("/d/big").unwrap()[4096], 3);
        assert_eq!(b.read_to_vec("/d/big").unwrap()[4096], 9);

        a.unlink("/top").unwrap();
        assert!(b.exists("/top"));
        assert!(!a.exists("/top"));

        // Namespace changes in the fork don't leak back.
        b.write_file("/only-in-b", b"x").unwrap();
        assert!(!a.exists("/only-in-b"));
    }

    #[test]
    fn fork_preserves_open_handles_and_cursors() {
        let a = fs();
        a.write_file("/f", b"0123456789").unwrap();
        let fd = a.open("/f", OpenFlags::read_only()).unwrap();
        let mut buf = [0u8; 4];
        a.read(fd, &mut buf).unwrap(); // cursor now 4

        let b = a.fork();
        // The forked descriptor continues from the same cursor.
        let mut fb = [0u8; 3];
        assert_eq!(b.read(fd, &mut fb).unwrap(), 3);
        assert_eq!(&fb, b"456");
        // The original's cursor is unaffected by the fork's read.
        let mut fa = [0u8; 3];
        assert_eq!(a.read(fd, &mut fa).unwrap(), 3);
        assert_eq!(&fa, b"456");
        b.release(fd).unwrap();
        a.release(fd).unwrap();
    }

    #[test]
    fn fork_fd_allocation_stays_deterministic() {
        let a = fs();
        let fd1 = a.create("/x", 0o644).unwrap();
        a.release(fd1).unwrap();
        let b = a.fork();
        // Both sides allocate the same next descriptor independently.
        assert_eq!(a.create("/y", 0o644).unwrap(), b.create("/y", 0o644).unwrap());
    }

    #[test]
    fn image_roundtrip_preserves_full_state() {
        let a = fs();
        a.mkdir("/d", 0o750).unwrap();
        a.write_file("/d/big", &[3u8; 3 * BLOCK_SIZE + 100]).unwrap();
        a.mknod("/pipe", NodeKind::Fifo, 0o644, 7).unwrap();
        a.write_file("/del", b"gone but open").unwrap();
        let held = a.open("/del", OpenFlags::read_only()).unwrap();
        a.unlink("/del").unwrap(); // unlinked-while-open inode must survive the image
        let fd = a.open("/d/big", OpenFlags::read_write()).unwrap();
        let mut b4 = [0u8; 4];
        a.read(fd, &mut b4).unwrap(); // cursor now 4
        a.lock(fd, LockKind::Exclusive).unwrap();

        let mut pages: HashMap<[u8; 32], Vec<u8>> = HashMap::new();
        let image = a.export_image(&mut |page| {
            let h = crate::blobs::sha256(page);
            pages.insert(h, page.to_vec());
            h
        });
        let b = MemFs::import_image(&image, &mut |h| {
            pages.get(h).map(|bytes| {
                let mut p = [0u8; BLOCK_SIZE];
                p.copy_from_slice(bytes);
                Arc::new(p)
            })
        })
        .unwrap();

        // Deterministic encoding: re-exporting the reconstruction is
        // byte-identical, i.e. *every* piece of state round-tripped.
        let reexport = b.export_image(&mut |page| crate::blobs::sha256(page));
        assert_eq!(image, reexport);

        // Spot checks on behaviour, not just bytes.
        assert_eq!(b.snapshot("/d/big").unwrap(), a.snapshot("/d/big").unwrap());
        assert_eq!(b.getattr("/pipe").unwrap().rdev, 7);
        assert_eq!(b.getattr("/d").unwrap().mode, 0o750);
        let mut got = [0u8; 4];
        b.read(fd, &mut got).unwrap(); // continues from the imaged cursor
        assert_eq!(&got, &[3u8; 4]);
        let mut hidden = [0u8; 4];
        assert_eq!(b.pread(held, &mut hidden, 0).unwrap(), 4); // orphan inode restored
        let probe = b.open("/d/big", OpenFlags::read_write()).unwrap();
        assert_eq!(b.lock(probe, LockKind::Shared), Err(FsError::Locked));

        // Damage decodes to None, never to a half-restored filesystem.
        assert!(MemFs::import_image(&image[..image.len() - 1], &mut |_| None).is_none());
        let mut truncated = image.clone();
        truncated.truncate(10);
        assert!(MemFs::import_image(&truncated, &mut |_| None).is_none());
    }

    #[test]
    fn concurrent_writers_distinct_files() {
        use std::sync::Arc;
        let f = Arc::new(fs());
        let mut joins = Vec::new();
        for i in 0..8 {
            let f = Arc::clone(&f);
            joins.push(std::thread::spawn(move || {
                let p = format!("/t{}", i);
                f.write_file(&p, format!("data-{}", i).as_bytes()).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for i in 0..8 {
            let p = format!("/t{}", i);
            assert_eq!(f.read_to_string(&p).unwrap(), format!("data-{}", i));
        }
    }
}
