//! Sector-granular file contents.
//!
//! SSD partial failures manifest at physical granularities: the paper's
//! SHORN WRITE model (§III-B, Table I) "completely write[s] the first
//! 3/8th ... or first 7/8th of [a] 4KB block to the device at the
//! granularity of 512B". [`SectorFile`] therefore tracks file contents
//! as a flat byte store but exposes the 512-byte sector / 4-KiB block
//! geometry so fault models can align their damage the way a real flash
//! translation layer would.

use crate::error::{FsError, FsResult};

/// Device sector size (bytes). Shorn writes tear at this granularity.
pub const SECTOR_SIZE: usize = 512;

/// Flash page / filesystem block size (bytes): 8 sectors.
pub const BLOCK_SIZE: usize = 4096;

/// Hard capacity limit for a single file in the in-memory store. Large
/// enough for every workload in the paper reproduction (hundreds of MB)
/// while catching runaway writes caused by corrupted size fields.
pub const MAX_FILE_SIZE: u64 = 1 << 32; // 4 GiB

/// Byte-addressable file content with sector geometry.
///
/// Semantics follow POSIX regular files:
/// * writes past EOF zero-fill the gap (sparse-file behaviour),
/// * reads past EOF are short,
/// * `truncate` both shrinks and grows (growing zero-fills).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectorFile {
    data: Vec<u8>,
}

impl SectorFile {
    /// Empty file.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// File pre-populated with `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self { data }
    }

    /// Current size in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// True when the file holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of whole-or-partial sectors the content occupies.
    pub fn sectors(&self) -> u64 {
        self.len().div_ceil(SECTOR_SIZE as u64)
    }

    /// Number of whole-or-partial blocks the content occupies.
    pub fn blocks(&self) -> u64 {
        self.len().div_ceil(BLOCK_SIZE as u64)
    }

    /// Write `buf` at byte `offset`, zero-filling any gap past EOF.
    /// Returns the number of bytes written (always `buf.len()` unless
    /// the capacity limit trips).
    pub fn write_at(&mut self, buf: &[u8], offset: u64) -> FsResult<usize> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or(FsError::InvalidArgument)?;
        if end > MAX_FILE_SIZE {
            return Err(FsError::NoSpace);
        }
        let end = end as usize;
        let offset = offset as usize;
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[offset..end].copy_from_slice(buf);
        Ok(buf.len())
    }

    /// Read into `buf` from byte `offset`. Returns bytes read; short at
    /// EOF, zero when `offset` is at or past EOF (POSIX `pread`).
    pub fn read_at(&self, buf: &mut [u8], offset: u64) -> usize {
        let len = self.data.len() as u64;
        if offset >= len {
            return 0;
        }
        let avail = (len - offset) as usize;
        let n = avail.min(buf.len());
        let offset = offset as usize;
        buf[..n].copy_from_slice(&self.data[offset..offset + n]);
        n
    }

    /// Resize to `size` bytes: shrink drops the tail, grow zero-fills.
    pub fn truncate(&mut self, size: u64) -> FsResult<()> {
        if size > MAX_FILE_SIZE {
            return Err(FsError::NoSpace);
        }
        self.data.resize(size as usize, 0);
        Ok(())
    }

    /// Borrow the full contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consume into the raw byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants() {
        assert_eq!(BLOCK_SIZE, 8 * SECTOR_SIZE);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut f = SectorFile::new();
        assert_eq!(f.write_at(b"abcdef", 0).unwrap(), 6);
        let mut buf = [0u8; 6];
        assert_eq!(f.read_at(&mut buf, 0), 6);
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn sparse_write_zero_fills_gap() {
        let mut f = SectorFile::new();
        f.write_at(b"xy", 10).unwrap();
        assert_eq!(f.len(), 12);
        let mut buf = [0xffu8; 12];
        assert_eq!(f.read_at(&mut buf, 0), 12);
        assert_eq!(&buf[..10], &[0u8; 10]);
        assert_eq!(&buf[10..], b"xy");
    }

    #[test]
    fn read_past_eof_is_short_then_empty() {
        let mut f = SectorFile::new();
        f.write_at(b"hello", 0).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(&mut buf, 3), 2);
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(f.read_at(&mut buf, 5), 0);
        assert_eq!(f.read_at(&mut buf, 500), 0);
    }

    #[test]
    fn overwrite_middle() {
        let mut f = SectorFile::from_bytes(b"aaaaaaaa".to_vec());
        f.write_at(b"BB", 3).unwrap();
        assert_eq!(f.as_bytes(), b"aaaBBaaa");
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let mut f = SectorFile::from_bytes(vec![7u8; 100]);
        f.truncate(10).unwrap();
        assert_eq!(f.len(), 10);
        f.truncate(20).unwrap();
        assert_eq!(f.len(), 20);
        assert_eq!(&f.as_bytes()[10..], &[0u8; 10]);
        assert_eq!(&f.as_bytes()[..10], &[7u8; 10]);
    }

    #[test]
    fn sector_and_block_accounting() {
        let mut f = SectorFile::new();
        assert_eq!(f.sectors(), 0);
        assert_eq!(f.blocks(), 0);
        f.write_at(&[0u8; 1], 0).unwrap();
        assert_eq!(f.sectors(), 1);
        assert_eq!(f.blocks(), 1);
        f.truncate(SECTOR_SIZE as u64).unwrap();
        assert_eq!(f.sectors(), 1);
        f.truncate(SECTOR_SIZE as u64 + 1).unwrap();
        assert_eq!(f.sectors(), 2);
        f.truncate(BLOCK_SIZE as u64 * 3).unwrap();
        assert_eq!(f.blocks(), 3);
        assert_eq!(f.sectors(), 24);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut f = SectorFile::new();
        assert_eq!(f.write_at(b"x", MAX_FILE_SIZE), Err(FsError::NoSpace));
        assert_eq!(f.truncate(MAX_FILE_SIZE + 1), Err(FsError::NoSpace));
    }

    #[test]
    fn offset_overflow_rejected() {
        let mut f = SectorFile::new();
        assert_eq!(f.write_at(b"abc", u64::MAX - 1), Err(FsError::InvalidArgument));
    }
}
