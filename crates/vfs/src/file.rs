//! Sector-granular, copy-on-write paged file contents.
//!
//! SSD partial failures manifest at physical granularities: the paper's
//! SHORN WRITE model (§III-B, Table I) "completely write\[s\] the first
//! 3/8th ... or first 7/8th of \[a\] 4KB block to the device at the
//! granularity of 512B". [`SectorFile`] therefore exposes the 512-byte
//! sector / 4-KiB block geometry so fault models can align their damage
//! the way a real flash translation layer would.
//!
//! Storage is a vector of 4-KiB page extents behind [`Arc`]s. Cloning a
//! `SectorFile` (and therefore forking a whole
//! [`MemFs`](crate::MemFs)) copies only the page *pointers*; a page's
//! bytes are duplicated lazily on the first write that lands in it
//! ([`Arc::make_mut`]). This is what makes golden-snapshot forking
//! O(metadata) instead of O(data): a 100 MB plotfile forks by copying
//! ~25k pointers, and an injection run that damages one metadata byte
//! dirties exactly one 4-KiB page.

use std::sync::{Arc, OnceLock};

use crate::error::{FsError, FsResult};

/// Device sector size (bytes). Shorn writes tear at this granularity.
pub const SECTOR_SIZE: usize = 512;

/// Flash page / filesystem block size (bytes): 8 sectors. Also the
/// copy-on-write granularity of [`SectorFile`].
pub const BLOCK_SIZE: usize = 4096;

/// Hard capacity limit for a single file in the in-memory store. Large
/// enough for every workload in the paper reproduction (hundreds of MB)
/// while catching runaway writes caused by corrupted size fields.
pub const MAX_FILE_SIZE: u64 = 1 << 32; // 4 GiB

/// One copy-on-write page extent.
pub(crate) type Page = [u8; BLOCK_SIZE];

/// The shared all-zeros page backing sparse regions. Every hole in
/// every file aliases this single allocation until first written.
pub(crate) fn zero_page() -> &'static Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0u8; BLOCK_SIZE]))
}

/// Byte-addressable file content with sector geometry and CoW pages.
///
/// Semantics follow POSIX regular files:
/// * writes past EOF zero-fill the gap (sparse-file behaviour),
/// * reads past EOF are short,
/// * `truncate` both shrinks and grows (growing zero-fills).
///
/// Invariant: bytes of the last page at or beyond `len` are zero, so a
/// later extension never exposes stale content as gap fill.
#[derive(Debug, Clone, Default)]
pub struct SectorFile {
    pages: Vec<Arc<Page>>,
    len: u64,
}

impl PartialEq for SectorFile {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Page-pointer equality short-circuits byte comparison for
        // still-shared extents (the common case between a golden
        // snapshot and its forks).
        self.pages.iter().zip(&other.pages).all(|(a, b)| Arc::ptr_eq(a, b) || a[..] == b[..])
    }
}

impl Eq for SectorFile {}

impl SectorFile {
    /// Empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// File pre-populated with `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        let mut f = Self::new();
        f.write_at(&data, 0).expect("Vec len is within MAX_FILE_SIZE");
        f
    }

    /// Current size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the file holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of whole-or-partial sectors the content occupies.
    pub fn sectors(&self) -> u64 {
        self.len.div_ceil(SECTOR_SIZE as u64)
    }

    /// Number of whole-or-partial blocks the content occupies.
    pub fn blocks(&self) -> u64 {
        self.len.div_ceil(BLOCK_SIZE as u64)
    }

    /// Number of allocated page extents (== [`Self::blocks`], exposed
    /// separately for CoW accounting tests).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages whose allocation is currently shared with another
    /// `SectorFile` clone (or with the global zero page) — i.e. pages
    /// a fork has *not* yet paid a byte-copy for.
    pub fn shared_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1 || Arc::ptr_eq(p, zero_page()))
            .count()
    }

    /// Grow the page vector to cover `end` bytes with shared zero pages.
    fn ensure_pages(&mut self, end: u64) {
        let needed = (end as usize).div_ceil(BLOCK_SIZE);
        while self.pages.len() < needed {
            self.pages.push(Arc::clone(zero_page()));
        }
    }

    /// Write `buf` at byte `offset`, zero-filling any gap past EOF.
    /// Returns the number of bytes written (always `buf.len()` unless
    /// the capacity limit trips). Only the touched pages are
    /// un-shared.
    pub fn write_at(&mut self, buf: &[u8], offset: u64) -> FsResult<usize> {
        let end = offset.checked_add(buf.len() as u64).ok_or(FsError::InvalidArgument)?;
        if end > MAX_FILE_SIZE {
            return Err(FsError::NoSpace);
        }
        if buf.is_empty() {
            return Ok(0);
        }
        self.ensure_pages(end);
        let mut done = 0usize;
        let mut pos = offset as usize;
        while done < buf.len() {
            let page_idx = pos / BLOCK_SIZE;
            let page_off = pos % BLOCK_SIZE;
            let n = (BLOCK_SIZE - page_off).min(buf.len() - done);
            let page = Arc::make_mut(&mut self.pages[page_idx]);
            page[page_off..page_off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            pos += n;
        }
        self.len = self.len.max(end);
        Ok(buf.len())
    }

    /// Read into `buf` from byte `offset`. Returns bytes read; short at
    /// EOF, zero when `offset` is at or past EOF (POSIX `pread`).
    pub fn read_at(&self, buf: &mut [u8], offset: u64) -> usize {
        if offset >= self.len {
            return 0;
        }
        let avail = (self.len - offset) as usize;
        let total = avail.min(buf.len());
        let mut done = 0usize;
        let mut pos = offset as usize;
        while done < total {
            let page_idx = pos / BLOCK_SIZE;
            let page_off = pos % BLOCK_SIZE;
            let n = (BLOCK_SIZE - page_off).min(total - done);
            buf[done..done + n].copy_from_slice(&self.pages[page_idx][page_off..page_off + n]);
            done += n;
            pos += n;
        }
        total
    }

    /// Resize to `size` bytes: shrink drops the tail, grow zero-fills.
    pub fn truncate(&mut self, size: u64) -> FsResult<()> {
        if size > MAX_FILE_SIZE {
            return Err(FsError::NoSpace);
        }
        if size < self.len {
            let keep_pages = (size as usize).div_ceil(BLOCK_SIZE);
            self.pages.truncate(keep_pages);
            // Re-zero the now-out-of-range tail of the last kept page
            // to maintain the zero-beyond-len invariant.
            let tail = size as usize % BLOCK_SIZE;
            if tail != 0 {
                let last = self.pages.last_mut().expect("size > 0 implies a last page");
                if last[tail..].iter().any(|&b| b != 0) {
                    Arc::make_mut(last)[tail..].fill(0);
                }
            }
        } else if size > self.len {
            self.ensure_pages(size);
        }
        self.len = size;
        Ok(())
    }

    /// The raw page extents backing this file, in order (content
    /// addressing: the checkpoint disk tier hashes and stores each
    /// page individually).
    pub(crate) fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    /// Reassemble a file from page extents + length (the checkpoint
    /// disk tier's load path). Returns `None` when the parts violate
    /// the type's invariants — page count must exactly cover `len`,
    /// the capacity limit must hold, and the bytes of the last page at
    /// or beyond `len` must be zero — so a corrupt image decodes to
    /// "rebuild", never to a malformed file.
    pub(crate) fn from_pages(pages: Vec<Arc<Page>>, len: u64) -> Option<Self> {
        if len > MAX_FILE_SIZE || pages.len() != (len as usize).div_ceil(BLOCK_SIZE) {
            return None;
        }
        let tail = len as usize % BLOCK_SIZE;
        if tail != 0 {
            let last = pages.last().expect("tail != 0 implies a last page");
            if last[tail..].iter().any(|&b| b != 0) {
                return None;
            }
        }
        Some(SectorFile { pages, len })
    }

    /// Copy the full contents out as a contiguous vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len as usize];
        self.read_at(&mut out, 0);
        out
    }

    /// Consume into a contiguous byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants() {
        assert_eq!(BLOCK_SIZE, 8 * SECTOR_SIZE);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut f = SectorFile::new();
        assert_eq!(f.write_at(b"abcdef", 0).unwrap(), 6);
        let mut buf = [0u8; 6];
        assert_eq!(f.read_at(&mut buf, 0), 6);
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn sparse_write_zero_fills_gap() {
        let mut f = SectorFile::new();
        f.write_at(b"xy", 10).unwrap();
        assert_eq!(f.len(), 12);
        let mut buf = [0xffu8; 12];
        assert_eq!(f.read_at(&mut buf, 0), 12);
        assert_eq!(&buf[..10], &[0u8; 10]);
        assert_eq!(&buf[10..], b"xy");
    }

    #[test]
    fn read_past_eof_is_short_then_empty() {
        let mut f = SectorFile::new();
        f.write_at(b"hello", 0).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(&mut buf, 3), 2);
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(f.read_at(&mut buf, 5), 0);
        assert_eq!(f.read_at(&mut buf, 500), 0);
    }

    #[test]
    fn overwrite_middle() {
        let mut f = SectorFile::from_bytes(b"aaaaaaaa".to_vec());
        f.write_at(b"BB", 3).unwrap();
        assert_eq!(f.to_vec(), b"aaaBBaaa");
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let mut f = SectorFile::from_bytes(vec![7u8; 100]);
        f.truncate(10).unwrap();
        assert_eq!(f.len(), 10);
        f.truncate(20).unwrap();
        assert_eq!(f.len(), 20);
        assert_eq!(&f.to_vec()[10..], &[0u8; 10]);
        assert_eq!(&f.to_vec()[..10], &[7u8; 10]);
    }

    #[test]
    fn truncate_rezeros_tail_within_page() {
        let mut f = SectorFile::from_bytes(vec![0xAB; 100]);
        f.truncate(40).unwrap();
        // Extending again must expose zeros, not the old 0xAB tail.
        f.truncate(100).unwrap();
        let v = f.to_vec();
        assert_eq!(&v[..40], &[0xAB; 40][..]);
        assert_eq!(&v[40..], &[0u8; 60][..]);
    }

    #[test]
    fn sector_and_block_accounting() {
        let mut f = SectorFile::new();
        assert_eq!(f.sectors(), 0);
        assert_eq!(f.blocks(), 0);
        f.write_at(&[0u8; 1], 0).unwrap();
        assert_eq!(f.sectors(), 1);
        assert_eq!(f.blocks(), 1);
        f.truncate(SECTOR_SIZE as u64).unwrap();
        assert_eq!(f.sectors(), 1);
        f.truncate(SECTOR_SIZE as u64 + 1).unwrap();
        assert_eq!(f.sectors(), 2);
        f.truncate(BLOCK_SIZE as u64 * 3).unwrap();
        assert_eq!(f.blocks(), 3);
        assert_eq!(f.sectors(), 24);
        assert_eq!(f.page_count(), 3);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut f = SectorFile::new();
        assert_eq!(f.write_at(b"x", MAX_FILE_SIZE), Err(FsError::NoSpace));
        assert_eq!(f.truncate(MAX_FILE_SIZE + 1), Err(FsError::NoSpace));
    }

    #[test]
    fn offset_overflow_rejected() {
        let mut f = SectorFile::new();
        assert_eq!(f.write_at(b"abc", u64::MAX - 1), Err(FsError::InvalidArgument));
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut a = SectorFile::from_bytes(vec![5u8; 3 * BLOCK_SIZE]);
        let mut b = a.clone();
        assert_eq!(a.shared_pages(), 3);
        assert_eq!(b.shared_pages(), 3);
        assert_eq!(a, b);
        // Writing one byte in the clone un-shares exactly one page.
        b.write_at(&[9], (BLOCK_SIZE + 7) as u64).unwrap();
        assert_eq!(b.shared_pages(), 2);
        assert_ne!(a, b);
        // The original never observes the clone's write.
        let mut buf = [0u8; 1];
        a.read_at(&mut buf, (BLOCK_SIZE + 7) as u64);
        assert_eq!(buf[0], 5);
        // And vice versa.
        a.write_at(&[1], 0).unwrap();
        let mut buf = [0u8; 1];
        b.read_at(&mut buf, 0);
        assert_eq!(buf[0], 5);
    }

    #[test]
    fn sparse_holes_alias_the_zero_page() {
        let mut f = SectorFile::new();
        f.write_at(b"end", (10 * BLOCK_SIZE) as u64).unwrap();
        assert_eq!(f.page_count(), 11);
        // The 10 hole pages all alias the global zero page; only the
        // written tail page is private.
        assert!(f.shared_pages() >= 10);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut f = SectorFile::new();
        let data: Vec<u8> = (0..3 * BLOCK_SIZE + 123).map(|i| (i % 251) as u8).collect();
        f.write_at(&data, 17).unwrap();
        let mut back = vec![0u8; data.len()];
        assert_eq!(f.read_at(&mut back, 17), data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn equality_is_content_based() {
        let a = SectorFile::from_bytes(vec![1, 2, 3]);
        let b = SectorFile::from_bytes(vec![1, 2, 3]);
        assert_eq!(a, b);
        let c = SectorFile::from_bytes(vec![1, 2, 4]);
        assert_ne!(a, c);
        let mut d = SectorFile::from_bytes(vec![1, 2, 3]);
        d.truncate(2).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn pages_roundtrip_via_from_pages() {
        let f = SectorFile::from_bytes((0..10_000).map(|i| (i % 251) as u8).collect());
        let rebuilt = SectorFile::from_pages(f.pages().to_vec(), f.len()).unwrap();
        assert_eq!(f, rebuilt);
        // Page count must exactly cover the declared length.
        assert!(SectorFile::from_pages(f.pages().to_vec(), f.len() + BLOCK_SIZE as u64).is_none());
        assert!(SectorFile::from_pages(f.pages().to_vec(), 1).is_none());
        // Stale bytes past `len` in the last page violate the
        // zero-beyond-len invariant and must be rejected.
        let mut dirty = f.pages().to_vec();
        Arc::make_mut(dirty.last_mut().unwrap())[BLOCK_SIZE - 1] = 7;
        assert!(SectorFile::from_pages(dirty, f.len()).is_none());
    }

    #[test]
    fn into_bytes_roundtrip() {
        let f = SectorFile::from_bytes(vec![9u8; 5000]);
        assert_eq!(f.into_bytes(), vec![9u8; 5000]);
    }
}
