//! Golden-trace capture and replay.
//!
//! A fault-injection campaign repeats the *same* fault-free prefix a
//! thousand times: every run re-executes the application (HDF5
//! encoding, checksums, float packing, halo finding) up to the
//! injection point just to rebuild identical filesystem state. This
//! module removes that redundancy:
//!
//! * [`TraceOp`] — one state-mutating primitive invocation with every
//!   parameter needed to re-issue it (paths, flags, the full write
//!   buffer, descriptor identity).
//! * [`TraceRecorder`] — an [`Interceptor`] that captures the golden
//!   run's mutating operations once, through the
//!   [`Interceptor::on_op`] hook [`crate::FfisFs`] feeds.
//! * [`ReplayCursor`] — re-issues a recorded op stream against any
//!   [`FileSystem`]: a bare [`crate::MemFs`] (building a snapshot at
//!   raw memcpy speed) or a mounted [`crate::FfisFs`] with an armed
//!   injector (so the fault lands in exactly the targeted instance
//!   while every other op replays byte-identically).
//!
//! Combined with [`crate::MemFs::fork`], an injection run becomes:
//! fork the pre-injection snapshot (O(page pointers)), replay the
//! trace suffix through the injector (O(suffix bytes)), and verify —
//! instead of re-running the whole application.
//!
//! ## Fidelity contract
//!
//! The recorder captures operations *as issued by the application*
//! (pre-interception), only when they succeed, and only when they can
//! change filesystem state (read-only opens and reads are skipped).
//! Replay therefore assumes the workload's sequential-`write` cursors
//! are not advanced by interleaved reads on the same descriptor — true
//! for every workload in this workspace, which positions data with
//! `pwrite`.
//!
//! Two consequences matter to consumers that must match legacy
//! re-execution exactly (both are enforced by the gates in
//! `ffis_core`):
//!
//! * ops that *failed* during capture are absent from the trace, while
//!   interceptor-level counters count every attempt — compare the two
//!   counts and fall back to re-execution on mismatch;
//! * replay is straight-line: an op that fails mid-replay aborts with
//!   a [`ReplayError`] instead of modeling whatever error handling the
//!   real application would have applied, so only fault models that
//!   cannot make a replayed op fail (buffer-level write faults —
//!   `Replace` preserves the length, `Drop` skips the device write)
//!   are eligible for trace-based campaigns;
//! * replayed payloads are the golden run's bytes verbatim: a workload
//!   whose later write *content* depends on data read back through the
//!   filesystem earlier in the same run is outside the contract (a
//!   real rerun would derive those writes from fault-corrupted reads).
//!   `ffis_core::FaultApp::verify` documents this as the
//!   write-stream-data-independence law an app asserts by opting in.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::{FsError, FsResult};
use crate::ffisfs::FfisFs;
use crate::fs::{Fd, FileSystem, LockKind, NodeKind, OpenFlags};
use crate::interceptor::Interceptor;

/// One recorded state-mutating primitive invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// `mknod`.
    Mknod {
        /// Target path.
        path: String,
        /// Node kind.
        kind: NodeKind,
        /// Permission bits.
        mode: u32,
        /// Device number.
        dev: u64,
    },
    /// `mkdir`.
    Mkdir {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// `unlink`.
    Unlink {
        /// Target path.
        path: String,
    },
    /// `rmdir`.
    Rmdir {
        /// Target path.
        path: String,
    },
    /// `rename`.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// `chmod`.
    Chmod {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// `truncate` by path.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// `create` — returns a descriptor.
    Create {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Descriptor the golden run received.
        fd: Fd,
    },
    /// Write-capable `open` — returns a descriptor.
    Open {
        /// Target path.
        path: String,
        /// Open flags (always write-capable; read-only opens are not
        /// recorded).
        flags: OpenFlags,
        /// Descriptor the golden run received.
        fd: Fd,
    },
    /// `write` / `pwrite` — the payload-carrying op.
    Write {
        /// Descriptor (golden-run numbering).
        fd: Fd,
        /// Target path at record time (for filter matching without a
        /// descriptor table).
        path: Option<String>,
        /// Byte offset; `None` for sequential cursor writes.
        offset: Option<u64>,
        /// The application's buffer, verbatim.
        data: Vec<u8>,
    },
    /// `fsync`.
    Fsync {
        /// Descriptor (golden-run numbering).
        fd: Fd,
    },
    /// `release`.
    Release {
        /// Descriptor (golden-run numbering).
        fd: Fd,
    },
    /// Advisory `lock`.
    Lock {
        /// Descriptor (golden-run numbering).
        fd: Fd,
        /// Lock kind.
        kind: LockKind,
    },
    /// Advisory `unlock`.
    Unlock {
        /// Descriptor (golden-run numbering).
        fd: Fd,
    },
}

impl TraceOp {
    /// Is this a `write`/`pwrite` op?
    pub fn is_write(&self) -> bool {
        matches!(self, TraceOp::Write { .. })
    }

    /// Target path of a write op, when tracked at record time.
    pub fn write_path(&self) -> Option<&str> {
        match self {
            TraceOp::Write { path, .. } => path.as_deref(),
            _ => None,
        }
    }

    /// Payload length carried toward the device (0 for non-writes).
    pub fn payload_len(&self) -> usize {
        match self {
            TraceOp::Write { data, .. } => data.len(),
            _ => 0,
        }
    }
}

/// Interceptor capturing every mutating op crossing the mount.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    ops: Mutex<Vec<TraceOp>>,
}

impl TraceRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the recorded golden trace.
    pub fn ops(&self) -> Vec<TraceOp> {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drain the recorded golden trace without copying it. The trace
    /// carries every write payload, so consumers that own the recorder
    /// (the campaign/scan drivers) take it instead of cloning
    /// workload-sized buffers.
    pub fn take_ops(&self) -> Vec<TraceOp> {
        std::mem::take(&mut *self.ops.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of ops recorded so far.
    pub fn len(&self) -> usize {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes across recorded writes.
    pub fn payload_bytes(&self) -> u64 {
        self.ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|op| op.payload_len() as u64)
            .sum()
    }
}

impl Interceptor for TraceRecorder {
    fn wants_ops(&self) -> bool {
        true
    }

    fn on_op(&self, op: &TraceOp) {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).push(op.clone());
    }
}

/// Open-descriptor state carried across a replay.
#[derive(Debug, Clone)]
struct ReplayFd {
    /// Descriptor in the filesystem being replayed into.
    fd: Fd,
    /// Path the descriptor addresses.
    path: String,
}

/// Replays a [`TraceOp`] stream into a filesystem, mapping golden-run
/// descriptor numbers to the descriptors the target filesystem hands
/// out.
///
/// A cursor is cheap to [`Clone`]: forked replays share the captured
/// trace and clone only the (small) descriptor map — the pattern the
/// metadata scanner uses to replay the same suffix thousands of times
/// from one mid-run snapshot.
#[derive(Debug, Clone, Default)]
pub struct ReplayCursor {
    fds: HashMap<Fd, ReplayFd>,
}

impl ReplayCursor {
    /// Cursor with no live descriptors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-issue one recorded op against `fs`.
    ///
    /// Ops addressing descriptors this cursor never saw (e.g. a
    /// `release` of an unrecorded read-only open) are skipped — they
    /// cannot change state.
    pub fn step(&mut self, fs: &dyn FileSystem, op: &TraceOp) -> FsResult<()> {
        match op {
            TraceOp::Mknod { path, kind, mode, dev } => fs.mknod(path, *kind, *mode, *dev),
            TraceOp::Mkdir { path, mode } => fs.mkdir(path, *mode),
            TraceOp::Unlink { path } => fs.unlink(path),
            TraceOp::Rmdir { path } => fs.rmdir(path),
            TraceOp::Rename { from, to } => fs.rename(from, to),
            TraceOp::Chmod { path, mode } => fs.chmod(path, *mode),
            TraceOp::Truncate { path, size } => fs.truncate(path, *size),
            TraceOp::Create { path, mode, fd } => {
                let new = fs.create(path, *mode)?;
                self.fds.insert(*fd, ReplayFd { fd: new, path: path.clone() });
                Ok(())
            }
            TraceOp::Open { path, flags, fd } => {
                let new = fs.open(path, *flags)?;
                self.fds.insert(*fd, ReplayFd { fd: new, path: path.clone() });
                Ok(())
            }
            TraceOp::Write { fd, offset, data, .. } => {
                let Some(entry) = self.fds.get(fd) else {
                    return Err(FsError::BadFd);
                };
                let n = match offset {
                    Some(off) => fs.pwrite(entry.fd, data, *off)?,
                    None => fs.write(entry.fd, data)?,
                };
                // Short device writes cannot be hidden from the
                // original application either; surface them.
                if n != data.len() {
                    return Err(FsError::Io);
                }
                Ok(())
            }
            TraceOp::Fsync { fd } => match self.fds.get(fd) {
                Some(entry) => fs.fsync(entry.fd),
                None => Ok(()),
            },
            TraceOp::Release { fd } => match self.fds.remove(fd) {
                Some(entry) => fs.release(entry.fd),
                None => Ok(()),
            },
            TraceOp::Lock { fd, kind } => match self.fds.get(fd) {
                Some(entry) => fs.lock(entry.fd, *kind),
                None => Ok(()),
            },
            TraceOp::Unlock { fd } => match self.fds.get(fd) {
                Some(entry) => fs.unlock(entry.fd),
                None => Ok(()),
            },
        }
    }

    /// Replay a slice of ops in order. On error, reports the index of
    /// the failing op alongside the error.
    pub fn replay(&mut self, fs: &dyn FileSystem, ops: &[TraceOp]) -> Result<(), ReplayError> {
        for (i, op) in ops.iter().enumerate() {
            self.step(fs, op).map_err(|error| ReplayError { index: i, error })?;
        }
        Ok(())
    }

    /// Register this cursor's live descriptors with a freshly mounted
    /// [`FfisFs`] so fd-addressed ops replayed through the mount carry
    /// their target path in the [`crate::CallContext`] — required for
    /// path-filtered injectors to see suffix writes. Call after
    /// mounting over a fork that was snapshotted mid-trace.
    pub fn seed_mount(&self, ffs: &FfisFs) {
        for entry in self.fds.values() {
            ffs.adopt_fd(entry.fd, &entry.path);
        }
    }

    /// Number of descriptors currently live in the replay.
    pub fn open_fds(&self) -> usize {
        self.fds.len()
    }
}

/// A replay failure: which op failed and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the failing op within the replayed slice.
    pub index: usize,
    /// The filesystem error.
    pub error: FsError,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay op {} failed: {}", self.index, self.error)
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FileSystemExt;
    use crate::memfs::MemFs;
    use std::sync::Arc;

    /// Run a small workload through a recording mount and return the
    /// trace plus the final state.
    fn record_workload() -> (Vec<TraceOp>, Arc<MemFs>) {
        let base = Arc::new(MemFs::new());
        let ffs = FfisFs::mount(base.clone());
        let rec = Arc::new(TraceRecorder::new());
        ffs.attach(rec.clone());

        ffs.mkdir("/out", 0o755).unwrap();
        ffs.write_file_chunked("/out/data.bin", &[7u8; 10_000], 4096).unwrap();
        let fd = ffs.open("/out/data.bin", OpenFlags::read_write()).unwrap();
        ffs.lock(fd, LockKind::Exclusive).unwrap();
        ffs.pwrite(fd, b"patch", 100).unwrap();
        ffs.unlock(fd).unwrap();
        ffs.release(fd).unwrap();
        ffs.write_file("/out/log.txt", b"done\n").unwrap();
        ffs.rename("/out/log.txt", "/out/run.log").unwrap();
        // Read-back must NOT be recorded.
        assert_eq!(ffs.read_to_vec("/out/data.bin").unwrap().len(), 10_000);
        ffs.unmount();
        (rec.ops(), base)
    }

    #[test]
    fn recorder_captures_mutating_ops_only() {
        let (ops, _) = record_workload();
        assert!(ops.iter().any(|o| matches!(o, TraceOp::Mkdir { .. })));
        assert!(ops.iter().any(|o| matches!(o, TraceOp::Lock { .. })));
        assert!(ops.iter().any(|o| matches!(o, TraceOp::Rename { .. })));
        // 3 chunks + patch + log = 5 writes; read-only open skipped.
        assert_eq!(ops.iter().filter(|o| o.is_write()).count(), 5);
        assert!(ops.iter().all(|o| !matches!(o, TraceOp::Open { flags, .. } if !flags.write)));
        // Write paths travel with the ops.
        assert!(ops.iter().filter(|o| o.is_write()).all(|o| o.write_path().is_some()));
    }

    #[test]
    fn replay_rebuilds_identical_state() {
        let (ops, golden) = record_workload();
        let rebuilt = MemFs::new();
        ReplayCursor::new().replay(&rebuilt, &ops).unwrap();
        assert_eq!(
            rebuilt.snapshot("/out/data.bin").unwrap(),
            golden.snapshot("/out/data.bin").unwrap()
        );
        assert_eq!(rebuilt.snapshot("/out/run.log").unwrap(), b"done\n");
        assert_eq!(rebuilt.open_handles(), 0, "all recorded fds released");
    }

    #[test]
    fn replay_through_mount_counts_primitives() {
        use crate::interceptor::Primitive;
        let (ops, _) = record_workload();
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ReplayCursor::new().replay(&*ffs, &ops).unwrap();
        assert_eq!(ffs.counters().get(Primitive::Write), 5);
        assert_eq!(ffs.counters().get(Primitive::Mkdir), 1);
        // Replay skips the read-only open and the preads.
        assert_eq!(ffs.counters().get(Primitive::Read), 0);
    }

    #[test]
    fn mid_trace_fork_and_suffix_replay() {
        let (ops, golden) = record_workload();
        // Split at the patch write (the 4th write).
        let split =
            ops.iter().enumerate().filter(|(_, o)| o.is_write()).nth(3).map(|(i, _)| i).unwrap();

        // Build the pre-split snapshot on a bare MemFs.
        let base = MemFs::new();
        let mut cursor = ReplayCursor::new();
        cursor.replay(&base, &ops[..split]).unwrap();
        assert!(cursor.open_fds() > 0, "split lands inside an open file");

        // Fork twice and replay the suffix through instrumented mounts.
        for _ in 0..2 {
            let ffs = FfisFs::mount(Arc::new(base.fork()));
            let mut c = cursor.clone();
            c.seed_mount(&ffs);
            c.replay(&*ffs, &ops[split..]).unwrap();
            let inner = ffs.inner().clone();
            let got = {
                let mut v = vec![0u8; 10];
                let fd = inner.open("/out/data.bin", OpenFlags::read_only()).unwrap();
                inner.pread(fd, &mut v, 100).unwrap();
                inner.release(fd).unwrap();
                v
            };
            assert_eq!(&got[..5], b"patch");
        }

        // The snapshot itself was never polluted by the suffix.
        assert!(!base.exists("/out/run.log"));
        assert_eq!(golden.snapshot("/out/run.log").unwrap(), b"done\n");
    }

    #[test]
    fn seeded_mount_carries_paths_for_fd_ops() {
        let (ops, _) = record_workload();
        let split = ops.iter().position(|o| o.is_write()).unwrap();
        let base = MemFs::new();
        let mut cursor = ReplayCursor::new();
        cursor.replay(&base, &ops[..split]).unwrap();

        let ffs = FfisFs::mount(Arc::new(base.fork()));
        cursor.seed_mount(&ffs);
        let trace = Arc::new(crate::counting::TraceInterceptor::new());
        ffs.attach(trace.clone());
        cursor.replay(&*ffs, &ops[split..]).unwrap();
        let writes = trace.records_of(crate::interceptor::Primitive::Write);
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|w| w.path.is_some()), "adopted fds resolve to paths");
    }

    #[test]
    fn replay_error_carries_index() {
        let ops = vec![
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 },
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 }, // EEXIST
        ];
        let fs = MemFs::new();
        let err = ReplayCursor::new().replay(&fs, &ops).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.error, FsError::Exists);
        assert!(err.to_string().contains("replay op 1"));
    }

    #[test]
    fn unknown_fd_write_is_an_error_but_bookkeeping_ops_skip() {
        let fs = MemFs::new();
        let mut c = ReplayCursor::new();
        assert!(c.step(&fs, &TraceOp::Release { fd: 99 }).is_ok());
        assert!(c.step(&fs, &TraceOp::Fsync { fd: 99 }).is_ok());
        assert_eq!(
            c.step(&fs, &TraceOp::Write { fd: 99, path: None, offset: Some(0), data: vec![1] }),
            Err(FsError::BadFd)
        );
    }

    #[test]
    fn payload_accounting() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.on_op(&TraceOp::Write { fd: 3, path: None, offset: Some(0), data: vec![0; 123] });
        rec.on_op(&TraceOp::Fsync { fd: 3 });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.payload_bytes(), 123);
    }

    #[test]
    fn take_ops_drains() {
        let rec = TraceRecorder::new();
        rec.on_op(&TraceOp::Fsync { fd: 3 });
        let ops = rec.take_ops();
        assert_eq!(ops.len(), 1);
        assert!(rec.is_empty());
        assert!(rec.take_ops().is_empty());
    }
}
