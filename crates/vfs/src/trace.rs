//! Golden-trace capture and replay.
//!
//! A fault-injection campaign repeats the *same* fault-free prefix a
//! thousand times: every run re-executes the application (HDF5
//! encoding, checksums, float packing, halo finding) up to the
//! injection point just to rebuild identical filesystem state. This
//! module removes that redundancy:
//!
//! * [`TraceOp`] — one state-mutating primitive invocation with every
//!   parameter needed to re-issue it (paths, flags, the full write
//!   buffer, descriptor identity).
//! * [`TraceRecorder`] — an [`Interceptor`] that captures the golden
//!   run's mutating operations once, through the
//!   [`Interceptor::on_op`] hook [`crate::FfisFs`] feeds.
//! * [`ReplayCursor`] — re-issues a recorded op stream against any
//!   [`FileSystem`]: a bare [`crate::MemFs`] (building a snapshot at
//!   raw memcpy speed) or a mounted [`crate::FfisFs`] with an armed
//!   injector (so the fault lands in exactly the targeted instance
//!   while every other op replays byte-identically).
//!
//! Combined with [`crate::MemFs::fork`], an injection run becomes:
//! fork the pre-injection snapshot (O(page pointers)), replay the
//! trace suffix through the injector (O(suffix bytes)), and run only
//! the application's analyze phase — instead of re-running the whole
//! application.
//!
//! ## Mid-trace checkpoints
//!
//! The metadata scanner injects into one *fixed* write, so a single
//! pre-injection snapshot serves every scanned byte. Campaign targets
//! vary per run; [`TraceCheckpoints`] generalizes the snapshot into a
//! checkpoint cache over the whole stream. Each [`TraceCheckpoint`]
//! holds a CoW fork of the filesystem, the descriptor map, and the
//! per-primitive counts after its prefix; [`TraceCheckpoint::mount_fork`]
//! rebuilds a mount whose suffix replay is indistinguishable — paths,
//! instance numbering, `prim_seq` — from a full-trace replay.
//!
//! Placement comes in two modes:
//!
//! * **Log-spaced** ([`TraceCheckpoints::build`]) — when the fork
//!   offsets are unknown, snapshots go at `n − n/2ᵏ`, log-spaced
//!   *from the end* (every run must replay through the end of the
//!   trace anyway). The replayed suffix is then at most ~2× the
//!   minimal `n − target` for any target, with O(log n) snapshots.
//! * **Demand-driven** ([`TraceCheckpoints::build_for_demand`]) — a
//!   campaign planner resolves every run's injection offset *before*
//!   execution (plan-time determinism), so it can hand the builder the
//!   actual fork-offset histogram. With enough budget each demanded
//!   offset gets its own snapshot (zero overshoot); over budget, a
//!   weighted k-median placement minimizes total overshoot across the
//!   demanded offsets. Falls back to log-spaced when the demand is
//!   empty.
//!
//! Either way the checkpoint set is a pure wall-clock optimization:
//! which snapshot a run forks from is invisible to every digest.
//!
//! ## Suffix write coalescing
//!
//! [`ReplayCursor::replay_coalesced`] merges maximal runs of adjacent
//! same-descriptor writes (all cursor-sequential, or all positioned
//! and byte-contiguous) into single vectored applications
//! ([`FileSystem::writev`] / [`FileSystem::pwritev`]). The merged
//! application is byte-identical to the op-at-a-time replay; it is
//! only legal where no observer needs per-op visibility — an armed
//! injector's window, an interceptor that `wants_read_snapshot`, or a
//! liveness watchdog counting mount crossings all gate coalescing off
//! for the ops they must see individually. Callers enforce the gate;
//! the cursor just applies the stream.
//!
//! ## Fidelity contract
//!
//! The recorder captures operations *as issued by the application*
//! (pre-interception), only when they succeed, and only when they can
//! change filesystem state (read-only opens and reads are skipped).
//! Replay therefore assumes the workload's sequential-`write` cursors
//! are not advanced by interleaved reads on the same descriptor — true
//! for every workload in this workspace, which positions data with
//! `pwrite`.
//!
//! ### Why read-site faults are non-replayable — the refined claim
//!
//! The golden trace records *pristine* reads — or rather, it records
//! no reads at all: a read cannot change filesystem state, so the
//! recorder skips it, and every byte the golden run read was by
//! definition uncorrupted. The original conclusion — "read-site fault
//! signatures are non-replayable by construction" — is therefore true
//! of *trace replay*, but it is not the whole story. Eligible reads
//! split along the two-phase contract's seam, and the seam decides:
//!
//! * **Produce-phase read faults stay non-replayable.** The fault
//!   fires while the application is still writing, so the rest of the
//!   run is downstream of the corrupted transfer; only a full
//!   produce+analyze rerun can model it. Campaign drivers record
//!   `ffis_core::ReplayFallback::ProduceReadFault` for these targets —
//!   structural, not a failed self-check.
//! * **Analyze-phase read faults are exactly re-executable from the
//!   golden checkpoint.** A read fault never touches device state, and
//!   produce's writes are data-independent by law — so a rerun's
//!   produce phase rebuilds *byte-for-byte* the filesystem the golden
//!   run already left behind. Forking that state ([`crate::MemFs::fork`]
//!   of the golden snapshot), pre-seeding the mount's counters with
//!   the golden produce-phase [`CounterSnapshot`]
//!   ([`crate::FfisFs::preseed_counters`]), and arming the injector
//!   with the produce-phase eligible-read count already "seen"
//!   reproduces a full rerun's analyze phase exactly — instance
//!   numbering, `prim_seq`, `seq` and all. This is the
//!   `AnalyzeOnly` strategy in `ffis_core`, and the [`ReadLedger`]
//!   below is the instrument that locates the phase seam in the
//!   eligible-read instance space.
//!
//! The three original grounds map onto the refined taxonomy like so:
//!
//! * *"a replay re-issues only the mutating op stream, so instance
//!   numbering diverges"* — true for trace replay; the analyze-only
//!   path does not replay the trace at all. It re-executes analyze
//!   live on the forked golden state, and counter pre-seeding keeps
//!   the numbering identical to a full execution's. Produce-phase
//!   reads never happen on this path either — which is exactly why
//!   only *analyze-phase* targets are eligible for it.
//! * *"the artifact a read fault damages is the transfer, which exists
//!   only while the application actually issues the read"* — the
//!   analyze-only run *does* issue its reads (analyze executes live),
//!   so the transfer exists and the armed injector corrupts it as in
//!   any rerun. For produce-phase targets the transfer still only
//!   exists inside a full rerun: `ProduceReadFault`.
//! * *"a produce-phase read fault could steer the real application's
//!   control flow in ways no trace of the fault-free run can predict"*
//!   — this ground is untouched and is the `ProduceReadFault` fallback
//!   verbatim. Analyze-phase faults fire after produce finished, so
//!   there is no produce control flow left to steer; whatever they
//!   steer inside analyze happens identically in the live analyze the
//!   fast path runs.
//!
//! Two consequences matter to consumers that must match legacy
//! re-execution exactly (both are enforced by the gates in
//! `ffis_core`):
//!
//! * ops that *failed* during capture are absent from the trace, while
//!   interceptor-level counters count every attempt — compare the two
//!   counts and fall back to re-execution on mismatch;
//! * replay is straight-line: an op that fails mid-replay aborts with
//!   a [`ReplayError`] instead of modeling whatever error handling the
//!   real application would have applied, so only fault models that
//!   cannot make a replayed op fail (buffer-level write faults —
//!   `Replace` preserves the length, `Drop` skips the device write)
//!   are eligible for trace-based campaigns;
//! * replayed payloads are the golden run's bytes verbatim: this is
//!   the **write-stream data-independence law** — the byte content a
//!   workload's produce phase writes must not depend on data read back
//!   through the filesystem earlier in the same run, because a real
//!   rerun would derive those writes from fault-corrupted reads while
//!   a replay re-issues golden-derived ones. Every
//!   `ffis_core::FaultApp::produce` implementation asserts this law by
//!   construction (the two-phase contract confines read-back to the
//!   analyze phase, which never writes); a produce phase that must
//!   consume its own on-disk output re-derives the dependent artifacts
//!   inside analyze instead (see `qmc_sim`'s checkpoint handoff and
//!   `montage_sim`'s stage cascade for the pattern).
//!
//! ## Read fingerprints as sub-step reachability
//!
//! The [`ReadLedger`] does more than locate the produce/analyze seam:
//! each [`ReadRecord`] carries the path and an FNV-1a fingerprint of
//! the bytes the read returned, so the golden ledger is a complete,
//! content-addressed map of *what analyze actually consumed, in
//! order*. That map is what makes incremental analyze sound. An
//! application that declares analyze sub-steps with their read
//! file-sets (`ffis_core::SubstepSpec`) is claiming a partition: sub-
//! step `d` reads only its declared files, and running the sub-steps
//! in order is read-for-read identical to whole analyze. The memo
//! layer *checks* that claim against the ledger before trusting it —
//! it runs each sub-step once on a fork of the golden state, records
//! its own ledger, and requires (a) every recorded path to fall
//! inside the declared file-set, and (b) the concatenated per-sub-step
//! `(path, fingerprint)` streams to reproduce the whole-analyze
//! ledger exactly, fingerprint for fingerprint.
//!
//! Once validated, the declared file-sets define **reachability for a
//! fault**: an armed read fault corrupts one eligible read instance,
//! the ledger says which sub-step's range that instance falls in, and
//! every *other* sub-step's inputs are — by the validated partition —
//! byte-identical to golden, so its memoized artifact (keyed on the
//! sub-step's golden fingerprint stream) replays at zero cost. Only
//! the dirty sub-step re-executes. Write-site faults reuse the same
//! partition through the replayed device state's content fingerprints.
//!
//! When any check fails — no sub-steps declared, an undeclared read,
//! a fingerprint stream that doesn't reconstruct whole analyze, a
//! liveness watchdog armed (fuel/wall limits make sub-step streams
//! nondeterministic), or the fast paths disabled — the campaign falls
//! back to whole-run analyze and *records the reason* in
//! `ffis_core::MemoReport`; engine law 8 (`ffis_core::engine`) pins
//! that the fallback and the memoized path are byte-identical, so the
//! memo layer is a pure wall-clock optimization, never a regime.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::blobs::{crc32, BlobStats, BlobStore};
use crate::error::{FsError, FsResult};
use crate::ffisfs::{CounterSnapshot, FfisFs};
use crate::file::{Page, BLOCK_SIZE};
use crate::fs::{Fd, FileSystem, LockKind, NodeKind, OpenFlags};
use crate::interceptor::{Interceptor, Primitive};
use crate::memfs::{self, MemFs};
use crate::wire;

/// One recorded state-mutating primitive invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// `mknod`.
    Mknod {
        /// Target path.
        path: String,
        /// Node kind.
        kind: NodeKind,
        /// Permission bits.
        mode: u32,
        /// Device number.
        dev: u64,
    },
    /// `mkdir`.
    Mkdir {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// `unlink`.
    Unlink {
        /// Target path.
        path: String,
    },
    /// `rmdir`.
    Rmdir {
        /// Target path.
        path: String,
    },
    /// `rename`.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// `chmod`.
    Chmod {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// `truncate` by path.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// `create` — returns a descriptor.
    Create {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Descriptor the golden run received.
        fd: Fd,
    },
    /// Write-capable `open` — returns a descriptor.
    Open {
        /// Target path.
        path: String,
        /// Open flags (always write-capable; read-only opens are not
        /// recorded).
        flags: OpenFlags,
        /// Descriptor the golden run received.
        fd: Fd,
    },
    /// `write` / `pwrite` — the payload-carrying op.
    Write {
        /// Descriptor (golden-run numbering).
        fd: Fd,
        /// Target path at record time (for filter matching without a
        /// descriptor table).
        path: Option<String>,
        /// Byte offset; `None` for sequential cursor writes.
        offset: Option<u64>,
        /// The application's buffer, verbatim.
        data: Vec<u8>,
    },
    /// `fsync`.
    Fsync {
        /// Descriptor (golden-run numbering).
        fd: Fd,
    },
    /// `release`.
    Release {
        /// Descriptor (golden-run numbering).
        fd: Fd,
    },
    /// Advisory `lock`.
    Lock {
        /// Descriptor (golden-run numbering).
        fd: Fd,
        /// Lock kind.
        kind: LockKind,
    },
    /// Advisory `unlock`.
    Unlock {
        /// Descriptor (golden-run numbering).
        fd: Fd,
    },
}

impl TraceOp {
    /// Is this a `write`/`pwrite` op?
    pub fn is_write(&self) -> bool {
        matches!(self, TraceOp::Write { .. })
    }

    /// The primitive a replay of this op executes — the counter it
    /// advances when re-issued through a mounted [`FfisFs`].
    pub fn primitive(&self) -> Primitive {
        match self {
            TraceOp::Mknod { .. } => Primitive::Mknod,
            TraceOp::Mkdir { .. } => Primitive::Mkdir,
            TraceOp::Unlink { .. } => Primitive::Unlink,
            TraceOp::Rmdir { .. } => Primitive::Rmdir,
            TraceOp::Rename { .. } => Primitive::Rename,
            TraceOp::Chmod { .. } => Primitive::Chmod,
            TraceOp::Truncate { .. } => Primitive::Truncate,
            TraceOp::Create { .. } => Primitive::Create,
            TraceOp::Open { .. } => Primitive::Open,
            TraceOp::Write { .. } => Primitive::Write,
            TraceOp::Fsync { .. } => Primitive::Fsync,
            TraceOp::Release { .. } => Primitive::Release,
            TraceOp::Lock { .. } => Primitive::Lock,
            TraceOp::Unlock { .. } => Primitive::Unlock,
        }
    }

    /// Target path of a write op, when tracked at record time.
    pub fn write_path(&self) -> Option<&str> {
        match self {
            TraceOp::Write { path, .. } => path.as_deref(),
            _ => None,
        }
    }

    /// Payload length carried toward the device (0 for non-writes).
    pub fn payload_len(&self) -> usize {
        match self {
            TraceOp::Write { data, .. } => data.len(),
            _ => 0,
        }
    }

    /// The descriptor of a state-neutral bookkeeping op
    /// (`fsync`/`release`/`lock`/`unlock`), or `None` for every op
    /// that can change filesystem state. This is the op class
    /// [`ReplayCursor::step`] silently skips when the descriptor is
    /// unmapped — checkpoint counter preseeding and the campaign's
    /// read-only-analyze gate both key off the same predicate so the
    /// three sites cannot drift apart.
    pub fn bookkeeping_fd(&self) -> Option<Fd> {
        match self {
            TraceOp::Fsync { fd }
            | TraceOp::Release { fd }
            | TraceOp::Lock { fd, .. }
            | TraceOp::Unlock { fd } => Some(*fd),
            _ => None,
        }
    }
}

/// Interceptor capturing every mutating op crossing the mount.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    ops: Mutex<Vec<TraceOp>>,
}

impl TraceRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the recorded golden trace.
    pub fn ops(&self) -> Vec<TraceOp> {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drain the recorded golden trace without copying it. The trace
    /// carries every write payload, so consumers that own the recorder
    /// (the campaign/scan drivers) take it instead of cloning
    /// workload-sized buffers.
    pub fn take_ops(&self) -> Vec<TraceOp> {
        std::mem::take(&mut *self.ops.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of ops recorded so far.
    pub fn len(&self) -> usize {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes across recorded writes.
    pub fn payload_bytes(&self) -> u64 {
        self.ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|op| op.payload_len() as u64)
            .sum()
    }
}

impl Interceptor for TraceRecorder {
    fn wants_ops(&self) -> bool {
        true
    }

    fn on_op(&self, op: &TraceOp) {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).push(op.clone());
    }
}

/// Open-descriptor state carried across a replay.
#[derive(Debug, Clone)]
struct ReplayFd {
    /// Descriptor in the filesystem being replayed into.
    fd: Fd,
    /// Path the descriptor addresses.
    path: String,
}

/// Replays a [`TraceOp`] stream into a filesystem, mapping golden-run
/// descriptor numbers to the descriptors the target filesystem hands
/// out.
///
/// A cursor is cheap to [`Clone`]: forked replays share the captured
/// trace and clone only the (small) descriptor map — the pattern the
/// metadata scanner uses to replay the same suffix thousands of times
/// from one mid-run snapshot.
#[derive(Debug, Clone, Default)]
pub struct ReplayCursor {
    fds: HashMap<Fd, ReplayFd>,
}

impl ReplayCursor {
    /// Cursor with no live descriptors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-issue one recorded op against `fs`.
    ///
    /// Ops addressing descriptors this cursor never saw (e.g. a
    /// `release` of an unrecorded read-only open) are skipped — they
    /// cannot change state.
    pub fn step(&mut self, fs: &dyn FileSystem, op: &TraceOp) -> FsResult<()> {
        match op {
            TraceOp::Mknod { path, kind, mode, dev } => fs.mknod(path, *kind, *mode, *dev),
            TraceOp::Mkdir { path, mode } => fs.mkdir(path, *mode),
            TraceOp::Unlink { path } => fs.unlink(path),
            TraceOp::Rmdir { path } => fs.rmdir(path),
            TraceOp::Rename { from, to } => fs.rename(from, to),
            TraceOp::Chmod { path, mode } => fs.chmod(path, *mode),
            TraceOp::Truncate { path, size } => fs.truncate(path, *size),
            TraceOp::Create { path, mode, fd } => {
                let new = fs.create(path, *mode)?;
                self.fds.insert(*fd, ReplayFd { fd: new, path: path.clone() });
                Ok(())
            }
            TraceOp::Open { path, flags, fd } => {
                let new = fs.open(path, *flags)?;
                self.fds.insert(*fd, ReplayFd { fd: new, path: path.clone() });
                Ok(())
            }
            TraceOp::Write { fd, offset, data, .. } => {
                let Some(entry) = self.fds.get(fd) else {
                    return Err(FsError::BadFd);
                };
                let n = match offset {
                    Some(off) => fs.pwrite(entry.fd, data, *off)?,
                    None => fs.write(entry.fd, data)?,
                };
                // Short device writes cannot be hidden from the
                // original application either; surface them.
                if n != data.len() {
                    return Err(FsError::Io);
                }
                Ok(())
            }
            TraceOp::Fsync { fd } => match self.fds.get(fd) {
                Some(entry) => fs.fsync(entry.fd),
                None => Ok(()),
            },
            TraceOp::Release { fd } => match self.fds.remove(fd) {
                Some(entry) => fs.release(entry.fd),
                None => Ok(()),
            },
            TraceOp::Lock { fd, kind } => match self.fds.get(fd) {
                Some(entry) => fs.lock(entry.fd, *kind),
                None => Ok(()),
            },
            TraceOp::Unlock { fd } => match self.fds.get(fd) {
                Some(entry) => fs.unlock(entry.fd),
                None => Ok(()),
            },
        }
    }

    /// Replay a slice of ops in order. On error, reports the index of
    /// the failing op alongside the error.
    pub fn replay(&mut self, fs: &dyn FileSystem, ops: &[TraceOp]) -> Result<(), ReplayError> {
        for (i, op) in ops.iter().enumerate() {
            self.step(fs, op).map_err(|error| ReplayError { index: i, error })?;
        }
        Ok(())
    }

    /// Register this cursor's live descriptors with a freshly mounted
    /// [`FfisFs`] so fd-addressed ops replayed through the mount carry
    /// their target path in the [`crate::CallContext`] — required for
    /// path-filtered injectors to see suffix writes. Call after
    /// mounting over a fork that was snapshotted mid-trace.
    pub fn seed_mount(&self, ffs: &FfisFs) {
        for entry in self.fds.values() {
            ffs.adopt_fd(entry.fd, &entry.path);
        }
    }

    /// Number of descriptors currently live in the replay.
    pub fn open_fds(&self) -> usize {
        self.fds.len()
    }

    /// Does this cursor map golden-run descriptor `fd`? Bookkeeping
    /// ops (`fsync`/`release`/`lock`/`unlock`) addressing an unmapped
    /// descriptor are skipped by [`ReplayCursor::step`] without
    /// touching the filesystem — checkpoint builders use this to count
    /// only the primitives a replay actually issues.
    pub fn maps(&self, fd: Fd) -> bool {
        self.fds.contains_key(&fd)
    }

    /// Replay a slice of ops, merging maximal runs of adjacent
    /// same-descriptor writes into single vectored applications.
    ///
    /// Two write shapes coalesce (never mixed within one run):
    ///
    /// * all cursor-sequential (`offset == None`) — applied with one
    ///   [`FileSystem::writev`];
    /// * all positioned (`offset == Some`) and byte-contiguous
    ///   (each op starts where the previous one ended) — applied with
    ///   one [`FileSystem::pwritev`] at the run's first offset.
    ///
    /// The result is byte-identical to [`ReplayCursor::replay`]; only
    /// the number of filesystem calls changes. Callers must ensure no
    /// observer needs per-op visibility over the slice (see the
    /// module docs) — typically by applying it to the mount's inner
    /// filesystem after the armed window has passed. On error, the
    /// reported index is the first op of the failing application.
    pub fn replay_coalesced(
        &mut self,
        fs: &dyn FileSystem,
        ops: &[TraceOp],
    ) -> Result<CoalesceStats, ReplayError> {
        let mut stats = CoalesceStats::default();
        let mut i = 0;
        while i < ops.len() {
            let run = coalescable_run(&ops[i..]);
            if run < 2 {
                self.step(fs, &ops[i]).map_err(|error| ReplayError { index: i, error })?;
                stats.replayed_ops += 1;
                i += 1;
                continue;
            }
            let (fd, offset) = match &ops[i] {
                TraceOp::Write { fd, offset, .. } => (*fd, *offset),
                _ => unreachable!("coalescable runs contain only writes"),
            };
            let entry = self.fds.get(&fd).ok_or(ReplayError { index: i, error: FsError::BadFd })?;
            let bufs: Vec<&[u8]> = ops[i..i + run]
                .iter()
                .map(|op| match op {
                    TraceOp::Write { data, .. } => data.as_slice(),
                    _ => unreachable!("coalescable runs contain only writes"),
                })
                .collect();
            let total: usize = bufs.iter().map(|b| b.len()).sum();
            let n = match offset {
                Some(off) => fs.pwritev(entry.fd, &bufs, off),
                None => fs.writev(entry.fd, &bufs),
            }
            .map_err(|error| ReplayError { index: i, error })?;
            if n != total {
                return Err(ReplayError { index: i, error: FsError::Io });
            }
            stats.replayed_ops += run;
            stats.coalesced_calls += 1;
            stats.coalesced_ops += run;
            i += run;
        }
        Ok(stats)
    }

    /// Replay a tail slice applying only the ops that can reach paths
    /// selected by `keep`, coalescing the kept stretches exactly like
    /// [`ReplayCursor::replay_coalesced`].
    ///
    /// The filter is path-attributed and conservative:
    ///
    /// * `create`/`open` of a dropped path also drops every later op
    ///   addressing the descriptor it would have mapped;
    /// * `write` and bookkeeping ops follow their descriptor — a
    ///   descriptor opened within the slice follows its
    ///   `create`/`open` verdict, one live at the slice start follows
    ///   the path this cursor maps it to, and an unmapped descriptor
    ///   is applied so a full replay's error surfaces unchanged;
    /// * path-addressed metadata ops (`truncate`/`chmod`) follow
    ///   `keep`; `mknod`/`mkdir` always apply — they are rare, cheap,
    ///   and keep parent directories present for kept files;
    /// * namespace ops that move or destroy state
    ///   (`rename`/`unlink`/`rmdir`) defeat path attribution: their
    ///   presence anywhere in the slice disables filtering and the
    ///   whole slice applies.
    ///
    /// The filesystem state left behind differs from a full replay
    /// only on dropped paths; everything `keep` selects is
    /// byte-identical. Callers must therefore guarantee nothing
    /// downstream observes a dropped path — the memoized batched
    /// replay arm does so by construction, because dropped paths are
    /// exactly those no dirty analyze sub-step declares as input.
    pub fn replay_coalesced_filtered(
        &mut self,
        fs: &dyn FileSystem,
        ops: &[TraceOp],
        keep: &dyn Fn(&str) -> bool,
    ) -> Result<CoalesceStats, ReplayError> {
        // Verdict pass: one bool per op, tracking descriptors opened
        // (and possibly dropped) within the slice.
        let mut kept = vec![true; ops.len()];
        let mut tail_opened: HashMap<Fd, bool> = HashMap::new();
        let fd_verdict = |tail_opened: &HashMap<Fd, bool>, fds: &HashMap<Fd, ReplayFd>, fd: Fd| {
            match tail_opened.get(&fd) {
                Some(&k) => k,
                None => fds.get(&fd).is_none_or(|entry| keep(&entry.path)),
            }
        };
        for (i, op) in ops.iter().enumerate() {
            kept[i] = match op {
                TraceOp::Rename { .. } | TraceOp::Unlink { .. } | TraceOp::Rmdir { .. } => {
                    return self.replay_coalesced(fs, ops);
                }
                TraceOp::Mknod { .. } | TraceOp::Mkdir { .. } => true,
                TraceOp::Create { path, fd, .. } | TraceOp::Open { path, fd, .. } => {
                    let k = keep(path);
                    tail_opened.insert(*fd, k);
                    k
                }
                TraceOp::Truncate { path, .. } | TraceOp::Chmod { path, .. } => keep(path),
                TraceOp::Write { fd, .. }
                | TraceOp::Fsync { fd }
                | TraceOp::Release { fd }
                | TraceOp::Lock { fd, .. }
                | TraceOp::Unlock { fd } => fd_verdict(&tail_opened, &self.fds, *fd),
            };
        }
        // Application pass: each maximal kept stretch goes through the
        // ordinary coalescing replay, with error indices mapped back
        // to this slice's numbering.
        let mut stats = CoalesceStats::default();
        let mut i = 0;
        while i < ops.len() {
            if !kept[i] {
                stats.skipped_ops += 1;
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < ops.len() && kept[j] {
                j += 1;
            }
            let sub = self
                .replay_coalesced(fs, &ops[i..j])
                .map_err(|e| ReplayError { index: e.index + i, error: e.error })?;
            stats.replayed_ops += sub.replayed_ops;
            stats.coalesced_calls += sub.coalesced_calls;
            stats.coalesced_ops += sub.coalesced_ops;
            i = j;
        }
        Ok(stats)
    }
}

/// Length of the maximal coalescable write run at the head of `ops`
/// (1 when the head op stands alone).
fn coalescable_run(ops: &[TraceOp]) -> usize {
    let TraceOp::Write { fd, offset, data, .. } = &ops[0] else {
        return 1;
    };
    let mut end = offset.as_ref().map(|off| off + data.len() as u64);
    let mut run = 1;
    for op in &ops[1..] {
        let TraceOp::Write { fd: f, offset: o, data: d, .. } = op else {
            break;
        };
        if f != fd {
            break;
        }
        match (end, o) {
            // Positioned run: next op must start where this one ended.
            (Some(e), Some(next)) if *next == e => end = Some(e + d.len() as u64),
            // Sequential run: cursor writes chain unconditionally.
            (None, None) => {}
            _ => break,
        }
        run += 1;
    }
    run
}

/// Accounting from one [`ReplayCursor::replay_coalesced`] (or
/// [`ReplayCursor::replay_coalesced_filtered`]) pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Trace ops applied (coalesced or not).
    pub replayed_ops: usize,
    /// Vectored filesystem calls issued for coalesced runs.
    pub coalesced_calls: usize,
    /// Trace ops absorbed into those vectored calls.
    pub coalesced_ops: usize,
    /// Trace ops dropped by the path filter (always 0 for the
    /// unfiltered pass).
    pub skipped_ops: usize,
}

/// A replay failure: which op failed and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the failing op within the replayed slice.
    pub index: usize,
    /// The filesystem error.
    pub error: FsError,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay op {} failed: {}", self.index, self.error)
    }
}

impl std::error::Error for ReplayError {}

/// One mid-trace snapshot of a golden replay stream: the filesystem
/// state, descriptor map, and per-primitive counts after applying
/// `ops[..index]`.
///
/// The filesystem is held behind an [`Arc`] so thousands of injection
/// runs can [`MemFs::fork`] it concurrently; each fork is O(page
/// pointers).
pub struct TraceCheckpoint {
    index: usize,
    fs: Arc<MemFs>,
    cursor: ReplayCursor,
    counters: CounterSnapshot,
}

impl TraceCheckpoint {
    /// Number of ops applied to reach this snapshot (`ops[..index]`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Per-primitive counts of the ops a replay of the prefix issues.
    pub fn counters(&self) -> CounterSnapshot {
        self.counters
    }

    /// Fork the snapshot and mount it for a suffix replay: the
    /// returned [`FfisFs`] has the checkpoint's descriptors adopted
    /// (so fd-addressed suffix ops carry their target path into
    /// [`crate::CallContext`]) and its per-primitive counters
    /// pre-seeded with the prefix counts (so suffix ops observe the
    /// same `prim_seq` numbering a full-trace replay would produce).
    /// The returned cursor is positioned at `index`; replay
    /// `ops[index..]` through it.
    pub fn mount_fork(&self) -> (Arc<FfisFs>, ReplayCursor) {
        let ffs = FfisFs::mount(Arc::new(self.fs.fork()));
        let cursor = self.cursor.clone();
        cursor.seed_mount(&ffs);
        ffs.preseed_counters(&self.counters);
        (ffs, cursor)
    }
}

/// How a [`TraceCheckpoints`] set chose its snapshot indices.
///
/// Demand-placed and log-spaced sets over the *same* trace are
/// distinct cache entries (see
/// [`CheckpointStore::get_or_build_for_demand`]): the placement is
/// part of the identity, so the two coexist in the store without
/// invalidating each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Log-spaced from the end (`{0} ∪ {n − n/2ᵏ}`); the
    /// demand-oblivious default with ≤ ~2× suffix overshoot.
    LogSpaced,
    /// Placed against a campaign's fork-offset demand (the sorted,
    /// in-range offsets the builder was given).
    Demand(Vec<usize>),
}

/// Mid-trace [`TraceCheckpoint`]s over a golden op stream — the
/// campaign-side analogue of the metadata scanner's single
/// pre-injection snapshot.
///
/// A campaign run targeting the op at index `t` must replay every op
/// from its starting snapshot through the end of the trace (`n - c`
/// ops from a checkpoint at `c ≤ t`), so the best any snapshot can do
/// for that run is `n - t`. [`TraceCheckpoints::build`] places
/// snapshots log-spaced *from the end* — at indices
/// `n - n/2, n - n/4, …` — which guarantees the replayed suffix is at
/// most ~2× the minimal possible one for *every* target with only
/// O(log n) snapshots, without knowing any target in advance.
/// [`TraceCheckpoints::build_for_demand`] instead takes the campaign's
/// actual fork-offset histogram and places snapshots to minimize the
/// *total* overshoot over those offsets — zero when the distinct
/// offsets fit the snapshot budget. Either way each checkpoint is a
/// CoW fork sharing all file pages with its neighbours.
pub struct TraceCheckpoints {
    ops: Vec<TraceOp>,
    points: Vec<TraceCheckpoint>,
    placement: Placement,
}

/// Default cap on the number of snapshots [`TraceCheckpoints::build`]
/// materializes (covers traces up to ~2²⁰ ops at 2×-overshoot).
pub const DEFAULT_MAX_CHECKPOINTS: usize = 20;

/// Above this many distinct demanded offsets, the k-median placement
/// coarsens the demand histogram by merging adjacent offsets so the
/// O(k·m²) placement stays cheap.
const DEMAND_DP_LIMIT: usize = 1024;

impl TraceCheckpoints {
    /// Build log-spaced checkpoints with the default cap.
    pub fn build(ops: Vec<TraceOp>) -> Result<Self, ReplayError> {
        Self::build_with(ops, DEFAULT_MAX_CHECKPOINTS)
    }

    /// Build checkpoints at indices `{0} ∪ {n − n/2ᵏ}`, capped at
    /// `max_points` snapshots, by replaying the stream once on a bare
    /// [`MemFs`]. Fails with the first replay error (a stream that
    /// cannot rebuild cleanly cannot anchor injection runs).
    pub fn build_with(ops: Vec<TraceOp>, max_points: usize) -> Result<Self, ReplayError> {
        let n = ops.len();
        let mut wanted = std::collections::BTreeSet::new();
        wanted.insert(0usize);
        let mut seg = n;
        while wanted.len() < max_points.max(1) && seg > 1 {
            seg /= 2;
            wanted.insert(n - seg);
        }
        Self::build_at(ops, &wanted, Placement::LogSpaced)
    }

    /// Build checkpoints placed against a campaign's fork-offset
    /// demand, with the default snapshot cap.
    ///
    /// `demand` holds one entry per planned replay run: the op index
    /// that run forks at (its injection target). Out-of-range entries
    /// (`0` or `≥ n`) are ignored; an effectively empty demand falls
    /// back to log-spaced placement.
    pub fn build_for_demand(ops: Vec<TraceOp>, demand: &[usize]) -> Result<Self, ReplayError> {
        Self::build_for_demand_with(ops, demand, DEFAULT_MAX_CHECKPOINTS)
    }

    /// [`TraceCheckpoints::build_for_demand`] with an explicit
    /// snapshot cap. When the distinct demanded offsets fit within
    /// `max_points - 1` (index 0 is always snapshotted), every
    /// demanded offset gets its own checkpoint — zero overshoot.
    /// Otherwise a weighted k-median placement over the demand
    /// histogram minimizes the total replayed-op overshoot.
    pub fn build_for_demand_with(
        ops: Vec<TraceOp>,
        demand: &[usize],
        max_points: usize,
    ) -> Result<Self, ReplayError> {
        let n = ops.len();
        let mut sorted: Vec<usize> = demand.iter().copied().filter(|&d| d > 0 && d < n).collect();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return Self::build_with(ops, max_points);
        }
        let budget = max_points.max(2) - 1;
        let mut wanted: std::collections::BTreeSet<usize> = [0usize].into();
        let mut distinct: Vec<(usize, u64)> = Vec::new();
        for &d in &sorted {
            match distinct.last_mut() {
                Some((v, w)) if *v == d => *w += 1,
                _ => distinct.push((d, 1)),
            }
        }
        if distinct.len() <= budget {
            wanted.extend(distinct.iter().map(|&(v, _)| v));
        } else {
            wanted.extend(demand_placement(&distinct, budget));
        }
        Self::build_at(ops, &wanted, Placement::Demand(sorted))
    }

    /// Shared replay pass: snapshot at every index in `wanted` while
    /// replaying the stream once on a bare [`MemFs`].
    fn build_at(
        ops: Vec<TraceOp>,
        wanted: &std::collections::BTreeSet<usize>,
        placement: Placement,
    ) -> Result<Self, ReplayError> {
        let n = ops.len();
        let working = MemFs::new();
        let mut cursor = ReplayCursor::new();
        let mut counters = CounterSnapshot::default();
        let mut points = Vec::with_capacity(wanted.len().max(1));
        if n == 0 {
            // The zero checkpoint always exists, even for an empty
            // stream (empty filesystem, no descriptors, zero counts).
            points.push(TraceCheckpoint {
                index: 0,
                fs: Arc::new(working.fork()),
                cursor: cursor.clone(),
                counters,
            });
        }
        for (i, op) in ops.iter().enumerate() {
            if wanted.contains(&i) {
                points.push(TraceCheckpoint {
                    index: i,
                    fs: Arc::new(working.fork()),
                    cursor: cursor.clone(),
                    counters,
                });
            }
            // Count only primitives the replay actually issues: ops on
            // descriptors the cursor never saw are skipped by `step`.
            let issued = match op.bookkeeping_fd() {
                Some(fd) => cursor.maps(fd),
                None => true,
            };
            cursor.step(&working, op).map_err(|error| ReplayError { index: i, error })?;
            if issued {
                counters.bump(op.primitive(), 1);
            }
        }
        Ok(TraceCheckpoints { ops, points, placement })
    }

    /// The full golden op stream.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// How this set's snapshot indices were chosen.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Total replayed-op overshoot this set incurs over a fork-offset
    /// demand: `Σ (target − nearest checkpoint ≤ target)`. Zero means
    /// every demanded offset forks exactly at its target.
    pub fn overshoot_for(&self, demand: &[usize]) -> u64 {
        demand
            .iter()
            .filter(|&&d| d < self.ops.len().max(1))
            .map(|&d| (d - self.nearest_before(d).index()) as u64)
            .sum()
    }

    /// All checkpoints, ascending by index (always starts at 0).
    pub fn points(&self) -> &[TraceCheckpoint] {
        &self.points
    }

    /// The nearest checkpoint at or before op index `target` — the
    /// starting snapshot for a run injecting into `ops[target]`.
    pub fn nearest_before(&self, target: usize) -> &TraceCheckpoint {
        let idx = self.points.partition_point(|p| p.index <= target);
        &self.points[idx.saturating_sub(1)]
    }

    /// The trace suffix still to replay from `point`.
    pub fn suffix(&self, point: &TraceCheckpoint) -> &[TraceOp] {
        &self.ops[point.index..]
    }

    /// Materialize per-target mini-checkpoints for a batch of replay
    /// runs that share the starting checkpoint `checkpoint`: one bare
    /// replay pass advances from that snapshot through the trace,
    /// forking a [`TraceCheckpoint`] at every distinct in-range target
    /// index (state just *before* the target op, counters included)
    /// and recording, per target, the additive counter delta of the
    /// remaining tail `ops[target + 1..]` — what a run must pre-seed
    /// after applying that tail off-mount so analyze observes
    /// full-replay `prim_seq` numbering.
    ///
    /// This is the fork-once-replay-many amortization behind engine
    /// law 9: the shared prefix `checkpoint → max(target)` is replayed
    /// once per batch instead of once per run, and each run then pays
    /// only one mounted crossing (its target op) plus the off-mount
    /// tail. Targets below the checkpoint's index or outside the trace
    /// are skipped — callers fall back to the classic per-run arm for
    /// those.
    pub fn fork_at_targets(
        &self,
        checkpoint: usize,
        targets: &[usize],
    ) -> Result<BatchForks, ReplayError> {
        let n = self.ops.len();
        let point = &self.points[checkpoint];
        let mut wanted: Vec<usize> =
            targets.iter().copied().filter(|&t| t >= point.index && t < n).collect();
        wanted.sort_unstable();
        wanted.dedup();

        let working = point.fs.fork();
        let mut cursor = point.cursor.clone();
        let mut counters = point.counters;
        let mut forks: Vec<BatchFork> = Vec::with_capacity(wanted.len());
        // Counters observed immediately after each target op applied
        // (`C(target + 1)`); resolved into tail deltas once the final
        // counters are known.
        let mut after: Vec<CounterSnapshot> = Vec::with_capacity(wanted.len());
        let mut next = 0usize;
        for (i, op) in self.ops.iter().enumerate().skip(point.index) {
            if next < wanted.len() && wanted[next] == i {
                forks.push(BatchFork {
                    point: TraceCheckpoint {
                        index: i,
                        fs: Arc::new(working.fork()),
                        cursor: cursor.clone(),
                        counters,
                    },
                    tail_counters: CounterSnapshot::default(),
                });
            }
            let issued = match op.bookkeeping_fd() {
                Some(fd) => cursor.maps(fd),
                None => true,
            };
            cursor.step(&working, op).map_err(|error| ReplayError { index: i, error })?;
            if issued {
                counters.bump(op.primitive(), 1);
            }
            if next < wanted.len() && wanted[next] == i {
                after.push(counters);
                next += 1;
            }
        }
        for (fork, seen) in forks.iter_mut().zip(&after) {
            fork.tail_counters = counters.diff(seen);
        }
        Ok(BatchForks { forks })
    }
}

/// One target's slice of a [`TraceCheckpoints::fork_at_targets`]
/// batch: the pre-target snapshot to fork plus the counter delta of
/// the post-target tail.
pub struct BatchFork {
    point: TraceCheckpoint,
    tail_counters: CounterSnapshot,
}

impl BatchFork {
    /// The mini-checkpoint at the target op (state after
    /// `ops[..target]`; [`TraceCheckpoint::index`] is the target).
    pub fn point(&self) -> &TraceCheckpoint {
        &self.point
    }

    /// Per-primitive counts the tail `ops[target + 1..]` would issue
    /// through a mount — the additive
    /// [`FfisFs::preseed_counters`] delta a batched run applies after
    /// replaying that tail against the mount's inner filesystem
    /// directly.
    pub fn tail_counters(&self) -> CounterSnapshot {
        self.tail_counters
    }
}

/// Mini-checkpoints for one checkpoint-grouped replay batch, ascending
/// by target index (see [`TraceCheckpoints::fork_at_targets`]).
pub struct BatchForks {
    forks: Vec<BatchFork>,
}

impl BatchForks {
    /// The fork whose snapshot sits exactly at `target`, if the batch
    /// pass materialized one.
    pub fn for_target(&self, target: usize) -> Option<&BatchFork> {
        let i = self.forks.partition_point(|f| f.point.index < target);
        self.forks.get(i).filter(|f| f.point.index == target)
    }

    /// Number of materialized target forks.
    pub fn len(&self) -> usize {
        self.forks.len()
    }

    /// Whether the pass materialized no forks (every target was out of
    /// range).
    pub fn is_empty(&self) -> bool {
        self.forks.is_empty()
    }
}

/// Choose up to `budget` checkpoint indices for a demand histogram of
/// `(offset, weight)` pairs (sorted ascending, distinct), minimizing
/// the weighted total overshoot `Σ w·(offset − nearest chosen ≤
/// offset)` given that index 0 is always available as a free
/// fallback facility. Classic k-median-on-a-line DP, O(budget·m²)
/// after coarsening the histogram to at most [`DEMAND_DP_LIMIT`]
/// entries (adjacent offsets merge onto the smaller one, which keeps
/// every merged target servable by the kept index).
fn demand_placement(histogram: &[(usize, u64)], budget: usize) -> Vec<usize> {
    let mut hist: Vec<(usize, u64)> = histogram.to_vec();
    while hist.len() > DEMAND_DP_LIMIT {
        hist = hist.chunks(2).map(|pair| (pair[0].0, pair.iter().map(|&(_, w)| w).sum())).collect();
    }
    let m = hist.len();
    let k = budget.min(m);
    // Prefix sums over weights and weight·offset products.
    let mut wsum = vec![0u64; m + 1];
    let mut wvsum = vec![0u64; m + 1];
    for (i, &(v, w)) in hist.iter().enumerate() {
        wsum[i + 1] = wsum[i] + w;
        wvsum[i + 1] = wvsum[i] + w * v as u64;
    }
    // Cost of serving hist[i..j] from a facility at hist[i].0.
    let seg = |i: usize, j: usize| -> u64 {
        (wvsum[j] - wvsum[i]) - hist[i].0 as u64 * (wsum[j] - wsum[i])
    };
    // f[p][j]: min cost of serving hist[..j] with p facilities placed
    // (plus the free facility at index 0 serving any leading stretch);
    // from[p][j] records where the last facility segment started.
    let mut f = vec![vec![u64::MAX; m + 1]; k + 1];
    let mut from = vec![vec![usize::MAX; m + 1]; k + 1];
    f[0][..=m].copy_from_slice(&wvsum[..=m]); // served entirely by the index-0 fallback
    for p in 1..=k {
        f[p][0] = 0;
        for j in 1..=m {
            f[p][j] = f[p - 1][j];
            from[p][j] = usize::MAX;
            for i in 0..j {
                if f[p - 1][i] == u64::MAX {
                    continue;
                }
                let cost = f[p - 1][i] + seg(i, j);
                if cost < f[p][j] {
                    f[p][j] = cost;
                    from[p][j] = i;
                }
            }
        }
    }
    let mut chosen = Vec::with_capacity(k);
    let (mut p, mut j) = (k, m);
    while p > 0 && j > 0 {
        let i = from[p][j];
        if i == usize::MAX {
            p -= 1; // this level used fewer facilities
            continue;
        }
        chosen.push(hist[i].0);
        j = i;
        p -= 1;
    }
    chosen
}

/// Content fingerprint of a fork-offset demand (order-insensitive:
/// the multiset is sorted before hashing). Combined with the trace
/// fingerprint it keys demand-placed checkpoint sets in a
/// [`CheckpointStore`] so they coexist with the log-spaced set for
/// the same trace.
pub fn demand_fingerprint(demand: &[usize]) -> u64 {
    let mut sorted: Vec<usize> = demand.to_vec();
    sorted.sort_unstable();
    let mut h = Fnv::new();
    h.eat_u64(sorted.len() as u64);
    for d in sorted {
        h.eat_u64(d as u64);
    }
    h.0
}

/// One eligible `FFIS_read` crossing observed by a [`ReadLedger`]:
/// the call identity (numbering, addressing) plus a content
/// fingerprint of the bytes the read returned.
///
/// Entries are appended at call *entry* (the attempt-based numbering
/// the profiler and the armed injector both use), so a read that fails
/// still occupies its slot — `returned` stays `None` and the
/// fingerprint stays at the FNV offset basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// Per-primitive dynamic count of this `FFIS_read` (1-based).
    pub prim_seq: u64,
    /// Global call-sequence number of the crossing.
    pub seq: u64,
    /// Target path, when the descriptor is tracked by the mount.
    pub path: Option<String>,
    /// Byte offset for positioned reads (`None` = cursor read).
    pub offset: Option<u64>,
    /// Requested buffer length.
    pub len: usize,
    /// Bytes the inner filesystem returned; `None` when the read
    /// failed (the crossing was counted but never filled a buffer).
    pub returned: Option<usize>,
    /// FNV-1a over the returned bytes (offset basis when none).
    pub fingerprint: u64,
}

/// The trace capture's **read ledger**: counts and fingerprints every
/// `FFIS_read` crossing the mount, with a phase watermark separating
/// the produce-phase reads from the analyze-phase reads.
///
/// The golden trace deliberately records no reads (they cannot change
/// state), which is what makes read-site faults non-*replayable* — but
/// the campaign planner still needs to know, for a read-site signature
/// targeting eligible instance *k*, whether that instance fires during
/// produce or during analyze. The ledger answers that: attach it to
/// the golden run alongside the [`TraceRecorder`], call
/// [`ReadLedger::mark_produce_end`] at the phase boundary, and the
/// entry index space splits into `[0, produce_reads)` (produce-phase)
/// and `[produce_reads, len)` (analyze-phase). Fingerprints let the
/// drivers verify that a re-executed analyze phase re-issues the exact
/// golden read stream before trusting the fast path.
#[derive(Debug)]
pub struct ReadLedger {
    entries: Mutex<Vec<ReadRecord>>,
    /// Entry count at the produce/analyze boundary; `usize::MAX`
    /// until [`ReadLedger::mark_produce_end`] runs (conservatively:
    /// every read counts as produce-phase when unmarked).
    boundary: std::sync::atomic::AtomicUsize,
}

impl Default for ReadLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadLedger {
    /// Empty ledger, boundary unmarked.
    pub fn new() -> Self {
        ReadLedger {
            entries: Mutex::new(Vec::new()),
            boundary: std::sync::atomic::AtomicUsize::new(usize::MAX),
        }
    }

    /// Mark the produce/analyze phase boundary at the current entry
    /// count and return it. Call between the two phases of the golden
    /// run.
    pub fn mark_produce_end(&self) -> usize {
        let n = self.len();
        self.boundary.store(n, std::sync::atomic::Ordering::SeqCst);
        n
    }

    /// Number of reads issued during the produce phase. When the
    /// boundary was never marked, every recorded read counts as
    /// produce-phase (the conservative answer: nothing qualifies for
    /// an analyze-only re-execution).
    pub fn produce_reads(&self) -> usize {
        self.boundary.load(std::sync::atomic::Ordering::SeqCst).min(self.len())
    }

    /// Snapshot the recorded entries (in call order).
    pub fn records(&self) -> Vec<ReadRecord> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of reads recorded so far.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no read has crossed the mount yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Interceptor for ReadLedger {
    fn on_call(&self, cx: &crate::interceptor::CallContext) {
        if cx.primitive != Primitive::Read {
            return;
        }
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).push(ReadRecord {
            prim_seq: cx.prim_seq,
            seq: cx.seq,
            path: cx.path.clone(),
            offset: cx.offset,
            len: cx.len,
            returned: None,
            fingerprint: Fnv::new().0,
        });
    }

    fn on_read(
        &self,
        cx: &crate::interceptor::CallContext,
        buf: &mut [u8],
        n: usize,
    ) -> crate::interceptor::ReadAction {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        // The matching entry is almost always the last one (golden
        // runs are single-threaded); search backwards by `seq` to stay
        // correct regardless.
        if let Some(entry) = entries.iter_mut().rev().find(|e| e.seq == cx.seq) {
            let mut h = Fnv::new();
            h.eat(&buf[..n]);
            entry.returned = Some(n);
            entry.fingerprint = h.0;
        }
        crate::interceptor::ReadAction::Forward
    }
}

/// FNV-1a accumulator for trace fingerprinting.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
    fn eat_str(&mut self, s: &str) {
        self.eat_u64(s.len() as u64);
        self.eat(s.as_bytes());
    }
}

/// Content fingerprint of a golden op stream: every field of every op,
/// in order, including full write payloads. Campaigns whose golden
/// runs are byte-identical (the common case: several fault models over
/// one deterministic workload) hash to the same key.
fn trace_fingerprint(ops: &[TraceOp]) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(ops.len() as u64);
    for op in ops {
        match op {
            TraceOp::Mknod { path, kind, mode, dev } => {
                h.eat(b"N");
                h.eat_str(path);
                h.eat_u64(*kind as u64);
                h.eat_u64(u64::from(*mode));
                h.eat_u64(*dev);
            }
            TraceOp::Mkdir { path, mode } => {
                h.eat(b"D");
                h.eat_str(path);
                h.eat_u64(u64::from(*mode));
            }
            TraceOp::Unlink { path } => {
                h.eat(b"U");
                h.eat_str(path);
            }
            TraceOp::Rmdir { path } => {
                h.eat(b"d");
                h.eat_str(path);
            }
            TraceOp::Rename { from, to } => {
                h.eat(b"R");
                h.eat_str(from);
                h.eat_str(to);
            }
            TraceOp::Chmod { path, mode } => {
                h.eat(b"C");
                h.eat_str(path);
                h.eat_u64(u64::from(*mode));
            }
            TraceOp::Truncate { path, size } => {
                h.eat(b"T");
                h.eat_str(path);
                h.eat_u64(*size);
            }
            TraceOp::Create { path, mode, fd } => {
                h.eat(b"c");
                h.eat_str(path);
                h.eat_u64(u64::from(*mode));
                h.eat_u64(*fd);
            }
            TraceOp::Open { path, flags, fd } => {
                h.eat(b"O");
                h.eat_str(path);
                let bits = u64::from(flags.read)
                    | u64::from(flags.write) << 1
                    | u64::from(flags.create) << 2
                    | u64::from(flags.truncate) << 3
                    | u64::from(flags.append) << 4
                    | u64::from(flags.excl) << 5;
                h.eat_u64(bits);
                h.eat_u64(*fd);
            }
            TraceOp::Write { fd, path, offset, data } => {
                h.eat(b"W");
                h.eat_u64(*fd);
                match path {
                    Some(p) => h.eat_str(p),
                    None => h.eat(b"-"),
                }
                h.eat_u64(offset.map_or(u64::MAX, |o| o));
                h.eat_u64(data.len() as u64);
                h.eat(data);
            }
            TraceOp::Fsync { fd } => {
                h.eat(b"F");
                h.eat_u64(*fd);
            }
            TraceOp::Release { fd } => {
                h.eat(b"r");
                h.eat_u64(*fd);
            }
            TraceOp::Lock { fd, kind } => {
                h.eat(b"L");
                h.eat_u64(*fd);
                h.eat_u64(matches!(kind, LockKind::Exclusive) as u64);
            }
            TraceOp::Unlock { fd } => {
                h.eat(b"l");
                h.eat_u64(*fd);
            }
        }
    }
    h.0
}

/// Checkpoint-manifest file framing: magic, schema, trace fingerprint,
/// then a CRC-guarded body (op stream + per-checkpoint state).
const MANIFEST_MAGIC: &[u8; 8] = b"FFISCKM1";
// Schema 2 added the placement record to the CRC-covered body;
// schema-1 manifests fail the frame check and are rebuilt.
const MANIFEST_SCHEMA: u32 = 2;

/// Serialize one trace op, externalizing write payloads into `blobs`
/// as ≤ one-page content-addressed chunks. Tag bytes follow
/// [`TraceOp`]'s variant order.
fn encode_op(op: &TraceOp, blobs: &BlobStore, buf: &mut Vec<u8>) {
    match op {
        TraceOp::Mknod { path, kind, mode, dev } => {
            wire::put_u8(buf, 0);
            wire::put_str(buf, path);
            wire::put_u8(buf, memfs::kind_code(*kind));
            wire::put_u32(buf, *mode);
            wire::put_u64(buf, *dev);
        }
        TraceOp::Mkdir { path, mode } => {
            wire::put_u8(buf, 1);
            wire::put_str(buf, path);
            wire::put_u32(buf, *mode);
        }
        TraceOp::Unlink { path } => {
            wire::put_u8(buf, 2);
            wire::put_str(buf, path);
        }
        TraceOp::Rmdir { path } => {
            wire::put_u8(buf, 3);
            wire::put_str(buf, path);
        }
        TraceOp::Rename { from, to } => {
            wire::put_u8(buf, 4);
            wire::put_str(buf, from);
            wire::put_str(buf, to);
        }
        TraceOp::Chmod { path, mode } => {
            wire::put_u8(buf, 5);
            wire::put_str(buf, path);
            wire::put_u32(buf, *mode);
        }
        TraceOp::Truncate { path, size } => {
            wire::put_u8(buf, 6);
            wire::put_str(buf, path);
            wire::put_u64(buf, *size);
        }
        TraceOp::Create { path, mode, fd } => {
            wire::put_u8(buf, 7);
            wire::put_str(buf, path);
            wire::put_u32(buf, *mode);
            wire::put_u64(buf, *fd);
        }
        TraceOp::Open { path, flags, fd } => {
            wire::put_u8(buf, 8);
            wire::put_str(buf, path);
            wire::put_u8(buf, memfs::flags_code(flags));
            wire::put_u64(buf, *fd);
        }
        TraceOp::Write { fd, path, offset, data } => {
            wire::put_u8(buf, 9);
            wire::put_u64(buf, *fd);
            match path {
                Some(p) => {
                    wire::put_u8(buf, 1);
                    wire::put_str(buf, p);
                }
                None => wire::put_u8(buf, 0),
            }
            match offset {
                Some(o) => {
                    wire::put_u8(buf, 1);
                    wire::put_u64(buf, *o);
                }
                None => wire::put_u8(buf, 0),
            }
            wire::put_u32(buf, data.len() as u32);
            wire::put_u32(buf, data.chunks(BLOCK_SIZE).len() as u32);
            for chunk in data.chunks(BLOCK_SIZE) {
                buf.extend_from_slice(&blobs.put(chunk));
            }
        }
        TraceOp::Fsync { fd } => {
            wire::put_u8(buf, 10);
            wire::put_u64(buf, *fd);
        }
        TraceOp::Release { fd } => {
            wire::put_u8(buf, 11);
            wire::put_u64(buf, *fd);
        }
        TraceOp::Lock { fd, kind } => {
            wire::put_u8(buf, 12);
            wire::put_u64(buf, *fd);
            wire::put_u8(
                buf,
                match kind {
                    LockKind::Shared => 1,
                    LockKind::Exclusive => 2,
                },
            );
        }
        TraceOp::Unlock { fd } => {
            wire::put_u8(buf, 13);
            wire::put_u64(buf, *fd);
        }
    }
}

/// Inverse of [`encode_op`]; `None` on any malformed field or a write
/// chunk missing from / corrupted in the blob store.
fn decode_op(r: &mut wire::Reader<'_>, blobs: &BlobStore) -> Option<TraceOp> {
    Some(match r.u8()? {
        0 => TraceOp::Mknod {
            path: r.str_()?,
            kind: memfs::kind_from_code(r.u8()?)?,
            mode: r.u32()?,
            dev: r.u64()?,
        },
        1 => TraceOp::Mkdir { path: r.str_()?, mode: r.u32()? },
        2 => TraceOp::Unlink { path: r.str_()? },
        3 => TraceOp::Rmdir { path: r.str_()? },
        4 => TraceOp::Rename { from: r.str_()?, to: r.str_()? },
        5 => TraceOp::Chmod { path: r.str_()?, mode: r.u32()? },
        6 => TraceOp::Truncate { path: r.str_()?, size: r.u64()? },
        7 => TraceOp::Create { path: r.str_()?, mode: r.u32()?, fd: r.u64()? },
        8 => {
            TraceOp::Open { path: r.str_()?, flags: memfs::flags_from_code(r.u8()?)?, fd: r.u64()? }
        }
        9 => {
            let fd = r.u64()?;
            let path = match r.u8()? {
                0 => None,
                1 => Some(r.str_()?),
                _ => return None,
            };
            let offset = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return None,
            };
            let total = r.u32()? as usize;
            let n_chunks = r.u32()? as usize;
            let mut data = Vec::with_capacity(total);
            for _ in 0..n_chunks {
                let hash: [u8; 32] = r.bytes(32)?.try_into().ok()?;
                data.extend_from_slice(&blobs.get(&hash)?);
            }
            if data.len() != total {
                return None;
            }
            TraceOp::Write { fd, path, offset, data }
        }
        10 => TraceOp::Fsync { fd: r.u64()? },
        11 => TraceOp::Release { fd: r.u64()? },
        12 => TraceOp::Lock {
            fd: r.u64()?,
            kind: match r.u8()? {
                1 => LockKind::Shared,
                2 => LockKind::Exclusive,
                _ => return None,
            },
        },
        13 => TraceOp::Unlock { fd: r.u64()? },
        _ => return None,
    })
}

/// Serialize a built checkpoint set into a CRC-framed manifest file.
/// Write payloads and filesystem pages land in `blobs` as
/// content-addressed chunks; the manifest stores only their hashes, so
/// checkpoints sharing page content (log-spaced snapshots of one
/// growing file, or sibling campaigns over the same workload) dedupe
/// on disk.
fn encode_manifest(key: u64, cks: &TraceCheckpoints, blobs: &BlobStore) -> Vec<u8> {
    let mut body = Vec::new();
    match &cks.placement {
        Placement::LogSpaced => wire::put_u8(&mut body, 0),
        Placement::Demand(demand) => {
            wire::put_u8(&mut body, 1);
            wire::put_u32(&mut body, demand.len() as u32);
            for &d in demand {
                wire::put_u64(&mut body, d as u64);
            }
        }
    }
    wire::put_u32(&mut body, cks.ops.len() as u32);
    for op in &cks.ops {
        encode_op(op, blobs, &mut body);
    }
    wire::put_u32(&mut body, cks.points.len() as u32);
    for point in &cks.points {
        wire::put_u64(&mut body, point.index as u64);
        let counts = point.counters.to_raw();
        wire::put_u32(&mut body, counts.len() as u32);
        for c in counts {
            wire::put_u64(&mut body, c);
        }
        let mut fds: Vec<_> = point.cursor.fds.iter().collect();
        fds.sort_by_key(|(golden, _)| **golden);
        wire::put_u32(&mut body, fds.len() as u32);
        for (golden, live) in fds {
            wire::put_u64(&mut body, *golden);
            wire::put_u64(&mut body, live.fd);
            wire::put_str(&mut body, &live.path);
        }
        let image = point.fs.export_image(&mut |page| blobs.put(page));
        wire::put_u32(&mut body, image.len() as u32);
        body.extend_from_slice(&image);
    }

    let mut out = Vec::with_capacity(body.len() + 28);
    out.extend_from_slice(MANIFEST_MAGIC);
    wire::put_u32(&mut out, MANIFEST_SCHEMA);
    wire::put_u64(&mut out, key);
    wire::put_u32(&mut out, body.len() as u32);
    wire::put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Decode and fully verify a manifest file: frame magic/schema/key,
/// body CRC, op stream, and every checkpoint's counters, cursor, and
/// filesystem image (each page re-fetched — and content-verified — from
/// the blob store). Any failure yields `None`; callers treat that as a
/// cache miss and rebuild.
fn decode_manifest(raw: &[u8], key: u64, blobs: &BlobStore) -> Option<TraceCheckpoints> {
    let mut r = wire::Reader::new(raw);
    if r.bytes(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC
        || r.u32()? != MANIFEST_SCHEMA
        || r.u64()? != key
    {
        return None;
    }
    let body_len = r.u32()? as usize;
    let body_crc = r.u32()?;
    let body = r.bytes(body_len)?;
    if r.remaining() != 0 || crc32(body) != body_crc {
        return None;
    }

    let mut r = wire::Reader::new(body);
    let placement = match r.u8()? {
        0 => Placement::LogSpaced,
        1 => {
            let n_demand = r.u32()? as usize;
            let mut demand = Vec::with_capacity(n_demand.min(1 << 16));
            for _ in 0..n_demand {
                demand.push(r.u64()? as usize);
            }
            Placement::Demand(demand)
        }
        _ => return None,
    };
    let n_ops = r.u32()? as usize;
    let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
    for _ in 0..n_ops {
        ops.push(decode_op(&mut r, blobs)?);
    }

    // Pages are shared across checkpoints in memory exactly as a fresh
    // build's CoW forks would share them: one Arc per distinct hash.
    let mut page_cache: HashMap<[u8; 32], Arc<Page>> = HashMap::new();
    let n_points = r.u32()? as usize;
    let mut points = Vec::with_capacity(n_points.min(1 << 10));
    for _ in 0..n_points {
        let index = r.u64()? as usize;
        let n_counts = r.u32()? as usize;
        let mut counts = Vec::with_capacity(n_counts.min(64));
        for _ in 0..n_counts {
            counts.push(r.u64()?);
        }
        let counters = CounterSnapshot::from_raw(&counts)?;
        let n_fds = r.u32()? as usize;
        let mut fds = HashMap::with_capacity(n_fds.min(1 << 10));
        for _ in 0..n_fds {
            let golden = r.u64()?;
            let fd = r.u64()?;
            let path = r.str_()?;
            fds.insert(golden, ReplayFd { fd, path });
        }
        let image_len = r.u32()? as usize;
        let image = r.bytes(image_len)?;
        let fs = MemFs::import_image(image, &mut |hash| {
            if let Some(hit) = page_cache.get(hash) {
                return Some(hit.clone());
            }
            let blob = blobs.get(hash)?;
            if blob.len() != BLOCK_SIZE {
                return None;
            }
            let mut page = [0u8; BLOCK_SIZE];
            page.copy_from_slice(&blob);
            let page = Arc::new(page);
            page_cache.insert(*hash, page.clone());
            Some(page)
        })?;
        points.push(TraceCheckpoint {
            index,
            fs: Arc::new(fs),
            cursor: ReplayCursor { fds },
            counters,
        });
    }
    if r.remaining() != 0 {
        return None;
    }
    // Structural sanity on the checkpoint spine: non-empty, starts at
    // the mount snapshot, strictly ascending, within the trace.
    if points.first().map(|p| p.index) != Some(0) {
        return None;
    }
    if !points.windows(2).all(|w| w[0].index < w[1].index) {
        return None;
    }
    if points.last().is_some_and(|p| p.index > ops.len()) {
        return None;
    }
    Some(TraceCheckpoints { ops, points, placement })
}

/// The disk tier of a [`CheckpointStore`]: content-addressed page and
/// write-payload blobs plus per-trace manifest files.
struct DiskTier {
    blobs: BlobStore,
    manifests: PathBuf,
}

/// Slot state for one trace fingerprint: a build in flight (losers
/// block on the store's condvar) or the finished checkpoints.
enum Slot {
    Building,
    Ready(Arc<TraceCheckpoints>),
}

/// Clears the `Building` marker and wakes waiters if a build errors or
/// panics, so a lost build can never wedge every later caller of that
/// key. Disarmed on the success path once `Ready` is published.
struct BuildGuard<'a> {
    store: &'a CheckpointStore,
    key: u64,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut state = self.store.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(state.get(&self.key), Some(Slot::Building)) {
            state.remove(&self.key);
        }
        drop(state);
        self.store.ready.notify_all();
    }
}

/// A concurrent memoizing store of built [`TraceCheckpoints`], keyed
/// by golden-trace content, with an optional content-addressed disk
/// tier.
///
/// Building a checkpoint cache replays the whole trace once and forks
/// O(log n) CoW snapshots. A repro experiment runs *several* campaigns
/// over the same deterministic workload (one per fault model), and
/// every one of them records an identical golden trace — so the store
/// lets them share a single [`TraceCheckpoints`] instead of each
/// rebuilding its own: the first [`CheckpointStore::get_or_build`]
/// with a given trace builds, every later identical trace returns the
/// same [`Arc`].
///
/// Concurrent callers are single-flighted: the first thread to miss
/// claims the key and builds; every other thread requesting the same
/// trace blocks and receives the winner's `Arc` — never a duplicate
/// build. A build that fails (or panics) releases the claim and wakes
/// the waiters, which then race to claim it themselves.
///
/// A store created with [`CheckpointStore::with_dir`] additionally
/// persists every build as a CRC-framed manifest whose pages and write
/// payloads live in a shared content-addressed [`BlobStore`] —
/// identical pages across checkpoints and campaigns are stored once.
/// Fresh processes (daemon restarts, fan-out workers) load checkpoints
/// from disk instead of replaying; torn or bit-rotted files fail
/// verification, are deleted, and trigger a rebuild — never a crash.
///
/// Lookups key on a content fingerprint of the full op stream
/// (including write payloads) and verify the hit's ops compare equal
/// before returning it, so a fingerprint collision can never hand a
/// campaign someone else's checkpoints — it just builds fresh,
/// uncached.
#[derive(Default)]
pub struct CheckpointStore {
    state: Mutex<HashMap<u64, Slot>>,
    ready: Condvar,
    disk: Option<DiskTier>,
    builds: AtomicUsize,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
}

impl CheckpointStore {
    /// Empty in-memory store (no disk tier).
    pub fn new() -> Self {
        Self::default()
    }

    /// Store backed by a disk tier rooted at `dir` (created if
    /// missing): blobs under `dir/blobs`, manifests under
    /// `dir/manifests`. Several stores — including ones in different
    /// processes — may share a root; blob writes are idempotent and
    /// manifest installs are atomic renames.
    pub fn with_dir(dir: &Path) -> std::io::Result<Self> {
        let blobs = BlobStore::at_dir(&dir.join("blobs"))?;
        let manifests = dir.join("manifests");
        std::fs::create_dir_all(&manifests)?;
        let mut store = Self::new();
        store.disk = Some(DiskTier { blobs, manifests });
        Ok(store)
    }

    /// The shared checkpoints for `ops`: a cached instance when an
    /// identical trace was built before (waiting out an in-flight
    /// build if necessary), a disk-tier load when a sibling process
    /// already persisted it, and a fresh build otherwise.
    pub fn get_or_build(&self, ops: Vec<TraceOp>) -> Result<Arc<TraceCheckpoints>, ReplayError> {
        let key = trace_fingerprint(&ops);
        self.get_or_build_keyed(key, ops, None)
    }

    /// Demand-placed shared checkpoints for `ops` (see
    /// [`TraceCheckpoints::build_for_demand`]). The cache key mixes a
    /// [`demand_fingerprint`] into the trace fingerprint, so
    /// demand-placed sets for different campaigns — and the log-spaced
    /// set — coexist in the store (and its content-addressed disk
    /// tier, where their snapshots dedupe page-for-page) without
    /// invalidating one another. An effectively empty demand (no
    /// in-range offsets) delegates to [`CheckpointStore::get_or_build`].
    pub fn get_or_build_for_demand(
        &self,
        ops: Vec<TraceOp>,
        demand: &[usize],
    ) -> Result<Arc<TraceCheckpoints>, ReplayError> {
        let n = ops.len();
        let mut sorted: Vec<usize> = demand.iter().copied().filter(|&d| d > 0 && d < n).collect();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return self.get_or_build(ops);
        }
        let mut h = Fnv::new();
        h.eat_u64(trace_fingerprint(&ops));
        h.eat_u64(demand_fingerprint(&sorted));
        self.get_or_build_keyed(h.0, ops, Some(sorted))
    }

    /// Single-flighted lookup/build for one `(trace, placement)` key.
    /// `demand: None` builds/validates the log-spaced set; `Some`
    /// builds/validates the demand-placed set for those offsets.
    fn get_or_build_keyed(
        &self,
        key: u64,
        ops: Vec<TraceOp>,
        demand: Option<Vec<usize>>,
    ) -> Result<Arc<TraceCheckpoints>, ReplayError> {
        let build = |ops: Vec<TraceOp>| match &demand {
            Some(d) => TraceCheckpoints::build_for_demand(ops, d),
            None => TraceCheckpoints::build(ops),
        };
        let placement_ok = |hit: &TraceCheckpoints| match &demand {
            Some(d) => matches!(hit.placement(), Placement::Demand(got) if got == d),
            None => hit.placement() == &Placement::LogSpaced,
        };
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match state.get(&key) {
                    Some(Slot::Ready(hit)) => {
                        // Equality check (ops and placement) defuses
                        // fingerprint collisions: on a mismatch build
                        // fresh, uncached — the slot is taken.
                        if hit.ops() == &ops[..] && placement_ok(hit) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(hit.clone());
                        }
                        drop(state);
                        let built = Arc::new(build(ops)?);
                        self.builds.fetch_add(1, Ordering::Relaxed);
                        return Ok(built);
                    }
                    Some(Slot::Building) => {
                        state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                    None => {
                        state.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }

        // Sole builder for this key from here on.
        let mut guard = BuildGuard { store: self, key, armed: true };
        let built = match self.load_from_disk(key, &ops, &placement_ok) {
            Some(loaded) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                loaded
            }
            None => {
                let built = Arc::new(build(ops)?);
                self.builds.fetch_add(1, Ordering::Relaxed);
                self.persist(key, &built);
                built
            }
        };
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.insert(key, Slot::Ready(built.clone()));
            guard.armed = false;
        }
        self.ready.notify_all();
        Ok(built)
    }

    fn manifest_path(&self, key: u64) -> Option<PathBuf> {
        self.disk.as_ref().map(|d| d.manifests.join(format!("{key:016x}.manifest")))
    }

    /// Try the disk tier. Full verification: frame, CRC, per-page
    /// content hashes, the decoded op stream comparing equal to the
    /// requested one, and the decoded placement satisfying the
    /// caller's check. Any mismatch deletes the manifest and reports
    /// a miss, so the caller rebuilds and re-persists.
    fn load_from_disk(
        &self,
        key: u64,
        ops: &[TraceOp],
        placement_ok: &dyn Fn(&TraceCheckpoints) -> bool,
    ) -> Option<Arc<TraceCheckpoints>> {
        let disk = self.disk.as_ref()?;
        let path = self.manifest_path(key)?;
        let raw = std::fs::read(&path).ok()?;
        match decode_manifest(&raw, key, &disk.blobs) {
            Some(cks) if cks.ops() == ops && placement_ok(&cks) => Some(Arc::new(cks)),
            _ => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Best-effort persist: failures leave the store memory-only for
    /// this key. Written to a process-unique temp name, then installed
    /// by atomic rename so a concurrent reader never sees a torn file.
    fn persist(&self, key: u64, cks: &TraceCheckpoints) {
        let Some(disk) = self.disk.as_ref() else { return };
        let Some(path) = self.manifest_path(key) else { return };
        let bytes = encode_manifest(key, cks, &disk.blobs);
        let tmp = disk.manifests.join(format!(".tmp-{}-{key:016x}", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_ok() {
            if std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Number of checkpoint caches built by trace replay (misses in
    /// both the memory and disk tiers).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of lookups served from the in-memory cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups served by loading a persisted manifest from
    /// the disk tier (no replay).
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Blob accounting for the disk tier; `None` for memory-only
    /// stores.
    pub fn blob_stats(&self) -> Option<BlobStats> {
        self.disk.as_ref().map(|d| d.blobs.stats())
    }

    /// Root directory of the disk tier, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.disk.as_ref().and_then(|d| d.blobs.dir().and_then(Path::parent))
    }
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("builds", &self.builds())
            .field("hits", &self.hits())
            .field("disk_hits", &self.disk_hits())
            .field("disk", &self.dir())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FileSystemExt;

    /// Run a small workload through a recording mount and return the
    /// trace plus the final state.
    fn record_workload() -> (Vec<TraceOp>, Arc<MemFs>) {
        let base = Arc::new(MemFs::new());
        let ffs = FfisFs::mount(base.clone());
        let rec = Arc::new(TraceRecorder::new());
        ffs.attach(rec.clone());

        ffs.mkdir("/out", 0o755).unwrap();
        ffs.write_file_chunked("/out/data.bin", &[7u8; 10_000], 4096).unwrap();
        let fd = ffs.open("/out/data.bin", OpenFlags::read_write()).unwrap();
        ffs.lock(fd, LockKind::Exclusive).unwrap();
        ffs.pwrite(fd, b"patch", 100).unwrap();
        ffs.unlock(fd).unwrap();
        ffs.release(fd).unwrap();
        ffs.write_file("/out/log.txt", b"done\n").unwrap();
        ffs.rename("/out/log.txt", "/out/run.log").unwrap();
        // Read-back must NOT be recorded.
        assert_eq!(ffs.read_to_vec("/out/data.bin").unwrap().len(), 10_000);
        ffs.unmount();
        (rec.ops(), base)
    }

    #[test]
    fn recorder_captures_mutating_ops_only() {
        let (ops, _) = record_workload();
        assert!(ops.iter().any(|o| matches!(o, TraceOp::Mkdir { .. })));
        assert!(ops.iter().any(|o| matches!(o, TraceOp::Lock { .. })));
        assert!(ops.iter().any(|o| matches!(o, TraceOp::Rename { .. })));
        // 3 chunks + patch + log = 5 writes; read-only open skipped.
        assert_eq!(ops.iter().filter(|o| o.is_write()).count(), 5);
        assert!(ops.iter().all(|o| !matches!(o, TraceOp::Open { flags, .. } if !flags.write)));
        // Write paths travel with the ops.
        assert!(ops.iter().filter(|o| o.is_write()).all(|o| o.write_path().is_some()));
    }

    #[test]
    fn replay_rebuilds_identical_state() {
        let (ops, golden) = record_workload();
        let rebuilt = MemFs::new();
        ReplayCursor::new().replay(&rebuilt, &ops).unwrap();
        assert_eq!(
            rebuilt.snapshot("/out/data.bin").unwrap(),
            golden.snapshot("/out/data.bin").unwrap()
        );
        assert_eq!(rebuilt.snapshot("/out/run.log").unwrap(), b"done\n");
        assert_eq!(rebuilt.open_handles(), 0, "all recorded fds released");
    }

    #[test]
    fn replay_through_mount_counts_primitives() {
        use crate::interceptor::Primitive;
        let (ops, _) = record_workload();
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ReplayCursor::new().replay(&*ffs, &ops).unwrap();
        assert_eq!(ffs.counters().get(Primitive::Write), 5);
        assert_eq!(ffs.counters().get(Primitive::Mkdir), 1);
        // Replay skips the read-only open and the preads.
        assert_eq!(ffs.counters().get(Primitive::Read), 0);
    }

    #[test]
    fn mid_trace_fork_and_suffix_replay() {
        let (ops, golden) = record_workload();
        // Split at the patch write (the 4th write).
        let split =
            ops.iter().enumerate().filter(|(_, o)| o.is_write()).nth(3).map(|(i, _)| i).unwrap();

        // Build the pre-split snapshot on a bare MemFs.
        let base = MemFs::new();
        let mut cursor = ReplayCursor::new();
        cursor.replay(&base, &ops[..split]).unwrap();
        assert!(cursor.open_fds() > 0, "split lands inside an open file");

        // Fork twice and replay the suffix through instrumented mounts.
        for _ in 0..2 {
            let ffs = FfisFs::mount(Arc::new(base.fork()));
            let mut c = cursor.clone();
            c.seed_mount(&ffs);
            c.replay(&*ffs, &ops[split..]).unwrap();
            let inner = ffs.inner().clone();
            let got = {
                let mut v = vec![0u8; 10];
                let fd = inner.open("/out/data.bin", OpenFlags::read_only()).unwrap();
                inner.pread(fd, &mut v, 100).unwrap();
                inner.release(fd).unwrap();
                v
            };
            assert_eq!(&got[..5], b"patch");
        }

        // The snapshot itself was never polluted by the suffix.
        assert!(!base.exists("/out/run.log"));
        assert_eq!(golden.snapshot("/out/run.log").unwrap(), b"done\n");
    }

    #[test]
    fn seeded_mount_carries_paths_for_fd_ops() {
        let (ops, _) = record_workload();
        let split = ops.iter().position(|o| o.is_write()).unwrap();
        let base = MemFs::new();
        let mut cursor = ReplayCursor::new();
        cursor.replay(&base, &ops[..split]).unwrap();

        let ffs = FfisFs::mount(Arc::new(base.fork()));
        cursor.seed_mount(&ffs);
        let trace = Arc::new(crate::counting::TraceInterceptor::new());
        ffs.attach(trace.clone());
        cursor.replay(&*ffs, &ops[split..]).unwrap();
        let writes = trace.records_of(crate::interceptor::Primitive::Write);
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|w| w.path.is_some()), "adopted fds resolve to paths");
    }

    #[test]
    fn replay_error_carries_index() {
        let ops = vec![
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 },
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 }, // EEXIST
        ];
        let fs = MemFs::new();
        let err = ReplayCursor::new().replay(&fs, &ops).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.error, FsError::Exists);
        assert!(err.to_string().contains("replay op 1"));
    }

    #[test]
    fn unknown_fd_write_is_an_error_but_bookkeeping_ops_skip() {
        let fs = MemFs::new();
        let mut c = ReplayCursor::new();
        assert!(c.step(&fs, &TraceOp::Release { fd: 99 }).is_ok());
        assert!(c.step(&fs, &TraceOp::Fsync { fd: 99 }).is_ok());
        assert_eq!(
            c.step(&fs, &TraceOp::Write { fd: 99, path: None, offset: Some(0), data: vec![1] }),
            Err(FsError::BadFd)
        );
    }

    #[test]
    fn payload_accounting() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.on_op(&TraceOp::Write { fd: 3, path: None, offset: Some(0), data: vec![0; 123] });
        rec.on_op(&TraceOp::Fsync { fd: 3 });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.payload_bytes(), 123);
    }

    #[test]
    fn checkpoints_are_log_spaced_from_the_end() {
        let (ops, _) = record_workload();
        let n = ops.len();
        let cache = TraceCheckpoints::build(ops).unwrap();
        let idx: Vec<usize> = cache.points().iter().map(|p| p.index()).collect();
        assert_eq!(idx[0], 0, "a zero checkpoint always exists");
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending: {:?}", idx);
        assert!(*idx.last().unwrap() < n);
        // The 2x-overshoot guarantee: for every target, the suffix
        // from the nearest checkpoint is at most twice the minimum
        // possible suffix (n - target), up to the final +-1 segment.
        for target in 0..n {
            let c = cache.nearest_before(target).index();
            assert!(c <= target);
            assert!(n - c <= 2 * (n - target) + 1, "target {} -> checkpoint {}", target, c);
        }
    }

    #[test]
    fn checkpoint_suffix_replay_matches_full_replay() {
        let (ops, golden) = record_workload();
        let cache = TraceCheckpoints::build(ops.clone()).unwrap();
        assert!(cache.points().len() >= 3, "workload long enough for several checkpoints");
        for point in cache.points() {
            let (ffs, mut cursor) = point.mount_fork();
            cursor.replay(&*ffs, cache.suffix(point)).unwrap();
            let inner = ffs.inner();
            for path in ["/out/data.bin", "/out/run.log"] {
                let got = {
                    let fd = inner.open(path, OpenFlags::read_only()).unwrap();
                    let mut v = vec![0u8; golden.snapshot(path).unwrap().len()];
                    inner.pread(fd, &mut v, 0).unwrap();
                    inner.release(fd).unwrap();
                    v
                };
                assert_eq!(
                    got,
                    golden.snapshot(path).unwrap(),
                    "checkpoint {} diverged on {}",
                    point.index(),
                    path
                );
            }
        }
    }

    #[test]
    fn checkpoint_mounts_preseed_prim_seq_numbering() {
        use crate::interceptor::Primitive;
        let (ops, _) = record_workload();
        let full_writes = ops.iter().filter(|o| o.is_write()).count() as u64;
        let cache = TraceCheckpoints::build(ops).unwrap();
        // From any checkpoint, suffix replay must leave the mount's
        // Write counter at the same value a full-trace replay reaches,
        // because the prefix counts were pre-seeded.
        for point in cache.points() {
            let (ffs, mut cursor) = point.mount_fork();
            cursor.replay(&*ffs, cache.suffix(point)).unwrap();
            assert_eq!(
                ffs.counters().get(Primitive::Write),
                full_writes,
                "checkpoint {}",
                point.index()
            );
        }
    }

    #[test]
    fn empty_trace_still_has_the_zero_checkpoint() {
        let cache = TraceCheckpoints::build(Vec::new()).unwrap();
        assert_eq!(cache.points().len(), 1);
        assert_eq!(cache.nearest_before(0).index(), 0);
        assert!(cache.suffix(cache.nearest_before(0)).is_empty());
        let (ffs, _) = cache.points()[0].mount_fork();
        assert_eq!(ffs.counters().total(), 0);
    }

    #[test]
    fn checkpoint_build_propagates_replay_errors() {
        let ops = vec![
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 },
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 },
        ];
        let err = TraceCheckpoints::build(ops).err().unwrap();
        assert_eq!(err.index, 1);
    }

    #[test]
    fn read_ledger_counts_and_fingerprints_per_phase() {
        let base = Arc::new(MemFs::new());
        let ffs = FfisFs::mount(base.clone());
        let ledger = Arc::new(ReadLedger::new());
        ffs.attach(ledger.clone());

        // "Produce": one write, one read-back.
        ffs.write_file_chunked("/d.bin", &[3u8; 4096], 4096).unwrap();
        assert_eq!(ffs.read_to_vec("/d.bin").unwrap().len(), 4096);
        assert_eq!(ledger.mark_produce_end(), 1);

        // "Analyze": two reads, one of them failing (bad descriptor).
        let mut buf = [0u8; 8];
        assert!(ffs.pread(9999, &mut buf, 0).is_err());
        assert_eq!(ffs.read_to_vec("/d.bin").unwrap().len(), 4096);
        ffs.unmount();

        let entries = ledger.records();
        assert_eq!(entries.len(), 3);
        assert_eq!(ledger.produce_reads(), 1);
        // Entries carry the profiler's attempt-based numbering.
        assert_eq!(entries[0].prim_seq, 1);
        assert_eq!(entries[1].prim_seq, 2);
        assert_eq!(entries[2].prim_seq, 3);
        // The failed attempt occupies its slot with no returned bytes.
        assert_eq!(entries[1].returned, None);
        assert_eq!(entries[1].fingerprint, Fnv::new().0);
        // Successful reads of the same bytes fingerprint identically.
        assert_eq!(entries[0].returned, entries[2].returned);
        assert_eq!(entries[0].fingerprint, entries[2].fingerprint);
        assert_ne!(entries[0].fingerprint, Fnv::new().0);
        // Paths resolve through the mount's fd tracking.
        assert_eq!(entries[0].path.as_deref(), Some("/d.bin"));
    }

    #[test]
    fn read_ledger_unmarked_boundary_is_conservative() {
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        let ledger = Arc::new(ReadLedger::new());
        ffs.attach(ledger.clone());
        ffs.write_file("/x", b"abc").unwrap();
        let _ = ffs.read_to_vec("/x").unwrap();
        // Never marked: every read counts as produce-phase.
        assert_eq!(ledger.produce_reads(), ledger.len());
        assert!(!ledger.is_empty());
        // Default must share new()'s unmarked-boundary invariant.
        let defaulted = ReadLedger::default();
        defaulted.on_call(&crate::interceptor::CallContext {
            primitive: Primitive::Read,
            seq: 1,
            prim_seq: 1,
            path: None,
            fd: Some(3),
            offset: Some(0),
            len: 4,
        });
        assert_eq!(defaulted.produce_reads(), 1, "unmarked Default ledger is conservative");
    }

    #[test]
    fn take_ops_drains() {
        let rec = TraceRecorder::new();
        rec.on_op(&TraceOp::Fsync { fd: 3 });
        let ops = rec.take_ops();
        assert_eq!(ops.len(), 1);
        assert!(rec.is_empty());
        assert!(rec.take_ops().is_empty());
    }

    /// Fresh per-test scratch directory under the system temp dir.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffis-ckstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_caches_and_detects_identical_traces() {
        let (ops, _) = record_workload();
        let store = CheckpointStore::new();
        let a = store.get_or_build(ops.clone()).unwrap();
        let b = store.get_or_build(ops).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.builds(), 1);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.disk_hits(), 0);
        assert!(store.blob_stats().is_none());
    }

    #[test]
    fn store_single_flights_concurrent_identical_builds() {
        let (ops, _) = record_workload();
        let store = Arc::new(CheckpointStore::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let joins: Vec<_> = (0..8)
            .map(|_| {
                let store = store.clone();
                let ops = ops.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    store.get_or_build(ops).unwrap()
                })
            })
            .collect();
        let arcs: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(store.builds(), 1, "losers wait for the winner instead of duplicating");
        assert_eq!(store.hits(), 7);
        assert!(
            arcs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
            "every caller receives the winner's Arc"
        );
    }

    #[test]
    fn store_failed_build_releases_the_inflight_claim() {
        let bad = vec![
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 },
            TraceOp::Mkdir { path: "/d".into(), mode: 0o755 },
        ];
        let store = CheckpointStore::new();
        assert!(store.get_or_build(bad.clone()).is_err());
        // The failed claim is gone: a retry errors again (no deadlock,
        // no stale Building slot) and unrelated traces still build.
        assert!(store.get_or_build(bad).is_err());
        let (ops, _) = record_workload();
        assert!(store.get_or_build(ops).is_ok());
        assert_eq!(store.builds(), 1);
    }

    #[test]
    fn store_disk_tier_roundtrips_across_processes() {
        let dir = scratch("roundtrip");
        let (ops, golden) = record_workload();

        let first = CheckpointStore::with_dir(&dir).unwrap();
        let built = first.get_or_build(ops.clone()).unwrap();
        assert_eq!((first.builds(), first.disk_hits()), (1, 0));

        // A fresh store over the same root — a restarted daemon or a
        // sibling fan-out worker — loads instead of replaying.
        let second = CheckpointStore::with_dir(&dir).unwrap();
        let loaded = second.get_or_build(ops.clone()).unwrap();
        assert_eq!((second.builds(), second.disk_hits()), (0, 1), "served from disk");
        assert_eq!(loaded.ops(), built.ops());
        assert_eq!(loaded.points().len(), built.points().len());
        for (l, b) in loaded.points().iter().zip(built.points()) {
            assert_eq!(l.index(), b.index());
            assert_eq!(l.counters(), b.counters());
        }
        // Loaded checkpoints must drive suffix replay to the same
        // final state a fresh build would.
        for point in loaded.points() {
            let (ffs, mut cursor) = point.mount_fork();
            cursor.replay(&*ffs, loaded.suffix(point)).unwrap();
            assert_eq!(
                ffs.read_to_vec("/out/data.bin").unwrap(),
                golden.snapshot("/out/data.bin").unwrap()
            );
            assert_eq!(ffs.read_to_vec("/out/run.log").unwrap(), b"done\n");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_corrupt_manifest_and_blobs_rebuild_not_crash() {
        let dir = scratch("corrupt");
        let (ops, _) = record_workload();
        CheckpointStore::with_dir(&dir).unwrap().get_or_build(ops.clone()).unwrap();

        let manifest_of = |d: &Path| {
            let mut files: Vec<_> = std::fs::read_dir(d.join("manifests"))
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            files.sort();
            assert_eq!(files.len(), 1);
            files.pop().unwrap()
        };

        // Bit-rot the manifest body: CRC fails, the store deletes the
        // file, rebuilds, and re-persists.
        let manifest = manifest_of(&dir);
        let mut raw = std::fs::read(&manifest).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&manifest, &raw).unwrap();
        let s2 = CheckpointStore::with_dir(&dir).unwrap();
        s2.get_or_build(ops.clone()).unwrap();
        assert_eq!((s2.builds(), s2.disk_hits()), (1, 0), "corrupt manifest forces a rebuild");

        // The rebuild healed the tier: the next store loads cleanly.
        let s3 = CheckpointStore::with_dir(&dir).unwrap();
        s3.get_or_build(ops.clone()).unwrap();
        assert_eq!((s3.builds(), s3.disk_hits()), (0, 1));

        // Tear one blob (truncated frame). Decode misses, the blob is
        // discarded, and the manifest load falls back to a rebuild.
        let blob = {
            let mut blobs = Vec::new();
            for shard in std::fs::read_dir(dir.join("blobs")).unwrap() {
                for f in std::fs::read_dir(shard.unwrap().path()).unwrap() {
                    blobs.push(f.unwrap().path());
                }
            }
            blobs.sort();
            blobs.remove(0)
        };
        let raw = std::fs::read(&blob).unwrap();
        std::fs::write(&blob, &raw[..raw.len() / 2]).unwrap();
        let s4 = CheckpointStore::with_dir(&dir).unwrap();
        s4.get_or_build(ops.clone()).unwrap();
        assert_eq!((s4.builds(), s4.disk_hits()), (1, 0), "torn blob forces a rebuild");

        let s5 = CheckpointStore::with_dir(&dir).unwrap();
        s5.get_or_build(ops).unwrap();
        assert_eq!((s5.builds(), s5.disk_hits()), (0, 1), "rebuild restored the torn blob");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_dedupes_pages_across_campaigns() {
        let dir = scratch("dedup");
        let store = CheckpointStore::with_dir(&dir).unwrap();

        // Two *different* workloads (distinct traces, distinct
        // fingerprints) producing the same large data file.
        let trace_with_log = |log: &[u8]| {
            let ffs = FfisFs::mount(Arc::new(MemFs::new()));
            let rec = Arc::new(TraceRecorder::new());
            ffs.attach(rec.clone());
            ffs.mkdir("/out", 0o755).unwrap();
            ffs.write_file_chunked("/out/data.bin", &[7u8; 10 * 4096], 4096).unwrap();
            ffs.write_file("/out/log.txt", log).unwrap();
            ffs.unmount();
            rec.ops()
        };

        store.get_or_build(trace_with_log(b"campaign-a\n")).unwrap();
        let before = store.blob_stats().unwrap();
        assert!(before.dedup_ratio() > 1.0, "log-spaced checkpoints share pages");

        store.get_or_build(trace_with_log(b"campaign-b: different trace\n")).unwrap();
        let after = store.blob_stats().unwrap();
        assert_eq!(store.builds(), 2, "distinct traces each build once");
        assert!(
            after.dedup_hits > before.dedup_hits,
            "the second campaign's data pages were already in the store"
        );
        // The shared 40 KiB dominates: physical grows far less than
        // logical between the two campaigns.
        assert!(
            after.physical_bytes - before.physical_bytes
                < (after.logical_bytes - before.logical_bytes) / 2
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn demand_within_budget_places_every_target_exactly() {
        let (ops, _) = record_workload();
        let n = ops.len();
        let demand = vec![n / 2, n / 4, n / 2, n - 1];
        let cache = TraceCheckpoints::build_for_demand(ops, &demand).unwrap();
        let idx: Vec<usize> = cache.points().iter().map(|p| p.index()).collect();
        assert_eq!(idx[0], 0);
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending: {idx:?}");
        for &d in &demand {
            assert!(idx.contains(&d), "demanded offset {d} snapshotted: {idx:?}");
        }
        assert_eq!(cache.overshoot_for(&demand), 0, "exact placement has zero overshoot");
        let mut sorted = demand.clone();
        sorted.sort_unstable();
        assert_eq!(cache.placement(), &Placement::Demand(sorted));
    }

    #[test]
    fn demand_over_budget_beats_log_spaced_overshoot() {
        let (ops, _) = record_workload();
        let n = ops.len();
        // A demand clustered near the middle of the trace — the worst
        // case for end-biased log spacing.
        let demand: Vec<usize> = (0..64).map(|i| n / 3 + (i % 7)).filter(|&d| d < n).collect();
        let budget = 4;
        let placed = TraceCheckpoints::build_for_demand_with(ops.clone(), &demand, budget).unwrap();
        let log = TraceCheckpoints::build_with(ops, budget).unwrap();
        assert!(placed.points().len() <= budget);
        assert!(
            placed.overshoot_for(&demand) <= log.overshoot_for(&demand),
            "demand placement ({}) must not lose to log spacing ({})",
            placed.overshoot_for(&demand),
            log.overshoot_for(&demand)
        );
    }

    #[test]
    fn empty_demand_falls_back_to_log_spaced() {
        let (ops, _) = record_workload();
        let n = ops.len();
        let log = TraceCheckpoints::build(ops.clone()).unwrap();
        // Out-of-range entries are filtered; what's left is empty.
        let cache = TraceCheckpoints::build_for_demand(ops, &[0, n, n + 7]).unwrap();
        assert_eq!(cache.placement(), &Placement::LogSpaced);
        let idx = |c: &TraceCheckpoints| c.points().iter().map(|p| p.index()).collect::<Vec<_>>();
        assert_eq!(idx(&cache), idx(&log));
    }

    #[test]
    fn demand_checkpoints_replay_to_identical_state() {
        let (ops, golden) = record_workload();
        let n = ops.len();
        let demand = vec![1, n / 3, n / 2, n - 2, n - 1];
        let cache = TraceCheckpoints::build_for_demand(ops, &demand).unwrap();
        for point in cache.points() {
            let (ffs, mut cursor) = point.mount_fork();
            cursor.replay(&*ffs, cache.suffix(point)).unwrap();
            assert_eq!(
                ffs.read_to_vec("/out/data.bin").unwrap(),
                golden.snapshot("/out/data.bin").unwrap()
            );
            assert_eq!(ffs.read_to_vec("/out/run.log").unwrap(), b"done\n");
        }
    }

    #[test]
    fn batch_forks_replay_to_identical_state_and_counters() {
        let (ops, golden) = record_workload();
        let writes: Vec<usize> =
            ops.iter().enumerate().filter(|(_, op)| op.is_write()).map(|(i, _)| i).collect();
        let cache = TraceCheckpoints::build(ops).unwrap();
        let targets = [writes[1], writes[writes.len() / 2], writes[writes.len() - 1]];
        let batch = cache.fork_at_targets(0, &targets).unwrap();
        assert_eq!(batch.len(), 3);
        for &t in &targets {
            // Reference: full mounted replay from the checkpoint.
            let point = &cache.points()[0];
            let (ref_ffs, mut ref_cursor) = point.mount_fork();
            ref_cursor.replay(&*ref_ffs, cache.suffix(point)).unwrap();

            // Batched: mount the mini-point, step only the target
            // through the mount, apply the tail off-mount (coalesced),
            // then pre-seed the tail counter delta.
            let fork = batch.for_target(t).unwrap();
            assert_eq!(fork.point().index(), t);
            let (ffs, mut cursor) = fork.point().mount_fork();
            cursor.step(&*ffs, &cache.ops()[t]).unwrap();
            cursor.replay_coalesced(&**ffs.inner(), &cache.ops()[t + 1..]).unwrap();
            ffs.preseed_counters(&fork.tail_counters());

            for p in crate::PRIMITIVES {
                assert_eq!(ffs.counters().get(p), ref_ffs.counters().get(p), "{:?}", p);
            }
            assert_eq!(
                ffs.read_to_vec("/out/data.bin").unwrap(),
                golden.snapshot("/out/data.bin").unwrap()
            );
            assert_eq!(ffs.read_to_vec("/out/run.log").unwrap(), b"done\n");
        }
    }

    #[test]
    fn batch_forks_skip_out_of_range_targets() {
        let (ops, _) = record_workload();
        let n = ops.len();
        let cache = TraceCheckpoints::build(ops).unwrap();
        let last = cache.points().len() - 1;
        let ck_index = cache.points()[last].index();
        // Targets below the checkpoint or past the trace are skipped.
        let batch =
            cache.fork_at_targets(last, &[0, ck_index.saturating_sub(1), n, n + 5]).unwrap();
        assert!(batch.is_empty());
        assert!(batch.for_target(n).is_none());
    }

    #[test]
    fn demand_fingerprint_is_order_insensitive() {
        assert_eq!(demand_fingerprint(&[5, 2, 9]), demand_fingerprint(&[9, 5, 2]));
        assert_ne!(demand_fingerprint(&[5, 2, 9]), demand_fingerprint(&[5, 2]));
        assert_ne!(demand_fingerprint(&[5, 2, 9]), demand_fingerprint(&[5, 2, 2, 9]));
    }

    #[test]
    fn store_keeps_demand_and_log_spaced_sets_side_by_side() {
        let dir = scratch("demand-coexist");
        let (ops, _) = record_workload();
        let n = ops.len();
        let demand = vec![n / 2, n - 1];

        let store = CheckpointStore::with_dir(&dir).unwrap();
        let log = store.get_or_build(ops.clone()).unwrap();
        let placed = store.get_or_build_for_demand(ops.clone(), &demand).unwrap();
        assert_eq!(store.builds(), 2, "distinct placements build separately");
        assert!(!Arc::ptr_eq(&log, &placed));
        assert_eq!(placed.overshoot_for(&demand), 0);
        // Re-requesting either placement hits its own entry.
        assert!(Arc::ptr_eq(&store.get_or_build(ops.clone()).unwrap(), &log));
        assert!(Arc::ptr_eq(
            &store.get_or_build_for_demand(ops.clone(), &demand).unwrap(),
            &placed
        ));
        assert_eq!(store.builds(), 2);

        // A fresh store over the same root loads both from disk.
        let second = CheckpointStore::with_dir(&dir).unwrap();
        let log2 = second.get_or_build(ops.clone()).unwrap();
        let placed2 = second.get_or_build_for_demand(ops.clone(), &demand).unwrap();
        assert_eq!((second.builds(), second.disk_hits()), (0, 2));
        assert_eq!(log2.placement(), &Placement::LogSpaced);
        assert_eq!(placed2.placement(), placed.placement());
        assert_eq!(
            placed2.points().iter().map(|p| p.index()).collect::<Vec<_>>(),
            placed.points().iter().map(|p| p.index()).collect::<Vec<_>>()
        );

        // An effectively empty demand is the log-spaced entry, not a
        // third build.
        let empty = second.get_or_build_for_demand(ops, &[0, n + 1]).unwrap();
        assert!(Arc::ptr_eq(&empty, &log2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coalesced_replay_is_byte_identical_to_op_at_a_time() {
        let (ops, golden) = record_workload();
        let reference = MemFs::new();
        ReplayCursor::new().replay(&reference, &ops).unwrap();

        let coalesced = MemFs::new();
        let stats = ReplayCursor::new().replay_coalesced(&coalesced, &ops).unwrap();
        assert_eq!(stats.replayed_ops, ops.len());
        assert!(stats.coalesced_calls > 0, "chunked writes form a contiguous run");
        assert!(stats.coalesced_ops > stats.coalesced_calls);
        for path in ["/out/data.bin", "/out/run.log"] {
            assert_eq!(coalesced.snapshot(path).unwrap(), reference.snapshot(path).unwrap());
            assert_eq!(
                coalesced.getattr(path).unwrap().mtime,
                reference.getattr(path).unwrap().mtime,
                "coalescing must not skip clock ticks ({path})"
            );
        }
        assert_eq!(coalesced.snapshot("/out/data.bin").unwrap(), {
            let mut want = vec![7u8; 10_000];
            want[100..105].copy_from_slice(b"patch");
            want
        });
        let _ = golden;
    }

    #[test]
    fn coalescing_merges_sequential_and_contiguous_runs_only() {
        let seq =
            |fd: Fd, byte: u8| TraceOp::Write { fd, path: None, offset: None, data: vec![byte; 3] };
        let at = |fd: Fd, off: u64, byte: u8| TraceOp::Write {
            fd,
            path: None,
            offset: Some(off),
            data: vec![byte; 4],
        };
        let ops = vec![
            TraceOp::Create { path: "/a".into(), mode: 0o644, fd: 10 },
            TraceOp::Create { path: "/b".into(), mode: 0o644, fd: 11 },
            // Sequential run on fd 10 (3 ops -> 1 writev).
            seq(10, 1),
            seq(10, 2),
            seq(10, 3),
            // fd switch breaks the run.
            seq(11, 4),
            // Contiguous positioned run on fd 11 (2 ops -> 1 pwritev)…
            at(11, 3, 5),
            at(11, 7, 6),
            // …broken by a gap: stands alone.
            at(11, 20, 7),
            TraceOp::Release { fd: 10 },
            TraceOp::Release { fd: 11 },
        ];
        let reference = MemFs::new();
        ReplayCursor::new().replay(&reference, &ops).unwrap();
        let fs = MemFs::new();
        let stats = ReplayCursor::new().replay_coalesced(&fs, &ops).unwrap();
        assert_eq!(stats.replayed_ops, ops.len());
        assert_eq!(stats.coalesced_calls, 2);
        assert_eq!(stats.coalesced_ops, 5);
        for path in ["/a", "/b"] {
            assert_eq!(fs.snapshot(path).unwrap(), reference.snapshot(path).unwrap());
        }
    }
}
