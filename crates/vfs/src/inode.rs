//! Inode table for the in-memory filesystem.

use std::collections::BTreeMap;

use crate::file::SectorFile;
use crate::fs::{Metadata, NodeKind};

/// Inode number type.
pub type Ino = u64;

/// Root directory inode number (FUSE convention).
pub const ROOT_INO: Ino = 1;

/// Node payload: byte contents for files, name→ino map for directories
/// (a `BTreeMap` so `readdir` is deterministically sorted), nothing for
/// special nodes.
#[derive(Debug, Clone)]
pub enum NodeData {
    /// Regular file bytes.
    Bytes(SectorFile),
    /// Directory entries.
    Dir(BTreeMap<String, Ino>),
    /// FIFO / device node — no stored bytes.
    None,
}

/// One inode.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// Node kind.
    pub kind: NodeKind,
    /// Permission bits.
    pub mode: u32,
    /// Link count (parent directory references).
    pub nlink: u32,
    /// Logical modification stamp.
    pub mtime: u64,
    /// Device number for device nodes.
    pub rdev: u64,
    /// Payload.
    pub data: NodeData,
}

impl Inode {
    /// New regular file.
    pub fn file(ino: Ino, mode: u32, mtime: u64) -> Self {
        Inode {
            ino,
            kind: NodeKind::File,
            mode,
            nlink: 1,
            mtime,
            rdev: 0,
            data: NodeData::Bytes(SectorFile::new()),
        }
    }

    /// New directory.
    pub fn dir(ino: Ino, mode: u32, mtime: u64) -> Self {
        Inode {
            ino,
            kind: NodeKind::Dir,
            mode,
            nlink: 2,
            mtime,
            rdev: 0,
            data: NodeData::Dir(BTreeMap::new()),
        }
    }

    /// New special node (FIFO or device).
    pub fn special(ino: Ino, kind: NodeKind, mode: u32, rdev: u64, mtime: u64) -> Self {
        debug_assert!(matches!(kind, NodeKind::Fifo | NodeKind::CharDev | NodeKind::BlockDev));
        Inode { ino, kind, mode, nlink: 1, mtime, rdev, data: NodeData::None }
    }

    /// Byte size (0 for non-files).
    pub fn size(&self) -> u64 {
        match &self.data {
            NodeData::Bytes(f) => f.len(),
            _ => 0,
        }
    }

    /// Contents as a file, if this is a regular file.
    pub fn as_file(&self) -> Option<&SectorFile> {
        match &self.data {
            NodeData::Bytes(f) => Some(f),
            _ => None,
        }
    }

    /// Mutable contents, if this is a regular file.
    pub fn as_file_mut(&mut self) -> Option<&mut SectorFile> {
        match &mut self.data {
            NodeData::Bytes(f) => Some(f),
            _ => None,
        }
    }

    /// Directory map, if this is a directory.
    pub fn as_dir(&self) -> Option<&BTreeMap<String, Ino>> {
        match &self.data {
            NodeData::Dir(d) => Some(d),
            _ => None,
        }
    }

    /// Mutable directory map, if this is a directory.
    pub fn as_dir_mut(&mut self) -> Option<&mut BTreeMap<String, Ino>> {
        match &mut self.data {
            NodeData::Dir(d) => Some(d),
            _ => None,
        }
    }

    /// Snapshot `stat` metadata.
    pub fn metadata(&self) -> Metadata {
        Metadata {
            ino: self.ino,
            kind: self.kind,
            size: self.size(),
            mode: self.mode,
            nlink: self.nlink,
            mtime: self.mtime,
            rdev: self.rdev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_inode_basics() {
        let mut ino = Inode::file(5, 0o600, 7);
        assert_eq!(ino.size(), 0);
        ino.as_file_mut().unwrap().write_at(b"abc", 0).unwrap();
        assert_eq!(ino.size(), 3);
        let m = ino.metadata();
        assert_eq!(m.ino, 5);
        assert_eq!(m.mode, 0o600);
        assert_eq!(m.size, 3);
        assert_eq!(m.mtime, 7);
        assert_eq!(m.kind, NodeKind::File);
        assert!(ino.as_dir().is_none());
    }

    #[test]
    fn dir_inode_basics() {
        let mut d = Inode::dir(1, 0o755, 0);
        assert!(d.as_file().is_none());
        d.as_dir_mut().unwrap().insert("a".into(), 2);
        d.as_dir_mut().unwrap().insert("b".into(), 3);
        assert_eq!(d.as_dir().unwrap().len(), 2);
        assert_eq!(d.size(), 0);
        assert_eq!(d.metadata().nlink, 2);
    }

    #[test]
    fn special_inode_basics() {
        let f = Inode::special(9, NodeKind::Fifo, 0o644, 0, 0);
        assert_eq!(f.size(), 0);
        assert!(f.as_file().is_none());
        assert!(f.as_dir().is_none());
        let c = Inode::special(10, NodeKind::CharDev, 0o644, 0x0501, 0);
        assert_eq!(c.metadata().rdev, 0x0501);
    }

    #[test]
    fn dir_entries_sorted() {
        let mut d = Inode::dir(1, 0o755, 0);
        let m = d.as_dir_mut().unwrap();
        m.insert("zeta".into(), 4);
        m.insert("alpha".into(), 2);
        m.insert("mid".into(), 3);
        let names: Vec<_> = d.as_dir().unwrap().keys().cloned().collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
