//! Tracing interceptor: records every primitive crossing.
//!
//! The paper's I/O profiler "instruments the primitive inside the FUSE
//! \[interface\] and executes the application fault-free to obtain the
//! total count" (§III-C). [`TraceInterceptor`] captures the full call
//! stream so the profiler can count primitives *and* the HDF5 metadata
//! scanner can locate specific writes (the "penultimate fwrite" of
//! §IV-D) by replaying the trace.

use std::sync::Mutex;

use crate::interceptor::{CallContext, Interceptor, Primitive};

/// One recorded primitive crossing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Which primitive.
    pub primitive: Primitive,
    /// Global sequence number.
    pub seq: u64,
    /// Per-primitive dynamic count.
    pub prim_seq: u64,
    /// Path for path-addressed primitives.
    pub path: Option<String>,
    /// Descriptor for fd-addressed primitives.
    pub fd: Option<u64>,
    /// Offset for positioned I/O.
    pub offset: Option<u64>,
    /// Buffer length for data-carrying primitives.
    pub len: usize,
}

impl TraceRecord {
    /// Does this crossing fall in an injection scope — the given
    /// primitive, with a path accepted by `path_matches`? Campaign
    /// drivers size per-signature eligible-instance populations by
    /// folding this over a golden trace, so write-site and read-site
    /// scopes are counted by one predicate.
    pub fn in_scope(
        &self,
        primitive: Primitive,
        path_matches: impl FnOnce(Option<&str>) -> bool,
    ) -> bool {
        self.primitive == primitive && path_matches(self.path.as_deref())
    }

    fn from_cx(cx: &CallContext) -> Self {
        TraceRecord {
            primitive: cx.primitive,
            seq: cx.seq,
            prim_seq: cx.prim_seq,
            path: cx.path.clone(),
            fd: cx.fd,
            offset: cx.offset,
            len: cx.len,
        }
    }
}

/// Interceptor that appends every crossing to an in-memory trace.
#[derive(Debug, Default)]
pub struct TraceInterceptor {
    records: Mutex<Vec<TraceRecord>>,
}

impl TraceInterceptor {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the recorded trace.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Records filtered to one primitive.
    pub fn records_of(&self, p: Primitive) -> Vec<TraceRecord> {
        self.records().into_iter().filter(|r| r.primitive == p).collect()
    }

    /// Count crossings of one primitive.
    pub fn count(&self, p: Primitive) -> u64 {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|r| r.primitive == p)
            .count() as u64
    }

    /// Clear the trace.
    pub fn reset(&self) {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Interceptor for TraceInterceptor {
    fn on_call(&self, cx: &CallContext) {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).push(TraceRecord::from_cx(cx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffisfs::FfisFs;
    use crate::fs::{FileSystem, FileSystemExt};
    use crate::memfs::MemFs;
    use std::sync::Arc;

    #[test]
    fn trace_captures_ordered_stream() {
        let fs = FfisFs::mount(Arc::new(MemFs::new()));
        let trace = Arc::new(TraceInterceptor::new());
        fs.attach(trace.clone());

        fs.write_file_chunked("/f", &[1u8; 6], 3).unwrap();
        let recs = trace.records();
        assert!(!recs.is_empty());
        // Global seq strictly increasing.
        for w in recs.windows(2) {
            assert!(w[1].seq > w[0].seq);
        }
        // Two write crossings of 3 bytes each.
        let writes = trace.records_of(Primitive::Write);
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].len, 3);
        assert_eq!(writes[0].offset, Some(0));
        assert_eq!(writes[1].offset, Some(3));
        assert_eq!(writes[0].prim_seq, 1);
        assert_eq!(writes[1].prim_seq, 2);
        assert_eq!(trace.count(Primitive::Write), 2);
        assert_eq!(trace.count(Primitive::Create), 1);
    }

    #[test]
    fn reset_clears() {
        let fs = FfisFs::mount(Arc::new(MemFs::new()));
        let trace = Arc::new(TraceInterceptor::new());
        fs.attach(trace.clone());
        fs.write_file("/f", b"abc").unwrap();
        assert!(!trace.records().is_empty());
        trace.reset();
        assert!(trace.records().is_empty());
    }

    #[test]
    fn in_scope_matches_primitive_and_path() {
        let fs = FfisFs::mount(Arc::new(MemFs::new()));
        let trace = Arc::new(TraceInterceptor::new());
        fs.attach(trace.clone());
        fs.write_file("/a.h5", b"x").unwrap();
        let _ = fs.read_to_vec("/a.h5").unwrap();
        let recs = trace.records();
        let writes = recs.iter().filter(|r| r.in_scope(Primitive::Write, |_| true)).count();
        assert_eq!(writes as u64, trace.count(Primitive::Write));
        let h5_reads = recs
            .iter()
            .filter(|r| r.in_scope(Primitive::Read, |p| p.is_some_and(|p| p.ends_with(".h5"))))
            .count();
        assert_eq!(h5_reads as u64, trace.count(Primitive::Read));
        let log_reads = recs
            .iter()
            .filter(|r| r.in_scope(Primitive::Read, |p| p.is_some_and(|p| p.ends_with(".log"))))
            .count();
        assert_eq!(log_reads, 0);
    }

    #[test]
    fn paths_recorded_for_path_primitives() {
        let fs = FfisFs::mount(Arc::new(MemFs::new()));
        let trace = Arc::new(TraceInterceptor::new());
        fs.attach(trace.clone());
        fs.mkdir("/dir", 0o755).unwrap();
        let recs = trace.records_of(Primitive::Mkdir);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].path.as_deref(), Some("/dir"));
    }
}
