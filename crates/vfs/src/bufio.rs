//! Buffered file I/O over a [`FileSystem`].
//!
//! Real HPC applications write their text outputs (`scalar.dat`,
//! logs, status files) through stdio, which coalesces `fwrite`/`fprintf`
//! calls into `BUFSIZ`-sized (traditionally 4 KiB) writes before they
//! reach the filesystem. The paper's fault models act on those
//! block-sized writes — a shorn write tears a 4 KiB block at 512 B
//! sector granularity. [`BufFile`] reproduces the stdio behaviour so
//! text-writing workloads present the same write-size population to the
//! fault injector as their real counterparts.

use crate::error::FsResult;
use crate::file::BLOCK_SIZE;
use crate::fs::{Fd, FileSystem};

/// Write-side buffered file, flushing in `BLOCK_SIZE` units.
pub struct BufFile<'fs> {
    fs: &'fs dyn FileSystem,
    fd: Fd,
    buf: Vec<u8>,
    offset: u64,
    cap: usize,
}

impl<'fs> BufFile<'fs> {
    /// Create (truncate) `path` for buffered writing.
    pub fn create(fs: &'fs dyn FileSystem, path: &str) -> FsResult<Self> {
        let fd = fs.create(path, 0o644)?;
        Ok(BufFile { fs, fd, buf: Vec::with_capacity(BLOCK_SIZE), offset: 0, cap: BLOCK_SIZE })
    }

    /// Create with a custom buffer capacity (tests, ablations).
    pub fn with_capacity(fs: &'fs dyn FileSystem, path: &str, cap: usize) -> FsResult<Self> {
        let fd = fs.create(path, 0o644)?;
        Ok(BufFile { fs, fd, buf: Vec::with_capacity(cap.max(1)), offset: 0, cap: cap.max(1) })
    }

    /// Append bytes, flushing whenever the buffer reaches capacity.
    pub fn write_all(&mut self, mut data: &[u8]) -> FsResult<()> {
        while !data.is_empty() {
            let room = self.cap - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == self.cap {
                self.flush()?;
            }
        }
        Ok(())
    }

    /// Append a UTF-8 string.
    pub fn write_str(&mut self, s: &str) -> FsResult<()> {
        self.write_all(s.as_bytes())
    }

    /// `writeln!`-style formatted line.
    pub fn write_line(&mut self, s: &str) -> FsResult<()> {
        self.write_str(s)?;
        self.write_all(b"\n")
    }

    /// Flush buffered bytes as one `pwrite`.
    pub fn flush(&mut self) -> FsResult<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let n = self.fs.pwrite(self.fd, &self.buf, self.offset)?;
        // The filesystem may lie about n under fault injection (that is
        // the point); trust the *reported* length like stdio does.
        self.offset += n as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flush, fsync and close.
    pub fn close(mut self) -> FsResult<()> {
        self.flush()?;
        self.fs.fsync(self.fd)?;
        self.fs.release(self.fd)
    }

    /// Bytes pushed so far (buffered + flushed).
    pub fn position(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FileSystemExt;
    use crate::memfs::MemFs;

    #[test]
    fn small_writes_coalesce_into_blocks() {
        let fs = MemFs::new();
        {
            let mut f = BufFile::create(&fs, "/t.txt").unwrap();
            for i in 0..1000 {
                f.write_line(&format!("line {}", i)).unwrap();
            }
            f.close().unwrap();
        }
        let text = fs.read_to_string("/t.txt").unwrap();
        assert!(text.starts_with("line 0\n"));
        assert!(text.ends_with("line 999\n"));
        assert_eq!(text.lines().count(), 1000);
    }

    #[test]
    fn flush_boundaries_are_block_sized() {
        use crate::counting::TraceInterceptor;
        use crate::ffisfs::FfisFs;
        use crate::interceptor::Primitive;
        use std::sync::Arc;

        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        let trace = Arc::new(TraceInterceptor::new());
        ffs.attach(trace.clone());
        {
            let mut f = BufFile::create(&*ffs, "/t").unwrap();
            f.write_all(&vec![7u8; BLOCK_SIZE * 2 + 100]).unwrap();
            f.close().unwrap();
        }
        let writes = trace.records_of(Primitive::Write);
        assert_eq!(writes.len(), 3);
        assert_eq!(writes[0].len, BLOCK_SIZE);
        assert_eq!(writes[1].len, BLOCK_SIZE);
        assert_eq!(writes[2].len, 100);
    }

    #[test]
    fn custom_capacity_respected() {
        let fs = MemFs::new();
        let mut f = BufFile::with_capacity(&fs, "/c", 8).unwrap();
        f.write_all(b"0123456789abcdef").unwrap();
        assert_eq!(f.position(), 16);
        f.close().unwrap();
        assert_eq!(fs.read_to_vec("/c").unwrap(), b"0123456789abcdef");
    }

    #[test]
    fn position_tracks_buffered_bytes() {
        let fs = MemFs::new();
        let mut f = BufFile::create(&fs, "/p").unwrap();
        f.write_all(b"abc").unwrap();
        assert_eq!(f.position(), 3);
        f.flush().unwrap();
        assert_eq!(f.position(), 3);
        f.close().unwrap();
    }
}
