//! Content-addressed blob storage for checkpoint state.
//!
//! The checkpoint disk tier stores every 4-KiB page extent (and every
//! trace write payload chunk) as one **blob** addressed by the SHA-256
//! of its bytes. Content addressing is what makes the store cheap at
//! campaign scale: the log-spaced checkpoints of one trace share
//! almost all of their pages (a checkpoint at index *i* and one at
//! index *j* differ only in the pages written between them), and
//! campaigns over the same deterministic workload produce identical
//! golden state — so a page is written to disk once no matter how many
//! checkpoints, campaigns, or daemon jobs reference it.
//!
//! Durability follows the run journal's discipline: every blob file is
//! CRC-framed, writes go through a temp file + atomic rename (so a
//! concurrent writer or a crash can never expose a half-written blob
//! under its final name), and a corrupt frame is **deleted and treated
//! as a miss** — the caller rebuilds the state and rewrites the blob;
//! corruption never crashes a campaign.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::wire;

/// Content address of a blob: SHA-256 over its bytes.
pub type BlobHash = [u8; 32];

/// Magic prefix of a framed blob file.
const BLOB_MAGIC: &[u8; 8] = b"FFISBLB1";

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven. Local to
/// this crate — `ffis-core`'s run journal carries its own copy — so
/// the VFS layer stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 content hash (FIPS 180-4). Hand-rolled — the workspace is
/// offline, and the 64-bit FNV used for trace fingerprints is too
/// collision-prone to address content that is *reconstructed from* its
/// hash rather than merely cache-keyed by it.
pub fn sha256(data: &[u8]) -> BlobHash {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let bitlen = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bitlen.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 =
                hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lower-case hex rendering of a blob hash (blob file names).
pub fn hash_hex(hash: &BlobHash) -> String {
    let mut s = String::with_capacity(64);
    for b in hash {
        use std::fmt::Write as _;
        let _ = write!(s, "{:02x}", b);
    }
    s
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Deduplication and durability accounting for a [`BlobStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlobStats {
    /// Unique blobs currently indexed in memory.
    pub blobs: usize,
    /// Total bytes offered to [`BlobStore::put`] (before dedup).
    pub logical_bytes: u64,
    /// Bytes actually retained for unique blobs (after dedup).
    pub physical_bytes: u64,
    /// `put` calls answered by an existing blob (content dedup).
    pub dedup_hits: u64,
    /// Blobs faulted in from the disk tier by [`BlobStore::get`].
    pub disk_loads: u64,
    /// Corrupt disk frames discarded (deleted, treated as a miss).
    pub corrupt_discards: u64,
}

impl BlobStats {
    /// Logical-over-physical byte ratio: how many times each stored
    /// byte was referenced. `1.0` means no content was shared; the
    /// checkpoint workload sits well above 1 because log-spaced
    /// checkpoints share most of their pages.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// A content-addressed blob store: memory tier always, disk tier when
/// constructed with a directory.
///
/// Disk layout: `<dir>/<first 2 hex chars>/<64 hex chars>.blob`, each
/// file framed as `magic | len u32 | crc32 u32 | bytes`. Writers land
/// frames via temp-file + rename, so concurrent processes sharing one
/// store directory race idempotently (same content ⇒ same name ⇒ same
/// bytes). Readers verify the frame CRC *and* re-hash the payload
/// against its address before trusting it; any mismatch deletes the
/// file and reports a miss.
#[derive(Debug)]
pub struct BlobStore {
    mem: Mutex<HashMap<BlobHash, Arc<Vec<u8>>>>,
    dir: Option<PathBuf>,
    logical_bytes: AtomicU64,
    physical_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    disk_loads: AtomicU64,
    corrupt_discards: AtomicU64,
}

impl Default for BlobStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl BlobStore {
    /// Memory-only store (no persistence).
    pub fn in_memory() -> Self {
        BlobStore {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            logical_bytes: AtomicU64::new(0),
            physical_bytes: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            corrupt_discards: AtomicU64::new(0),
        }
    }

    /// Disk-backed store rooted at `dir` (created if missing). The
    /// directory may be shared by any number of processes.
    pub fn at_dir(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut store = Self::in_memory();
        store.dir = Some(dir.to_path_buf());
        Ok(store)
    }

    /// The disk-tier root, when this store has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn blob_path(&self, hash: &BlobHash) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let hex = hash_hex(hash);
        Some(dir.join(&hex[..2]).join(format!("{}.blob", hex)))
    }

    /// Store `bytes`, returning their content address. Identical
    /// content is stored once; repeats count as dedup hits.
    pub fn put(&self, bytes: &[u8]) -> BlobHash {
        let hash = sha256(bytes);
        self.logical_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        {
            let mut mem = self.mem.lock().unwrap_or_else(|e| e.into_inner());
            if mem.contains_key(&hash) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return hash;
            }
            mem.insert(hash, Arc::new(bytes.to_vec()));
        }
        self.physical_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        if let Some(path) = self.blob_path(&hash) {
            // Best-effort persistence: a failed disk write degrades the
            // store to its memory tier, never a campaign.
            let _ = write_frame(&path, bytes);
        }
        hash
    }

    /// Fetch a blob by content address: memory tier first, then the
    /// disk tier (verifying frame CRC and content hash; corrupt frames
    /// are deleted and miss). `None` means the content must be
    /// rebuilt.
    pub fn get(&self, hash: &BlobHash) -> Option<Arc<Vec<u8>>> {
        if let Some(hit) = self.mem.lock().unwrap_or_else(|e| e.into_inner()).get(hash) {
            return Some(hit.clone());
        }
        let path = self.blob_path(hash)?;
        let raw = std::fs::read(&path).ok()?;
        match decode_frame(&raw) {
            Some(bytes) if sha256(&bytes) == *hash => {
                let blob = Arc::new(bytes);
                let mut mem = self.mem.lock().unwrap_or_else(|e| e.into_inner());
                let entry = mem.entry(*hash).or_insert_with(|| blob.clone()).clone();
                drop(mem);
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            _ => {
                // Torn or bit-rotted frame: drop it so the rebuild's
                // rewrite starts clean.
                let _ = std::fs::remove_file(&path);
                self.corrupt_discards.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Is `hash` resident in the memory tier? (Accounting/tests; does
    /// not consult the disk tier.)
    pub fn contains(&self, hash: &BlobHash) -> bool {
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).contains_key(hash)
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> BlobStats {
        BlobStats {
            blobs: self.mem.lock().unwrap_or_else(|e| e.into_inner()).len(),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            physical_bytes: self.physical_bytes.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            corrupt_discards: self.corrupt_discards.load(Ordering::Relaxed),
        }
    }
}

/// Write one CRC-framed blob file via temp + atomic rename. The temp
/// name embeds the pid so concurrent writers in different processes
/// never collide mid-write.
fn write_frame(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if path.exists() {
        return Ok(()); // Content-addressed: an existing file is this file.
    }
    let parent = path.parent().expect("blob paths have a shard directory");
    std::fs::create_dir_all(parent)?;
    let mut frame = Vec::with_capacity(bytes.len() + 16);
    frame.extend_from_slice(BLOB_MAGIC);
    wire::put_u32(&mut frame, bytes.len() as u32);
    wire::put_u32(&mut frame, crc32(bytes));
    frame.extend_from_slice(bytes);
    let tmp = parent.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("blob")
    ));
    std::fs::write(&tmp, &frame)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Decode a framed blob file; `None` on any structural or CRC damage.
fn decode_frame(raw: &[u8]) -> Option<Vec<u8>> {
    let mut r = wire::Reader::new(raw);
    if r.bytes(BLOB_MAGIC.len())? != BLOB_MAGIC {
        return None;
    }
    let len = r.u32()? as usize;
    let crc = r.u32()?;
    let bytes = r.bytes(len)?;
    if r.remaining() != 0 || crc32(bytes) != crc {
        return None;
    }
    Some(bytes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            hash_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hash_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // A multi-block message (> 64 bytes).
        assert_eq!(
            hash_hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn put_get_dedup_in_memory() {
        let store = BlobStore::in_memory();
        let a = store.put(&[1u8; 4096]);
        let b = store.put(&[1u8; 4096]);
        let c = store.put(&[2u8; 4096]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.get(&a).unwrap().as_slice(), &[1u8; 4096][..]);
        let stats = store.stats();
        assert_eq!(stats.blobs, 2);
        assert_eq!(stats.logical_bytes, 3 * 4096);
        assert_eq!(stats.physical_bytes, 2 * 4096);
        assert_eq!(stats.dedup_hits, 1);
        assert!(stats.dedup_ratio() > 1.0);
    }

    #[test]
    fn missing_blob_is_none() {
        let store = BlobStore::in_memory();
        assert!(store.get(&sha256(b"never stored")).is_none());
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffis-blobs-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_tier_survives_process_restart() {
        let dir = temp_dir("restart");
        let hash = {
            let store = BlobStore::at_dir(&dir).unwrap();
            store.put(b"persist me")
        };
        // A fresh store (fresh "process") faults the blob in from disk.
        let store2 = BlobStore::at_dir(&dir).unwrap();
        assert!(!store2.contains(&hash));
        assert_eq!(store2.get(&hash).unwrap().as_slice(), b"persist me");
        assert_eq!(store2.stats().disk_loads, 1);
        assert!(store2.contains(&hash));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_is_deleted_and_misses() {
        let dir = temp_dir("corrupt");
        let store = BlobStore::at_dir(&dir).unwrap();
        let hash = store.put(b"will be damaged");
        let path = store.blob_path(&hash).unwrap();
        assert!(path.exists());

        // Flip one payload byte on disk: CRC (and content hash) break.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let fresh = BlobStore::at_dir(&dir).unwrap();
        assert!(fresh.get(&hash).is_none());
        assert_eq!(fresh.stats().corrupt_discards, 1);
        assert!(!path.exists(), "corrupt frame deleted");
        // Re-putting rewrites the frame and get works again.
        fresh.put(b"will be damaged");
        let again = BlobStore::at_dir(&dir).unwrap();
        assert_eq!(again.get(&hash).unwrap().as_slice(), b"will be damaged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_truncated_frame_is_deleted_and_misses() {
        let dir = temp_dir("torn");
        let store = BlobStore::at_dir(&dir).unwrap();
        let hash = store.put(&[9u8; 1000]);
        let path = store.blob_path(&hash).unwrap();
        let raw = std::fs::read(&path).unwrap();
        // Simulate a torn write: only half the frame made it to disk.
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let fresh = BlobStore::at_dir(&dir).unwrap();
        assert!(fresh.get(&hash).is_none());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_hash_mismatch_is_rejected_even_with_valid_crc() {
        let dir = temp_dir("addr");
        let store = BlobStore::at_dir(&dir).unwrap();
        let hash = store.put(b"original");
        let path = store.blob_path(&hash).unwrap();
        // A structurally valid frame holding *different* content under
        // this address (e.g. a botched manual copy) must not be served.
        let mut frame = Vec::new();
        frame.extend_from_slice(BLOB_MAGIC);
        wire::put_u32(&mut frame, 5);
        wire::put_u32(&mut frame, crc32(b"wrong"));
        frame.extend_from_slice(b"wrong");
        std::fs::write(&path, &frame).unwrap();
        let fresh = BlobStore::at_dir(&dir).unwrap();
        assert!(fresh.get(&hash).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
