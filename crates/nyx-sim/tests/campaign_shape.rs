//! Shape check against Figure 7's Nyx column: BIT FLIP mostly benign
//! with a small detected share and rare SDC; SHORN WRITE (stale fill)
//! almost entirely benign; DROPPED WRITE almost entirely SDC.
//!
//! Run counts are kept small for CI; the `repro fig7` harness runs the
//! full 1,000-run campaigns.

use ffis_core::prelude::*;
use nyx_sim::{NyxApp, NyxConfig};

fn paper_app() -> NyxApp {
    NyxApp::new(NyxConfig::paper_scale())
}

fn run(app: &NyxApp, model: FaultModel, runs: usize, seed: u64) -> OutcomeTally {
    let cfg = CampaignConfig::new(FaultSignature::on_write(model)).with_runs(runs).with_seed(seed);
    Campaign::new(app, cfg).run().unwrap().tally
}

#[test]
fn figure7_nyx_shapes() {
    let app = paper_app();

    let bf = run(&app, FaultModel::bit_flip(), 120, 11);
    println!("NYX BF: {}", bf);
    assert!(bf.benign * 100 >= 80 * bf.total(), "BF benign should dominate: {}", bf);
    assert!(bf.detected > 0, "high-exponent flips must erase halos sometimes: {}", bf);
    assert!(bf.sdc * 100 <= 10 * bf.total(), "BF SDC should be rare: {}", bf);

    let sw = run(&app, FaultModel::shorn_write(), 120, 12);
    println!("NYX SW: {}", sw);
    assert!(sw.benign * 100 >= 85 * sw.total(), "stale-fill shorn writes are absorbed: {}", sw);

    let dw = run(&app, FaultModel::dropped_write(), 120, 13);
    println!("NYX DW: {}", dw);
    assert!(dw.sdc * 100 >= 85 * dw.total(), "dropped sieve writes always reshape halos: {}", dw);
    assert_eq!(dw.benign, 0, "a dropped 64 KiB slab can never be invisible: {}", dw);
}

#[test]
fn dropped_write_sdc_always_caught_by_average_value_method() {
    // §V-B: "all the SDC cases in our experiment can be detected by
    // using the average value, because the average value is reduced by
    // at least 0.1%".
    use ffis_core::{ArmedInjector, FaultApp};
    use nyx_sim::protect::{protected_classify, MEAN_TOLERANCE};
    use std::sync::Arc;

    let app = paper_app();
    let golden = app.run(&ffis_vfs::MemFs::new()).unwrap();
    let sig = FaultSignature::on_write(FaultModel::dropped_write());
    let mut converted = 0;
    let mut sdc_seen = 0;
    for seed in 0..25u64 {
        let mut rng = ffis_core::Rng::seed_from(seed);
        // Target only the first 40 write instances (data writes).
        let instance = rng.gen_range(40) + 1;
        let inj = Arc::new(ArmedInjector::new(sig.clone(), instance, seed));
        let ffs = ffis_vfs::FfisFs::mount(Arc::new(ffis_vfs::MemFs::new()));
        ffs.attach(inj);
        if let Ok(faulty) = app.run(&*ffs) {
            if app.classify(&golden, &faulty) == Outcome::Sdc {
                sdc_seen += 1;
                let protected = protected_classify(&golden, &faulty, MEAN_TOLERANCE);
                assert_eq!(protected, Outcome::Detected, "mean deviation must expose the drop");
                converted += 1;
            }
        }
    }
    assert!(sdc_seen >= 15, "expected plenty of SDC cases, saw {}", sdc_seen);
    assert_eq!(converted, sdc_seen);
}
