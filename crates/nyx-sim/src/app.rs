//! The Nyx workload as a [`FaultApp`] (paper §IV-C.1).
//!
//! One run = simulate (deterministic field generation, done once and
//! cached — faults target the I/O path, not the physics), write the
//! plotfile through the filesystem under test using the HDF5 creation
//! protocol, read it back, and run the halo finder.
//!
//! Outcome classification (verbatim from the paper): "we compare the
//! output of the halo finder ... of the fault injected case with the
//! original output. If they are bit-wise identical, they are
//! classified as benign. If they differ, and there is no halo found,
//! the cases are detected and otherwise they are the SDC."

use ffis_core::{FaultApp, Outcome, SubstepSpec};
use ffis_vfs::FileSystem;
use hdf5lite::{Dataset, FileBuilder, WriteOptions};

use crate::field::{generate, FieldConfig};
use crate::halo::{find_halos, Halo, HaloCatalog, HaloFinderConfig};

/// Path of the plotfile within the mount.
pub const PLOTFILE: &str = "/run/plt00000.h5";

/// Path of plotfile `k` (`plt00000`, `plt00001`, ...); index 0 is the
/// legacy [`PLOTFILE`].
pub fn plotfile_path(k: usize) -> String {
    format!("/run/plt{:05}.h5", k)
}

/// Dataset path inside the plotfile (the real Nyx layout).
pub const DATASET: &str = "/native_fields/baryon_density";

/// Nyx workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct NyxConfig {
    /// Field generation parameters.
    pub field: FieldConfig,
    /// Halo finder parameters.
    pub finder: HaloFinderConfig,
    /// Keep the decoded field in the output (needed by the Figure 5/6
    /// visualizations; campaigns leave it off to save memory).
    pub keep_field: bool,
    /// Raw-data bytes per `pwrite`. Real HDF5 stages contiguous raw
    /// data through a sieve buffer (64 KiB by default), so each
    /// filesystem-level write carries many 4 KiB blocks; a DROPPED
    /// WRITE then erases a macroscopic slab of the field while a
    /// SHORN WRITE still tears only one 512 B-granular block tail —
    /// the size asymmetry behind the paper's "DW = 100% SDC vs SW =
    /// 100% benign" contrast.
    pub write_chunk: usize,
    /// Seal the plotfile metadata with a Fletcher-32 checksum
    /// (reproduction extension; quantifies how much of the paper's
    /// metadata SDC exposure a checksummed format removes).
    pub seal_metadata: bool,
    /// Re-run the (deterministic) field simulation inside every
    /// [`FaultApp::produce`], as the real application binary would — the
    /// paper's injection runs execute Nyx end-to-end, simulation
    /// included. Off by default: storage-path-only experiments may
    /// share the cached field, but replay-vs-rerun comparisons should
    /// enable this to charge the legacy path its true per-run cost.
    pub resimulate: bool,
    /// Number of plotfiles the run writes (`plt00000..`), each a
    /// snapshot of an independently-seeded field. `1` (the default)
    /// keeps the legacy single-plotfile layout byte for byte.
    /// Multi-plotfile runs declare one analyze sub-step per plotfile,
    /// so campaigns memoize the halo analyses a fault cannot reach
    /// (incremental analyze).
    pub plotfiles: usize,
}

impl Default for NyxConfig {
    fn default() -> Self {
        NyxConfig {
            field: FieldConfig::default(),
            finder: HaloFinderConfig::default(),
            keep_field: false,
            write_chunk: ffis_vfs::BLOCK_SIZE,
            seal_metadata: false,
            resimulate: false,
            plotfiles: 1,
        }
    }
}

impl NyxConfig {
    /// Paper-regime preset: a grid large enough that (i) data writes
    /// vastly outnumber the metadata write (so crash rates stay near
    /// zero, as in Figure 7), (ii) a dropped 64 KiB sieve write always
    /// clips halo cells (DW → SDC), and (iii) a torn 512 B window
    /// almost never does (SW → benign).
    pub fn paper_scale() -> Self {
        NyxConfig {
            field: FieldConfig { n: 96, sigma: 1.8, smooth_passes: 3, ..Default::default() },
            finder: HaloFinderConfig::default(),
            keep_field: false,
            write_chunk: 64 * 1024,
            seal_metadata: false,
            resimulate: false,
            plotfiles: 1,
        }
    }
}

/// Everything classification (and the deeper Table IV analyses) needs.
#[derive(Debug, Clone)]
pub struct NyxOutput {
    /// Rendered halo catalog of plotfile 0 (the legacy
    /// bitwise-comparison artifact).
    pub catalog_text: String,
    /// Structured catalog of plotfile 0.
    pub catalog: HaloCatalog,
    /// Decoded field, when `keep_field` is set.
    pub field: Option<Vec<f64>>,
    /// Grid dims.
    pub dims: [usize; 3],
    /// `(catalog_text, catalog)` of plotfiles `1..` (empty in the
    /// single-plotfile regime).
    pub extra: Vec<(String, HaloCatalog)>,
}

/// The Nyx application.
#[derive(Debug, Clone)]
pub struct NyxApp {
    config: NyxConfig,
    /// The simulated fields, one per plotfile, generated once
    /// (deterministic physics; the experiment perturbs only the
    /// storage path).
    fields: Vec<Vec<f32>>,
}

impl NyxApp {
    /// Build the app, running the (deterministic) simulation once per
    /// plotfile.
    pub fn new(mut config: NyxConfig) -> Self {
        config.plotfiles = config.plotfiles.max(1);
        let fields =
            (0..config.plotfiles).map(|k| generate(&Self::file_field(&config, k))).collect();
        NyxApp { config, fields }
    }

    /// Paper-defaults app.
    pub fn paper_default() -> Self {
        Self::new(NyxConfig::default())
    }

    /// Field parameters of plotfile `k`: plotfile 0 keeps the
    /// configured seed (the single-plotfile regime stays
    /// byte-identical); later snapshots shift it.
    fn file_field(config: &NyxConfig, k: usize) -> FieldConfig {
        FieldConfig { seed: config.field.seed.wrapping_add(0x9E37 * k as u64), ..config.field }
    }

    /// Number of plotfiles this app writes.
    pub fn plotfiles(&self) -> usize {
        self.config.plotfiles
    }

    /// Grid side length.
    pub fn n(&self) -> usize {
        self.config.field.n
    }

    /// The pristine simulated field of plotfile 0 (f32, as written).
    pub fn simulated_field(&self) -> &[f32] {
        &self.fields[0]
    }

    /// Table II row.
    pub fn describe() -> (&'static str, &'static str, &'static str) {
        ("Nyx", "Astrophysics", "Adaptive mesh refinement (AMR) based cosmological simulation")
    }

    /// Fault-target filter scoping injections to the HDF5 plotfile —
    /// the workload's sole storage artifact, and the file the halo
    /// finder reads back, so the same filter addresses both write-site
    /// and read-site campaigns.
    pub fn plotfile_filter() -> ffis_core::TargetFilter {
        ffis_core::TargetFilter::PathSuffix(".h5".into())
    }

    /// The byte-exact metadata field map of the plotfile this app
    /// writes (paper §IV-D: "we refer to the HDF5 File Format
    /// Specification to capture the field information of each metadata
    /// byte"). Derived from the same builder the app uses, so it is
    /// correct by construction.
    pub fn metadata_spans(&self) -> Vec<hdf5lite::Span> {
        let n = self.config.field.n;
        let mut b = FileBuilder::new();
        b.add_dataset(DATASET, Dataset::f32("baryon_density", &[n as u64; 3], &self.fields[0]))
            .expect("same tree as run()");
        let plan = hdf5lite::plan(&b.into_root()).expect("plannable");
        let (_, spans) = hdf5lite::encode_metadata(&plan);
        spans
    }

    /// Size of the packed metadata block (== the correct ARD).
    pub fn metadata_size(&self) -> u64 {
        self.metadata_spans().last().map(|s| s.end).unwrap_or(0)
    }
}

/// One plotfile read back through the mount: the halo catalog, the
/// dataset dims, and (plotfile 0 with `keep_field` only) the decoded
/// field values.
type FileReadBack = (HaloCatalog, [usize; 3], Option<Vec<f64>>);

impl NyxApp {
    /// The post-analysis half of one plotfile: read it back through
    /// `fs` and run the halo finder — the per-plotfile unit of
    /// [`FaultApp::analyze`] and the body of the matching analyze
    /// sub-step (so the memo layer's stream-identity law holds by
    /// construction). Returns the catalog, dims, and (for plotfile 0
    /// with `keep_field`) the decoded values.
    fn read_back_file(&self, fs: &dyn FileSystem, k: usize) -> Result<FileReadBack, String> {
        let info =
            hdf5lite::read_dataset(fs, &plotfile_path(k), DATASET).map_err(|e| e.to_string())?;
        if info.dims.len() != 3 {
            return Err(format!("unexpected rank {}", info.dims.len()));
        }
        let dims = [info.dims[0] as usize, info.dims[1] as usize, info.dims[2] as usize];
        let catalog = find_halos(&info.values, dims, &self.config.finder);
        let field = (k == 0 && self.config.keep_field).then_some(info.values);
        Ok((catalog, dims, field))
    }
}

/// Serialize one plotfile's halo analysis as a memoizable
/// analyze-sub-step artifact (dims + the structured catalog; the
/// rendered text is re-derived at assembly).
fn encode_catalog(dims: [usize; 3], catalog: &HaloCatalog) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + catalog.halos.len() * 40);
    for d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&catalog.mean.to_le_bytes());
    out.extend_from_slice(&catalog.threshold.to_le_bytes());
    out.extend_from_slice(&catalog.candidate_cells.to_le_bytes());
    out.extend_from_slice(&(catalog.halos.len() as u64).to_le_bytes());
    for h in &catalog.halos {
        for c in h.center {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&h.cells.to_le_bytes());
        out.extend_from_slice(&h.mass.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_catalog`].
fn decode_catalog(b: &[u8]) -> Result<([usize; 3], HaloCatalog), String> {
    let err = || "malformed plotfile artifact".to_string();
    let u = |at: usize| -> Result<u64, String> {
        Ok(u64::from_le_bytes(b.get(at..at + 8).ok_or_else(err)?.try_into().unwrap()))
    };
    let f = |at: usize| -> Result<f64, String> {
        Ok(f64::from_le_bytes(b.get(at..at + 8).ok_or_else(err)?.try_into().unwrap()))
    };
    let dims = [u(0)? as usize, u(8)? as usize, u(16)? as usize];
    let (mean, threshold, candidate_cells, n_halos) = (f(24)?, f(32)?, u(40)?, u(48)? as usize);
    let mut halos = Vec::with_capacity(n_halos);
    let mut at = 56;
    for _ in 0..n_halos {
        let center = [f(at)?, f(at + 8)?, f(at + 16)?];
        let cells =
            u32::from_le_bytes(b.get(at + 24..at + 28).ok_or_else(err)?.try_into().unwrap());
        let mass = f(at + 28)?;
        halos.push(Halo { center, cells, mass });
        at += 36;
    }
    if b.len() != at {
        return Err(err());
    }
    Ok((dims, HaloCatalog { mean, threshold, candidate_cells, halos }))
}

impl FaultApp for NyxApp {
    type Output = NyxOutput;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        let n = self.config.field.n;
        fs.mkdir("/run", 0o755).map_err(|e| e.to_string())?;
        for k in 0..self.config.plotfiles {
            // The simulation phase: deterministic, so by default each
            // run reuses the cached field; `resimulate` re-executes it
            // the way the real application binary would in every
            // injection run.
            let resimulated;
            let field: &[f32] = if self.config.resimulate {
                resimulated = generate(&Self::file_field(&self.config, k));
                &resimulated
            } else {
                &self.fields[k]
            };
            // Write the plotfile through the (possibly fault-injected)
            // filesystem, exactly as the HDF5 library would.
            let mut b = FileBuilder::new();
            b.add_dataset(DATASET, Dataset::f32("baryon_density", &[n as u64; 3], field))
                .map_err(|e| e.to_string())?;
            let opts = WriteOptions {
                chunk_size: self.config.write_chunk,
                seal_metadata: self.config.seal_metadata,
            };
            hdf5lite::write_file(fs, &plotfile_path(k), &b.into_root(), &opts)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&NyxOutput>,
    ) -> Result<NyxOutput, String> {
        // Plotfiles in order — identical, read for read, to running
        // the per-plotfile sub-steps and assembling them.
        let (catalog, dims, field) = self.read_back_file(fs, 0)?;
        let mut extra = Vec::with_capacity(self.config.plotfiles - 1);
        for k in 1..self.config.plotfiles {
            let (c, _, _) = self.read_back_file(fs, k)?;
            extra.push((c.render(), c));
        }
        Ok(NyxOutput { catalog_text: catalog.render(), catalog, field, dims, extra })
    }

    fn analyze_substeps(&self) -> Option<Vec<SubstepSpec>> {
        // `keep_field` outputs carry the decoded field values, which a
        // memoized artifact does not — visualization runs stay on
        // whole-analyze.
        if self.config.plotfiles == 1 || self.config.keep_field {
            return None;
        }
        Some(
            (0..self.config.plotfiles)
                .map(|k| SubstepSpec::new(format!("plt{:05}", k), vec![plotfile_path(k)]))
                .collect(),
        )
    }

    fn analyze_substep(
        &self,
        fs: &dyn FileSystem,
        index: usize,
        _golden: Option<&NyxOutput>,
    ) -> Result<Vec<u8>, String> {
        if index >= self.config.plotfiles {
            return Err(format!("no plotfile {}", index));
        }
        let (catalog, dims, _) = self.read_back_file(fs, index)?;
        Ok(encode_catalog(dims, &catalog))
    }

    fn assemble(
        &self,
        artifacts: &[Vec<u8>],
        _golden: Option<&NyxOutput>,
    ) -> Result<NyxOutput, String> {
        if artifacts.len() != self.config.plotfiles {
            return Err(format!(
                "expected {} plotfile artifacts, got {}",
                self.config.plotfiles,
                artifacts.len()
            ));
        }
        let (dims, catalog) = decode_catalog(&artifacts[0])?;
        let mut extra = Vec::with_capacity(artifacts.len() - 1);
        for a in &artifacts[1..] {
            let (_, c) = decode_catalog(a)?;
            extra.push((c.render(), c));
        }
        Ok(NyxOutput { catalog_text: catalog.render(), catalog, field: None, dims, extra })
    }

    fn classify(&self, golden: &NyxOutput, faulty: &NyxOutput) -> Outcome {
        // Plotfile 0 (the legacy artifact) first, then the extra
        // snapshots in order: the first differing catalog decides via
        // the paper's no-halo test.
        if golden.catalog_text != faulty.catalog_text {
            return if faulty.catalog.halos.is_empty() { Outcome::Detected } else { Outcome::Sdc };
        }
        for ((gt, _), (ft, fc)) in golden.extra.iter().zip(&faulty.extra) {
            if gt != ft {
                return if fc.halos.is_empty() { Outcome::Detected } else { Outcome::Sdc };
            }
        }
        if golden.extra.len() != faulty.extra.len() {
            return Outcome::Detected;
        }
        Outcome::Benign
    }

    /// Nyx's produce phase streams the plotfile out and never reads it
    /// back — the halo finder's read-back lives entirely in
    /// [`FaultApp::analyze`] — so every read-site fault is an
    /// analyze-phase fault, eligible for the analyze-only fast path.
    fn produce_read_count(&self) -> Option<u64> {
        Some(0)
    }

    fn name(&self) -> String {
        "NYX".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    fn app() -> NyxApp {
        NyxApp::new(NyxConfig {
            field: FieldConfig { n: 24, ..Default::default() },
            ..Default::default()
        })
    }

    #[test]
    fn golden_run_finds_halos() {
        let a = app();
        let fs = MemFs::new();
        let out = a.run(&fs).unwrap();
        assert!(
            !out.catalog.halos.is_empty(),
            "default config must yield halos (candidates: {})",
            out.catalog.candidate_cells
        );
        assert!((out.catalog.mean - 1.0).abs() < 1e-4, "mass conservation");
        assert!(out.catalog_text.contains("# halos:"));
    }

    #[test]
    fn runs_are_bitwise_reproducible() {
        let a = app();
        let o1 = a.run(&MemFs::new()).unwrap();
        let o2 = a.run(&MemFs::new()).unwrap();
        assert_eq!(o1.catalog_text, o2.catalog_text);
        assert_eq!(a.classify(&o1, &o2), Outcome::Benign);
    }

    #[test]
    fn classification_rules() {
        let a = app();
        let golden = a.run(&MemFs::new()).unwrap();

        // Differ + no halos -> detected.
        let empty = NyxOutput {
            catalog_text: "# halos: 0\n# id x y z cells mass\n".into(),
            catalog: crate::halo::HaloCatalog {
                mean: f64::NAN,
                threshold: f64::NAN,
                candidate_cells: 0,
                halos: vec![],
            },
            field: None,
            dims: golden.dims,
            extra: vec![],
        };
        assert_eq!(a.classify(&golden, &empty), Outcome::Detected);

        // Differ + halos present -> SDC.
        let mut altered = golden.clone();
        altered.catalog_text.push('x');
        assert_eq!(a.classify(&golden, &altered), Outcome::Sdc);
    }

    #[test]
    fn keep_field_exposes_values() {
        let a = NyxApp::new(NyxConfig {
            field: FieldConfig { n: 16, ..Default::default() },
            keep_field: true,
            ..Default::default()
        });
        let out = a.run(&MemFs::new()).unwrap();
        let f = out.field.as_ref().unwrap();
        assert_eq!(f.len(), 16 * 16 * 16);
        assert_eq!(out.dims, [16, 16, 16]);
    }

    #[test]
    fn describe_matches_table_ii() {
        let (name, domain, method) = NyxApp::describe();
        assert_eq!(name, "Nyx");
        assert_eq!(domain, "Astrophysics");
        assert!(method.contains("cosmological"));
    }

    #[test]
    fn plotfile_filter_addresses_the_plotfile_only() {
        let f = NyxApp::plotfile_filter();
        assert!(f.matches(Some(PLOTFILE)));
        assert!(!f.matches(Some("/run/notes.txt")));
        assert!(!f.matches(None));
        // ...and every numbered snapshot of a multi-plotfile run.
        assert!(f.matches(Some(&plotfile_path(3))));
    }

    #[test]
    fn single_plotfile_declares_no_substeps() {
        assert_eq!(plotfile_path(0), PLOTFILE);
        assert!(NyxApp::paper_default().analyze_substeps().is_none());
    }

    #[test]
    fn multi_plotfile_substeps_match_whole_analyze() {
        let a = NyxApp::new(NyxConfig {
            field: FieldConfig { n: 24, ..Default::default() },
            plotfiles: 3,
            ..Default::default()
        });
        let specs = a.analyze_substeps().unwrap();
        assert_eq!(specs.len(), 3);
        assert!(specs[1].reads(&plotfile_path(1)));
        assert!(!specs[1].reads(PLOTFILE));

        let fs = MemFs::new();
        a.produce(&fs).unwrap();
        let whole = a.analyze(&fs, None).unwrap();
        assert_eq!(whole.extra.len(), 2);
        // Distinct seeds: the snapshots carry different catalogs.
        assert_ne!(whole.catalog_text, whole.extra[0].0);

        let arts: Vec<Vec<u8>> = (0..3).map(|k| a.analyze_substep(&fs, k, None).unwrap()).collect();
        let asm = a.assemble(&arts, None).unwrap();
        assert_eq!(whole.catalog_text, asm.catalog_text);
        assert_eq!(whole.dims, asm.dims);
        for ((gt, gc), (at, ac)) in whole.extra.iter().zip(&asm.extra) {
            assert_eq!(gt, at);
            assert_eq!(gc.render(), ac.render());
        }
        assert_eq!(a.classify(&whole, &asm), Outcome::Benign);
    }

    #[test]
    fn multi_plotfile_classify_keys_on_first_differing_snapshot() {
        let a = NyxApp::new(NyxConfig {
            field: FieldConfig { n: 16, ..Default::default() },
            plotfiles: 2,
            ..Default::default()
        });
        let golden = a.run(&MemFs::new()).unwrap();
        let mut faulty = golden.clone();
        faulty.extra[0].0.push('x');
        assert_eq!(a.classify(&golden, &faulty), Outcome::Sdc);
        faulty.extra[0].1.halos.clear();
        assert_eq!(a.classify(&golden, &faulty), Outcome::Detected);
    }
}
