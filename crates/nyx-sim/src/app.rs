//! The Nyx workload as a [`FaultApp`] (paper §IV-C.1).
//!
//! One run = simulate (deterministic field generation, done once and
//! cached — faults target the I/O path, not the physics), write the
//! plotfile through the filesystem under test using the HDF5 creation
//! protocol, read it back, and run the halo finder.
//!
//! Outcome classification (verbatim from the paper): "we compare the
//! output of the halo finder ... of the fault injected case with the
//! original output. If they are bit-wise identical, they are
//! classified as benign. If they differ, and there is no halo found,
//! the cases are detected and otherwise they are the SDC."

use ffis_core::{FaultApp, Outcome};
use ffis_vfs::FileSystem;
use hdf5lite::{Dataset, FileBuilder, WriteOptions};

use crate::field::{generate, FieldConfig};
use crate::halo::{find_halos, HaloCatalog, HaloFinderConfig};

/// Path of the plotfile within the mount.
pub const PLOTFILE: &str = "/run/plt00000.h5";

/// Dataset path inside the plotfile (the real Nyx layout).
pub const DATASET: &str = "/native_fields/baryon_density";

/// Nyx workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct NyxConfig {
    /// Field generation parameters.
    pub field: FieldConfig,
    /// Halo finder parameters.
    pub finder: HaloFinderConfig,
    /// Keep the decoded field in the output (needed by the Figure 5/6
    /// visualizations; campaigns leave it off to save memory).
    pub keep_field: bool,
    /// Raw-data bytes per `pwrite`. Real HDF5 stages contiguous raw
    /// data through a sieve buffer (64 KiB by default), so each
    /// filesystem-level write carries many 4 KiB blocks; a DROPPED
    /// WRITE then erases a macroscopic slab of the field while a
    /// SHORN WRITE still tears only one 512 B-granular block tail —
    /// the size asymmetry behind the paper's "DW = 100% SDC vs SW =
    /// 100% benign" contrast.
    pub write_chunk: usize,
    /// Seal the plotfile metadata with a Fletcher-32 checksum
    /// (reproduction extension; quantifies how much of the paper's
    /// metadata SDC exposure a checksummed format removes).
    pub seal_metadata: bool,
    /// Re-run the (deterministic) field simulation inside every
    /// [`FaultApp::produce`], as the real application binary would — the
    /// paper's injection runs execute Nyx end-to-end, simulation
    /// included. Off by default: storage-path-only experiments may
    /// share the cached field, but replay-vs-rerun comparisons should
    /// enable this to charge the legacy path its true per-run cost.
    pub resimulate: bool,
}

impl Default for NyxConfig {
    fn default() -> Self {
        NyxConfig {
            field: FieldConfig::default(),
            finder: HaloFinderConfig::default(),
            keep_field: false,
            write_chunk: ffis_vfs::BLOCK_SIZE,
            seal_metadata: false,
            resimulate: false,
        }
    }
}

impl NyxConfig {
    /// Paper-regime preset: a grid large enough that (i) data writes
    /// vastly outnumber the metadata write (so crash rates stay near
    /// zero, as in Figure 7), (ii) a dropped 64 KiB sieve write always
    /// clips halo cells (DW → SDC), and (iii) a torn 512 B window
    /// almost never does (SW → benign).
    pub fn paper_scale() -> Self {
        NyxConfig {
            field: FieldConfig { n: 96, sigma: 1.8, smooth_passes: 3, ..Default::default() },
            finder: HaloFinderConfig::default(),
            keep_field: false,
            write_chunk: 64 * 1024,
            seal_metadata: false,
            resimulate: false,
        }
    }
}

/// Everything classification (and the deeper Table IV analyses) needs.
#[derive(Debug, Clone)]
pub struct NyxOutput {
    /// Rendered halo catalog (the bitwise-comparison artifact).
    pub catalog_text: String,
    /// Structured catalog.
    pub catalog: HaloCatalog,
    /// Decoded field, when `keep_field` is set.
    pub field: Option<Vec<f64>>,
    /// Grid dims.
    pub dims: [usize; 3],
}

/// The Nyx application.
#[derive(Debug, Clone)]
pub struct NyxApp {
    config: NyxConfig,
    /// The simulated field, generated once (deterministic physics;
    /// the experiment perturbs only the storage path).
    field: Vec<f32>,
}

impl NyxApp {
    /// Build the app, running the (deterministic) simulation once.
    pub fn new(config: NyxConfig) -> Self {
        let field = generate(&config.field);
        NyxApp { config, field }
    }

    /// Paper-defaults app.
    pub fn paper_default() -> Self {
        Self::new(NyxConfig::default())
    }

    /// Grid side length.
    pub fn n(&self) -> usize {
        self.config.field.n
    }

    /// The pristine simulated field (f32, as written).
    pub fn simulated_field(&self) -> &[f32] {
        &self.field
    }

    /// Table II row.
    pub fn describe() -> (&'static str, &'static str, &'static str) {
        ("Nyx", "Astrophysics", "Adaptive mesh refinement (AMR) based cosmological simulation")
    }

    /// Fault-target filter scoping injections to the HDF5 plotfile —
    /// the workload's sole storage artifact, and the file the halo
    /// finder reads back, so the same filter addresses both write-site
    /// and read-site campaigns.
    pub fn plotfile_filter() -> ffis_core::TargetFilter {
        ffis_core::TargetFilter::PathSuffix(".h5".into())
    }

    /// The byte-exact metadata field map of the plotfile this app
    /// writes (paper §IV-D: "we refer to the HDF5 File Format
    /// Specification to capture the field information of each metadata
    /// byte"). Derived from the same builder the app uses, so it is
    /// correct by construction.
    pub fn metadata_spans(&self) -> Vec<hdf5lite::Span> {
        let n = self.config.field.n;
        let mut b = FileBuilder::new();
        b.add_dataset(DATASET, Dataset::f32("baryon_density", &[n as u64; 3], &self.field))
            .expect("same tree as run()");
        let plan = hdf5lite::plan(&b.into_root()).expect("plannable");
        let (_, spans) = hdf5lite::encode_metadata(&plan);
        spans
    }

    /// Size of the packed metadata block (== the correct ARD).
    pub fn metadata_size(&self) -> u64 {
        self.metadata_spans().last().map(|s| s.end).unwrap_or(0)
    }
}

impl NyxApp {
    /// The post-analysis half of a run: read the plotfile back through
    /// `fs` and run the halo finder — the body of
    /// [`FaultApp::analyze`], whether the plotfile was written by the
    /// produce phase or rebuilt by golden-trace replay.
    fn read_back(&self, fs: &dyn FileSystem) -> Result<NyxOutput, String> {
        let info = hdf5lite::read_dataset(fs, PLOTFILE, DATASET).map_err(|e| e.to_string())?;
        if info.dims.len() != 3 {
            return Err(format!("unexpected rank {}", info.dims.len()));
        }
        let dims = [info.dims[0] as usize, info.dims[1] as usize, info.dims[2] as usize];
        let catalog = find_halos(&info.values, dims, &self.config.finder);
        Ok(NyxOutput {
            catalog_text: catalog.render(),
            catalog,
            field: self.config.keep_field.then_some(info.values),
            dims,
        })
    }
}

impl FaultApp for NyxApp {
    type Output = NyxOutput;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        let n = self.config.field.n;
        // The simulation phase: deterministic, so by default each run
        // reuses the cached field; `resimulate` re-executes it the way
        // the real application binary would in every injection run.
        let resimulated;
        let field: &[f32] = if self.config.resimulate {
            resimulated = generate(&self.config.field);
            &resimulated
        } else {
            &self.field
        };
        // Write the plotfile through the (possibly fault-injected)
        // filesystem, exactly as the HDF5 library would.
        fs.mkdir("/run", 0o755).map_err(|e| e.to_string())?;
        let mut b = FileBuilder::new();
        b.add_dataset(DATASET, Dataset::f32("baryon_density", &[n as u64; 3], field))
            .map_err(|e| e.to_string())?;
        let opts = WriteOptions {
            chunk_size: self.config.write_chunk,
            seal_metadata: self.config.seal_metadata,
        };
        hdf5lite::write_file(fs, PLOTFILE, &b.into_root(), &opts).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&NyxOutput>,
    ) -> Result<NyxOutput, String> {
        self.read_back(fs)
    }

    fn classify(&self, golden: &NyxOutput, faulty: &NyxOutput) -> Outcome {
        if golden.catalog_text == faulty.catalog_text {
            Outcome::Benign
        } else if faulty.catalog.halos.is_empty() {
            Outcome::Detected
        } else {
            Outcome::Sdc
        }
    }

    /// Nyx's produce phase streams the plotfile out and never reads it
    /// back — the halo finder's read-back lives entirely in
    /// [`FaultApp::analyze`] — so every read-site fault is an
    /// analyze-phase fault, eligible for the analyze-only fast path.
    fn produce_read_count(&self) -> Option<u64> {
        Some(0)
    }

    fn name(&self) -> String {
        "NYX".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    fn app() -> NyxApp {
        NyxApp::new(NyxConfig {
            field: FieldConfig { n: 24, ..Default::default() },
            ..Default::default()
        })
    }

    #[test]
    fn golden_run_finds_halos() {
        let a = app();
        let fs = MemFs::new();
        let out = a.run(&fs).unwrap();
        assert!(
            !out.catalog.halos.is_empty(),
            "default config must yield halos (candidates: {})",
            out.catalog.candidate_cells
        );
        assert!((out.catalog.mean - 1.0).abs() < 1e-4, "mass conservation");
        assert!(out.catalog_text.contains("# halos:"));
    }

    #[test]
    fn runs_are_bitwise_reproducible() {
        let a = app();
        let o1 = a.run(&MemFs::new()).unwrap();
        let o2 = a.run(&MemFs::new()).unwrap();
        assert_eq!(o1.catalog_text, o2.catalog_text);
        assert_eq!(a.classify(&o1, &o2), Outcome::Benign);
    }

    #[test]
    fn classification_rules() {
        let a = app();
        let golden = a.run(&MemFs::new()).unwrap();

        // Differ + no halos -> detected.
        let empty = NyxOutput {
            catalog_text: "# halos: 0\n# id x y z cells mass\n".into(),
            catalog: crate::halo::HaloCatalog {
                mean: f64::NAN,
                threshold: f64::NAN,
                candidate_cells: 0,
                halos: vec![],
            },
            field: None,
            dims: golden.dims,
        };
        assert_eq!(a.classify(&golden, &empty), Outcome::Detected);

        // Differ + halos present -> SDC.
        let mut altered = golden.clone();
        altered.catalog_text.push('x');
        assert_eq!(a.classify(&golden, &altered), Outcome::Sdc);
    }

    #[test]
    fn keep_field_exposes_values() {
        let a = NyxApp::new(NyxConfig {
            field: FieldConfig { n: 16, ..Default::default() },
            keep_field: true,
            ..Default::default()
        });
        let out = a.run(&MemFs::new()).unwrap();
        let f = out.field.as_ref().unwrap();
        assert_eq!(f.len(), 16 * 16 * 16);
        assert_eq!(out.dims, [16, 16, 16]);
    }

    #[test]
    fn describe_matches_table_ii() {
        let (name, domain, method) = NyxApp::describe();
        assert_eq!(name, "Nyx");
        assert_eq!(domain, "Astrophysics");
        assert!(method.contains("cosmological"));
    }

    #[test]
    fn plotfile_filter_addresses_the_plotfile_only() {
        let f = NyxApp::plotfile_filter();
        assert!(f.matches(Some(PLOTFILE)));
        assert!(!f.matches(Some("/run/notes.txt")));
        assert!(!f.matches(None));
    }
}
