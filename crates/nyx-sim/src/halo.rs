//! Friends-of-Friends halo finder (the paper's HALO FINDER post-analysis).
//!
//! "The halo-finder algorithm searches for the halos from all the
//! simulated data, with the following two criteria: (1) the mass of an
//! object(s) must be greater than a threshold (e.g., 81.66 times the
//! average mass of the whole dataset) to become a halo cell candidate,
//! and (2) there must be enough halo cell candidates in a certain area
//! to form a halo." (§V-B)
//!
//! The threshold is *relative to the dataset mean* — the property that
//! drives the paper's entire Nyx outcome taxonomy: a single wildly
//! corrupted cell inflates the mean, scales the threshold past every
//! cell, and yields the "no halos found → detected" case; a uniform
//! power-of-two scale (faulty Exponent Bias) leaves candidacy intact
//! but scales every halo mass (SDC); moderate local damage is simply
//! absorbed (benign).

/// Halo finder parameters.
#[derive(Debug, Clone, Copy)]
pub struct HaloFinderConfig {
    /// Candidate threshold as a multiple of the dataset mean
    /// (paper value: 81.66).
    pub threshold_factor: f64,
    /// Minimum connected candidate cells to form a halo.
    pub min_cells: u32,
}

impl Default for HaloFinderConfig {
    fn default() -> Self {
        HaloFinderConfig { threshold_factor: 81.66, min_cells: 2 }
    }
}

/// One identified halo.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Centre of mass (grid coordinates).
    pub center: [f64; 3],
    /// Number of member cells.
    pub cells: u32,
    /// Total mass (sum of member densities).
    pub mass: f64,
}

/// Full halo-finder result.
#[derive(Debug, Clone)]
pub struct HaloCatalog {
    /// Dataset mean used for the threshold.
    pub mean: f64,
    /// Absolute candidate threshold (`mean × factor`).
    pub threshold: f64,
    /// Number of candidate cells (Figure 6's boxes).
    pub candidate_cells: u64,
    /// Halos, sorted by descending mass then centre (deterministic).
    pub halos: Vec<Halo>,
}

impl HaloCatalog {
    /// Render the catalog in the fixed text format used for bitwise
    /// output comparison (the paper compares halo-finder outputs
    /// byte-for-byte to decide *benign*).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("# halos: {}\n", self.halos.len()));
        s.push_str("# id x y z cells mass\n");
        for (i, h) in self.halos.iter().enumerate() {
            s.push_str(&format!(
                "{} {:.6e} {:.6e} {:.6e} {} {:.6e}\n",
                i, h.center[0], h.center[1], h.center[2], h.cells, h.mass
            ));
        }
        s
    }
}

/// The candidate mask: true where a cell exceeds the threshold. Used
/// directly for the Figure 6 visualization.
pub fn candidate_mask(values: &[f64], threshold: f64) -> Vec<bool> {
    values.iter().map(|&v| v >= threshold && v.is_finite()).collect()
}

/// Run the Friends-of-Friends finder on a `dims[0]×dims[1]×dims[2]`
/// row-major grid (x fastest). 6-connectivity, non-periodic linking.
pub fn find_halos(values: &[f64], dims: [usize; 3], cfg: &HaloFinderConfig) -> HaloCatalog {
    let len = dims[0] * dims[1] * dims[2];
    assert_eq!(values.len(), len, "grid/dims mismatch");
    let mean = if len == 0 { 0.0 } else { values.iter().sum::<f64>() / len as f64 };
    let threshold = mean * cfg.threshold_factor;
    let mask = candidate_mask(values, threshold);
    let candidate_cells = mask.iter().filter(|&&m| m).count() as u64;

    let (nx, ny, nz) = (dims[0], dims[1], dims[2]);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut visited = vec![false; len];
    let mut halos: Vec<Halo> = Vec::new();
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i0 = idx(x, y, z);
                if !mask[i0] || visited[i0] {
                    continue;
                }
                // Flood-fill one connected component.
                stack.clear();
                stack.push((x, y, z));
                visited[i0] = true;
                let mut cells = 0u32;
                let mut mass = 0.0f64;
                let mut com = [0.0f64; 3];
                while let Some((cx, cy, cz)) = stack.pop() {
                    let ci = idx(cx, cy, cz);
                    let v = values[ci];
                    cells += 1;
                    mass += v;
                    com[0] += v * cx as f64;
                    com[1] += v * cy as f64;
                    com[2] += v * cz as f64;
                    let mut push = |nx_: usize, ny_: usize, nz_: usize| {
                        let ni = idx(nx_, ny_, nz_);
                        if mask[ni] && !visited[ni] {
                            visited[ni] = true;
                            stack.push((nx_, ny_, nz_));
                        }
                    };
                    if cx > 0 {
                        push(cx - 1, cy, cz);
                    }
                    if cx + 1 < nx {
                        push(cx + 1, cy, cz);
                    }
                    if cy > 0 {
                        push(cx, cy - 1, cz);
                    }
                    if cy + 1 < ny {
                        push(cx, cy + 1, cz);
                    }
                    if cz > 0 {
                        push(cx, cy, cz - 1);
                    }
                    if cz + 1 < nz {
                        push(cx, cy, cz + 1);
                    }
                }
                if cells >= cfg.min_cells && mass > 0.0 {
                    halos.push(Halo {
                        center: [com[0] / mass, com[1] / mass, com[2] / mass],
                        cells,
                        mass,
                    });
                }
            }
        }
    }

    // Deterministic ordering: heaviest first, centre as tiebreak.
    halos.sort_by(|a, b| {
        b.mass
            .partial_cmp(&a.mass)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.center.partial_cmp(&b.center).unwrap_or(std::cmp::Ordering::Equal))
    });
    HaloCatalog { mean, threshold, candidate_cells, halos }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_grid(dims: [usize; 3], v: f64) -> Vec<f64> {
        vec![v; dims[0] * dims[1] * dims[2]]
    }

    #[test]
    fn empty_background_has_no_halos() {
        let g = uniform_grid([8, 8, 8], 1.0);
        let cat = find_halos(&g, [8, 8, 8], &HaloFinderConfig::default());
        assert_eq!(cat.halos.len(), 0);
        assert_eq!(cat.candidate_cells, 0);
        assert!((cat.mean - 1.0).abs() < 1e-12);
        assert!((cat.threshold - 81.66).abs() < 1e-9);
    }

    #[test]
    fn single_blob_found_with_mass_and_center() {
        let dims = [16, 16, 16];
        let mut g = uniform_grid(dims, 1.0);
        let idx = |x: usize, y: usize, z: usize| (z * 16 + y) * 16 + x;
        // A 3-cell line of huge density at (5..8, 6, 7).
        for x in 5..8 {
            g[idx(x, 6, 7)] = 2000.0;
        }
        let cat = find_halos(&g, dims, &HaloFinderConfig::default());
        assert_eq!(cat.candidate_cells, 3);
        assert_eq!(cat.halos.len(), 1);
        let h = &cat.halos[0];
        assert_eq!(h.cells, 3);
        assert!((h.mass - 6000.0).abs() < 1e-6);
        assert!((h.center[0] - 6.0).abs() < 1e-9);
        assert!((h.center[1] - 6.0).abs() < 1e-9);
        assert!((h.center[2] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn min_cells_filters_isolated_candidates() {
        let dims = [8, 8, 8];
        let mut g = uniform_grid(dims, 1.0);
        g[0] = 5000.0; // single isolated candidate
        let cfg = HaloFinderConfig { min_cells: 2, ..Default::default() };
        let cat = find_halos(&g, dims, &cfg);
        assert_eq!(cat.candidate_cells, 1);
        assert_eq!(cat.halos.len(), 0);
        let cfg1 = HaloFinderConfig { min_cells: 1, ..Default::default() };
        assert_eq!(find_halos(&g, dims, &cfg1).halos.len(), 1);
    }

    #[test]
    fn diagonal_cells_are_not_linked() {
        let dims = [8, 8, 8];
        let mut g = uniform_grid(dims, 1.0);
        let idx = |x: usize, y: usize, z: usize| (z * 8 + y) * 8 + x;
        g[idx(2, 2, 2)] = 3000.0;
        g[idx(3, 3, 2)] = 3000.0; // diagonal neighbour
        let cfg = HaloFinderConfig { min_cells: 1, ..Default::default() };
        let cat = find_halos(&g, dims, &cfg);
        assert_eq!(cat.halos.len(), 2, "6-connectivity must not link diagonals");
    }

    #[test]
    fn two_halos_sorted_by_mass() {
        let dims = [16, 16, 16];
        let mut g = uniform_grid(dims, 1.0);
        let idx = |x: usize, y: usize, z: usize| (z * 16 + y) * 16 + x;
        for x in 0..2 {
            g[idx(x, 0, 0)] = 2000.0;
        }
        for x in 8..12 {
            g[idx(x, 8, 8)] = 2000.0;
        }
        let cat = find_halos(&g, dims, &HaloFinderConfig::default());
        assert_eq!(cat.halos.len(), 2);
        assert!(cat.halos[0].mass > cat.halos[1].mass);
        assert_eq!(cat.halos[0].cells, 4);
    }

    #[test]
    fn mean_scaling_preserves_halos_but_scales_mass() {
        // The Exponent-Bias SDC signature (Fig. 5b): a global power-of
        // -two scale leaves locations intact and scales the masses.
        let dims = [16, 16, 16];
        let mut g = uniform_grid(dims, 1.0);
        let idx = |x: usize, y: usize, z: usize| (z * 16 + y) * 16 + x;
        for x in 4..7 {
            g[idx(x, 5, 5)] = 1500.0;
        }
        let base = find_halos(&g, dims, &HaloFinderConfig::default());
        let scaled: Vec<f64> = g.iter().map(|v| v * 4096.0).collect();
        let cat = find_halos(&scaled, dims, &HaloFinderConfig::default());
        assert_eq!(cat.halos.len(), base.halos.len());
        assert_eq!(cat.halos[0].center, base.halos[0].center);
        assert_eq!(cat.halos[0].cells, base.halos[0].cells);
        assert!((cat.halos[0].mass / base.halos[0].mass - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn one_huge_corruption_erases_all_halos() {
        // The BIT FLIP "detected" mechanism: one cell at 2^100 drags
        // the mean (and threshold) past every legitimate halo cell.
        let dims = [16, 16, 16];
        let mut g = uniform_grid(dims, 1.0);
        let idx = |x: usize, y: usize, z: usize| (z * 16 + y) * 16 + x;
        for x in 4..7 {
            g[idx(x, 5, 5)] = 1500.0;
        }
        assert_eq!(find_halos(&g, dims, &HaloFinderConfig::default()).halos.len(), 1);
        g[0] = 2f64.powi(100);
        let cat = find_halos(&g, dims, &HaloFinderConfig::default());
        assert_eq!(cat.halos.len(), 0, "threshold scaled past all cells");
    }

    #[test]
    fn nan_poisoning_yields_no_halos() {
        let dims = [8, 8, 8];
        let mut g = uniform_grid(dims, 1.0);
        g[10] = f64::NAN;
        let cat = find_halos(&g, dims, &HaloFinderConfig::default());
        assert_eq!(cat.halos.len(), 0);
        assert_eq!(cat.candidate_cells, 0);
    }

    #[test]
    fn render_is_deterministic_and_parsable() {
        let dims = [16, 16, 16];
        let mut g = uniform_grid(dims, 1.0);
        for x in 4..7 {
            g[(5 * 16 + 5) * 16 + x] = 1500.0;
        }
        let a = find_halos(&g, dims, &HaloFinderConfig::default()).render();
        let b = find_halos(&g, dims, &HaloFinderConfig::default()).render();
        assert_eq!(a, b);
        assert!(a.starts_with("# halos: 1\n"));
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn candidate_mask_matches_threshold() {
        let g = [1.0, 100.0, 81.0, 82.0];
        let mask = candidate_mask(&g, 81.66);
        assert_eq!(mask, vec![false, true, false, true]);
    }
}
