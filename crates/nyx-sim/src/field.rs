//! Synthetic baryon-density field generation.
//!
//! Nyx evolves baryonic gas on a 3-D Eulerian mesh; its plotfiles
//! carry a `baryon_density` field whose distribution is close to
//! log-normal (the standard approximation for the cosmic density
//! field) and whose mean is pinned to 1.0 in code units by mass
//! conservation — the invariant the paper's average-value detection
//! method builds on (§V-A).
//!
//! The generator draws a white Gaussian field, smooths it with a
//! separable box filter to introduce the spatial correlation that
//! makes over-densities *clump* (so the Friends-of-Friends finder has
//! halos to find), exponentiates, and normalizes the mean to exactly
//! 1.0 (in f32, matching what the file stores).

use ffis_core::Rng;

/// Field generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FieldConfig {
    /// Grid side length (the field is `n³`).
    pub n: usize,
    /// RNG seed (field is fully determined by the config).
    pub seed: u64,
    /// Log-normal σ — controls how heavy the over-density tail is and
    /// therefore how rare halo-candidate cells are.
    pub sigma: f64,
    /// Box-smoothing passes (each pass averages the 6-neighbourhood).
    pub smooth_passes: usize,
}

impl Default for FieldConfig {
    fn default() -> Self {
        FieldConfig { n: 32, seed: 0x4E59_5821, sigma: 2.2, smooth_passes: 3 }
    }
}

/// Generate the baryon-density grid (row-major, `x` fastest).
///
/// The returned values are f32-quantized (the precision the HDF5 file
/// stores) and their f64 mean is ≈ 1.0 to within f32 rounding.
pub fn generate(cfg: &FieldConfig) -> Vec<f32> {
    let n = cfg.n;
    let len = n * n * n;
    let mut rng = Rng::seed_from(cfg.seed);
    let mut g: Vec<f64> = (0..len).map(|_| rng.normal()).collect();

    // Separable 6-neighbour smoothing with periodic wrap: correlates
    // nearby cells so threshold crossings form connected clumps.
    let mut tmp = vec![0.0f64; len];
    for _ in 0..cfg.smooth_passes {
        smooth_pass(&g, &mut tmp, n);
        std::mem::swap(&mut g, &mut tmp);
    }

    // Restore unit variance (smoothing shrinks it), then exponentiate.
    let mean_g: f64 = g.iter().sum::<f64>() / len as f64;
    let var_g: f64 = g.iter().map(|v| (v - mean_g) * (v - mean_g)).sum::<f64>() / len as f64;
    let inv_sd = if var_g > 0.0 { 1.0 / var_g.sqrt() } else { 1.0 };

    let mut rho: Vec<f64> = g.iter().map(|&v| (cfg.sigma * (v - mean_g) * inv_sd).exp()).collect();

    // Mass conservation: normalize the mean to exactly 1.
    let mean_rho: f64 = rho.iter().sum::<f64>() / len as f64;
    for v in &mut rho {
        *v /= mean_rho;
    }
    rho.iter().map(|&v| v as f32).collect()
}

fn smooth_pass(src: &[f64], dst: &mut [f64], n: usize) {
    let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
    let wrap = |v: usize, d: isize| -> usize { ((v as isize + d).rem_euclid(n as isize)) as usize };
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let c = src[idx(x, y, z)];
                let sum = src[idx(wrap(x, -1), y, z)]
                    + src[idx(wrap(x, 1), y, z)]
                    + src[idx(x, wrap(y, -1), z)]
                    + src[idx(x, wrap(y, 1), z)]
                    + src[idx(x, y, wrap(z, -1))]
                    + src[idx(x, y, wrap(z, 1))];
                dst[idx(x, y, z)] = 0.5 * c + 0.5 * (sum / 6.0);
            }
        }
    }
}

/// Mean of an f32 field in f64.
pub fn mean(values: &[f32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_one_by_mass_conservation() {
        let f = generate(&FieldConfig::default());
        let m = mean(&f);
        assert!((m - 1.0).abs() < 1e-5, "mean = {}", m);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&FieldConfig::default());
        let b = generate(&FieldConfig::default());
        assert_eq!(a, b);
        let c = generate(&FieldConfig { seed: 999, ..FieldConfig::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn all_positive_and_finite() {
        let f = generate(&FieldConfig::default());
        assert!(f.iter().all(|&v| v.is_finite() && v > 0.0));
    }

    #[test]
    fn overdensity_tail_exists_but_is_rare() {
        // The halo threshold is 81.66 × mean; candidate cells must
        // exist (halos to find) but be rare (so torn 512-byte windows
        // rarely touch one — the paper's Nyx SHORN WRITE = benign).
        let cfg = FieldConfig { n: 48, ..FieldConfig::default() };
        let f = generate(&cfg);
        let m = mean(&f);
        let candidates = f.iter().filter(|&&v| (v as f64) >= 81.66 * m).count();
        let frac = candidates as f64 / f.len() as f64;
        assert!(candidates > 0, "no halo candidates at all");
        assert!(frac < 0.005, "candidate fraction {} too high", frac);
    }

    #[test]
    fn smoothing_creates_spatial_correlation() {
        let cfg = FieldConfig::default();
        let f = generate(&cfg);
        let n = cfg.n;
        let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
        // Correlation between neighbours should beat distant pairs.
        let mut num_nb = 0.0;
        let mut num_far = 0.0;
        let mut count = 0.0;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n - 1 {
                    let a = (f[idx(x, y, z)] as f64).ln();
                    let b = (f[idx(x + 1, y, z)] as f64).ln();
                    let c = (f[idx((x + n / 2) % n, y, z)] as f64).ln();
                    num_nb += a * b;
                    num_far += a * c;
                    count += 1.0;
                }
            }
        }
        assert!(num_nb / count > num_far / count, "no neighbour correlation");
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
