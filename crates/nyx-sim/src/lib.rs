//! # nyx-sim — the Nyx cosmology workload (paper §IV-C.1)
//!
//! A behaviourally faithful, laptop-scale stand-in for Nyx \[28\]: a
//! deterministic log-normal baryon-density field with its mean pinned
//! to 1.0 by mass conservation, written as an HDF5 plotfile
//! (`/native_fields/baryon_density`) through the filesystem under
//! test, followed by the HALO FINDER post-analysis (Friends-of-
//! Friends, threshold 81.66 × the dataset mean).
//!
//! The paper's Nyx outcome taxonomy emerges from the threshold's
//! *mean-relative* definition:
//!
//! * a violent single-cell corruption inflates the mean → threshold
//!   scales past every cell → **no halos → detected**;
//! * stale similar-magnitude data (shorn writes) stays far below the
//!   81.66× threshold → **benign**;
//! * a dropped 4 KiB block zeroes ~1k cells → mean (and threshold)
//!   sag → halo membership shifts → **SDC**, but always caught by the
//!   average-value method ([`protect`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod field;
pub mod halo;
pub mod protect;

pub use app::{plotfile_path, NyxApp, NyxConfig, NyxOutput, DATASET, PLOTFILE};
pub use field::{generate, FieldConfig};
pub use halo::{candidate_mask, find_halos, Halo, HaloCatalog, HaloFinderConfig};
pub use protect::{mean_check_fails, protected_classify, MEAN_TOLERANCE};
