//! The average-value-based protection method (paper §V-A / §V-B).
//!
//! "Although DROPPED WRITE has a 100% of SDC rate, all the SDC cases
//! in our experiment can be detected by using the average value,
//! because the average value is reduced by at least 0.1% (e.g., less
//! than 0.9983) for all the SDC cases. Thus, we recommend Nyx users to
//! keep using the average-value-based method to protect the data from
//! storage faults with respect to halo-finder analysis."
//!
//! [`protected_classify`] wraps the standard Nyx classification with
//! that detector: any run whose dataset mean deviates from the
//! conservation-law value by more than the tolerance is *detected*
//! rather than silent. The `repro protect` harness shows Figure 7's
//! note — "all SDC cases with Nyx will be changed to detected cases
//! after using the average-value-based method".

use ffis_core::Outcome;

use crate::app::NyxOutput;

/// Relative mean-deviation tolerance (paper: 0.1%).
pub const MEAN_TOLERANCE: f64 = 1e-3;

/// Does the average-value detector fire on this output?
pub fn mean_check_fails(golden: &NyxOutput, faulty: &NyxOutput, tol: f64) -> bool {
    let g = golden.catalog.mean;
    let f = faulty.catalog.mean;
    if !f.is_finite() || g == 0.0 {
        return true;
    }
    (f / g - 1.0).abs() > tol
}

/// Classify with the average-value protection layered on top of the
/// paper's standard Nyx rules.
pub fn protected_classify(golden: &NyxOutput, faulty: &NyxOutput, tol: f64) -> Outcome {
    if golden.catalog_text == faulty.catalog_text {
        return Outcome::Benign;
    }
    if mean_check_fails(golden, faulty, tol) {
        return Outcome::Detected;
    }
    if faulty.catalog.halos.is_empty() {
        Outcome::Detected
    } else {
        Outcome::Sdc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::{Halo, HaloCatalog};

    fn output(mean: f64, text: &str, nhalos: usize) -> NyxOutput {
        NyxOutput {
            catalog_text: text.to_string(),
            catalog: HaloCatalog {
                mean,
                threshold: mean * 81.66,
                candidate_cells: nhalos as u64 * 3,
                halos: (0..nhalos)
                    .map(|i| Halo { center: [i as f64; 3], cells: 3, mass: 300.0 })
                    .collect(),
            },
            field: None,
            dims: [8, 8, 8],
            extra: vec![],
        }
    }

    #[test]
    fn identical_stays_benign() {
        let g = output(1.0, "catalog", 2);
        let f = output(1.0, "catalog", 2);
        assert_eq!(protected_classify(&g, &f, MEAN_TOLERANCE), Outcome::Benign);
    }

    #[test]
    fn mean_shift_converts_sdc_to_detected() {
        let g = output(1.0, "catalog", 2);
        // A dropped write: mean reduced 0.3%, halos still found, text
        // differs — unprotected classification would call this SDC.
        let f = output(0.997, "catalog'", 2);
        assert_eq!(protected_classify(&g, &f, MEAN_TOLERANCE), Outcome::Detected);
    }

    #[test]
    fn small_mean_drift_within_tolerance_still_sdc() {
        let g = output(1.0, "catalog", 2);
        let f = output(1.0 + 2e-5, "catalog'", 2);
        assert_eq!(protected_classify(&g, &f, MEAN_TOLERANCE), Outcome::Sdc);
    }

    #[test]
    fn nan_mean_is_detected() {
        let g = output(1.0, "catalog", 2);
        let f = output(f64::NAN, "catalog'", 2);
        assert!(mean_check_fails(&g, &f, MEAN_TOLERANCE));
        assert_eq!(protected_classify(&g, &f, MEAN_TOLERANCE), Outcome::Detected);
    }

    #[test]
    fn no_halos_detected_regardless_of_mean() {
        let g = output(1.0, "catalog", 2);
        let f = output(1.0, "catalog'", 0);
        assert_eq!(protected_classify(&g, &f, MEAN_TOLERANCE), Outcome::Detected);
    }
}
