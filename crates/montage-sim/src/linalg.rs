//! Small dense linear algebra for the background-model solve.
//!
//! mBgModel determines per-image background planes by least-squares
//! over the pairwise difference fits; the normal equations are a small
//! dense SPD system solved here by Gaussian elimination with partial
//! pivoting.

/// Solve `A x = b` in place. `a` is row-major `n×n`. Returns `None`
/// for (numerically) singular systems.
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix/vector size mismatch");
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in col + 1..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row * n + col] / a[col * n + col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Least-squares plane fit `v ≈ a + b·x + c·y` over sample points.
/// Returns `[a, b, c]`; `None` when the points are degenerate.
pub fn fit_plane(points: &[(f64, f64, f64)]) -> Option<[f64; 3]> {
    if points.len() < 3 {
        return None;
    }
    // Normal equations for the 3-parameter model.
    let mut ata = [0.0f64; 9];
    let mut atb = [0.0f64; 3];
    for &(x, y, v) in points {
        let row = [1.0, x, y];
        for i in 0..3 {
            for j in 0..3 {
                ata[i * 3 + j] += row[i] * row[j];
            }
            atb[i] += row[i] * v;
        }
    }
    let x = solve(ata.to_vec(), atb.to_vec())?;
    Some([x[0], x[1], x[2]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve(a, vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_3x3_known() {
        let a = vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = vec![8.0, -11.0, -3.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_is_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn fit_plane_exact() {
        let mut pts = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                pts.push((x as f64, y as f64, 2.5 + 0.3 * x as f64 - 0.7 * y as f64));
            }
        }
        let p = fit_plane(&pts).unwrap();
        assert!((p[0] - 2.5).abs() < 1e-9);
        assert!((p[1] - 0.3).abs() < 1e-9);
        assert!((p[2] + 0.7).abs() < 1e-9);
    }

    #[test]
    fn fit_plane_with_noise_recovers_coefficients() {
        let mut rng = ffis_core::Rng::seed_from(3);
        let mut pts = Vec::new();
        for x in 0..20 {
            for y in 0..20 {
                pts.push((
                    x as f64,
                    y as f64,
                    1.0 + 0.05 * x as f64 + 0.02 * y as f64 + 0.01 * rng.normal(),
                ));
            }
        }
        let p = fit_plane(&pts).unwrap();
        assert!((p[0] - 1.0).abs() < 0.01);
        assert!((p[1] - 0.05).abs() < 0.001);
        assert!((p[2] - 0.02).abs() < 0.001);
    }

    #[test]
    fn degenerate_plane_fits_rejected() {
        assert!(fit_plane(&[]).is_none());
        assert!(fit_plane(&[(0.0, 0.0, 1.0), (1.0, 0.0, 2.0)]).is_none());
        // Collinear points cannot constrain the y slope.
        let collinear: Vec<_> = (0..10).map(|i| (i as f64, 0.0, i as f64)).collect();
        assert!(fit_plane(&collinear).is_none());
    }
}
