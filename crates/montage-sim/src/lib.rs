//! # montage-sim — the Montage workload (paper §IV-C.3)
//!
//! A behaviourally faithful mosaic pipeline over a synthetic m101
//! field: ten overlapping observations with per-image instrumental
//! background planes are reprojected (mProjExec), pairwise differenced
//! (mDiffExec), background-matched through a least-squares plane model
//! (mBgExec), and co-added with area weighting (mAdd), before a final
//! stretch step produces the image whose `min` statistic drives the
//! paper's SDC/detected discrimination.
//!
//! Every stage communicates with the next through FITS files on the
//! fault-injected filesystem, so per-stage campaigns (Figure 7's
//! MT1..MT4 columns) observe how each stage bounds — or passes along —
//! injected storage faults. The plane-fitting in stage 2's consumers
//! averages over hundreds of pixels, which is why the paper finds
//! mDiffExec's SDC rate the lowest ("potentially ... mitigated in the
//! process of extracting coefficients").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod linalg;
pub mod sky;
pub mod stages;

pub use app::{MontageApp, MontageConfig, MontageOutput, Stage};
pub use linalg::{fit_plane, solve};
pub use sky::{SkyModel, Star, M101_DEC, M101_RA};
pub use stages::{
    apply_background, background_plane, coadd, diff_overlaps, fit_background, m_add, m_bg_exec,
    m_diff_exec, m_proj_exec, m_viewer, make_raw_images, mosaic_wcs, project_image, raw_wcs,
    stretch_mosaic, write_raws, FinalImage, PipelineConfig, FINAL_IMAGE, MOSAIC, MOSAIC_AREA,
};
