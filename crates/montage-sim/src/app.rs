//! The Montage workload as a [`FaultApp`] (paper §IV-C.3).
//!
//! One run executes the full ten-step-equivalent pipeline (we model
//! the four I/O-intensive stages the paper injects into, plus the
//! final image-generation step used for classification):
//! raw inputs → mProjExec → mDiffExec → mBgExec → mAdd → final image.
//!
//! Outcome classification (verbatim §IV-C.3): bitwise-compare the
//! final image with the golden one — identical ⇒ *benign*; otherwise
//! apply the `min`-value test with a 10⁻² threshold (the paper's
//! `[82.82, 82.83]` acceptance band): in-band ⇒ *SDC*, out-of-band ⇒
//! *detected*; "for the cases where the target file cannot be created,
//! they are defined as crash".
//!
//! Per-stage injection (Figure 7's MT1..MT4 columns) is expressed by
//! scoping the fault signature to the stage's output directory via
//! [`MontageApp::stage_filter`].

use ffis_core::{FaultApp, Outcome, SubstepSpec, TargetFilter};
use ffis_vfs::{FileSystem, FileSystemExt};
use fitslite::{parse_fits, render_fits, FitsImage};

use crate::stages::{
    apply_background, coadd, corr_area_path, corr_path, diff_overlaps, diff_path, fit_background,
    make_raw_images, proj_area_path, proj_path, project_image, raw_path, stretch_mosaic,
    FinalImage, PipelineConfig, FINAL_IMAGE, MOSAIC, MOSAIC_AREA,
};

/// Montage workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct MontageConfig {
    /// Pipeline parameters.
    pub pipeline: PipelineConfig,
    /// `min`-difference threshold separating SDC from detected
    /// (paper: 10⁻²).
    pub min_threshold: f64,
    /// Number of independent mosaic tiles (sky pointings). Each tile
    /// runs the full pipeline under its own `/tile<t>` directory
    /// prefix with a tile-specific sky seed; `1` (the default) keeps
    /// the legacy single-mosaic layout byte for byte. Multi-tile runs
    /// declare one analyze sub-step per tile, so campaigns memoize the
    /// tiles a fault cannot reach (incremental analyze).
    pub tiles: usize,
}

impl Default for MontageConfig {
    fn default() -> Self {
        MontageConfig { pipeline: PipelineConfig::default(), min_threshold: 1e-2, tiles: 1 }
    }
}

impl MontageConfig {
    /// Set the tile count (clamped to at least 1).
    pub fn with_tiles(mut self, tiles: usize) -> Self {
        self.tiles = tiles.max(1);
        self
    }
}

/// Classification artifacts.
#[derive(Debug, Clone)]
pub struct MontageOutput {
    /// Final stretched image of tile 0 (the legacy single-mosaic
    /// bitwise-comparison artifact).
    pub image: FinalImage,
    /// Final images of tiles `1..` (empty in the single-tile regime).
    pub extra_tiles: Vec<FinalImage>,
}

/// The golden pipeline, computed once at construction: for every file
/// the pipeline touches, both the exact serialized bytes a fault-free
/// execution writes (produce streams these; analyze compares read-back
/// bytes against them) and the parsed image a fault-free execution
/// would have *read back* before computing the next stage.
///
/// Compute always consumes the FITS-roundtripped form
/// (`parse(render(img))`), exactly as the monolithic pipeline consumed
/// `read_fits` of what it had just written — the WCS header cards
/// carry limited decimal precision, so skipping the roundtrip would
/// drift the downstream arithmetic off the reference trajectory.
struct GoldenPipeline {
    raw_bytes: Vec<Vec<u8>>,
    projs: Vec<(FitsImage, FitsImage)>,
    proj_bytes: Vec<(Vec<u8>, Vec<u8>)>,
    pairs: Vec<(usize, usize)>,
    diff_bytes: Vec<Vec<u8>>,
    corr_bytes: Vec<(Vec<u8>, Vec<u8>)>,
    mosaic_bytes: Vec<u8>,
    mosaic_area_bytes: Vec<u8>,
    image: FinalImage,
}

/// Serialize an image and parse it back: the bytes are what the
/// pipeline writes, the image is what the next stage reads.
fn roundtrip(img: &FitsImage) -> (Vec<u8>, FitsImage) {
    let bytes = render_fits(img).expect("golden images are well-formed");
    let rt = parse_fits(&bytes).expect("render/parse roundtrip");
    (bytes, rt)
}

impl GoldenPipeline {
    fn build(raws: &[FitsImage], cfg: &PipelineConfig) -> Result<GoldenPipeline, String> {
        let mut raw_bytes = Vec::new();
        let mut raws_rt = Vec::new();
        for r in raws {
            let (b, rt) = roundtrip(r);
            raw_bytes.push(b);
            raws_rt.push(rt);
        }

        let mut projs = Vec::new();
        let mut proj_bytes = Vec::new();
        for raw in &raws_rt {
            let (data, area) = project_image(raw, cfg);
            let (db, d) = roundtrip(&data);
            let (ab, a) = roundtrip(&area);
            projs.push((d, a));
            proj_bytes.push((db, ab));
        }

        let mut pairs = Vec::new();
        let mut diffs = Vec::new();
        let mut diff_bytes = Vec::new();
        for (pair, diff) in diff_overlaps(&projs, cfg)? {
            let (b, d) = roundtrip(&diff);
            pairs.push(pair);
            diffs.push(d);
            diff_bytes.push(b);
        }

        let planes = fit_background(&pairs, &diffs, cfg.n_images(), cfg)?;
        let mut corrs = Vec::new();
        let mut corr_bytes = Vec::new();
        for ((data, area), plane) in projs.iter().zip(&planes) {
            let corr = apply_background(data, *plane, cfg);
            let (cb, c) = roundtrip(&corr);
            let (ab, a) = roundtrip(area);
            corrs.push((c, a));
            corr_bytes.push((cb, ab));
        }

        let (mosaic, marea) = coadd(&corrs, cfg)?;
        let (mosaic_bytes, mosaic_rt) = roundtrip(&mosaic);
        let (mosaic_area_bytes, _) = roundtrip(&marea);
        let image = stretch_mosaic(&mosaic_rt)?;

        Ok(GoldenPipeline {
            raw_bytes,
            projs,
            proj_bytes,
            pairs,
            diff_bytes,
            corr_bytes,
            mosaic_bytes,
            mosaic_area_bytes,
            image,
        })
    }
}

/// The Montage application.
pub struct MontageApp {
    config: MontageConfig,
    /// Golden stage products, one pipeline per tile (see
    /// [`GoldenPipeline`]).
    golden: Vec<GoldenPipeline>,
}

/// The four instrumented stages, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// MT1 — mProjExec.
    ProjExec,
    /// MT2 — mDiffExec.
    DiffExec,
    /// MT3 — mBgExec.
    BgExec,
    /// MT4 — mAdd.
    Add,
}

impl Stage {
    /// All stages in order.
    pub const ALL: [Stage; 4] = [Stage::ProjExec, Stage::DiffExec, Stage::BgExec, Stage::Add];

    /// Figure 7 column label ("MT1"..."MT4").
    pub fn label(self) -> &'static str {
        match self {
            Stage::ProjExec => "MT1",
            Stage::DiffExec => "MT2",
            Stage::BgExec => "MT3",
            Stage::Add => "MT4",
        }
    }

    /// Montage executable name.
    pub fn tool(self) -> &'static str {
        match self {
            Stage::ProjExec => "mProjExec",
            Stage::DiffExec => "mDiffExec",
            Stage::BgExec => "mBgExec",
            Stage::Add => "mAdd",
        }
    }
}

impl MontageApp {
    /// Build the app: renders the deterministic raw observations and
    /// runs the golden pipeline once, in memory. Panics on a pipeline
    /// configuration whose golden run cannot complete (no workload to
    /// inject into) — use [`MontageApp::try_new`] to handle that case.
    pub fn new(config: MontageConfig) -> Self {
        Self::try_new(config).expect("golden pipeline must run")
    }

    /// Fallible constructor: returns the golden pipeline's error for
    /// degenerate configurations (e.g. an overlap threshold that
    /// leaves no difference pairs) instead of panicking.
    pub fn try_new(mut config: MontageConfig) -> Result<Self, String> {
        config.tiles = config.tiles.max(1);
        let mut golden = Vec::with_capacity(config.tiles);
        for t in 0..config.tiles {
            let cfg = Self::tile_pipeline(&config, t);
            let raws = make_raw_images(&cfg);
            golden.push(GoldenPipeline::build(&raws, &cfg)?);
        }
        Ok(MontageApp { config, golden })
    }

    /// Paper-defaults app.
    pub fn paper_default() -> Self {
        Self::new(MontageConfig::default())
    }

    /// Paper-defaults app with `tiles` independent mosaic tiles — the
    /// multi-file campaign workload of the incremental-analyze layer.
    pub fn multi_tile(tiles: usize) -> Self {
        Self::new(MontageConfig::default().with_tiles(tiles))
    }

    /// Number of tiles this app runs.
    pub fn tiles(&self) -> usize {
        self.config.tiles
    }

    /// Pipeline parameters of tile `t`: tile 0 keeps the configured
    /// seed (so the single-tile regime is byte-identical to the legacy
    /// layout); later tiles shift the sky seed to model distinct
    /// pointings.
    fn tile_pipeline(config: &MontageConfig, t: usize) -> PipelineConfig {
        PipelineConfig {
            seed: config.pipeline.seed.wrapping_add(0x711E * t as u64),
            ..config.pipeline
        }
    }

    /// Directory prefix of tile `t` (empty in the single-tile regime,
    /// preserving the legacy paths).
    fn tile_prefix(&self, t: usize) -> String {
        if self.config.tiles == 1 {
            String::new()
        } else {
            format!("/tile{}", t)
        }
    }

    /// Prefix a legacy pipeline path with tile `t`'s directory.
    fn tile_path(&self, t: usize, path: &str) -> String {
        format!("{}{}", self.tile_prefix(t), path)
    }

    /// Fault-target filter scoping injections to one stage's output
    /// directory. The same filter serves both sites: at the write site
    /// it selects the stage's *writes*; at the read site it selects
    /// the downstream stage's *read-back* of those files (analyze
    /// re-reads every layer, so each directory hosts eligible reads).
    pub fn stage_filter(stage: Stage) -> TargetFilter {
        TargetFilter::PathContains(
            match stage {
                Stage::ProjExec => "/proj/",
                Stage::DiffExec => "/diff/",
                Stage::BgExec => "/corr/",
                Stage::Add => "/mosaic/",
            }
            .to_string(),
        )
    }

    /// Fault-target filter scoping injections to the co-added mosaic —
    /// the artifact the final image-generation step reads, i.e. the
    /// read-site surface closest to the classified output.
    pub fn mosaic_filter() -> TargetFilter {
        TargetFilter::PathContains("/mosaic/".to_string())
    }

    /// Table II row.
    pub fn describe() -> (&'static str, &'static str, &'static str) {
        ("Montage", "Astronomy", "Astronomical image mosaic")
    }
}

/// How deep into the pipeline the first on-disk deviation from the
/// golden bytes sits — everything downstream is re-derived in memory
/// from that layer's read-back state.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum DirtyLayer {
    Raw,
    Proj,
    Diff,
    Corr,
    Mosaic,
}

/// Read a whole file, with the same error shape `read_fits` produces.
fn read_bytes(fs: &dyn FileSystem, path: &str) -> Result<Vec<u8>, String> {
    fs.read_to_vec(path).map_err(|e| format!("cannot read {}: {}", path, e))
}

fn parse_image(bytes: &[u8]) -> Result<FitsImage, String> {
    parse_fits(bytes).map_err(|e| e.to_string())
}

impl MontageApp {
    /// Locate the first pipeline layer of tile `t` whose on-disk bytes
    /// differ from the golden run's. Only files some downstream stage
    /// *reads* are compared (the mosaic area image, for example, has
    /// no consumer).
    fn first_dirty_layer(
        &self,
        fs: &dyn FileSystem,
        t: usize,
    ) -> Result<Option<DirtyLayer>, String> {
        let g = &self.golden[t];
        let n = self.config.pipeline.n_images();
        for i in 0..n {
            if read_bytes(fs, &self.tile_path(t, &raw_path(i)))? != g.raw_bytes[i] {
                return Ok(Some(DirtyLayer::Raw));
            }
        }
        for i in 0..n {
            if read_bytes(fs, &self.tile_path(t, &proj_path(i)))? != g.proj_bytes[i].0
                || read_bytes(fs, &self.tile_path(t, &proj_area_path(i)))? != g.proj_bytes[i].1
            {
                return Ok(Some(DirtyLayer::Proj));
            }
        }
        for (k, &(i, j)) in g.pairs.iter().enumerate() {
            if read_bytes(fs, &self.tile_path(t, &diff_path(i, j)))? != g.diff_bytes[k] {
                return Ok(Some(DirtyLayer::Diff));
            }
        }
        for i in 0..n {
            if read_bytes(fs, &self.tile_path(t, &corr_path(i)))? != g.corr_bytes[i].0
                || read_bytes(fs, &self.tile_path(t, &corr_area_path(i)))? != g.corr_bytes[i].1
            {
                return Ok(Some(DirtyLayer::Corr));
            }
        }
        if read_bytes(fs, &self.tile_path(t, MOSAIC))? != g.mosaic_bytes {
            return Ok(Some(DirtyLayer::Mosaic));
        }
        Ok(None)
    }

    /// Re-derive tile `t`'s final image from the first dirty layer's
    /// on-disk state, cascading the (possibly corrupted) values
    /// through the same stage cores a monolithic execution runs. Each
    /// recomputed intermediate is FITS-roundtripped before the next
    /// stage consumes it, because the monolithic pipeline always read
    /// its inputs back from disk.
    fn recompute_from(
        &self,
        fs: &dyn FileSystem,
        t: usize,
        layer: DirtyLayer,
    ) -> Result<FinalImage, String> {
        let g = &self.golden[t];
        let cfg = &self.config.pipeline;
        let n = cfg.n_images();

        match layer {
            DirtyLayer::Raw | DirtyLayer::Proj => {
                let projs: Vec<(FitsImage, FitsImage)> = if layer == DirtyLayer::Raw {
                    (0..n)
                        .map(|i| {
                            let raw =
                                parse_image(&read_bytes(fs, &self.tile_path(t, &raw_path(i)))?)?;
                            let (data, area) = project_image(&raw, cfg);
                            Ok((roundtrip(&data).1, roundtrip(&area).1))
                        })
                        .collect::<Result<_, String>>()?
                } else {
                    // DirtyLayer::Proj — read back with the same shape
                    // check mDiffExec applies.
                    (0..n)
                        .map(|i| {
                            let data =
                                parse_image(&read_bytes(fs, &self.tile_path(t, &proj_path(i)))?)?;
                            let area = parse_image(&read_bytes(
                                fs,
                                &self.tile_path(t, &proj_area_path(i)),
                            )?)?;
                            if area.width != data.width || area.height != data.height {
                                return Err(format!("area/data shape mismatch for image {}", i));
                            }
                            Ok((data, area))
                        })
                        .collect::<Result<_, String>>()?
                };
                let mut pairs = Vec::new();
                let mut diffs = Vec::new();
                for (pair, diff) in diff_overlaps(&projs, cfg)? {
                    pairs.push(pair);
                    diffs.push(roundtrip(&diff).1);
                }
                background_tail(&projs, &pairs, &diffs, cfg)
            }
            DirtyLayer::Diff => {
                let diffs: Vec<FitsImage> = g
                    .pairs
                    .iter()
                    .map(|&(i, j)| {
                        parse_image(&read_bytes(fs, &self.tile_path(t, &diff_path(i, j)))?)
                    })
                    .collect::<Result<_, String>>()?;
                background_tail(&g.projs, &g.pairs, &diffs, cfg)
            }
            DirtyLayer::Corr => {
                let corrs: Vec<(FitsImage, FitsImage)> = (0..n)
                    .map(|i| {
                        Ok((
                            parse_image(&read_bytes(fs, &self.tile_path(t, &corr_path(i)))?)?,
                            parse_image(&read_bytes(fs, &self.tile_path(t, &corr_area_path(i)))?)?,
                        ))
                    })
                    .collect::<Result<_, String>>()?;
                coadd_tail(&corrs, cfg)
            }
            DirtyLayer::Mosaic => {
                stretch_mosaic(&parse_image(&read_bytes(fs, &self.tile_path(t, MOSAIC))?)?)
            }
        }
    }

    /// The whole analyze pass of one tile: locate the first dirty
    /// layer and cascade from it, or — when every inter-stage input is
    /// golden — read back the final-image file. This single function
    /// is both the body of the per-tile analyze sub-step and the unit
    /// `analyze` iterates, so the memo layer's stream-identity law
    /// holds by construction.
    fn tile_analyze(&self, fs: &dyn FileSystem, t: usize) -> Result<FinalImage, String> {
        match self.first_dirty_layer(fs, t)? {
            Some(layer) => self.recompute_from(fs, t, layer),
            None => {
                // Every inter-stage input is golden, so the viewer
                // would have stretched the golden mosaic; the
                // classified raster is whatever the final-image file
                // holds (the one write a fault can still have hit).
                let g = &self.golden[t].image;
                let bytes = read_bytes(fs, &self.tile_path(t, FINAL_IMAGE))?;
                Ok(FinalImage { bytes, min: g.min, max: g.max, width: g.width, height: g.height })
            }
        }
    }
}

/// Serialize a [`FinalImage`] as a memoizable analyze-sub-step
/// artifact (length-prefixed raster + the stretch statistics).
fn encode_final(img: &FinalImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.bytes.len() + 40);
    out.extend_from_slice(&(img.bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&img.bytes);
    out.extend_from_slice(&img.min.to_le_bytes());
    out.extend_from_slice(&img.max.to_le_bytes());
    out.extend_from_slice(&(img.width as u64).to_le_bytes());
    out.extend_from_slice(&(img.height as u64).to_le_bytes());
    out
}

/// Inverse of [`encode_final`].
fn decode_final(b: &[u8]) -> Result<FinalImage, String> {
    let err = || "malformed tile artifact".to_string();
    let take_u64 = |at: usize| -> Result<u64, String> {
        Ok(u64::from_le_bytes(b.get(at..at + 8).ok_or_else(err)?.try_into().unwrap()))
    };
    let len = take_u64(0)? as usize;
    let bytes = b.get(8..8 + len).ok_or_else(err)?.to_vec();
    let at = 8 + len;
    if b.len() != at + 32 {
        return Err(err());
    }
    Ok(FinalImage {
        bytes,
        min: f64::from_le_bytes(b[at..at + 8].try_into().unwrap()),
        max: f64::from_le_bytes(b[at + 8..at + 16].try_into().unwrap()),
        width: take_u64(at + 16)? as usize,
        height: take_u64(at + 24)? as usize,
    })
}

/// The mBgExec → mAdd → viewer tail over in-memory inputs, shared by
/// every analyze-cascade entry point upstream of the corr layer.
fn background_tail(
    projs: &[(FitsImage, FitsImage)],
    pairs: &[(usize, usize)],
    diffs: &[FitsImage],
    cfg: &PipelineConfig,
) -> Result<FinalImage, String> {
    let planes = fit_background(pairs, diffs, projs.len(), cfg)?;
    let corrs: Vec<(FitsImage, FitsImage)> = projs
        .iter()
        .zip(&planes)
        .map(|((data, area), plane)| {
            let corr = apply_background(data, *plane, cfg);
            (roundtrip(&corr).1, roundtrip(area).1)
        })
        .collect();
    coadd_tail(&corrs, cfg)
}

/// The mAdd → viewer tail over in-memory corrected images.
fn coadd_tail(
    corrs: &[(FitsImage, FitsImage)],
    cfg: &PipelineConfig,
) -> Result<FinalImage, String> {
    let (mosaic, _) = coadd(corrs, cfg)?;
    stretch_mosaic(&roundtrip(&mosaic).1)
}

impl FaultApp for MontageApp {
    type Output = MontageOutput;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        let n = self.config.pipeline.n_images();
        // Stream every stage's golden bytes in pipeline order, tile by
        // tile — the same files, chunking, and write sequence the
        // monolithic pipeline issues, without deriving any byte from a
        // read-back (the write-stream data-independence law). Fault
        // propagation through the inter-stage files is modelled in
        // `analyze`.
        for t in 0..self.config.tiles {
            let g = &self.golden[t];
            let w = |path: String, bytes: &[u8]| -> Result<(), String> {
                fs.write_file_chunked(&path, bytes, ffis_vfs::BLOCK_SIZE).map_err(|e| e.to_string())
            };
            let pre = self.tile_prefix(t);
            if !pre.is_empty() {
                fs.mkdir(&pre, 0o755).map_err(|e| e.to_string())?;
            }
            for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
                fs.mkdir(&format!("{}{}", pre, d), 0o755).map_err(|e| e.to_string())?;
            }
            for i in 0..n {
                w(self.tile_path(t, &raw_path(i)), &g.raw_bytes[i])?;
            }
            for i in 0..n {
                w(self.tile_path(t, &proj_path(i)), &g.proj_bytes[i].0)?;
                w(self.tile_path(t, &proj_area_path(i)), &g.proj_bytes[i].1)?;
            }
            for (k, &(i, j)) in g.pairs.iter().enumerate() {
                w(self.tile_path(t, &diff_path(i, j)), &g.diff_bytes[k])?;
            }
            for i in 0..n {
                w(self.tile_path(t, &corr_path(i)), &g.corr_bytes[i].0)?;
                w(self.tile_path(t, &corr_area_path(i)), &g.corr_bytes[i].1)?;
            }
            w(self.tile_path(t, MOSAIC), &g.mosaic_bytes)?;
            w(self.tile_path(t, MOSAIC_AREA), &g.mosaic_area_bytes)?;
            w(self.tile_path(t, FINAL_IMAGE), &g.image.bytes)?;
        }
        Ok(())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&MontageOutput>,
    ) -> Result<MontageOutput, String> {
        // Tiles in declaration order — identical, read for read, to
        // running the per-tile sub-steps and assembling them.
        let mut images = Vec::with_capacity(self.config.tiles);
        for t in 0..self.config.tiles {
            images.push(self.tile_analyze(fs, t)?);
        }
        let image = images.remove(0);
        Ok(MontageOutput { image, extra_tiles: images })
    }

    fn analyze_substeps(&self) -> Option<Vec<SubstepSpec>> {
        if self.config.tiles == 1 {
            return None;
        }
        let n = self.config.pipeline.n_images();
        Some(
            (0..self.config.tiles)
                .map(|t| {
                    // Everything tile_analyze may read: every layer the
                    // dirty scan compares plus the final-image raster.
                    // (The mosaic *area* image has no consumer, so a
                    // fault there dirties no sub-step — exactly as full
                    // analyze never observes it.)
                    let mut inputs = Vec::new();
                    for i in 0..n {
                        inputs.push(self.tile_path(t, &raw_path(i)));
                    }
                    for i in 0..n {
                        inputs.push(self.tile_path(t, &proj_path(i)));
                        inputs.push(self.tile_path(t, &proj_area_path(i)));
                    }
                    for &(i, j) in &self.golden[t].pairs {
                        inputs.push(self.tile_path(t, &diff_path(i, j)));
                    }
                    for i in 0..n {
                        inputs.push(self.tile_path(t, &corr_path(i)));
                        inputs.push(self.tile_path(t, &corr_area_path(i)));
                    }
                    inputs.push(self.tile_path(t, MOSAIC));
                    inputs.push(self.tile_path(t, FINAL_IMAGE));
                    SubstepSpec::new(format!("tile{}", t), inputs)
                })
                .collect(),
        )
    }

    fn analyze_substep(
        &self,
        fs: &dyn FileSystem,
        index: usize,
        _golden: Option<&MontageOutput>,
    ) -> Result<Vec<u8>, String> {
        if index >= self.config.tiles {
            return Err(format!("no tile {}", index));
        }
        self.tile_analyze(fs, index).map(|img| encode_final(&img))
    }

    fn assemble(
        &self,
        artifacts: &[Vec<u8>],
        _golden: Option<&MontageOutput>,
    ) -> Result<MontageOutput, String> {
        if artifacts.len() != self.config.tiles {
            return Err(format!(
                "expected {} tile artifacts, got {}",
                self.config.tiles,
                artifacts.len()
            ));
        }
        let mut images =
            artifacts.iter().map(|a| decode_final(a)).collect::<Result<Vec<_>, String>>()?;
        let image = images.remove(0);
        Ok(MontageOutput { image, extra_tiles: images })
    }

    /// Produce streams every stage's golden bytes in pipeline order
    /// without reading any inter-stage file back (the write-stream
    /// data-independence law); the inter-stage *reads* — and the fault
    /// cascade through them — all happen inside [`FaultApp::analyze`],
    /// so every read-site fault is an analyze-phase fault. (A
    /// monolithic Montage would read between stages; this split is
    /// exactly what the two-phase contract trades that for.)
    fn produce_read_count(&self) -> Option<u64> {
        Some(0)
    }

    fn classify(&self, golden: &MontageOutput, faulty: &MontageOutput) -> Outcome {
        // Tile by tile, in order: the first differing final image
        // decides via the paper's `min`-value test. The single-tile
        // regime reduces to the legacy whole-image comparison.
        let g = std::iter::once(&golden.image).chain(&golden.extra_tiles);
        let f = std::iter::once(&faulty.image).chain(&faulty.extra_tiles);
        for (gi, fi) in g.zip(f) {
            if gi.bytes != fi.bytes {
                return if (fi.min - gi.min).abs() <= self.config.min_threshold {
                    Outcome::Sdc
                } else {
                    Outcome::Detected
                };
            }
        }
        if golden.extra_tiles.len() != faulty.extra_tiles.len() {
            return Outcome::Detected;
        }
        Outcome::Benign
    }

    fn name(&self) -> String {
        "MT".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    #[test]
    fn golden_run_completes() {
        let app = MontageApp::paper_default();
        let out = app.run(&MemFs::new()).unwrap();
        assert!(out.image.min > 82.0 && out.image.min < 83.5, "min = {}", out.image.min);
    }

    #[test]
    fn runs_are_bitwise_reproducible() {
        let app = MontageApp::paper_default();
        let a = app.run(&MemFs::new()).unwrap();
        let b = app.run(&MemFs::new()).unwrap();
        assert_eq!(a.image.bytes, b.image.bytes);
        assert_eq!(app.classify(&a, &b), Outcome::Benign);
    }

    #[test]
    fn classification_rules() {
        let app = MontageApp::paper_default();
        let golden = app.run(&MemFs::new()).unwrap();
        // In-band min with differing bytes -> SDC.
        let mut sdc = golden.clone();
        sdc.image.bytes[20] ^= 0x01;
        sdc.image.min += 0.005;
        assert_eq!(app.classify(&golden, &sdc), Outcome::Sdc);
        // Out-of-band min -> detected.
        let mut det = golden.clone();
        det.image.bytes[20] ^= 0x01;
        det.image.min -= 5.0;
        assert_eq!(app.classify(&golden, &det), Outcome::Detected);
    }

    #[test]
    fn stage_filters_address_distinct_directories() {
        let filters: Vec<_> = Stage::ALL.iter().map(|&s| MontageApp::stage_filter(s)).collect();
        assert!(filters[0].matches(Some("/proj/proj_00.fits")));
        assert!(!filters[0].matches(Some("/diff/diff_00_01.fits")));
        assert!(filters[1].matches(Some("/diff/diff_00_01.fits")));
        assert!(filters[2].matches(Some("/corr/corr_05_area.fits")));
        assert!(filters[3].matches(Some("/mosaic/mosaic.fits")));
        assert!(!filters[3].matches(Some("/raw/raw_00.fits")));
        let mosaic = MontageApp::mosaic_filter();
        assert!(mosaic.matches(Some(MOSAIC)));
        assert!(mosaic.matches(Some(MOSAIC_AREA)));
        assert!(!mosaic.matches(Some("/corr/corr_00.fits")));
    }

    #[test]
    fn stage_labels_match_figure7() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["MT1", "MT2", "MT3", "MT4"]);
        assert_eq!(Stage::ProjExec.tool(), "mProjExec");
    }

    #[test]
    fn describe_matches_table_ii() {
        let (name, domain, method) = MontageApp::describe();
        assert_eq!(name, "Montage");
        assert_eq!(domain, "Astronomy");
        assert!(method.contains("mosaic"));
    }

    #[test]
    fn single_tile_declares_no_substeps() {
        // The legacy regime keeps whole-analyze (and its pinned
        // campaign modes): no sub-steps, no memo engagement.
        assert!(MontageApp::paper_default().analyze_substeps().is_none());
    }

    #[test]
    fn multi_tile_substeps_match_whole_analyze() {
        let app = MontageApp::multi_tile(3);
        let specs = app.analyze_substeps().unwrap();
        assert_eq!(specs.len(), 3);
        assert!(specs[1].reads("/tile1/mosaic/mosaic.fits"));
        assert!(!specs[1].reads("/tile0/mosaic/mosaic.fits"));

        let fs = MemFs::new();
        app.produce(&fs).unwrap();
        let whole = app.analyze(&fs, None).unwrap();
        assert_eq!(whole.extra_tiles.len(), 2);
        // Distinct pointings: the tiles are different skies.
        assert_ne!(whole.image.bytes, whole.extra_tiles[0].bytes);

        let arts: Vec<Vec<u8>> =
            (0..3).map(|t| app.analyze_substep(&fs, t, None).unwrap()).collect();
        let assembled = app.assemble(&arts, None).unwrap();
        assert_eq!(whole.image.bytes, assembled.image.bytes);
        for (a, b) in whole.extra_tiles.iter().zip(&assembled.extra_tiles) {
            assert_eq!(a, b);
        }
        assert_eq!(app.classify(&whole, &assembled), Outcome::Benign);
    }

    #[test]
    fn multi_tile_classify_keys_on_first_differing_tile() {
        let app = MontageApp::multi_tile(2);
        let fs = MemFs::new();
        let golden = app.run(&fs).unwrap();
        let mut faulty = golden.clone();
        faulty.extra_tiles[0].bytes[20] ^= 0x01;
        faulty.extra_tiles[0].min += 0.005;
        assert_eq!(app.classify(&golden, &faulty), Outcome::Sdc);
        faulty.extra_tiles[0].min -= 5.0;
        assert_eq!(app.classify(&golden, &faulty), Outcome::Detected);
    }
}
