//! The Montage workload as a [`FaultApp`] (paper §IV-C.3).
//!
//! One run executes the full ten-step-equivalent pipeline (we model
//! the four I/O-intensive stages the paper injects into, plus the
//! final image-generation step used for classification):
//! raw inputs → mProjExec → mDiffExec → mBgExec → mAdd → final image.
//!
//! Outcome classification (verbatim §IV-C.3): bitwise-compare the
//! final image with the golden one — identical ⇒ *benign*; otherwise
//! apply the `min`-value test with a 10⁻² threshold (the paper's
//! `[82.82, 82.83]` acceptance band): in-band ⇒ *SDC*, out-of-band ⇒
//! *detected*; "for the cases where the target file cannot be created,
//! they are defined as crash".
//!
//! Per-stage injection (Figure 7's MT1..MT4 columns) is expressed by
//! scoping the fault signature to the stage's output directory via
//! [`MontageApp::stage_filter`].

use ffis_core::{FaultApp, Outcome, TargetFilter};
use ffis_vfs::FileSystem;
use fitslite::FitsImage;

use crate::stages::{
    m_add, m_bg_exec, m_diff_exec, m_proj_exec, m_viewer, make_raw_images, write_raws, FinalImage,
    PipelineConfig,
};

/// Montage workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct MontageConfig {
    /// Pipeline parameters.
    pub pipeline: PipelineConfig,
    /// `min`-difference threshold separating SDC from detected
    /// (paper: 10⁻²).
    pub min_threshold: f64,
}

impl Default for MontageConfig {
    fn default() -> Self {
        MontageConfig { pipeline: PipelineConfig::default(), min_threshold: 1e-2 }
    }
}

/// Classification artifacts.
#[derive(Debug, Clone)]
pub struct MontageOutput {
    /// Final stretched image (bitwise-comparison artifact).
    pub image: FinalImage,
}

/// The Montage application.
pub struct MontageApp {
    config: MontageConfig,
    /// Deterministic raw observations (inputs; generated once).
    raws: Vec<FitsImage>,
}

/// The four instrumented stages, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// MT1 — mProjExec.
    ProjExec,
    /// MT2 — mDiffExec.
    DiffExec,
    /// MT3 — mBgExec.
    BgExec,
    /// MT4 — mAdd.
    Add,
}

impl Stage {
    /// All stages in order.
    pub const ALL: [Stage; 4] = [Stage::ProjExec, Stage::DiffExec, Stage::BgExec, Stage::Add];

    /// Figure 7 column label ("MT1"..."MT4").
    pub fn label(self) -> &'static str {
        match self {
            Stage::ProjExec => "MT1",
            Stage::DiffExec => "MT2",
            Stage::BgExec => "MT3",
            Stage::Add => "MT4",
        }
    }

    /// Montage executable name.
    pub fn tool(self) -> &'static str {
        match self {
            Stage::ProjExec => "mProjExec",
            Stage::DiffExec => "mDiffExec",
            Stage::BgExec => "mBgExec",
            Stage::Add => "mAdd",
        }
    }
}

impl MontageApp {
    /// Build the app (renders the deterministic raw observations).
    pub fn new(config: MontageConfig) -> Self {
        let raws = make_raw_images(&config.pipeline);
        MontageApp { config, raws }
    }

    /// Paper-defaults app.
    pub fn paper_default() -> Self {
        Self::new(MontageConfig::default())
    }

    /// Fault-target filter scoping injections to one stage's writes.
    pub fn stage_filter(stage: Stage) -> TargetFilter {
        TargetFilter::PathContains(
            match stage {
                Stage::ProjExec => "/proj/",
                Stage::DiffExec => "/diff/",
                Stage::BgExec => "/corr/",
                Stage::Add => "/mosaic/",
            }
            .to_string(),
        )
    }

    /// Table II row.
    pub fn describe() -> (&'static str, &'static str, &'static str) {
        ("Montage", "Astronomy", "Astronomical image mosaic")
    }
}

impl FaultApp for MontageApp {
    type Output = MontageOutput;

    fn run(&self, fs: &dyn FileSystem) -> Result<MontageOutput, String> {
        for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
            fs.mkdir(d, 0o755).map_err(|e| e.to_string())?;
        }
        write_raws(fs, &self.raws)?;
        let cfg = &self.config.pipeline;
        m_proj_exec(fs, cfg)?;
        let pairs = m_diff_exec(fs, cfg)?;
        m_bg_exec(fs, cfg, &pairs)?;
        m_add(fs, cfg)?;
        let image = m_viewer(fs, cfg)?;
        Ok(MontageOutput { image })
    }

    fn classify(&self, golden: &MontageOutput, faulty: &MontageOutput) -> Outcome {
        if golden.image.bytes == faulty.image.bytes {
            return Outcome::Benign;
        }
        if (faulty.image.min - golden.image.min).abs() <= self.config.min_threshold {
            Outcome::Sdc
        } else {
            Outcome::Detected
        }
    }

    fn name(&self) -> String {
        "MT".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    #[test]
    fn golden_run_completes() {
        let app = MontageApp::paper_default();
        let out = app.run(&MemFs::new()).unwrap();
        assert!(out.image.min > 82.0 && out.image.min < 83.5, "min = {}", out.image.min);
    }

    #[test]
    fn runs_are_bitwise_reproducible() {
        let app = MontageApp::paper_default();
        let a = app.run(&MemFs::new()).unwrap();
        let b = app.run(&MemFs::new()).unwrap();
        assert_eq!(a.image.bytes, b.image.bytes);
        assert_eq!(app.classify(&a, &b), Outcome::Benign);
    }

    #[test]
    fn classification_rules() {
        let app = MontageApp::paper_default();
        let golden = app.run(&MemFs::new()).unwrap();
        // In-band min with differing bytes -> SDC.
        let mut sdc = golden.clone();
        sdc.image.bytes[20] ^= 0x01;
        sdc.image.min += 0.005;
        assert_eq!(app.classify(&golden, &sdc), Outcome::Sdc);
        // Out-of-band min -> detected.
        let mut det = golden.clone();
        det.image.bytes[20] ^= 0x01;
        det.image.min -= 5.0;
        assert_eq!(app.classify(&golden, &det), Outcome::Detected);
    }

    #[test]
    fn stage_filters_address_distinct_directories() {
        let filters: Vec<_> = Stage::ALL.iter().map(|&s| MontageApp::stage_filter(s)).collect();
        assert!(filters[0].matches(Some("/proj/proj_00.fits")));
        assert!(!filters[0].matches(Some("/diff/diff_00_01.fits")));
        assert!(filters[1].matches(Some("/diff/diff_00_01.fits")));
        assert!(filters[2].matches(Some("/corr/corr_05_area.fits")));
        assert!(filters[3].matches(Some("/mosaic/mosaic.fits")));
        assert!(!filters[3].matches(Some("/raw/raw_00.fits")));
    }

    #[test]
    fn stage_labels_match_figure7() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["MT1", "MT2", "MT3", "MT4"]);
        assert_eq!(Stage::ProjExec.tool(), "mProjExec");
    }

    #[test]
    fn describe_matches_table_ii() {
        let (name, domain, method) = MontageApp::describe();
        assert_eq!(name, "Montage");
        assert_eq!(domain, "Astronomy");
        assert!(method.contains("mosaic"));
    }
}
