//! The four I/O-intensive Montage stages (paper §V-B.c).
//!
//! "(1) mProjExec for reprojecting each image, (2) mDiffExec for
//! subtracting each pair of overlapping images and creating difference
//! images, (3) mBgExec for applying background matching to each
//! reprojected image, (4) mAdd for generating a mosaic from
//! reprojected images."
//!
//! Every stage reads its inputs from, and writes its outputs to, the
//! filesystem under test — the channel through which injected faults
//! propagate (or are bounded: "different Montage stages seem to bound
//! the faults"). Like real Montage, data images travel with *area*
//! images that weight the co-addition; a corrupted/lost area region
//! silently drops pixels from the mosaic (an SDC path), while
//! corrupted data with intact area drags the mosaic values (a detected
//! path).

use ffis_core::Rng;
use ffis_vfs::{FileSystem, FileSystemExt};
use fitslite::{read_fits, write_fits, FitsImage, Wcs};

use crate::linalg::{fit_plane, solve};
use crate::sky::{SkyModel, M101_DEC, M101_RA};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Raw image side length (pixels).
    pub raw_size: usize,
    /// Mosaic side length (pixels).
    pub mosaic_size: usize,
    /// Pointing grid columns.
    pub n_cols: usize,
    /// Pointing grid rows.
    pub n_rows: usize,
    /// Pixel noise sigma.
    pub noise_sigma: f64,
    /// Master seed (sky, pointings, noise).
    pub seed: u64,
    /// Minimum overlap pixels for a difference image.
    pub min_overlap_px: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            raw_size: 30,
            mosaic_size: 96,
            n_cols: 5,
            n_rows: 2,
            noise_sigma: 0.02,
            seed: 0x4D54_3130,
            min_overlap_px: 120,
        }
    }
}

impl PipelineConfig {
    /// Number of raw images (the paper uses 10).
    pub fn n_images(&self) -> usize {
        self.n_cols * self.n_rows
    }
}

/// The common output projection (TAN around m101, 0.2° field).
pub fn mosaic_wcs(cfg: &PipelineConfig) -> Wcs {
    let n = cfg.mosaic_size as f64;
    Wcs {
        crval1: M101_RA,
        crval2: M101_DEC,
        crpix1: (n + 1.0) / 2.0,
        crpix2: (n + 1.0) / 2.0,
        cdelt1: -0.2 / n,
        cdelt2: 0.2 / n,
    }
}

/// Pointing WCS of raw image `i` (coarser plate scale, offset grid).
pub fn raw_wcs(cfg: &PipelineConfig, i: usize) -> Wcs {
    let col = (i % cfg.n_cols) as f64;
    let row = (i / cfg.n_cols) as f64;
    let n = cfg.raw_size as f64;
    Wcs {
        crval1: M101_RA + (col - (cfg.n_cols as f64 - 1.0) / 2.0) * 0.036,
        crval2: M101_DEC + (row - (cfg.n_rows as f64 - 1.0) / 2.0) * 0.05,
        crpix1: (n + 1.0) / 2.0,
        crpix2: (n + 1.0) / 2.0,
        cdelt1: -0.2 / cfg.mosaic_size as f64 * 1.3,
        cdelt2: 0.2 / cfg.mosaic_size as f64 * 1.3,
    }
}

/// Per-image instrumental background plane (`[offset, d/dx, d/dy]`).
/// Image 0 is the zero-gauge reference, as mBgModel fixes one image.
pub fn background_plane(cfg: &PipelineConfig, i: usize) -> [f64; 3] {
    if i == 0 {
        return [0.0; 3];
    }
    let mut rng = Rng::seed_from(cfg.seed.wrapping_add(0xB6 * i as u64));
    [rng.uniform(-0.6, 0.6), rng.uniform(-0.004, 0.004), rng.uniform(-0.004, 0.004)]
}

/// Generate the 10 deterministic raw observations.
pub fn make_raw_images(cfg: &PipelineConfig) -> Vec<FitsImage> {
    let sky = SkyModel::m101(cfg.seed);
    (0..cfg.n_images())
        .map(|i| {
            sky.render(
                raw_wcs(cfg, i),
                cfg.raw_size,
                cfg.raw_size,
                background_plane(cfg, i),
                cfg.noise_sigma,
                cfg.seed.wrapping_add(0x51 * i as u64 + 1),
            )
        })
        .collect()
}

pub(crate) fn raw_path(i: usize) -> String {
    format!("/raw/raw_{:02}.fits", i)
}

pub(crate) fn proj_path(i: usize) -> String {
    format!("/proj/proj_{:02}.fits", i)
}

pub(crate) fn proj_area_path(i: usize) -> String {
    format!("/proj/proj_{:02}_area.fits", i)
}

pub(crate) fn diff_path(i: usize, j: usize) -> String {
    format!("/diff/diff_{:02}_{:02}.fits", i, j)
}

pub(crate) fn corr_path(i: usize) -> String {
    format!("/corr/corr_{:02}.fits", i)
}

pub(crate) fn corr_area_path(i: usize) -> String {
    format!("/corr/corr_{:02}_area.fits", i)
}

/// Mosaic data product path.
pub const MOSAIC: &str = "/mosaic/mosaic.fits";
/// Mosaic area product path.
pub const MOSAIC_AREA: &str = "/mosaic/mosaic_area.fits";
/// Final stretched image path (the paper's `m101_mosaic.jpg`).
pub const FINAL_IMAGE: &str = "/mosaic/m101_mosaic.jpg";

/// Write the raw observations (pipeline inputs; not a paper stage).
pub fn write_raws(fs: &dyn FileSystem, raws: &[FitsImage]) -> Result<(), String> {
    for (i, img) in raws.iter().enumerate() {
        write_fits(fs, &raw_path(i), img).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Footprint of an image on the mosaic grid: `(x0, y0, w, h)`.
fn footprint(
    img_wcs: &Wcs,
    size: usize,
    mwcs: &Wcs,
    mosaic_size: usize,
) -> (usize, usize, usize, usize) {
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for &(cx, cy) in &[
        (0.0, 0.0),
        (size as f64 - 1.0, 0.0),
        (0.0, size as f64 - 1.0),
        (size as f64 - 1.0, size as f64 - 1.0),
    ] {
        let (ra, dec) = img_wcs.pix_to_sky(cx, cy);
        let (mx, my) = mwcs.sky_to_pix(ra, dec);
        xmin = xmin.min(mx);
        xmax = xmax.max(mx);
        ymin = ymin.min(my);
        ymax = ymax.max(my);
    }
    let x0 = xmin.floor().max(0.0) as usize;
    let y0 = ymin.floor().max(0.0) as usize;
    let x1 = (xmax.ceil() as usize).min(mosaic_size - 1);
    let y1 = (ymax.ceil() as usize).min(mosaic_size - 1);
    (x0, y0, x1.saturating_sub(x0) + 1, y1.saturating_sub(y0) + 1)
}

/// WCS for a sub-image whose (0,0) sits at mosaic pixel `(x0, y0)`.
fn sub_wcs(mwcs: &Wcs, x0: usize, y0: usize) -> Wcs {
    Wcs { crpix1: mwcs.crpix1 - x0 as f64, crpix2: mwcs.crpix2 - y0 as f64, ..*mwcs }
}

/// Mosaic pixel coordinates of a sub-image pixel.
fn to_mosaic_xy(img: &FitsImage, mwcs: &Wcs, x: usize, y: usize) -> (f64, f64) {
    let (ra, dec) = img.wcs.pix_to_sky(x as f64, y as f64);
    mwcs.sky_to_pix(ra, dec)
}

/// mProjExec's per-image core: reproject one raw image onto the
/// common projection, returning the (data, area) pair. Pure compute —
/// the fs-level stage and the replay-campaign analyze cascade share
/// it.
pub fn project_image(raw: &FitsImage, cfg: &PipelineConfig) -> (FitsImage, FitsImage) {
    let mwcs = mosaic_wcs(cfg);
    let (x0, y0, w, h) = footprint(&raw.wcs, cfg.raw_size, &mwcs, cfg.mosaic_size);
    let swcs = sub_wcs(&mwcs, x0, y0);
    let mut data = FitsImage::blank(w, h, swcs);
    let mut area = FitsImage::blank(w, h, swcs);
    for y in 0..h {
        for x in 0..w {
            let (ra, dec) = swcs.pix_to_sky(x as f64, y as f64);
            let (rx, ry) = raw.wcs.sky_to_pix(ra, dec);
            let v = raw.sample(rx, ry);
            if v.is_finite() {
                data.set(x, y, v);
                area.set(x, y, 1.0);
            } else {
                area.set(x, y, 0.0);
            }
        }
    }
    (data, area)
}

/// Stage 1 — mProjExec: reproject each raw image onto the common
/// projection; emit data + area images.
pub fn m_proj_exec(fs: &dyn FileSystem, cfg: &PipelineConfig) -> Result<(), String> {
    for i in 0..cfg.n_images() {
        let raw = read_fits(fs, &raw_path(i)).map_err(|e| e.to_string())?;
        let (data, area) = project_image(&raw, cfg);
        write_fits(fs, &proj_path(i), &data).map_err(|e| e.to_string())?;
        write_fits(fs, &proj_area_path(i), &area).map_err(|e| e.to_string())?;
    }
    Ok(())
}

pub(crate) fn read_proj(fs: &dyn FileSystem, i: usize) -> Result<(FitsImage, FitsImage), String> {
    let data = read_fits(fs, &proj_path(i)).map_err(|e| e.to_string())?;
    let area = read_fits(fs, &proj_area_path(i)).map_err(|e| e.to_string())?;
    if area.width != data.width || area.height != data.height {
        return Err(format!("area/data shape mismatch for image {}", i));
    }
    Ok((data, area))
}

/// One overlapping image pair `(i, j)` with its difference image.
pub type PairDiff = ((usize, usize), FitsImage);

/// mDiffExec's core: difference image for every overlapping pair of
/// reprojected images. Returns `(pair, diff)` in pair order. Pure
/// compute over in-memory projections.
pub fn diff_overlaps(
    projs: &[(FitsImage, FitsImage)],
    cfg: &PipelineConfig,
) -> Result<Vec<PairDiff>, String> {
    let mwcs = mosaic_wcs(cfg);
    let n = projs.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let (di, ai) = &projs[i];
            let (dj, aj) = &projs[j];
            // Intersection in mosaic coordinates.
            let (ix0, iy0) = to_mosaic_xy(di, &mwcs, 0, 0);
            let (jx0, jy0) = to_mosaic_xy(dj, &mwcs, 0, 0);
            let x0 = ix0.max(jx0).round() as i64;
            let y0 = iy0.max(jy0).round() as i64;
            let x1 = (ix0 + di.width as f64 - 1.0).min(jx0 + dj.width as f64 - 1.0).round() as i64;
            let y1 =
                (iy0 + di.height as f64 - 1.0).min(jy0 + dj.height as f64 - 1.0).round() as i64;
            if x1 < x0 || y1 < y0 {
                continue;
            }
            let (w, h) = ((x1 - x0 + 1) as usize, (y1 - y0 + 1) as usize);
            let swcs = sub_wcs(&mwcs, x0 as usize, y0 as usize);
            let mut diff = FitsImage::blank(w, h, swcs);
            let mut count = 0usize;
            for y in 0..h {
                for x in 0..w {
                    let gx = (x0 + x as i64) as f64;
                    let gy = (y0 + y as i64) as f64;
                    let lix = (gx - ix0).round() as i64;
                    let liy = (gy - iy0).round() as i64;
                    let ljx = (gx - jx0).round() as i64;
                    let ljy = (gy - jy0).round() as i64;
                    if lix < 0
                        || liy < 0
                        || ljx < 0
                        || ljy < 0
                        || lix >= di.width as i64
                        || liy >= di.height as i64
                        || ljx >= dj.width as i64
                        || ljy >= dj.height as i64
                    {
                        continue;
                    }
                    let (lix, liy, ljx, ljy) =
                        (lix as usize, liy as usize, ljx as usize, ljy as usize);
                    let vi = di.get(lix, liy);
                    let vj = dj.get(ljx, ljy);
                    let wi = ai.get(lix, liy);
                    let wj = aj.get(ljx, ljy);
                    if vi.is_finite() && vj.is_finite() && wi > 0.5 && wj > 0.5 {
                        diff.set(x, y, vi - vj);
                        count += 1;
                    }
                }
            }
            if count >= cfg.min_overlap_px {
                out.push(((i, j), diff));
            }
        }
    }
    if out.is_empty() {
        return Err("no overlapping pairs found".into());
    }
    Ok(out)
}

/// Stage 2 — mDiffExec: difference image for every overlapping pair.
/// Returns the pair list (the background model's graph edges).
pub fn m_diff_exec(
    fs: &dyn FileSystem,
    cfg: &PipelineConfig,
) -> Result<Vec<(usize, usize)>, String> {
    let n = cfg.n_images();
    let mut projs = Vec::with_capacity(n);
    for i in 0..n {
        projs.push(read_proj(fs, i)?);
    }
    let mut pairs = Vec::new();
    for ((i, j), diff) in diff_overlaps(&projs, cfg)? {
        write_fits(fs, &diff_path(i, j), &diff).map_err(|e| e.to_string())?;
        pairs.push((i, j));
    }
    Ok(pairs)
}

/// mBgExec's model core (mFitplane + mBgModel): fit a plane to every
/// difference image and solve the least-squares background model
/// (image 0 fixed as gauge). Returns one correction plane per image.
/// Pure compute — `n` is the image count.
pub fn fit_background(
    pairs: &[(usize, usize)],
    diffs: &[FitsImage],
    n: usize,
    cfg: &PipelineConfig,
) -> Result<Vec<[f64; 3]>, String> {
    let mwcs = mosaic_wcs(cfg);

    // Plane fits of every difference image, in mosaic coordinates.
    let mut fits = Vec::with_capacity(pairs.len());
    for (&(i, j), diff) in pairs.iter().zip(diffs) {
        let mut pts = Vec::new();
        for y in 0..diff.height {
            for x in 0..diff.width {
                let v = diff.get(x, y);
                if v.is_finite() {
                    let (mx, my) = to_mosaic_xy(diff, &mwcs, x, y);
                    pts.push((mx, my, v));
                }
            }
        }
        let plane =
            fit_plane(&pts).ok_or_else(|| format!("degenerate plane fit for pair {}-{}", i, j))?;
        fits.push(plane);
    }

    // Least-squares background model: minimize Σ ||p_i − p_j − d_ij||²
    // with p_0 ≡ 0. The three plane coefficients decouple into three
    // identical graph-Laplacian systems.
    let unknowns = n - 1; // images 1..n
    let mut planes = vec![[0.0f64; 3]; n];
    for c in 0..3 {
        let mut a = vec![0.0f64; unknowns * unknowns];
        let mut b = vec![0.0f64; unknowns];
        for (&(i, j), d) in pairs.iter().zip(&fits) {
            // Residual (p_i - p_j - d_ij).
            if i > 0 {
                a[(i - 1) * unknowns + (i - 1)] += 1.0;
                if j > 0 {
                    a[(i - 1) * unknowns + (j - 1)] -= 1.0;
                }
                b[i - 1] += d[c];
            }
            if j > 0 {
                a[(j - 1) * unknowns + (j - 1)] += 1.0;
                if i > 0 {
                    a[(j - 1) * unknowns + (i - 1)] -= 1.0;
                }
                b[j - 1] -= d[c];
            }
        }
        let x = solve(a, b).ok_or("singular background model (disconnected overlap graph?)")?;
        for (k, &v) in x.iter().enumerate() {
            planes[k + 1][c] = v;
        }
    }
    Ok(planes)
}

/// mBgExec's per-image core: subtract a correction plane from one
/// reprojected image. The area image passes through unchanged.
pub fn apply_background(data: &FitsImage, plane: [f64; 3], cfg: &PipelineConfig) -> FitsImage {
    let mwcs = mosaic_wcs(cfg);
    let mut corr = data.clone();
    for y in 0..corr.height {
        for x in 0..corr.width {
            let v = corr.get(x, y);
            if v.is_finite() {
                let (mx, my) = to_mosaic_xy(&corr, &mwcs, x, y);
                corr.set(x, y, v - (plane[0] + plane[1] * mx + plane[2] * my));
            }
        }
    }
    corr
}

/// Stage 3 — mBgExec (mFitplane + mBgModel + mBgExec): fit a plane to
/// every difference image, solve the least-squares background model
/// (image 0 fixed as gauge), and write corrected images.
pub fn m_bg_exec(
    fs: &dyn FileSystem,
    cfg: &PipelineConfig,
    pairs: &[(usize, usize)],
) -> Result<(), String> {
    let mut diffs = Vec::with_capacity(pairs.len());
    for &(i, j) in pairs {
        diffs.push(read_fits(fs, &diff_path(i, j)).map_err(|e| e.to_string())?);
    }
    let planes = fit_background(pairs, &diffs, cfg.n_images(), cfg)?;

    // Apply corrections.
    for (i, plane) in planes.iter().enumerate() {
        let (data, area) = read_proj(fs, i)?;
        let corr = apply_background(&data, *plane, cfg);
        write_fits(fs, &corr_path(i), &corr).map_err(|e| e.to_string())?;
        write_fits(fs, &corr_area_path(i), &area).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// mAdd's core: area-weighted co-addition of corrected images into
/// the mosaic (data, area) pair. Pure compute.
pub fn coadd(
    corrs: &[(FitsImage, FitsImage)],
    cfg: &PipelineConfig,
) -> Result<(FitsImage, FitsImage), String> {
    let mwcs = mosaic_wcs(cfg);
    let m = cfg.mosaic_size;
    let mut sum = vec![0.0f64; m * m];
    let mut wsum = vec![0.0f64; m * m];
    for (i, (data, area)) in corrs.iter().enumerate() {
        if area.width != data.width || area.height != data.height {
            return Err(format!("area/data shape mismatch for corrected image {}", i));
        }
        let (ox, oy) = to_mosaic_xy(data, &mwcs, 0, 0);
        for y in 0..data.height {
            for x in 0..data.width {
                let v = data.get(x, y);
                let w = area.get(x, y);
                if !v.is_finite() || !w.is_finite() || w <= 0.0 {
                    continue;
                }
                let gx = (ox + x as f64).round() as i64;
                let gy = (oy + y as f64).round() as i64;
                if gx < 0 || gy < 0 || gx >= m as i64 || gy >= m as i64 {
                    continue;
                }
                let idx = gy as usize * m + gx as usize;
                sum[idx] += v * w;
                wsum[idx] += w;
            }
        }
    }
    let mut mosaic = FitsImage::blank(m, m, mwcs);
    let mut marea = FitsImage::blank(m, m, mwcs);
    for idx in 0..m * m {
        if wsum[idx] > 0.0 {
            mosaic.data[idx] = sum[idx] / wsum[idx];
            marea.data[idx] = wsum[idx];
        } else {
            marea.data[idx] = 0.0;
        }
    }
    Ok((mosaic, marea))
}

/// Stage 4 — mAdd: area-weighted co-addition into the mosaic.
pub fn m_add(fs: &dyn FileSystem, cfg: &PipelineConfig) -> Result<(), String> {
    let mut corrs = Vec::with_capacity(cfg.n_images());
    for i in 0..cfg.n_images() {
        let data = read_fits(fs, &corr_path(i)).map_err(|e| e.to_string())?;
        let area = read_fits(fs, &corr_area_path(i)).map_err(|e| e.to_string())?;
        corrs.push((data, area));
    }
    let (mosaic, marea) = coadd(&corrs, cfg)?;
    write_fits(fs, MOSAIC, &mosaic).map_err(|e| e.to_string())?;
    write_fits(fs, MOSAIC_AREA, &marea).map_err(|e| e.to_string())?;
    Ok(())
}

/// Final-step product: the stretched image plus the `min`/`max`
/// statistics the paper's classification keys on.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalImage {
    /// Stretched grayscale raster bytes (PGM payload standing in for
    /// the paper's JPEG — lossless, so bitwise comparison is exact).
    pub bytes: Vec<u8>,
    /// Minimum of the mosaic ("the 'min' value in the output greatly
    /// correlates with the correctness of the final image").
    pub min: f64,
    /// Maximum of the mosaic.
    pub max: f64,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

/// The viewer's core: min–max stretch of a mosaic into the PGM raster
/// plus the statistics classification keys on. Pure compute.
pub fn stretch_mosaic(mosaic: &FitsImage) -> Result<FinalImage, String> {
    let min = mosaic.min();
    let max = mosaic.max();
    if !min.is_finite() || !max.is_finite() || max <= min {
        return Err(format!("degenerate mosaic stretch range [{}, {}]", min, max));
    }
    let scale = 255.0 / (max - min);
    let mut bytes = format!("P5 {} {} 255\n", mosaic.width, mosaic.height).into_bytes();
    for &v in &mosaic.data {
        let b = if v.is_finite() { ((v - min) * scale).clamp(0.0, 255.0) as u8 } else { 0 };
        bytes.push(b);
    }
    Ok(FinalImage { bytes, min, max, width: mosaic.width, height: mosaic.height })
}

/// Final step — generate the stretched image from the mosaic FITS.
pub fn m_viewer(fs: &dyn FileSystem, _cfg: &PipelineConfig) -> Result<FinalImage, String> {
    let mosaic = read_fits(fs, MOSAIC).map_err(|e| e.to_string())?;
    let image = stretch_mosaic(&mosaic)?;
    fs.write_file_chunked(FINAL_IMAGE, &image.bytes, ffis_vfs::BLOCK_SIZE)
        .map_err(|e| e.to_string())?;
    let readback = fs.read_to_vec(FINAL_IMAGE).map_err(|e| e.to_string())?;
    Ok(FinalImage { bytes: readback, ..image })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    fn run_pipeline(cfg: &PipelineConfig) -> (MemFs, FinalImage) {
        let fs = MemFs::new();
        for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
            fs.mkdir(d, 0o755).unwrap();
        }
        let raws = make_raw_images(cfg);
        write_raws(&fs, &raws).unwrap();
        m_proj_exec(&fs, cfg).unwrap();
        let pairs = m_diff_exec(&fs, cfg).unwrap();
        m_bg_exec(&fs, cfg, &pairs).unwrap();
        m_add(&fs, cfg).unwrap();
        let out = m_viewer(&fs, cfg).unwrap();
        (fs, out)
    }

    #[test]
    fn full_pipeline_produces_mosaic() {
        let cfg = PipelineConfig::default();
        let (fs, out) = run_pipeline(&cfg);
        assert!(fs.exists(MOSAIC));
        assert!(fs.exists(MOSAIC_AREA));
        assert!(fs.exists(FINAL_IMAGE));
        assert_eq!(out.width, cfg.mosaic_size);
        assert!(out.min.is_finite() && out.max.is_finite());
        assert!(out.max > out.min + 1.0, "galaxy should create dynamic range");
        assert_eq!(out.bytes.len(), cfg.mosaic_size * cfg.mosaic_size + b"P5 96 96 255\n".len());
    }

    #[test]
    fn mosaic_min_lands_near_paper_range() {
        // The paper's golden min sat in [82.82, 82.83]; our sky model
        // is calibrated to the same neighbourhood.
        let (_, out) = run_pipeline(&PipelineConfig::default());
        assert!(
            out.min > 82.0 && out.min < 83.5,
            "golden mosaic min {} should sit near the paper's 82.8 regime",
            out.min
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let cfg = PipelineConfig::default();
        let (_, a) = run_pipeline(&cfg);
        let (_, b) = run_pipeline(&cfg);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.min, b.min);
    }

    #[test]
    fn background_matching_removes_offsets() {
        // With per-image background planes injected, the corrected
        // mosaic should be close to a run with no offsets at all.
        let cfg = PipelineConfig::default();
        let (_, with_bg) = run_pipeline(&cfg);

        // Reference: same sky, but strip the background planes by
        // rendering image 0's gauge everywhere. The min values should
        // agree to within the noise scale — far tighter than the
        // ±0.6 offsets injected.
        let fs = MemFs::new();
        for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
            fs.mkdir(d, 0o755).unwrap();
        }
        let sky = SkyModel::m101(cfg.seed);
        let raws: Vec<FitsImage> = (0..cfg.n_images())
            .map(|i| {
                sky.render(
                    raw_wcs(&cfg, i),
                    cfg.raw_size,
                    cfg.raw_size,
                    [0.0; 3],
                    cfg.noise_sigma,
                    cfg.seed.wrapping_add(0x51 * i as u64 + 1),
                )
            })
            .collect();
        write_raws(&fs, &raws).unwrap();
        m_proj_exec(&fs, &cfg).unwrap();
        let pairs = m_diff_exec(&fs, &cfg).unwrap();
        m_bg_exec(&fs, &cfg, &pairs).unwrap();
        m_add(&fs, &cfg).unwrap();
        let clean = m_viewer(&fs, &cfg).unwrap();

        assert!(
            (with_bg.min - clean.min).abs() < 0.1,
            "background matching failed: {} vs {}",
            with_bg.min,
            clean.min
        );
    }

    #[test]
    fn overlap_graph_is_connected_enough() {
        let cfg = PipelineConfig::default();
        let fs = MemFs::new();
        for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
            fs.mkdir(d, 0o755).unwrap();
        }
        write_raws(&fs, &make_raw_images(&cfg)).unwrap();
        m_proj_exec(&fs, &cfg).unwrap();
        let pairs = m_diff_exec(&fs, &cfg).unwrap();
        // At least the horizontal chain + vertical links.
        assert!(pairs.len() >= cfg.n_images() - 1, "pairs: {:?}", pairs);
        // Connectivity: union-find over pairs.
        let mut parent: Vec<usize> = (0..cfg.n_images()).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        for &(i, j) in &pairs {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            parent[ri] = rj;
        }
        let root = find(&mut parent, 0);
        for i in 1..cfg.n_images() {
            assert_eq!(find(&mut parent, i), root, "image {} disconnected", i);
        }
    }

    #[test]
    fn mosaic_covers_center() {
        let cfg = PipelineConfig::default();
        let fs = MemFs::new();
        for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
            fs.mkdir(d, 0o755).unwrap();
        }
        write_raws(&fs, &make_raw_images(&cfg)).unwrap();
        m_proj_exec(&fs, &cfg).unwrap();
        let pairs = m_diff_exec(&fs, &cfg).unwrap();
        m_bg_exec(&fs, &cfg, &pairs).unwrap();
        m_add(&fs, &cfg).unwrap();
        let mosaic = read_fits(&fs, MOSAIC).unwrap();
        let c = cfg.mosaic_size / 2;
        assert!(mosaic.get(c, c).is_finite(), "center uncovered");
        // The galaxy makes the center bright.
        assert!(mosaic.get(c, c) > mosaic.min() + 5.0);
    }

    #[test]
    fn footprints_are_within_mosaic() {
        let cfg = PipelineConfig::default();
        let mwcs = mosaic_wcs(&cfg);
        for i in 0..cfg.n_images() {
            let (x0, y0, w, h) = footprint(&raw_wcs(&cfg, i), cfg.raw_size, &mwcs, cfg.mosaic_size);
            assert!(x0 + w <= cfg.mosaic_size);
            assert!(y0 + h <= cfg.mosaic_size);
            assert!(w > 10 && h > 10, "footprint {}x{} too small", w, h);
        }
    }
}
