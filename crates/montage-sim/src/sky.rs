//! Synthetic sky truth model.
//!
//! The paper's Montage workload mosaics "10 2MASS Atlas images in a
//! 0.2 degree area around m101 in the J band" (§IV-C.3). The synthetic
//! sky provides the same ingredients: an extended m101-like galaxy
//! (exponential disk with spiral-arm modulation), a deterministic
//! field of point sources with Gaussian PSFs, and a sky background
//! whose level puts the final mosaic minimum in the ~82.8 range the
//! paper's classification thresholds reference.

use ffis_core::Rng;
use fitslite::{FitsImage, Wcs};

/// m101's J2000 coordinates (degrees), as in the paper's field.
pub const M101_RA: f64 = 210.802;
/// m101 declination.
pub const M101_DEC: f64 = 54.349;

/// A point source.
#[derive(Debug, Clone, Copy)]
pub struct Star {
    /// RA (degrees).
    pub ra: f64,
    /// Dec (degrees).
    pub dec: f64,
    /// Peak intensity.
    pub flux: f64,
    /// PSF width (degrees).
    pub sigma: f64,
}

/// The deterministic sky model.
#[derive(Debug, Clone)]
pub struct SkyModel {
    /// Point sources.
    pub stars: Vec<Star>,
    /// Galaxy centre.
    pub galaxy_center: (f64, f64),
    /// Galaxy peak intensity.
    pub galaxy_flux: f64,
    /// Galaxy disk scale length (degrees).
    pub galaxy_scale: f64,
    /// Sky background level.
    pub background: f64,
}

impl SkyModel {
    /// The m101 field used throughout the reproduction.
    pub fn m101(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let stars = (0..60)
            .map(|_| Star {
                ra: M101_RA + rng.uniform(-0.12, 0.12),
                dec: M101_DEC + rng.uniform(-0.12, 0.12),
                flux: 2.0 * (-rng.next_f64().max(1e-9).ln()).powf(1.5),
                sigma: 0.0012 + 0.0006 * rng.next_f64(),
            })
            .collect();
        SkyModel {
            stars,
            galaxy_center: (M101_RA, M101_DEC),
            galaxy_flux: 45.0,
            galaxy_scale: 0.02,
            background: 82.9,
        }
    }

    /// Sky surface brightness at a point.
    pub fn intensity(&self, ra: f64, dec: f64) -> f64 {
        let mut v = self.background;
        // Galaxy: exponential disk with a two-arm spiral modulation.
        let dra = (ra - self.galaxy_center.0) * self.galaxy_center.1.to_radians().cos();
        let ddec = dec - self.galaxy_center.1;
        let r = (dra * dra + ddec * ddec).sqrt();
        if r < 10.0 * self.galaxy_scale {
            let theta = ddec.atan2(dra);
            let arm = 1.0 + 0.35 * (2.0 * theta - r / self.galaxy_scale * 2.2).cos();
            v += self.galaxy_flux * (-r / self.galaxy_scale).exp() * arm;
        }
        // Stars.
        for s in &self.stars {
            let dx = (ra - s.ra) * 0.58; // ~cos(dec)
            let dy = dec - s.dec;
            let d2 = dx * dx + dy * dy;
            if d2 < 25.0 * s.sigma * s.sigma {
                v += s.flux * (-0.5 * d2 / (s.sigma * s.sigma)).exp();
            }
        }
        v
    }

    /// Render an observation: the sky through a WCS, plus an
    /// instrument background plane (the per-image offset mBgExec must
    /// remove) and deterministic pixel noise.
    pub fn render(
        &self,
        wcs: Wcs,
        width: usize,
        height: usize,
        bg_plane: [f64; 3],
        noise_sigma: f64,
        seed: u64,
    ) -> FitsImage {
        let mut rng = Rng::seed_from(seed);
        let mut img = FitsImage::blank(width, height, wcs);
        for y in 0..height {
            for x in 0..width {
                let (ra, dec) = wcs.pix_to_sky(x as f64, y as f64);
                let v = self.intensity(ra, dec)
                    + bg_plane[0]
                    + bg_plane[1] * x as f64
                    + bg_plane[2] * y as f64
                    + noise_sigma * rng.normal();
                img.set(x, y, v);
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wcs(center_ra: f64, center_dec: f64, n: usize) -> Wcs {
        Wcs {
            crval1: center_ra,
            crval2: center_dec,
            crpix1: (n as f64 + 1.0) / 2.0,
            crpix2: (n as f64 + 1.0) / 2.0,
            cdelt1: -0.2 / n as f64,
            cdelt2: 0.2 / n as f64,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SkyModel::m101(7);
        let b = SkyModel::m101(7);
        assert_eq!(a.stars.len(), b.stars.len());
        assert_eq!(a.intensity(M101_RA, M101_DEC), b.intensity(M101_RA, M101_DEC));
        let c = SkyModel::m101(8);
        assert_ne!(a.intensity(210.75, 54.3), c.intensity(210.75, 54.3));
    }

    #[test]
    fn galaxy_peaks_at_center() {
        let sky = SkyModel::m101(7);
        let center = sky.intensity(M101_RA, M101_DEC);
        let off = sky.intensity(M101_RA + 0.09, M101_DEC + 0.09);
        assert!(center > off + 10.0, "galaxy must dominate: {} vs {}", center, off);
    }

    #[test]
    fn background_sets_the_floor() {
        let sky = SkyModel::m101(7);
        // Far from galaxy and stars the intensity approaches the
        // background level.
        let mut min = f64::INFINITY;
        for i in 0..100 {
            let ra = M101_RA - 0.1 + 0.002 * i as f64;
            let v = sky.intensity(ra, M101_DEC - 0.11);
            min = min.min(v);
        }
        assert!(min >= sky.background - 1e-9);
        assert!(min < sky.background + 0.5);
    }

    #[test]
    fn render_applies_plane_and_noise() {
        let sky = SkyModel::m101(7);
        let w = wcs(M101_RA, M101_DEC, 16);
        let clean = sky.render(w, 16, 16, [0.0; 3], 0.0, 1);
        let offset = sky.render(w, 16, 16, [0.5, 0.0, 0.0], 0.0, 1);
        for (a, b) in clean.data.iter().zip(&offset.data) {
            assert!((b - a - 0.5).abs() < 1e-12);
        }
        let noisy = sky.render(w, 16, 16, [0.0; 3], 0.05, 2);
        assert_ne!(clean.data, noisy.data);
        let gradient = sky.render(w, 16, 16, [0.0, 0.1, 0.0], 0.0, 1);
        assert!((gradient.get(15, 0) - clean.get(15, 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn render_is_deterministic() {
        let sky = SkyModel::m101(7);
        let w = wcs(M101_RA, M101_DEC, 12);
        let a = sky.render(w, 12, 12, [0.1, 0.01, 0.0], 0.03, 5);
        let b = sky.render(w, 12, 12, [0.1, 0.01, 0.0], 0.03, 5);
        assert_eq!(a.data, b.data);
    }
}
