//! # ffis-repro — umbrella crate for the FFIS reproduction workspace
//!
//! Reproduction of *"Characterizing Impacts of Storage Faults on HPC
//! Applications: A Methodology and Insights"* (CLUSTER 2021). This
//! crate owns the cross-crate examples (`examples/`) and integration
//! tests (`tests/`) and re-exports the workspace layers:
//!
//! * [`ffis_vfs`] — the in-process FFISFS chokepoint: `FileSystem`
//!   trait, CoW-paged `MemFs` with `fork()`, interceptors, and the
//!   golden-trace capture/replay engine.
//! * [`ffis_core`] — fault models, injectors, campaign runner, and the
//!   byte-by-byte metadata scanner with its fork+replay fast path.
//! * [`hdf5lite`] / [`fitslite`] — scientific file-format substrates.
//! * [`nyx_sim`] / [`qmc_sim`] / [`montage_sim`] — the paper's three
//!   workloads as laptop-scale stand-ins.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ffis_core;
pub use ffis_vfs;
pub use fitslite;
pub use hdf5lite;
pub use montage_sim;
pub use nyx_sim;
pub use qmc_sim;
