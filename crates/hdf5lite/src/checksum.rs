//! Optional metadata checksumming (reproduction extension).
//!
//! The paper observes that the HDF5 v0 metadata it studies carries no
//! integrity protection beyond signatures — which is exactly why six
//! fields can silently corrupt the decoded data — and discusses
//! exploiting field correlations instead of replication (§V-A). Later
//! HDF5 versions (v2 object headers, v2+ superblocks) add Fletcher-32
//! checksums over metadata structures. This module provides that
//! protection as an opt-in: the writer seals the packed metadata block
//! with a Fletcher-32 checksum stored in the superblock's (otherwise
//! undefined) Driver Information slot, and the reader verifies it
//! before trusting any field. With the seal on, every metadata fault
//! — including the six silent ones — becomes a detected integrity
//! failure (the crash class), at the cost of one more invariant to
//! maintain on every metadata update.

use crate::types::{Hdf5Error, Hdf5Result, SUPERBLOCK_SIZE};

/// Byte offset of the superblock Driver Information Address field —
/// repurposed as the metadata seal when checksumming is enabled.
pub const SEAL_OFFSET: u64 = 48;

/// Marker in the seal's top 16 bits distinguishing a checksum seal
/// from the `UNDEFINED_ADDR` the plain format stores.
pub const SEAL_MARKER: u16 = 0xC5F3;

/// Fletcher-32 over a byte stream (odd trailing byte zero-padded),
/// matching the checksum HDF5's v2 structures use.
pub fn fletcher32(data: &[u8]) -> u32 {
    let mut sum1: u32 = 0;
    let mut sum2: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        let word = u16::from_le_bytes([c[0], c[1]]) as u32;
        sum1 = (sum1 + word) % 65535;
        sum2 = (sum2 + sum1) % 65535;
    }
    if let [last] = chunks.remainder() {
        sum1 = (sum1 + *last as u32) % 65535;
        sum2 = (sum2 + sum1) % 65535;
    }
    (sum2 << 16) | sum1
}

/// Pack a seal word: marker | metadata size (24 bits) | reserved.
/// The checksum itself travels in the adjacent 4 bytes of the 8-byte
/// field: layout `[marker:16][size:24][csum-hi:24]`... to keep parsing
/// trivial we use the full 8 bytes as `[marker:16][size:16][csum:32]`
/// with the size expressed in 8-byte units (supports metadata blocks
/// up to 512 KiB — far beyond any file this library plans).
pub fn pack_seal(metadata_size: u64, checksum: u32) -> Hdf5Result<u64> {
    if !metadata_size.is_multiple_of(8) {
        return Err(Hdf5Error::new("metadata size not 8-aligned"));
    }
    let units = metadata_size / 8;
    if units > u16::MAX as u64 {
        return Err(Hdf5Error::new(format!(
            "metadata block too large to seal: {} bytes",
            metadata_size
        )));
    }
    Ok(((SEAL_MARKER as u64) << 48) | (units << 32) | checksum as u64)
}

/// Unpack a seal word; `None` when the marker is absent (unsealed file).
pub fn unpack_seal(word: u64) -> Option<(u64, u32)> {
    if (word >> 48) as u16 != SEAL_MARKER {
        return None;
    }
    let units = (word >> 32) & 0xFFFF;
    Some((units * 8, word as u32))
}

/// Compute the seal checksum for a metadata image: Fletcher-32 over
/// the block with the 8-byte seal field zeroed (it cannot cover
/// itself).
pub fn seal_checksum(metadata: &[u8]) -> u32 {
    let mut scratch = metadata.to_vec();
    let start = SEAL_OFFSET as usize;
    if scratch.len() >= start + 8 {
        scratch[start..start + 8].fill(0);
    }
    fletcher32(&scratch)
}

/// Verify a sealed file image. `Ok(false)` = file is unsealed;
/// `Ok(true)` = seal present and valid; `Err` = seal present and the
/// metadata fails verification.
pub fn verify_seal(file_bytes: &[u8]) -> Hdf5Result<bool> {
    if file_bytes.len() < SUPERBLOCK_SIZE as usize {
        return Err(Hdf5Error::new("file smaller than superblock"));
    }
    let start = SEAL_OFFSET as usize;
    let word = u64::from_le_bytes(file_bytes[start..start + 8].try_into().unwrap());
    let Some((size, stored)) = unpack_seal(word) else {
        return Ok(false);
    };
    if size as usize > file_bytes.len() || size < SUPERBLOCK_SIZE {
        return Err(Hdf5Error::new(format!("sealed metadata size {} implausible", size)));
    }
    let computed = seal_checksum(&file_bytes[..size as usize]);
    if computed != stored {
        return Err(Hdf5Error::new(format!(
            "metadata checksum mismatch: stored {:#010x}, computed {:#010x}",
            stored, computed
        )));
    }
    Ok(true)
}

/// Recompute and rewrite the seal of a sealed file after in-place
/// metadata edits (the repair path). No-op (`Ok(false)`) for unsealed
/// files.
pub fn reseal(fs: &dyn ffis_vfs::FileSystem, path: &str) -> Hdf5Result<bool> {
    use ffis_vfs::FileSystemExt;
    let bytes = fs.read_to_vec(path).map_err(Hdf5Error::from)?;
    if bytes.len() < SUPERBLOCK_SIZE as usize {
        return Err(Hdf5Error::new("file smaller than superblock"));
    }
    let start = SEAL_OFFSET as usize;
    let word = u64::from_le_bytes(bytes[start..start + 8].try_into().unwrap());
    let Some((size, _)) = unpack_seal(word) else {
        return Ok(false);
    };
    if size as usize > bytes.len() {
        return Err(Hdf5Error::new("sealed metadata size beyond file"));
    }
    let csum = seal_checksum(&bytes[..size as usize]);
    let new_word = pack_seal(size, csum)?;
    let fd = fs.open(path, ffis_vfs::OpenFlags::read_write()).map_err(Hdf5Error::from)?;
    fs.pwrite(fd, &new_word.to_le_bytes(), SEAL_OFFSET).map_err(Hdf5Error::from)?;
    fs.release(fd).map_err(Hdf5Error::from)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fletcher_reference_behaviour() {
        // Deterministic, order-sensitive, length-sensitive.
        assert_eq!(fletcher32(&[]), 0);
        let a = fletcher32(b"abcde");
        let b = fletcher32(b"abced");
        let c = fletcher32(b"abcd");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fletcher32(b"abcde"));
    }

    #[test]
    fn fletcher_detects_single_bit_flips() {
        let data = vec![0x5Au8; 1024];
        let base = fletcher32(&data);
        for byte in [0usize, 1, 500, 1023] {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(fletcher32(&d), base, "flip at {}:{} undetected", byte, bit);
            }
        }
    }

    #[test]
    fn seal_pack_unpack_roundtrip() {
        let word = pack_seal(2184, 0xDEADBEEF).unwrap();
        assert_eq!(unpack_seal(word), Some((2184, 0xDEADBEEF)));
        assert_eq!(unpack_seal(u64::MAX), None); // UNDEFINED_ADDR
        assert_eq!(unpack_seal(0), None);
        assert!(pack_seal(2185, 0).is_err()); // unaligned
        assert!(pack_seal((1 << 19) - 8, 0).is_ok()); // largest sealable block
        assert!(pack_seal(1 << 19, 0).is_err()); // one unit too large
        assert!(pack_seal(1 << 30, 0).is_err());
    }

    #[test]
    fn seal_checksum_ignores_the_seal_field_itself() {
        let mut img = vec![7u8; 256];
        let c1 = seal_checksum(&img);
        img[SEAL_OFFSET as usize..SEAL_OFFSET as usize + 8].copy_from_slice(&[9; 8]);
        assert_eq!(seal_checksum(&img), c1);
        img[0] ^= 1;
        assert_ne!(seal_checksum(&img), c1);
    }

    #[test]
    fn verify_seal_states() {
        // Unsealed: driver slot holds UNDEFINED.
        let mut img = vec![0u8; 256];
        img[SEAL_OFFSET as usize..SEAL_OFFSET as usize + 8]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(verify_seal(&img), Ok(false));

        // Sealed and valid.
        let mut sealed = vec![3u8; 256];
        let csum = seal_checksum(&sealed[..128]);
        let word = pack_seal(128, csum).unwrap();
        sealed[SEAL_OFFSET as usize..SEAL_OFFSET as usize + 8].copy_from_slice(&word.to_le_bytes());
        assert_eq!(verify_seal(&sealed), Ok(true));

        // Corrupt a covered byte: must fail.
        let mut bad = sealed.clone();
        bad[100] ^= 0x40;
        assert!(verify_seal(&bad).is_err());
        // Corrupt the seal itself: must fail (either marker vanishes
        // -> unsealed is NOT acceptable for silent flips within the
        // checksum bits, which keep the marker).
        let mut bad_seal = sealed.clone();
        bad_seal[SEAL_OFFSET as usize] ^= 0x01; // low checksum bits
        assert!(verify_seal(&bad_seal).is_err());

        // Too-short file.
        assert!(verify_seal(&[0u8; 10]).is_err());
    }
}
