//! The file-creation protocol.
//!
//! §IV-D of the paper describes the HDF5 write sequence FFIS exploits:
//! "when an HDF5 file is created, the HDF5 library first locks the
//! file to prevent the concurrent writes from other processes, and
//! then performs multiple writes to store the raw data; after that,
//! it packs all metadata and write\[s\] them to the file and unlocks
//! the file for later access."
//!
//! [`write_file`] reproduces that exact sequence on a
//! [`FileSystem`]: exclusive lock → raw-data `pwrite`s in
//! 4 KiB chunks → one packed metadata write (**the penultimate
//! write**) → an 8-byte End-of-File-Address patch (the final write)
//! → unlock/close. The metadata scanner locates the penultimate write
//! and scans its buffer byte-by-byte.

use ffis_vfs::{FileSystem, LockKind, BLOCK_SIZE};

use crate::emitter::Span;
use crate::encode::encode_metadata;
use crate::layout::{plan, Node, Plan};
use crate::types::{Hdf5Error, Hdf5Result, EOF_ADDR_OFFSET};

/// Write options.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Raw-data chunk size per `pwrite` (default: one 4 KiB block —
    /// the population of writes the fault injector samples from).
    pub chunk_size: usize,
    /// Seal the metadata block with a Fletcher-32 checksum stored in
    /// the superblock's Driver Information slot (reproduction
    /// extension; see [`crate::checksum`]). Off by default — the
    /// paper's v0-format files carry no metadata checksums, which is
    /// precisely what creates the SDC exposure it studies.
    pub seal_metadata: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions { chunk_size: BLOCK_SIZE, seal_metadata: false }
    }
}

/// One dataset's raw-data placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRegion {
    /// Slash path of the dataset.
    pub path: String,
    /// First byte of the raw data (== the stored ARD).
    pub addr: u64,
    /// Raw data byte length.
    pub size: u64,
}

/// Report of a completed write.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Packed metadata size (== correct ARD of the first dataset).
    pub metadata_size: u64,
    /// Final file size.
    pub eof: u64,
    /// Byte-exact field map of the metadata block.
    pub spans: Vec<Span>,
    /// Raw-data regions, in layout order.
    pub data_regions: Vec<DataRegion>,
    /// Number of raw-data chunk writes issued (the paper's "large
    /// number of I/O operations").
    pub data_writes: usize,
}

fn dataset_paths(plan: &Plan) -> Vec<String> {
    fn walk(g: &crate::layout::PlannedGroup, prefix: &str, out: &mut Vec<String>) {
        for c in &g.children {
            match c {
                crate::layout::PlannedChild::Group(sub) => {
                    let p = format!("{}/{}", prefix, sub.name);
                    walk(sub, &p, out);
                }
                crate::layout::PlannedChild::Dataset(d) => {
                    out.push(format!("{}/{}", prefix, d.dataset.name));
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(&plan.root, "", &mut out);
    out
}

/// Write an HDF5 file following the paper's creation protocol.
pub fn write_file(
    fs: &dyn FileSystem,
    path: &str,
    root: &Node,
    opts: &WriteOptions,
) -> Hdf5Result<WriteReport> {
    let plan = plan(root)?;
    let chunk = opts.chunk_size.max(1);

    let fd = fs.create(path, 0o644)?;
    // Lock the file for the duration of creation.
    fs.lock(fd, LockKind::Exclusive)?;

    // Phase 1: raw data, many chunked writes.
    let mut data_regions = Vec::new();
    let mut data_writes = 0usize;
    let paths = dataset_paths(&plan);
    for (pd, dpath) in plan.datasets().into_iter().zip(paths) {
        let raw = encode_values(&pd.dataset)?;
        let mut off = 0usize;
        while off < raw.len() {
            let end = (off + chunk).min(raw.len());
            let n = fs.pwrite(fd, &raw[off..end], pd.data_addr + off as u64)?;
            if n == 0 {
                fs.release(fd).ok();
                return Err(Hdf5Error::new("zero-length data write"));
            }
            // Trust the reported length, as a real writer does —
            // under fault injection it may be a lie, which is the
            // point of the experiment.
            off += n;
            data_writes += 1;
        }
        data_regions.push(DataRegion {
            path: dpath,
            addr: pd.data_addr,
            size: pd.dataset.data_size(),
        });
    }

    // Phase 2: the packed metadata block — the penultimate write.
    let (mut metadata, spans) = encode_metadata(&plan);
    if opts.seal_metadata {
        // The checksum must cover the *final* on-disk metadata state,
        // i.e. with the EOF address already patched (phase 3 below
        // writes that exact value).
        let mut final_image = metadata.clone();
        final_image[EOF_ADDR_OFFSET as usize..EOF_ADDR_OFFSET as usize + 8]
            .copy_from_slice(&plan.eof.to_le_bytes());
        let csum = crate::checksum::seal_checksum(&final_image);
        let word = crate::checksum::pack_seal(plan.metadata_size, csum)?;
        let s = crate::checksum::SEAL_OFFSET as usize;
        metadata[s..s + 8].copy_from_slice(&word.to_le_bytes());
    }
    fs.pwrite(fd, &metadata, 0)?;

    // Phase 3: patch the End-of-File address — the final write.
    fs.pwrite(fd, &plan.eof.to_le_bytes(), EOF_ADDR_OFFSET)?;

    fs.unlock(fd)?;
    fs.fsync(fd)?;
    fs.release(fd)?;

    Ok(WriteReport {
        metadata_size: plan.metadata_size,
        eof: plan.eof,
        spans,
        data_regions,
        data_writes,
    })
}

/// Encode dataset values through the stored datatype, padded to
/// 8-byte alignment of the region.
fn encode_values(d: &crate::layout::Dataset) -> Hdf5Result<Vec<u8>> {
    let elem = d.dtype.size as usize;
    let mut raw = Vec::with_capacity(d.data.len() * elem);
    if d.dtype == crate::floatspec::FloatSpec::ieee_f32() {
        for &v in &d.data {
            raw.extend_from_slice(&(v as f32).to_le_bytes());
        }
    } else if d.dtype == crate::floatspec::FloatSpec::ieee_f64() {
        for &v in &d.data {
            raw.extend_from_slice(&v.to_le_bytes());
        }
    } else {
        for &v in &d.data {
            raw.extend_from_slice(&d.dtype.encode(v)?);
        }
    }
    let aligned = crate::types::align8(raw.len() as u64) as usize;
    raw.resize(aligned, 0);
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Dataset, FileBuilder};
    use ffis_vfs::{FfisFs, FileSystemExt, MemFs, Primitive, TraceInterceptor};
    use std::sync::Arc;

    fn nyx_root(n: usize) -> Node {
        let data: Vec<f32> = (0..n * n * n).map(|i| 1.0 + (i % 7) as f32 * 0.1).collect();
        let mut b = FileBuilder::new();
        b.add_dataset(
            "/native_fields/baryon_density",
            Dataset::f32("baryon_density", &[n as u64; 3], &data),
        )
        .unwrap();
        b.into_root()
    }

    #[test]
    fn write_produces_expected_file_size() {
        let fs = MemFs::new();
        let report = write_file(&fs, "/plt.h5", &nyx_root(8), &WriteOptions::default()).unwrap();
        let meta = fs.getattr("/plt.h5").unwrap();
        assert_eq!(meta.size, report.eof);
        assert_eq!(report.eof, report.metadata_size + 8 * 8 * 8 * 4);
        assert_eq!(report.data_regions.len(), 1);
        assert_eq!(report.data_regions[0].path, "/native_fields/baryon_density");
        assert_eq!(report.data_regions[0].addr, report.metadata_size);
    }

    #[test]
    fn protocol_order_lock_data_metadata_patch_unlock() {
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        let trace = Arc::new(TraceInterceptor::new());
        ffs.attach(trace.clone());
        let report = write_file(&*ffs, "/p.h5", &nyx_root(8), &WriteOptions::default()).unwrap();

        let recs = trace.records();
        let kinds: Vec<Primitive> = recs.iter().map(|r| r.primitive).collect();
        // Lock before any write; unlock after all writes.
        let lock_pos = kinds.iter().position(|&p| p == Primitive::Lock).unwrap();
        let unlock_pos = kinds.iter().position(|&p| p == Primitive::Unlock).unwrap();
        let first_write = kinds.iter().position(|&p| p == Primitive::Write).unwrap();
        let last_write = kinds.iter().rposition(|&p| p == Primitive::Write).unwrap();
        assert!(lock_pos < first_write);
        assert!(unlock_pos > last_write);

        // Writes: data chunks, then metadata at offset 0 (penultimate),
        // then the 8-byte EOF patch (final).
        let writes = trace.records_of(Primitive::Write);
        assert_eq!(writes.len(), report.data_writes + 2);
        let penultimate = &writes[writes.len() - 2];
        assert_eq!(penultimate.offset, Some(0));
        assert_eq!(penultimate.len as u64, report.metadata_size);
        let last = &writes[writes.len() - 1];
        assert_eq!(last.offset, Some(crate::types::EOF_ADDR_OFFSET));
        assert_eq!(last.len, 8);
        // Data writes are 4 KiB chunks.
        assert!(writes[..writes.len() - 2].iter().all(|w| w.len <= BLOCK_SIZE));
    }

    #[test]
    fn eof_field_patched_in_final_file() {
        let fs = MemFs::new();
        let report = write_file(&fs, "/p.h5", &nyx_root(4), &WriteOptions::default()).unwrap();
        let bytes = fs.read_to_vec("/p.h5").unwrap();
        let eof = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        assert_eq!(eof, report.eof);
    }

    #[test]
    fn raw_data_bytes_are_ieee_f32() {
        let fs = MemFs::new();
        let data = [1.25f32, -2.5, 81.66, 0.0];
        let mut b = FileBuilder::new();
        b.add_dataset("/d", Dataset::f32("d", &[4], &data)).unwrap();
        let report = write_file(&fs, "/f.h5", &b.into_root(), &WriteOptions::default()).unwrap();
        let bytes = fs.read_to_vec("/f.h5").unwrap();
        let base = report.metadata_size as usize;
        for (i, &v) in data.iter().enumerate() {
            let got = f32::from_le_bytes(bytes[base + 4 * i..base + 4 * i + 4].try_into().unwrap());
            assert_eq!(got, v);
        }
    }

    #[test]
    fn chunked_write_count_scales_with_data() {
        let fs = MemFs::new();
        let report = write_file(&fs, "/big.h5", &nyx_root(16), &WriteOptions::default()).unwrap();
        // 16³ × 4 B = 16 KiB → 4 chunks of 4 KiB.
        assert_eq!(report.data_writes, 4);
        let small = write_file(&fs, "/small.h5", &nyx_root(4), &WriteOptions::default()).unwrap();
        assert_eq!(small.data_writes, 1);
    }

    #[test]
    fn lock_released_after_write() {
        let fs = MemFs::new();
        write_file(&fs, "/l.h5", &nyx_root(4), &WriteOptions::default()).unwrap();
        // A second exclusive lock must succeed — the writer unlocked.
        let fd = fs.open("/l.h5", ffis_vfs::OpenFlags::read_write()).unwrap();
        fs.lock(fd, LockKind::Exclusive).unwrap();
        fs.release(fd).unwrap();
        assert_eq!(fs.open_handles(), 0);
    }

    #[test]
    fn custom_chunk_size() {
        let fs = MemFs::new();
        let opts = WriteOptions { chunk_size: 1024, ..Default::default() };
        let report = write_file(&fs, "/c.h5", &nyx_root(8), &opts).unwrap();
        // 8³ × 4 B = 2 KiB → 2 chunks of 1 KiB.
        assert_eq!(report.data_writes, 2);
    }

    #[test]
    fn sealed_file_reads_back_and_detects_corruption() {
        use ffis_vfs::FileSystem;
        let fs = MemFs::new();
        let opts = WriteOptions { seal_metadata: true, ..Default::default() };
        let report = write_file(&fs, "/s.h5", &nyx_root(4), &opts).unwrap();
        // Clean sealed file reads fine.
        let info =
            crate::reader::read_dataset(&fs, "/s.h5", "/native_fields/baryon_density").unwrap();
        assert_eq!(info.values.len(), 64);

        // A silent SDC field (exponent bias) now fails verification.
        let span = report.spans.iter().find(|s| s.name.contains("ExponentBias")).unwrap();
        let fd = fs.open("/s.h5", ffis_vfs::OpenFlags::read_write()).unwrap();
        let mut b = [0u8; 1];
        fs.pread(fd, &mut b, span.start).unwrap();
        b[0] ^= 0x0C;
        fs.pwrite(fd, &b, span.start).unwrap();
        fs.release(fd).unwrap();
        let err = crate::reader::read_dataset(&fs, "/s.h5", "/native_fields/baryon_density");
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("checksum"));
    }

    #[test]
    fn unsealed_files_are_unaffected_by_seal_check() {
        let fs = MemFs::new();
        write_file(&fs, "/p.h5", &nyx_root(4), &WriteOptions::default()).unwrap();
        let info =
            crate::reader::read_dataset(&fs, "/p.h5", "/native_fields/baryon_density").unwrap();
        assert_eq!(info.values.len(), 64);
    }
}
