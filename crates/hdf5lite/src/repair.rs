//! Detection and auto-correction of faulty metadata fields (paper §V-A).
//!
//! The paper proposes an *average-value-based* detector for Nyx-like
//! data whose mean is pinned by a conservation law ("the average value
//! of original input data in Nyx should remain 1 due to the law of
//! mass conservation"), plus field-specific corrections:
//!
//! 1. mean is a power of two ≠ 1 → **Exponent Bias** fault; re-scale
//!    the bias by the observed log₂ shift.
//! 2. mean drifts into (1, 2) → a float-property fault; repair by
//!    enforcing the representation constraints
//!    `ExponentLocation == MantissaSize` and
//!    `MantissaSize + ExponentSize == BitPrecision − 1`.
//! 3. mean still 1 but halos shifted → **Address of Raw Data** fault;
//!    since metadata is stored ahead of data, the correct ARD equals
//!    the metadata size — restore it unconditionally.

use ffis_vfs::{FileSystem, OpenFlags};

use crate::floatspec::Normalization;
use crate::reader::{open, DatasetInfo};
use crate::types::{Hdf5Error, Hdf5Result};

/// What the average-value detector concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Diagnosis {
    /// Mean matches the conservation law.
    Healthy,
    /// Mean scaled by 2^k → exponent bias fault.
    ExponentBias {
        /// Observed log₂ shift (mean = expected · 2^k).
        log2_shift: i32,
    },
    /// Mean in (expected, 2·expected) → float-field fault.
    FloatFields,
    /// Mean deviates in a pattern none of the rules explain.
    Unknown,
}

/// Run the paper's average-value classification.
pub fn diagnose(mean: f64, expected_mean: f64, rel_tol: f64) -> Diagnosis {
    if !mean.is_finite() || expected_mean <= 0.0 {
        return Diagnosis::Unknown;
    }
    let ratio = mean / expected_mean;
    if (ratio - 1.0).abs() <= rel_tol {
        return Diagnosis::Healthy;
    }
    if ratio > 0.0 {
        let k = ratio.log2();
        let k_round = k.round();
        if (k - k_round).abs() <= rel_tol && k_round != 0.0 {
            return Diagnosis::ExponentBias { log2_shift: k_round as i32 };
        }
    }
    // The paper's rule covers means drifting into (1, 2); implied-bit
    // loss additionally lands the mean *below* 1 (Table IV: 0.55), so
    // anything in (0, 2) that is not a clean power-of-two scale is
    // classified as a float-property fault.
    if ratio > 0.0 && ratio < 2.0 {
        return Diagnosis::FloatFields;
    }
    Diagnosis::Unknown
}

/// One applied correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correction {
    /// Field that was patched.
    pub field: String,
    /// Human-readable change description.
    pub change: String,
}

/// Report from a repair attempt.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Detector conclusion before any patch.
    pub diagnosis: Diagnosis,
    /// Corrections written back to the file.
    pub corrections: Vec<Correction>,
    /// Dataset mean before repair.
    pub mean_before: f64,
    /// Dataset mean after repair.
    pub mean_after: f64,
}

fn patch(fs: &dyn FileSystem, file: &str, offset: u64, bytes: &[u8]) -> Hdf5Result<()> {
    let fd = fs.open(file, OpenFlags::read_write())?;
    fs.pwrite(fd, bytes, offset)?;
    fs.release(fd)?;
    Ok(())
}

fn mean_of(info: &DatasetInfo) -> f64 {
    if info.values.is_empty() {
        0.0
    } else {
        info.values.iter().sum::<f64>() / info.values.len() as f64
    }
}

/// Detect and repair metadata faults on `dataset` in `file`, given the
/// conservation-law mean the data must satisfy. Returns the repair
/// report; `Err` means the file was unreadable (crash-class faults are
/// beyond the scope of this corrector, as in the paper).
pub fn repair_file(
    fs: &dyn FileSystem,
    file: &str,
    dataset: &str,
    expected_mean: f64,
) -> Hdf5Result<RepairReport> {
    let h5 = open(fs, file)?;
    let info = h5.read_dataset(dataset)?;
    let mean_before = mean_of(&info);
    let diagnosis = diagnose(mean_before, expected_mean, 1e-3);
    let mut corrections = Vec::new();

    // Constraint-based float-field repair (paper §V-A method 2): the
    // representation invariants are checkable from the metadata alone
    // — `ExponentLocation == MantissaSize`, `MantissaSize +
    // ExponentSize == BitPrecision − 1`, mantissa at bit 0, implied
    // normalization — so a violated datatype message is detected and
    // repaired even when the data mean happens to look plausible.
    {
        let precision = info.spec.bit_precision;
        let exp_size = info.spec.exponent_size;
        if precision == 0 || u16::from(exp_size) + 1 >= precision {
            return Err(Hdf5Error::new("cannot repair: precision/exponent size implausible"));
        }
        let mant_size = (precision - 1 - u16::from(exp_size)) as u8;
        if info.spec.mantissa_size != mant_size {
            patch(fs, file, info.offsets.mantissa_size, &[mant_size])?;
            corrections.push(Correction {
                field: "Datatype.MantissaSize".into(),
                change: format!("{} -> {}", info.spec.mantissa_size, mant_size),
            });
        }
        if info.spec.exponent_location != mant_size {
            patch(fs, file, info.offsets.exponent_location, &[mant_size])?;
            corrections.push(Correction {
                field: "Datatype.ExponentLocation".into(),
                change: format!("{} -> {}", info.spec.exponent_location, mant_size),
            });
        }
        if info.spec.mantissa_location != 0 {
            patch(fs, file, info.offsets.mantissa_location, &[0])?;
            corrections.push(Correction {
                field: "Datatype.MantissaLocation".into(),
                change: format!("{} -> 0", info.spec.mantissa_location),
            });
        }
        if info.spec.normalization != Normalization::Implied {
            patch(fs, file, info.offsets.bitfield0, &[Normalization::Implied.bits() << 4])?;
            corrections.push(Correction {
                field: "Datatype.MantissaNormalization".into(),
                change: format!("{:?} -> Implied", info.spec.normalization),
            });
        }
    }

    // Mean-based exponent-bias repair: the bias value has no internal
    // constraint, so only the conservation law can expose it.
    if corrections.is_empty() {
        if let Diagnosis::ExponentBias { log2_shift } = diagnosis {
            // mean scaled by 2^k ⇒ bias was shifted by −k; add it back.
            let new_bias = (info.spec.exponent_bias as i64 + log2_shift as i64).max(0) as u32;
            patch(fs, file, info.offsets.exponent_bias, &new_bias.to_le_bytes())?;
            corrections.push(Correction {
                field: "Datatype.ExponentBias".into(),
                change: format!(
                    "{} -> {} (log2 shift {})",
                    info.spec.exponent_bias, new_bias, log2_shift
                ),
            });
        }
    }

    // ARD invariant: metadata precedes data, so the correct ARD is
    // the metadata extent. This also catches the mean-silent ARD
    // fault the average-value detector cannot see.
    let extent = h5.metadata_extent()?;
    if info.stored_ard != extent {
        patch(fs, file, info.offsets.layout_ard, &extent.to_le_bytes())?;
        corrections.push(Correction {
            field: "Layout.AddressOfRawData".into(),
            change: format!("{:#x} -> {:#x} (metadata size)", info.stored_ard, extent),
        });
    }

    // A sealed file whose metadata we just patched needs its seal
    // recomputed, or the very repair would read as corruption.
    if !corrections.is_empty() {
        crate::checksum::reseal(fs, file)?;
    }

    let mean_after = mean_of(&open(fs, file)?.read_dataset(dataset)?);
    Ok(RepairReport { diagnosis, corrections, mean_before, mean_after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Dataset, FileBuilder};
    use crate::writer::{write_file, WriteOptions};
    use ffis_vfs::MemFs;

    const DS: &str = "/native_fields/baryon_density";

    /// Data with mean exactly 1.0 (mass conservation).
    fn write_conserved(fs: &MemFs) -> crate::writer::WriteReport {
        let n = 8usize;
        let mut data: Vec<f32> =
            (0..n * n * n).map(|i| 1.0 + 0.25 * ((i % 5) as f32 - 2.0) / 2.0).collect();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        for v in &mut data {
            *v /= mean;
        }
        let mut b = FileBuilder::new();
        b.add_dataset(DS, Dataset::f32("baryon_density", &[n as u64; 3], &data)).unwrap();
        write_file(fs, "/plt.h5", &b.into_root(), &WriteOptions::default()).unwrap()
    }

    fn corrupt(fs: &MemFs, off: u64, xor: u8) {
        use ffis_vfs::FileSystem;
        let fd = fs.open("/plt.h5", OpenFlags::read_write()).unwrap();
        let mut b = [0u8; 1];
        fs.pread(fd, &mut b, off).unwrap();
        b[0] ^= xor;
        fs.pwrite(fd, &b, off).unwrap();
        fs.release(fd).unwrap();
    }

    #[test]
    fn diagnose_rules() {
        assert_eq!(diagnose(1.0, 1.0, 1e-3), Diagnosis::Healthy);
        assert_eq!(diagnose(4096.0, 1.0, 1e-3), Diagnosis::ExponentBias { log2_shift: 12 });
        assert_eq!(diagnose(0.25, 1.0, 1e-3), Diagnosis::ExponentBias { log2_shift: -2 });
        assert_eq!(diagnose(1.3, 1.0, 1e-3), Diagnosis::FloatFields);
        assert_eq!(diagnose(0.55, 1.0, 1e-3), Diagnosis::FloatFields);
        assert_eq!(diagnose(0.2, 1.0, 1e-3), Diagnosis::FloatFields);
        assert_eq!(diagnose(17.3, 1.0, 1e-3), Diagnosis::Unknown);
        assert_eq!(diagnose(f64::NAN, 1.0, 1e-3), Diagnosis::Unknown);
    }

    #[test]
    fn healthy_file_needs_no_corrections() {
        let fs = MemFs::new();
        write_conserved(&fs);
        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert_eq!(report.diagnosis, Diagnosis::Healthy);
        assert!(report.corrections.is_empty());
        assert!((report.mean_after - 1.0).abs() < 1e-5);
    }

    #[test]
    fn exponent_bias_fault_detected_and_corrected() {
        let fs = MemFs::new();
        let rep = write_conserved(&fs);
        let span = rep.spans.iter().find(|s| s.name.contains("ExponentBias")).unwrap();
        corrupt(&fs, span.start, 0b0000_1100); // 127 -> 115: scale by 2^12
        let before = crate::reader::read_dataset(&fs, "/plt.h5", DS).unwrap();
        let mean: f64 = before.values.iter().sum::<f64>() / before.values.len() as f64;
        assert!((mean - 4096.0).abs() / 4096.0 < 1e-3, "mean = {}", mean);

        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert_eq!(report.diagnosis, Diagnosis::ExponentBias { log2_shift: 12 });
        assert_eq!(report.corrections.len(), 1);
        assert!((report.mean_after - 1.0).abs() < 1e-4, "after = {}", report.mean_after);
    }

    #[test]
    fn ard_fault_corrected_via_metadata_size() {
        let fs = MemFs::new();
        let rep = write_conserved(&fs);
        let span = rep.spans.iter().find(|s| s.name.contains("AddressOfRawData")).unwrap();
        corrupt(&fs, span.start, 0b0100_0000); // shift window by 64 bytes
        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert!(
            report.corrections.iter().any(|c| c.field.contains("AddressOfRawData")),
            "{:?}",
            report.corrections
        );
        assert!((report.mean_after - 1.0).abs() < 1e-4);
        // Values fully restored.
        let after = crate::reader::read_dataset(&fs, "/plt.h5", DS).unwrap();
        assert_eq!(after.stored_ard, rep.metadata_size);
    }

    #[test]
    fn normalization_fault_repaired() {
        let fs = MemFs::new();
        let rep = write_conserved(&fs);
        let span = rep.spans.iter().find(|s| s.name.contains("MantissaNormalization")).unwrap();
        corrupt(&fs, span.start, 0x20);
        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert_eq!(report.diagnosis, Diagnosis::FloatFields);
        assert!(report.corrections.iter().any(|c| c.field.contains("MantissaNormalization")));
        assert!((report.mean_after - 1.0).abs() < 1e-4, "after = {}", report.mean_after);
    }

    #[test]
    fn mantissa_size_fault_repaired() {
        let fs = MemFs::new();
        let rep = write_conserved(&fs);
        let span = rep.spans.iter().find(|s| s.name.contains("MantissaSize")).unwrap();
        corrupt(&fs, span.start, 0b0000_0100); // 23 -> 19
        let before = crate::reader::read_dataset(&fs, "/plt.h5", DS).unwrap();
        assert_eq!(before.spec.mantissa_size, 19);
        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert!(report.corrections.iter().any(|c| c.field.contains("MantissaSize")));
        assert!((report.mean_after - 1.0).abs() < 1e-4, "after = {}", report.mean_after);
    }

    #[test]
    fn exponent_location_fault_repaired() {
        let fs = MemFs::new();
        let rep = write_conserved(&fs);
        let span = rep.spans.iter().find(|s| s.name.contains("ExponentLocation")).unwrap();
        corrupt(&fs, span.start, 0b0000_0010); // 23 -> 21
        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert!(!report.corrections.is_empty());
        assert!((report.mean_after - 1.0).abs() < 1e-4, "after = {}", report.mean_after);
    }

    #[test]
    fn crashy_faults_are_not_repairable() {
        let fs = MemFs::new();
        write_conserved(&fs);
        corrupt(&fs, 0, 0xFF); // superblock signature
        assert!(repair_file(&fs, "/plt.h5", DS, 1.0).is_err());
    }

    #[test]
    fn repairing_a_sealed_file_reseals_it() {
        // Data-level corruption on a *sealed* file: the seal verifies
        // (it covers metadata only), the mean deviates, repair patches
        // the bias field — and must reseal, or the repair itself would
        // read back as metadata corruption.
        use ffis_vfs::FileSystem;
        let fs = MemFs::new();
        let n = 8usize;
        let mut data: Vec<f32> =
            (0..n * n * n).map(|i| 1.0 + 0.1 * ((i % 3) as f32 - 1.0)).collect();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        for v in &mut data {
            *v /= mean;
        }
        let mut b = FileBuilder::new();
        b.add_dataset(DS, Dataset::f32("baryon_density", &[n as u64; 3], &data)).unwrap();
        let opts = WriteOptions { seal_metadata: true, ..Default::default() };
        let rep = write_file(&fs, "/plt.h5", &b.into_root(), &opts).unwrap();

        // Scale the raw data by 2^4 (simulating a device-level data
        // corruption the seal does not cover).
        let fd = fs.open("/plt.h5", ffis_vfs::OpenFlags::read_write()).unwrap();
        for i in 0..(n * n * n) as u64 {
            let off = rep.metadata_size + 4 * i;
            let mut buf = [0u8; 4];
            fs.pread(fd, &mut buf, off).unwrap();
            let v = f32::from_le_bytes(buf) * 16.0;
            fs.pwrite(fd, &v.to_le_bytes(), off).unwrap();
        }
        fs.release(fd).unwrap();

        let report = repair_file(&fs, "/plt.h5", DS, 1.0).unwrap();
        assert_eq!(report.diagnosis, Diagnosis::ExponentBias { log2_shift: 4 });
        assert!(!report.corrections.is_empty());
        // The file is still readable post-repair: the seal was redone.
        let info = crate::reader::read_dataset(&fs, "/plt.h5", DS).unwrap();
        let m: f64 = info.values.iter().sum::<f64>() / info.values.len() as f64;
        assert!((m - 1.0).abs() < 1e-3, "mean after = {}", m);
    }
}
