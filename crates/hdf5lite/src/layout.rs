//! File-object tree and the address planner.
//!
//! An HDF5 file is a tree of groups and datasets (paper Figure 1): a
//! superblock points at the root group; each group owns a v1 B-tree +
//! local heap + symbol-table node(s) indexing its children; a dataset
//! is an object header carrying dataspace/datatype/layout messages,
//! with contiguous raw data elsewhere in the file.
//!
//! The planner assigns every structure a file address. Metadata is
//! packed at the front of the file and raw data follows immediately —
//! the property the paper's ARD repair exploits ("the metadata is
//! saved followed by data in the HDF5 file format, the ARD is exactly
//! equal to the size of metadata").

use crate::floatspec::FloatSpec;
use crate::types::{
    align8, Hdf5Error, Hdf5Result, GROUP_INTERNAL_K, GROUP_LEAF_K, SUPERBLOCK_SIZE,
};

/// A dataset: name, shape, values, element datatype.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Link name within its parent group.
    pub name: String,
    /// Dimension sizes (row-major).
    pub dims: Vec<u64>,
    /// Element values (encoded through `dtype` on write).
    pub data: Vec<f64>,
    /// Stored element datatype.
    pub dtype: FloatSpec,
}

impl Dataset {
    /// Single-precision dataset from `f32` values.
    pub fn f32(name: &str, dims: &[u64], data: &[f32]) -> Self {
        Dataset {
            name: name.to_string(),
            dims: dims.to_vec(),
            data: data.iter().map(|&v| v as f64).collect(),
            dtype: FloatSpec::ieee_f32(),
        }
    }

    /// Double-precision dataset from `f64` values.
    pub fn f64(name: &str, dims: &[u64], data: &[f64]) -> Self {
        Dataset {
            name: name.to_string(),
            dims: dims.to_vec(),
            data: data.to_vec(),
            dtype: FloatSpec::ieee_f64(),
        }
    }

    /// Element count implied by the dims.
    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw data byte size.
    pub fn data_size(&self) -> u64 {
        self.len() * self.dtype.size as u64
    }

    fn check(&self) -> Hdf5Result<()> {
        if self.name.is_empty() || self.name.contains('/') {
            return Err(Hdf5Error::new(format!("bad dataset name '{}'", self.name)));
        }
        if self.dims.is_empty() || self.dims.len() > 8 {
            return Err(Hdf5Error::new("dataset rank must be 1..=8"));
        }
        if self.len() as usize != self.data.len() {
            return Err(Hdf5Error::new(format!(
                "dims product {} != data length {}",
                self.len(),
                self.data.len()
            )));
        }
        self.dtype.validate()
    }
}

/// A node of the object tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A group with named children.
    Group {
        /// Link name ("" only for the root).
        name: String,
        /// Children (sorted by the planner).
        children: Vec<Node>,
    },
    /// A dataset leaf.
    Dataset(Dataset),
}

impl Node {
    /// Link name.
    pub fn name(&self) -> &str {
        match self {
            Node::Group { name, .. } => name,
            Node::Dataset(d) => &d.name,
        }
    }
}

/// Convenience builder that creates intermediate groups from
/// slash-separated paths (`/native_fields/baryon_density`).
#[derive(Debug, Default)]
pub struct FileBuilder {
    root_children: Vec<Node>,
}

impl FileBuilder {
    /// Empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a dataset at an absolute path, creating groups as needed.
    pub fn add_dataset(&mut self, path: &str, mut dataset: Dataset) -> Hdf5Result<()> {
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.is_empty() {
            return Err(Hdf5Error::new("dataset path must name a dataset"));
        }
        dataset.name = comps[comps.len() - 1].to_string();
        let mut cursor = &mut self.root_children;
        for comp in &comps[..comps.len() - 1] {
            let pos = cursor.iter().position(|n| n.name() == *comp);
            let idx = match pos {
                Some(i) => {
                    if !matches!(cursor[i], Node::Group { .. }) {
                        return Err(Hdf5Error::new(format!(
                            "'{}' exists and is not a group",
                            comp
                        )));
                    }
                    i
                }
                None => {
                    cursor.push(Node::Group { name: comp.to_string(), children: Vec::new() });
                    cursor.len() - 1
                }
            };
            match &mut cursor[idx] {
                Node::Group { children, .. } => cursor = children,
                Node::Dataset(_) => unreachable!(),
            }
        }
        if cursor.iter().any(|n| n.name() == dataset.name) {
            return Err(Hdf5Error::new(format!("duplicate link '{}'", dataset.name)));
        }
        cursor.push(Node::Dataset(dataset));
        Ok(())
    }

    /// Finish: the root group.
    pub fn into_root(self) -> Node {
        Node::Group { name: String::new(), children: self.root_children }
    }
}

// ---- fixed structure sizes -------------------------------------------------

/// v1 object header prefix (padded to 8).
pub const OHDR_PREFIX_SIZE: u64 = 16;
/// Message header (type, size, flags, reserved).
pub const MSG_HEADER_SIZE: u64 = 8;
/// Symbol-table message body.
pub const STMSG_BODY_SIZE: u64 = 16;
/// Symbol table entry.
pub const STE_SIZE: u64 = 40;
/// Group object header total size.
pub const GROUP_OHDR_SIZE: u64 = OHDR_PREFIX_SIZE + MSG_HEADER_SIZE + STMSG_BODY_SIZE;
/// B-tree v1 node size for the group K.
pub const BTREE_NODE_SIZE: u64 =
    24 + ((2 * GROUP_INTERNAL_K as u64 + 1) * 8) + (2 * GROUP_INTERNAL_K as u64 * 8);
/// Symbol-table node size for the leaf K.
pub const SNOD_SIZE: u64 = 8 + 2 * GROUP_LEAF_K as u64 * STE_SIZE;
/// Local heap header size.
pub const HEAP_HEADER_SIZE: u64 = 32;

/// Datatype message body (8 common + 12 float properties, padded).
pub const DATATYPE_BODY_SIZE: u64 = 24;
/// Fill-value message body.
pub const FILLVALUE_BODY_SIZE: u64 = 8;
/// Layout message body (v3 contiguous, padded).
pub const LAYOUT_BODY_SIZE: u64 = 24;
/// Modification-time message body.
pub const MODTIME_BODY_SIZE: u64 = 8;

/// Dataspace message body for a given rank.
pub fn dataspace_body_size(rank: usize) -> u64 {
    align8(8 + rank as u64 * 8)
}

/// Dataset object header total size for a given rank.
pub fn dataset_ohdr_size(rank: usize) -> u64 {
    OHDR_PREFIX_SIZE
        + (MSG_HEADER_SIZE + dataspace_body_size(rank))
        + (MSG_HEADER_SIZE + DATATYPE_BODY_SIZE)
        + (MSG_HEADER_SIZE + FILLVALUE_BODY_SIZE)
        + (MSG_HEADER_SIZE + LAYOUT_BODY_SIZE)
        + (MSG_HEADER_SIZE + MODTIME_BODY_SIZE)
}

/// Local-heap data segment size for a child-name list.
pub fn heap_segment_size(names: &[&str]) -> u64 {
    8 + names.iter().map(|n| align8(n.len() as u64 + 1)).sum::<u64>()
}

// ---- planned layout ---------------------------------------------------------

/// A planned dataset with assigned addresses.
#[derive(Debug, Clone)]
pub struct PlannedDataset {
    /// The dataset definition.
    pub dataset: Dataset,
    /// Object header address.
    pub ohdr_addr: u64,
    /// Raw data address (the ARD field value).
    pub data_addr: u64,
    /// Heap offset of the link name in the parent's heap.
    pub name_offset: u64,
}

/// A planned group with assigned addresses.
#[derive(Debug, Clone)]
pub struct PlannedGroup {
    /// Link name ("" for root).
    pub name: String,
    /// Object header address.
    pub ohdr_addr: u64,
    /// B-tree node address.
    pub btree_addr: u64,
    /// Symbol-table node address.
    pub snod_addr: u64,
    /// Local heap header address.
    pub heap_addr: u64,
    /// Local heap data segment address.
    pub heap_data_addr: u64,
    /// Local heap data segment size.
    pub heap_seg_size: u64,
    /// Heap offset of this group's link name in the *parent's* heap.
    pub name_offset: u64,
    /// Planned children, name-sorted.
    pub children: Vec<PlannedChild>,
}

/// Planned child.
#[derive(Debug, Clone)]
pub enum PlannedChild {
    /// Subgroup.
    Group(PlannedGroup),
    /// Dataset.
    Dataset(PlannedDataset),
}

impl PlannedChild {
    /// Link name.
    pub fn name(&self) -> &str {
        match self {
            PlannedChild::Group(g) => &g.name,
            PlannedChild::Dataset(d) => &d.dataset.name,
        }
    }

    /// Heap offset of the link name.
    pub fn name_offset(&self) -> u64 {
        match self {
            PlannedChild::Group(g) => g.name_offset,
            PlannedChild::Dataset(d) => d.name_offset,
        }
    }

    /// Object header address.
    pub fn ohdr_addr(&self) -> u64 {
        match self {
            PlannedChild::Group(g) => g.ohdr_addr,
            PlannedChild::Dataset(d) => d.ohdr_addr,
        }
    }
}

/// A fully planned file.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Planned root group.
    pub root: PlannedGroup,
    /// Packed metadata size == first data byte == the correct ARD.
    pub metadata_size: u64,
    /// End-of-file address.
    pub eof: u64,
}

impl Plan {
    /// Iterate planned datasets depth-first.
    pub fn datasets(&self) -> Vec<&PlannedDataset> {
        fn walk<'a>(g: &'a PlannedGroup, out: &mut Vec<&'a PlannedDataset>) {
            for c in &g.children {
                match c {
                    PlannedChild::Group(sub) => walk(sub, out),
                    PlannedChild::Dataset(d) => out.push(d),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

/// Assign addresses to every structure of the tree.
pub fn plan(root: &Node) -> Hdf5Result<Plan> {
    let Node::Group { name, children } = root else {
        return Err(Hdf5Error::new("root must be a group"));
    };
    if !name.is_empty() {
        return Err(Hdf5Error::new("root group must be unnamed"));
    }
    let mut cursor = SUPERBLOCK_SIZE;
    let mut planned_root = plan_group("", children, &mut cursor, 0)?;
    let metadata_size = align8(cursor);

    // Second pass: assign raw-data addresses after the metadata block.
    let mut data_cursor = metadata_size;
    assign_data_addrs(&mut planned_root, &mut data_cursor);

    Ok(Plan { root: planned_root, metadata_size, eof: data_cursor })
}

fn assign_data_addrs(g: &mut PlannedGroup, cursor: &mut u64) {
    for c in &mut g.children {
        match c {
            PlannedChild::Group(sub) => assign_data_addrs(sub, cursor),
            PlannedChild::Dataset(d) => {
                d.data_addr = *cursor;
                *cursor += align8(d.dataset.data_size());
            }
        }
    }
}

fn plan_group(
    name: &str,
    children: &[Node],
    cursor: &mut u64,
    name_offset: u64,
) -> Hdf5Result<Plan_group_output> {
    if children.len() > 2 * GROUP_LEAF_K {
        return Err(Hdf5Error::new(format!(
            "group '{}' has {} children; single-SNOD layout supports at most {}",
            name,
            children.len(),
            2 * GROUP_LEAF_K
        )));
    }
    // Children must be name-sorted for B-tree/SNOD semantics.
    let mut order: Vec<&Node> = children.iter().collect();
    order.sort_by(|a, b| a.name().cmp(b.name()));
    for w in order.windows(2) {
        if w[0].name() == w[1].name() {
            return Err(Hdf5Error::new(format!("duplicate link '{}'", w[0].name())));
        }
    }

    let ohdr_addr = *cursor;
    *cursor += GROUP_OHDR_SIZE;
    let btree_addr = *cursor;
    *cursor += BTREE_NODE_SIZE;
    let snod_addr = *cursor;
    *cursor += SNOD_SIZE;
    let heap_addr = *cursor;
    *cursor += HEAP_HEADER_SIZE;
    let heap_data_addr = *cursor;
    let names: Vec<&str> = order.iter().map(|n| n.name()).collect();
    let heap_seg_size = heap_segment_size(&names);
    *cursor += heap_seg_size;

    // Heap name offsets for each child.
    let mut offsets = Vec::with_capacity(order.len());
    let mut off = 8u64;
    for n in &names {
        offsets.push(off);
        off += align8(n.len() as u64 + 1);
    }

    let mut planned_children = Vec::with_capacity(order.len());
    for (node, child_name_offset) in order.iter().zip(offsets) {
        match node {
            Node::Group { name, children } => {
                let sub = plan_group(name, children, cursor, child_name_offset)?;
                planned_children.push(PlannedChild::Group(sub));
            }
            Node::Dataset(d) => {
                d.check()?;
                let ohdr = *cursor;
                *cursor += dataset_ohdr_size(d.dims.len());
                planned_children.push(PlannedChild::Dataset(PlannedDataset {
                    dataset: d.clone(),
                    ohdr_addr: ohdr,
                    data_addr: 0, // assigned in the second pass
                    name_offset: child_name_offset,
                }));
            }
        }
    }

    Ok(PlannedGroup {
        name: name.to_string(),
        ohdr_addr,
        btree_addr,
        snod_addr,
        heap_addr,
        heap_data_addr,
        heap_seg_size,
        name_offset,
        children: planned_children,
    })
}

// Private alias to keep the recursive signature readable.
#[allow(non_camel_case_types)]
type Plan_group_output = PlannedGroup;

#[cfg(test)]
mod tests {
    use super::*;

    fn nyx_tree() -> Node {
        let mut b = FileBuilder::new();
        b.add_dataset(
            "/native_fields/baryon_density",
            Dataset::f32("baryon_density", &[4, 4, 4], &[1.0; 64]),
        )
        .unwrap();
        b.into_root()
    }

    #[test]
    fn builder_creates_intermediate_groups() {
        let root = nyx_tree();
        let Node::Group { children, .. } = &root else { panic!() };
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].name(), "native_fields");
        let Node::Group { children: sub, .. } = &children[0] else { panic!() };
        assert_eq!(sub[0].name(), "baryon_density");
    }

    #[test]
    fn builder_rejects_duplicates_and_conflicts() {
        let mut b = FileBuilder::new();
        b.add_dataset("/a/x", Dataset::f32("x", &[1], &[0.0])).unwrap();
        assert!(b.add_dataset("/a/x", Dataset::f32("x", &[1], &[0.0])).is_err());
        assert!(b.add_dataset("/a/x/y", Dataset::f32("y", &[1], &[0.0])).is_err());
        b.add_dataset("/a/z", Dataset::f32("z", &[1], &[0.0])).unwrap();
    }

    #[test]
    fn plan_assigns_monotonic_nonoverlapping_addresses() {
        let plan = plan(&nyx_tree()).unwrap();
        let r = &plan.root;
        assert_eq!(r.ohdr_addr, SUPERBLOCK_SIZE);
        assert!(r.btree_addr > r.ohdr_addr);
        assert!(r.snod_addr > r.btree_addr);
        assert!(r.heap_addr > r.snod_addr);
        let PlannedChild::Group(nf) = &r.children[0] else { panic!() };
        assert!(nf.ohdr_addr >= r.heap_data_addr + r.heap_seg_size);
        let PlannedChild::Dataset(d) = &nf.children[0] else { panic!() };
        assert!(d.ohdr_addr > nf.heap_data_addr);
        assert_eq!(d.data_addr, plan.metadata_size);
        assert_eq!(plan.eof, plan.metadata_size + 64 * 4);
    }

    #[test]
    fn plan_metadata_size_matches_manual_sum() {
        // superblock + 2 × (group ohdr + btree + snod + heap) + dataset ohdr
        let plan = plan(&nyx_tree()).unwrap();
        let per_group = GROUP_OHDR_SIZE + BTREE_NODE_SIZE + SNOD_SIZE + HEAP_HEADER_SIZE;
        let heap_root = heap_segment_size(&["native_fields"]);
        let heap_nf = heap_segment_size(&["baryon_density"]);
        let expect =
            align8(SUPERBLOCK_SIZE + 2 * per_group + heap_root + heap_nf + dataset_ohdr_size(3));
        assert_eq!(plan.metadata_size, expect);
        // The paper's comparable file (Nyx via HDF5) had ~2.4 KB of
        // metadata with B-tree nodes dominating; ours lands in the
        // same regime with the default K values.
        assert!(plan.metadata_size > 1500 && plan.metadata_size < 3000, "{}", plan.metadata_size);
        let btree_share = (2 * (BTREE_NODE_SIZE + SNOD_SIZE)) as f64 / plan.metadata_size as f64;
        assert!(btree_share > 0.6, "B-tree+SNOD share = {:.2}", btree_share);
    }

    #[test]
    fn dataset_validation() {
        let bad_rank = Dataset::f32("d", &[], &[]);
        assert!(bad_rank.check().is_err());
        let bad_len = Dataset::f32("d", &[4], &[0.0; 3]);
        assert!(bad_len.check().is_err());
        let bad_name = Dataset::f32("a/b", &[1], &[0.0]);
        assert!(bad_name.check().is_err());
        let ok = Dataset::f32("d", &[2, 2], &[0.0; 4]);
        assert!(ok.check().is_ok());
        assert_eq!(ok.data_size(), 16);
    }

    #[test]
    fn children_sorted_by_name() {
        let root = Node::Group {
            name: String::new(),
            children: vec![
                Node::Dataset(Dataset::f32("zzz", &[1], &[0.0])),
                Node::Dataset(Dataset::f32("aaa", &[1], &[0.0])),
                Node::Dataset(Dataset::f32("mmm", &[1], &[0.0])),
            ],
        };
        let plan = plan(&root).unwrap();
        let names: Vec<_> = plan.root.children.iter().map(|c| c.name().to_string()).collect();
        assert_eq!(names, vec!["aaa", "mmm", "zzz"]);
        // Heap offsets ascend in sorted order.
        let offs: Vec<_> = plan.root.children.iter().map(|c| c.name_offset()).collect();
        assert!(offs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn too_many_children_rejected() {
        let children: Vec<Node> = (0..(2 * GROUP_LEAF_K + 1))
            .map(|i| Node::Dataset(Dataset::f32(&format!("d{:02}", i), &[1], &[0.0])))
            .collect();
        let root = Node::Group { name: String::new(), children };
        assert!(plan(&root).is_err());
    }

    #[test]
    fn heap_segment_size_accounts_padding() {
        assert_eq!(heap_segment_size(&[]), 8);
        assert_eq!(heap_segment_size(&["abc"]), 8 + 8); // "abc\0" -> 8
        assert_eq!(heap_segment_size(&["sevenchr"]), 8 + 16); // 9 bytes -> 16
        assert_eq!(heap_segment_size(&["a", "b"]), 8 + 8 + 8);
    }

    #[test]
    fn structure_sizes_are_8_aligned() {
        for s in [
            SUPERBLOCK_SIZE,
            GROUP_OHDR_SIZE,
            BTREE_NODE_SIZE,
            SNOD_SIZE,
            HEAP_HEADER_SIZE,
            dataset_ohdr_size(1),
            dataset_ohdr_size(3),
        ] {
            assert_eq!(s % 8, 0, "{} not aligned", s);
        }
    }
}
