//! Floating-point datatype properties and the generic codec.
//!
//! The HDF5 datatype message for class-1 (floating point) types stores
//! a complete *description* of the bit layout (Figure 1 of the paper,
//! bottom panel): bit offset, bit precision, sign location, exponent
//! location/size, mantissa location/size, exponent bias, and the
//! mantissa-normalization policy. The library decodes stored values
//! *through* these fields — which is exactly why the paper finds that
//! silent corruption of:
//!
//! * **Exponent Bias** scales every value by a power of two (Fig. 5b),
//! * **Mantissa Normalization** (losing the implied leading 1) roughly
//!   halves every value (Table IV: average 1 → 0.55),
//! * **Exponent/Mantissa Location/Size** garble the decode (averages
//!   drifting into [1.04, 1.55]),
//!
//! while **Bit Offset**/**Bit Precision** mostly do not participate in
//! the arithmetic and stay benign. This module is that decode path.

use crate::types::{Hdf5Error, Hdf5Result};

/// Mantissa normalization policy (datatype class bit-field bits 4–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// No normalization: value = mantissa · 2^(exp − bias).
    None,
    /// MSB of the mantissa is always set (stored).
    MsbSet,
    /// MSB is implied (not stored) and set — the IEEE 754 convention:
    /// value = (1 + mantissa/2^msize) · 2^(exp − bias).
    Implied,
}

impl Normalization {
    /// Wire encoding (bits 4–5 of class bit field byte 0).
    pub fn bits(self) -> u8 {
        match self {
            Normalization::None => 0,
            Normalization::MsbSet => 1,
            Normalization::Implied => 2,
        }
    }

    /// Decode bits 4–5. Value 3 is reserved; per the HDF5 library we
    /// treat unknown policies as `None` rather than failing (this is
    /// what lets a bit-5 flip silently change the decode — Table IV's
    /// "Bit-5 of Mantissa Normalization" SDC).
    pub fn from_bits(b: u8) -> Normalization {
        match b & 0b11 {
            1 => Normalization::MsbSet,
            2 => Normalization::Implied,
            _ => Normalization::None,
        }
    }
}

/// Complete floating-point datatype property set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloatSpec {
    /// Element size in bytes (datatype message Size field).
    pub size: u32,
    /// Bit offset of the first significant bit.
    pub bit_offset: u16,
    /// Number of significant bits.
    pub bit_precision: u16,
    /// Bit position of the sign bit.
    pub sign_location: u8,
    /// Bit position of the exponent field.
    pub exponent_location: u8,
    /// Exponent width in bits.
    pub exponent_size: u8,
    /// Bit position of the mantissa field.
    pub mantissa_location: u8,
    /// Mantissa width in bits.
    pub mantissa_size: u8,
    /// Exponent bias.
    pub exponent_bias: u32,
    /// Mantissa normalization policy.
    pub normalization: Normalization,
}

impl FloatSpec {
    /// IEEE 754 single precision (HDF5 `H5T_IEEE_F32LE`).
    pub fn ieee_f32() -> Self {
        FloatSpec {
            size: 4,
            bit_offset: 0,
            bit_precision: 32,
            sign_location: 31,
            exponent_location: 23,
            exponent_size: 8,
            mantissa_location: 0,
            mantissa_size: 23,
            exponent_bias: 127,
            normalization: Normalization::Implied,
        }
    }

    /// IEEE 754 double precision (HDF5 `H5T_IEEE_F64LE`).
    pub fn ieee_f64() -> Self {
        FloatSpec {
            size: 8,
            bit_offset: 0,
            bit_precision: 64,
            sign_location: 63,
            exponent_location: 52,
            exponent_size: 11,
            mantissa_location: 0,
            mantissa_size: 52,
            exponent_bias: 1023,
            normalization: Normalization::Implied,
        }
    }

    /// Structural sanity only — mirrors the (loose) validation the
    /// HDF5 library applies. Deliberately does *not* enforce the
    /// cross-field constraints (`exponent_location == mantissa_size`,
    /// `mantissa_size + exponent_size == precision − 1`): the library
    /// accepts such specs silently, which is what creates the SDC
    /// exposure; [`crate::repair`] enforces them on demand.
    pub fn validate(&self) -> Hdf5Result<()> {
        if self.size == 0 || self.size > 8 {
            return Err(Hdf5Error::new(format!("unsupported float size {}", self.size)));
        }
        if self.exponent_size == 0 {
            return Err(Hdf5Error::new("zero-width exponent"));
        }
        Ok(())
    }

    /// Decode one element from its raw little-endian bytes.
    ///
    /// The decode is deliberately tolerant: out-of-range locations are
    /// masked into the available bits rather than rejected, because
    /// the HDF5 general float-conversion path computes with whatever
    /// field values the message carries. Unrepresentable magnitudes
    /// saturate to ±∞ (which downstream analyses then observe).
    pub fn decode(&self, bytes: &[u8]) -> Hdf5Result<f64> {
        let size = self.size as usize;
        if bytes.len() < size {
            return Err(Hdf5Error::new("element extends past end of raw data"));
        }
        let mut raw: u64 = 0;
        for (i, &b) in bytes[..size].iter().enumerate() {
            raw |= (b as u64) << (8 * i);
        }
        let total_bits = (size * 8) as u32;
        // Bit offset shifts the significant window.
        let bits = raw >> (self.bit_offset as u32 % total_bits.max(1)).min(63);

        let sign = (bits >> (self.sign_location as u32 % 64)) & 1;
        let exp_size = u32::from(self.exponent_size).min(63);
        let exp_mask = (1u64 << exp_size) - 1;
        let exponent = (bits >> (self.exponent_location as u32 % 64)) & exp_mask;
        let mant_size = u32::from(self.mantissa_size).min(63);
        let mant_mask = if mant_size == 0 { 0 } else { (1u64 << mant_size) - 1 };
        let mantissa = (bits >> (self.mantissa_location as u32 % 64)) & mant_mask;

        // Zero (and IEEE subnormals, which our workloads never write).
        if exponent == 0 && mantissa == 0 {
            return Ok(if sign == 1 { -0.0 } else { 0.0 });
        }
        // All-ones exponent: infinity / NaN in IEEE-like layouts.
        if self.normalization == Normalization::Implied && exponent == exp_mask {
            return Ok(if mantissa == 0 {
                if sign == 1 {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            } else {
                f64::NAN
            });
        }

        let frac = if mant_size == 0 { 0.0 } else { mantissa as f64 / (1u64 << mant_size) as f64 };
        let m = match self.normalization {
            Normalization::Implied => 1.0 + frac,
            Normalization::MsbSet | Normalization::None => frac,
        };
        let e = exponent as i64 - self.exponent_bias as i64;
        let value = m * pow2(e);
        Ok(if sign == 1 { -value } else { value })
    }

    /// Encode an `f64` value into `size` little-endian bytes per this
    /// spec. Values outside the representable range saturate.
    pub fn encode(&self, value: f64) -> Hdf5Result<Vec<u8>> {
        self.validate()?;
        let size = self.size as usize;
        let exp_size = u32::from(self.exponent_size).min(63);
        let mant_size = u32::from(self.mantissa_size).min(63);
        let exp_max = (1u64 << exp_size) - 1;

        let sign = if value.is_sign_negative() { 1u64 } else { 0 };
        let mag = value.abs();

        let (exponent, mantissa) = if mag == 0.0 || !mag.is_finite() && mag.is_nan() {
            (0u64, 0u64)
        } else if mag.is_infinite() {
            (exp_max, 0)
        } else {
            // mag = m * 2^e with m in [1, 2).
            let e = mag.log2().floor() as i64;
            let biased = e + self.exponent_bias as i64;
            if biased <= 0 {
                (0, 0) // underflow to zero
            } else if biased as u64 >= exp_max {
                (exp_max, 0) // overflow to infinity
            } else {
                let m = mag / pow2(e); // in [1, 2)
                let frac = match self.normalization {
                    Normalization::Implied => m - 1.0,
                    Normalization::MsbSet | Normalization::None => m / 2.0,
                };
                let mant = (frac * (1u64 << mant_size) as f64).round() as u64;
                let mant = mant.min((1u64 << mant_size) - 1);
                (biased as u64, mant)
            }
        };

        let mut bits: u64 = 0;
        bits |= sign << (self.sign_location as u32 % 64);
        bits |= exponent << (self.exponent_location as u32 % 64);
        bits |= mantissa << (self.mantissa_location as u32 % 64);
        bits <<= self.bit_offset as u32 % 64;

        let mut out = vec![0u8; size];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = ((bits >> (8 * i)) & 0xFF) as u8;
        }
        Ok(out)
    }

    /// Decode a whole raw buffer into `f64`s.
    ///
    /// Pristine IEEE layouts take a hardware-conversion fast path
    /// (bit-identical to the generic field-by-field decode for every
    /// normal value, zero, and negative zero); any spec a metadata
    /// fault has perturbed — and the rare subnormal/non-finite
    /// encodings — go through the general decode, preserving the
    /// paper's corruption semantics exactly. This is the hottest loop
    /// of every campaign verify phase.
    pub fn decode_all(&self, raw: &[u8], count: usize) -> Hdf5Result<Vec<f64>> {
        let size = self.size as usize;
        if size == 0 || size > 8 {
            return Err(Hdf5Error::new(format!("unsupported float size {}", self.size)));
        }
        if raw.len() < count * size {
            return Err(Hdf5Error::new(format!(
                "raw data too small: need {} bytes, have {}",
                count * size,
                raw.len()
            )));
        }
        if *self == Self::ieee_f32() {
            let mut out = Vec::with_capacity(count);
            for chunk in raw[..count * 4].chunks_exact(4) {
                let bits = u32::from_le_bytes(chunk.try_into().expect("chunks_exact(4)"));
                let exp = (bits >> 23) & 0xFF;
                let mant = bits & 0x007F_FFFF;
                if exp == 255 || (exp == 0 && mant != 0) {
                    out.push(self.decode(chunk)?);
                } else {
                    out.push(f32::from_bits(bits) as f64);
                }
            }
            return Ok(out);
        }
        if *self == Self::ieee_f64() {
            let mut out = Vec::with_capacity(count);
            for chunk in raw[..count * 8].chunks_exact(8) {
                let bits = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
                let exp = (bits >> 52) & 0x7FF;
                let mant = bits & 0x000F_FFFF_FFFF_FFFF;
                if exp == 0x7FF || (exp == 0 && mant != 0) {
                    out.push(self.decode(chunk)?);
                } else {
                    out.push(f64::from_bits(bits));
                }
            }
            return Ok(out);
        }
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(self.decode(&raw[i * size..(i + 1) * size])?);
        }
        Ok(out)
    }
}

/// 2^e as f64 with saturation (avoids powi overflow UB concerns).
fn pow2(e: i64) -> f64 {
    if e > 1023 {
        f64::INFINITY
    } else if e < -1074 {
        0.0
    } else {
        f64::powi(2.0, e as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee_f32_decode_matches_native() {
        let spec = FloatSpec::ieee_f32();
        for v in [
            0.0f32,
            1.0,
            -1.0,
            0.5,
            2.0,
            std::f32::consts::PI,
            -123.456,
            1e-10,
            1e10,
            81.66,
            0.9983,
        ] {
            let bytes = v.to_le_bytes();
            let got = spec.decode(&bytes).unwrap();
            assert!((got - v as f64).abs() <= (v as f64).abs() * 1e-6, "{} decoded as {}", v, got);
        }
    }

    #[test]
    fn ieee_f32_special_values() {
        let spec = FloatSpec::ieee_f32();
        assert_eq!(spec.decode(&f32::INFINITY.to_le_bytes()).unwrap(), f64::INFINITY);
        assert_eq!(spec.decode(&f32::NEG_INFINITY.to_le_bytes()).unwrap(), f64::NEG_INFINITY);
        assert!(spec.decode(&f32::NAN.to_le_bytes()).unwrap().is_nan());
        assert_eq!(spec.decode(&(-0.0f32).to_le_bytes()).unwrap(), 0.0);
        assert!(spec.decode(&(-0.0f32).to_le_bytes()).unwrap().is_sign_negative());
    }

    #[test]
    fn ieee_f64_decode_matches_native() {
        let spec = FloatSpec::ieee_f64();
        for v in [0.0f64, 1.0, -2.90372, 82.825, 1e-300, 1e300] {
            let got = spec.decode(&v.to_le_bytes()).unwrap();
            assert!((got - v).abs() <= v.abs() * 1e-12, "{} -> {}", v, got);
        }
    }

    #[test]
    fn encode_decode_roundtrip_f32() {
        let spec = FloatSpec::ieee_f32();
        for v in [1.0f64, 0.25, -7.5, 81.66, 1234.5678, 1e-5] {
            let bytes = spec.encode(v).unwrap();
            let native = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            assert!(((native as f64) - v).abs() <= v.abs() * 1e-6, "{} encoded as {}", v, native);
            let back = spec.decode(&bytes).unwrap();
            assert!((back - v).abs() <= v.abs() * 1e-6);
        }
    }

    #[test]
    fn corrupted_exponent_bias_scales_by_power_of_two() {
        // The paper's §V-A example: bias 0x7F -> 0x73 scales data by 2^12.
        let mut spec = FloatSpec::ieee_f32();
        let bytes = 1.5f32.to_le_bytes();
        assert_eq!(spec.decode(&bytes).unwrap(), 1.5);
        spec.exponent_bias = 0x73;
        assert_eq!(spec.decode(&bytes).unwrap(), 1.5 * 4096.0);
        spec.exponent_bias = 0x7F + 3;
        assert_eq!(spec.decode(&bytes).unwrap(), 1.5 / 8.0);
    }

    #[test]
    fn lost_implied_bit_roughly_halves_values() {
        // Table IV: Mantissa Normalization bit-5 flip, average 1 -> 0.55.
        let spec_ok = FloatSpec::ieee_f32();
        let mut spec_bad = spec_ok;
        spec_bad.normalization = Normalization::None;
        let xs = [1.0f32, 1.3, 1.9, 1.1, 1.6];
        let mean_ok: f64 =
            xs.iter().map(|v| spec_ok.decode(&v.to_le_bytes()).unwrap()).sum::<f64>() / 5.0;
        let mean_bad: f64 =
            xs.iter().map(|v| spec_bad.decode(&v.to_le_bytes()).unwrap()).sum::<f64>() / 5.0;
        assert!((mean_ok - 1.38).abs() < 0.01);
        // Dropping the implied 1 keeps only the fractional part.
        assert!((mean_bad - 0.38).abs() < 0.01, "mean_bad = {}", mean_bad);
    }

    #[test]
    fn corrupted_mantissa_size_changes_decode() {
        let mut spec = FloatSpec::ieee_f32();
        spec.mantissa_size = 19; // flipped bit in the size byte
        let v = 1.75f32;
        let got = spec.decode(&v.to_le_bytes()).unwrap();
        assert_ne!(got, 1.75);
        assert!(got.is_finite());
    }

    #[test]
    fn normalization_bits_roundtrip() {
        for n in [Normalization::None, Normalization::MsbSet, Normalization::Implied] {
            assert_eq!(Normalization::from_bits(n.bits()), n);
        }
        // Reserved value 3 degrades to None (silently — SDC exposure).
        assert_eq!(Normalization::from_bits(3), Normalization::None);
    }

    #[test]
    fn decode_all_bulk() {
        let spec = FloatSpec::ieee_f32();
        let mut raw = Vec::new();
        for v in [1.0f32, 2.0, 3.0] {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let vals = spec.decode_all(&raw, 3).unwrap();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        assert!(spec.decode_all(&raw, 4).is_err());
    }

    #[test]
    fn decode_all_fast_path_matches_generic_decode() {
        // The bulk fast path must agree bit-for-bit with the
        // field-by-field decode on arbitrary bit patterns — including
        // the zero/subnormal/non-finite encodings it routes back to
        // the generic path.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for spec in [FloatSpec::ieee_f32(), FloatSpec::ieee_f64()] {
            let size = spec.size as usize;
            let mut raw: Vec<u8> = (0..512 * size).map(|_| next() as u8).collect();
            // Splice in the edge encodings explicitly.
            raw[..4].copy_from_slice(&0.0f32.to_le_bytes());
            raw[4..8].copy_from_slice(&(-0.0f32).to_le_bytes());
            raw[8..12].copy_from_slice(&1u32.to_le_bytes()); // min subnormal
            raw[12..16].copy_from_slice(&f32::INFINITY.to_le_bytes());
            let count = 512;
            let bulk = spec.decode_all(&raw, count).unwrap();
            for (i, &b) in bulk.iter().enumerate() {
                let one = spec.decode(&raw[i * size..(i + 1) * size]).unwrap();
                assert!(
                    b.to_bits() == one.to_bits() || (b.is_nan() && one.is_nan()),
                    "{:?} element {}: bulk {} != generic {}",
                    spec.size,
                    i,
                    b,
                    one
                );
            }
        }
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut s = FloatSpec::ieee_f32();
        s.size = 0;
        assert!(s.validate().is_err());
        let mut s2 = FloatSpec::ieee_f32();
        s2.size = 9;
        assert!(s2.validate().is_err());
        let mut s3 = FloatSpec::ieee_f32();
        s3.exponent_size = 0;
        assert!(s3.validate().is_err());
    }

    #[test]
    fn encode_saturates_overflow_and_underflow() {
        let spec = FloatSpec::ieee_f32();
        let inf = spec.encode(1e300).unwrap();
        assert_eq!(f32::from_le_bytes([inf[0], inf[1], inf[2], inf[3]]), f32::INFINITY);
        let zero = spec.encode(1e-300).unwrap();
        assert_eq!(f32::from_le_bytes([zero[0], zero[1], zero[2], zero[3]]), 0.0);
    }

    #[test]
    fn element_too_short_is_error() {
        let spec = FloatSpec::ieee_f32();
        assert!(spec.decode(&[1, 2, 3]).is_err());
    }
}
