//! # hdf5lite — a from-scratch HDF5 file-format subset
//!
//! The paper studies "how \[the\] certain scientific file format library
//! handles the storage errors affecting both the file metadata and
//! application data" for HDF5, the most-used I/O library at NERSC and
//! the DOE facilities. This crate is a clean-room implementation of
//! the portion of the HDF5 File Format Specification (v0 superblock,
//! v1 object headers) that the paper's analysis exercises:
//!
//! * superblock, group object headers, v1 group **B-trees** (`TREE`),
//!   **symbol-table nodes** (`SNOD`), **local heaps** (`HEAP`);
//! * dataset object headers with **dataspace**, **datatype** (class-1
//!   floating point with the full property set: bit offset/precision,
//!   exponent location/size/bias, mantissa location/size/
//!   normalization), **fill value**, **contiguous layout** (Address
//!   of Raw Data + size) and **modification time** messages;
//! * the creation protocol FFIS exploits (lock → chunked raw-data
//!   writes → packed metadata as the *penultimate* write → EOF patch
//!   → unlock);
//! * a validating reader whose float decode runs *through* the stored
//!   property fields — so metadata corruption really scales
//!   (Exponent Bias), shifts (ARD) or reshapes (mantissa fields) the
//!   decoded data, exactly as Table IV describes;
//! * a byte-exact **field map** emitted by the writer itself, and the
//!   paper's §V-A **detection/auto-correction** methodology.
//!
//! ```
//! use ffis_vfs::MemFs;
//! use hdf5lite::{Dataset, FileBuilder, WriteOptions};
//!
//! let fs = MemFs::new();
//! let mut b = FileBuilder::new();
//! b.add_dataset(
//!     "/native_fields/baryon_density",
//!     Dataset::f32("baryon_density", &[4, 4, 4], &[1.0f32; 64]),
//! ).unwrap();
//! hdf5lite::write_file(&fs, "/plt00000.h5", &b.into_root(), &WriteOptions::default()).unwrap();
//!
//! let info = hdf5lite::read_dataset(&fs, "/plt00000.h5", "/native_fields/baryon_density").unwrap();
//! assert_eq!(info.dims, vec![4, 4, 4]);
//! assert!(info.values.iter().all(|&v| v == 1.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytes;
pub mod checksum;
pub mod emitter;
pub mod encode;
pub mod floatspec;
pub mod layout;
pub mod reader;
pub mod repair;
pub mod types;
pub mod writer;

pub use checksum::{fletcher32, seal_checksum, verify_seal};
pub use emitter::Span;
pub use encode::encode_metadata;
pub use floatspec::{FloatSpec, Normalization};
pub use layout::{plan, Dataset, FileBuilder, Node, Plan};
pub use reader::{open, read_dataset, DatasetInfo, FieldOffsets, H5File};
pub use repair::{diagnose, repair_file, Correction, Diagnosis, RepairReport};
pub use types::{Hdf5Error, Hdf5Result, EOF_ADDR_OFFSET, SIGNATURE, SUPERBLOCK_SIZE};
pub use writer::{write_file, DataRegion, WriteOptions, WriteReport};

/// Find the first metadata span whose name contains `needle`.
pub fn find_span<'a>(spans: &'a [Span], needle: &str) -> Option<&'a Span> {
    spans.iter().find(|s| s.name.contains(needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_span_helper() {
        let spans = vec![
            Span { start: 0, end: 4, name: "A.B".into() },
            Span { start: 4, end: 8, name: "C.D".into() },
        ];
        assert_eq!(find_span(&spans, "C").unwrap().start, 4);
        assert!(find_span(&spans, "Z").is_none());
    }
}
