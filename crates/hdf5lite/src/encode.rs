//! Metadata block encoder.
//!
//! Emits the packed metadata region — superblock, group structures,
//! dataset object headers — through the field-labelling
//! [`Emitter`], so the byte-exact field map falls out of the encode
//! itself. Field names follow the HDF5 File Format Specification
//! terminology used in the paper's Tables III/IV (`ExponentBias`,
//! `MantissaSize`, `AddressOfRawData`, ...).

use crate::emitter::{Emitter, Span};
use crate::floatspec::FloatSpec;
use crate::layout::{Plan, PlannedChild, PlannedDataset, PlannedGroup};
use crate::types::{
    MessageType, GROUP_INTERNAL_K, GROUP_LEAF_K, HEAP_SIGNATURE, SIGNATURE, SNOD_SIGNATURE,
    TREE_SIGNATURE, UNDEFINED_ADDR,
};

/// Modification time stamp written into every object header. Fixed
/// (not wall clock) so golden and faulty runs are bitwise comparable.
pub const MOD_TIME: u32 = 1_609_459_200; // 2021-01-01T00:00:00Z

/// Encode the full metadata block `[0, plan.metadata_size)`.
///
/// The superblock's End-of-File Address field is emitted as
/// `UNDEFINED_ADDR`; the writer patches it with a separate, final
/// write — which is what makes the metadata write the *penultimate*
/// write of the file-creation protocol (paper §IV-D).
pub fn encode_metadata(plan: &Plan) -> (Vec<u8>, Vec<Span>) {
    let mut e = Emitter::new();
    encode_superblock(&mut e, plan);
    encode_group(&mut e, &plan.root, "/");
    e.pad_to("Pad.MetadataTail", plan.metadata_size);
    e.finish()
}

fn encode_superblock(e: &mut Emitter, plan: &Plan) {
    e.scope("Superblock", |e| {
        e.bytes("Signature", &SIGNATURE);
        e.u8("VersionSuperblock", 0);
        e.u8("VersionFreeSpace", 0);
        e.u8("VersionRootSymbolTable", 0);
        e.pad("Reserved0", 1);
        e.u8("VersionSharedHeaderFormat", 0);
        e.u8("SizeOfOffsets", 8);
        e.u8("SizeOfLengths", 8);
        e.pad("Reserved1", 1);
        e.u16("GroupLeafNodeK", GROUP_LEAF_K as u16);
        e.u16("GroupInternalNodeK", GROUP_INTERNAL_K as u16);
        e.u32("FileConsistencyFlags", 0);
        e.u64("BaseAddress", 0);
        e.u64("FreeSpaceAddress", UNDEFINED_ADDR);
        // Patched by the final write of the creation protocol.
        e.u64("EndOfFileAddress", UNDEFINED_ADDR);
        e.u64("DriverInfoAddress", UNDEFINED_ADDR);
        e.scope("RootSymbolTableEntry", |e| {
            e.u64("LinkNameOffset", 0);
            e.u64("ObjectHeaderAddress", plan.root.ohdr_addr);
            e.u32("CacheType", 0);
            e.pad("Reserved", 4);
            e.pad("Scratch", 16);
        });
    });
}

fn group_scope_name(path: &str) -> String {
    format!("Group<{}>", path)
}

fn encode_group(e: &mut Emitter, g: &PlannedGroup, path: &str) {
    let scope = group_scope_name(path);
    e.scope(&scope, |e| {
        // Object header with the symbol-table message.
        assert_eq!(e.len(), g.ohdr_addr, "group ohdr address drift at {}", path);
        e.scope("ObjectHeader", |e| {
            e.u8("Version", 1);
            e.pad("Reserved", 1);
            e.u16("TotalHeaderMessages", 1);
            e.u32("ObjectReferenceCount", 1);
            e.u32("HeaderSize", (8 + 16) as u32);
            e.pad("Pad", 4);
            e.scope("SymbolTableMessage", |e| {
                e.u16("Type", MessageType::SymbolTable.id());
                e.u16("Size", 16);
                e.u8("Flags", 0);
                e.pad("Reserved", 3);
                e.u64("BTreeAddress", g.btree_addr);
                e.u64("LocalHeapAddress", g.heap_addr);
            });
        });

        // B-tree node (v1, leaf, pointing at the single SNOD).
        assert_eq!(e.len(), g.btree_addr);
        e.scope("BTree", |e| {
            e.bytes("Signature", &TREE_SIGNATURE);
            e.u8("NodeType", 0); // group node
            e.u8("NodeLevel", 0); // leaf
            e.u16("EntriesUsed", 1);
            e.u64("LeftSibling", UNDEFINED_ADDR);
            e.u64("RightSibling", UNDEFINED_ADDR);
            // Keys are heap offsets bounding the child names.
            let first = g.children.first().map(|c| c.name_offset()).unwrap_or(0);
            let last = g.children.last().map(|c| c.name_offset()).unwrap_or(0);
            e.u64("Key0", first);
            e.u64("Child0", g.snod_addr);
            e.u64("Key1", last);
            let used = 24 + 3 * 8;
            let total = crate::layout::BTREE_NODE_SIZE;
            e.pad("UnusedSlots", (total - used as u64) as usize);
        });

        // Symbol table node with the children entries.
        assert_eq!(e.len(), g.snod_addr);
        e.scope("SNOD", |e| {
            e.bytes("Signature", &SNOD_SIGNATURE);
            e.u8("Version", 1);
            e.pad("Reserved", 1);
            e.u16("NumberOfSymbols", g.children.len() as u16);
            for c in &g.children {
                e.scope(&format!("Entry<{}>", c.name()), |e| {
                    e.u64("LinkNameOffset", c.name_offset());
                    e.u64("ObjectHeaderAddress", c.ohdr_addr());
                    e.u32("CacheType", 0);
                    e.pad("Reserved", 4);
                    e.pad("Scratch", 16);
                });
            }
            let used = 8 + g.children.len() as u64 * crate::layout::STE_SIZE;
            e.pad("UnusedEntries", (crate::layout::SNOD_SIZE - used) as usize);
        });

        // Local heap.
        assert_eq!(e.len(), g.heap_addr);
        e.scope("LocalHeap", |e| {
            e.bytes("Signature", &HEAP_SIGNATURE);
            e.u8("Version", 0);
            e.pad("Reserved", 3);
            e.u64("DataSegmentSize", g.heap_seg_size);
            e.u64("FreeListHeadOffset", UNDEFINED_ADDR);
            e.u64("DataSegmentAddress", g.heap_data_addr);
            e.scope("Data", |e| {
                e.pad("FreeBlock", 8);
                for c in &g.children {
                    let name = c.name();
                    let padded = crate::types::align8(name.len() as u64 + 1) as usize;
                    let mut bytes = name.as_bytes().to_vec();
                    bytes.resize(padded, 0);
                    e.bytes(&format!("Name<{}>", name), &bytes);
                }
            });
        });
    });

    // Children structures follow their parent group.
    for c in &g.children {
        match c {
            PlannedChild::Group(sub) => {
                let sub_path = if path == "/" {
                    format!("/{}", sub.name)
                } else {
                    format!("{}/{}", path, sub.name)
                };
                encode_group(e, sub, &sub_path);
            }
            PlannedChild::Dataset(d) => {
                let sub_path = if path == "/" {
                    format!("/{}", d.dataset.name)
                } else {
                    format!("{}/{}", path, d.dataset.name)
                };
                encode_dataset(e, d, &sub_path);
            }
        }
    }
}

fn encode_dataset(e: &mut Emitter, d: &PlannedDataset, path: &str) {
    let rank = d.dataset.dims.len();
    let dataspace_body = crate::layout::dataspace_body_size(rank);
    let header_size = (8 + dataspace_body)
        + (8 + crate::layout::DATATYPE_BODY_SIZE)
        + (8 + crate::layout::FILLVALUE_BODY_SIZE)
        + (8 + crate::layout::LAYOUT_BODY_SIZE)
        + (8 + crate::layout::MODTIME_BODY_SIZE);

    e.scope(&format!("Dataset<{}>", path), |e| {
        assert_eq!(e.len(), d.ohdr_addr, "dataset ohdr address drift at {}", path);
        e.scope("ObjectHeader", |e| {
            e.u8("Version", 1);
            e.pad("Reserved", 1);
            e.u16("TotalHeaderMessages", 5);
            e.u32("ObjectReferenceCount", 1);
            e.u32("HeaderSize", header_size as u32);
            e.pad("Pad", 4);
        });

        e.scope("Dataspace", |e| {
            e.u16("Type", MessageType::Dataspace.id());
            e.u16("Size", dataspace_body as u16);
            e.u8("Flags", 0);
            e.pad("Reserved", 3);
            e.u8("Version", 1);
            e.u8("Dimensionality", rank as u8);
            e.u8("DimFlags", 0);
            e.pad("Reserved2", 5);
            for (i, &dim) in d.dataset.dims.iter().enumerate() {
                e.u64(&format!("Dim{}", i), dim);
            }
            let body_used = 8 + rank as u64 * 8;
            e.pad("Pad", (dataspace_body - body_used) as usize);
        });

        encode_datatype_message(e, &d.dataset.dtype);

        e.scope("FillValue", |e| {
            e.u16("Type", MessageType::FillValue.id());
            e.u16("Size", crate::layout::FILLVALUE_BODY_SIZE as u16);
            e.u8("Flags", 0);
            e.pad("Reserved", 3);
            e.u8("Version", 2);
            e.u8("SpaceAllocationTime", 1); // early
            e.u8("FillValueWriteTime", 0);
            e.u8("FillValueDefined", 0);
            e.u32("FillSize", 0);
        });

        e.scope("Layout", |e| {
            e.u16("Type", MessageType::Layout.id());
            e.u16("Size", crate::layout::LAYOUT_BODY_SIZE as u16);
            e.u8("Flags", 0);
            e.pad("Reserved", 3);
            e.u8("Version", 3);
            e.u8("LayoutClass", 1); // contiguous
            e.u64("AddressOfRawData", d.data_addr);
            e.u64("SizeOfRawData", d.dataset.data_size());
            e.pad("Pad", 6);
        });

        e.scope("ModificationTime", |e| {
            e.u16("Type", MessageType::ModTime.id());
            e.u16("Size", crate::layout::MODTIME_BODY_SIZE as u16);
            e.u8("Flags", 0);
            e.pad("Reserved", 3);
            e.u8("Version", 1);
            e.pad("Reserved2", 3);
            e.u32("Seconds", MOD_TIME);
        });
    });
}

/// Encode a datatype message (class 1, floating point) — the message
/// whose property fields Figure 1 (middle/bottom) depicts and whose
/// corruption drives the paper's SDC taxonomy.
fn encode_datatype_message(e: &mut Emitter, spec: &FloatSpec) {
    e.scope("Datatype", |e| {
        e.u16("Type", MessageType::Datatype.id());
        e.u16("Size", crate::layout::DATATYPE_BODY_SIZE as u16);
        e.u8("Flags", 0);
        e.pad("Reserved", 3);
        // Class-and-version: high nibble = version 1, low = class 1.
        e.u8("ClassAndVersion", (1 << 4) | 1);
        // Class bit field byte 0: bit 0 byte order (0 = LE), bits 1–3
        // padding types, bits 4–5 mantissa normalization.
        e.u8("BitField0.MantissaNormalization", spec.normalization.bits() << 4);
        // Byte 1: sign location.
        e.u8("BitField1.SignLocation", spec.sign_location);
        e.u8("BitField2", 0);
        e.u32("Size", spec.size);
        e.u16("BitOffset", spec.bit_offset);
        e.u16("BitPrecision", spec.bit_precision);
        e.u8("ExponentLocation", spec.exponent_location);
        e.u8("ExponentSize", spec.exponent_size);
        e.u8("MantissaLocation", spec.mantissa_location);
        e.u8("MantissaSize", spec.mantissa_size);
        e.u32("ExponentBias", spec.exponent_bias);
        e.pad("Pad", 4);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{plan, Dataset, FileBuilder};

    fn nyx_plan() -> Plan {
        let mut b = FileBuilder::new();
        b.add_dataset(
            "/native_fields/baryon_density",
            Dataset::f32("baryon_density", &[4, 4, 4], &[1.5; 64]),
        )
        .unwrap();
        plan(&b.into_root()).unwrap()
    }

    #[test]
    fn encoded_length_matches_plan() {
        let p = nyx_plan();
        let (bytes, spans) = encode_metadata(&p);
        assert_eq!(bytes.len() as u64, p.metadata_size);
        // Spans tile the block with no gaps.
        let mut cursor = 0;
        for s in &spans {
            assert_eq!(s.start, cursor, "gap before {}", s.name);
            cursor = s.end;
        }
        assert_eq!(cursor, p.metadata_size);
    }

    #[test]
    fn signature_bytes_at_front() {
        let (bytes, _) = encode_metadata(&nyx_plan());
        assert_eq!(&bytes[..8], &SIGNATURE);
    }

    #[test]
    fn interesting_fields_present_and_unique() {
        let (_, spans) = encode_metadata(&nyx_plan());
        for needle in [
            "ExponentBias",
            "MantissaSize",
            "MantissaLocation",
            "ExponentLocation",
            "MantissaNormalization",
            "AddressOfRawData",
            "SizeOfRawData",
            "BitOffset",
            "BitPrecision",
            "BTree.Signature",
            "SNOD.Signature",
        ] {
            let hits: Vec<_> = spans.iter().filter(|s| s.name.contains(needle)).collect();
            assert!(!hits.is_empty(), "{} missing", needle);
        }
        // Exactly one dataset -> exactly one ExponentBias span.
        assert_eq!(spans.iter().filter(|s| s.name.contains("ExponentBias")).count(), 1);
    }

    #[test]
    fn exponent_bias_encodes_127() {
        let p = nyx_plan();
        let (bytes, spans) = encode_metadata(&p);
        let span = spans.iter().find(|s| s.name.contains("ExponentBias")).unwrap();
        assert_eq!(span.end - span.start, 4);
        let v =
            u32::from_le_bytes(bytes[span.start as usize..span.end as usize].try_into().unwrap());
        assert_eq!(v, 127);
    }

    #[test]
    fn ard_field_holds_metadata_size() {
        let p = nyx_plan();
        let (bytes, spans) = encode_metadata(&p);
        let span = spans.iter().find(|s| s.name.contains("AddressOfRawData")).unwrap();
        let v =
            u64::from_le_bytes(bytes[span.start as usize..span.end as usize].try_into().unwrap());
        assert_eq!(v, p.metadata_size, "ARD equals the metadata size (paper §V-A)");
    }

    #[test]
    fn unused_btree_slots_dominate_metadata() {
        // Paper: most metadata bytes are reserved/unused B-tree space,
        // which is why 85.7% of metadata faults are benign.
        let p = nyx_plan();
        let (_, spans) = encode_metadata(&p);
        let unused: u64 = spans
            .iter()
            .filter(|s| {
                s.name.contains("UnusedSlots")
                    || s.name.contains("UnusedEntries")
                    || s.name.contains("Scratch")
                    || s.name.contains("Pad")
                    || s.name.contains("Reserved")
            })
            .map(|s| s.end - s.start)
            .sum();
        let share = unused as f64 / p.metadata_size as f64;
        assert!(share > 0.5, "unused share = {:.2}", share);
    }

    #[test]
    fn heap_contains_link_names() {
        let (bytes, spans) = encode_metadata(&nyx_plan());
        let name_span = spans.iter().find(|s| s.name.contains("Name<baryon_density>")).unwrap();
        let raw = &bytes[name_span.start as usize..name_span.end as usize];
        assert!(raw.starts_with(b"baryon_density\0"));
    }

    #[test]
    fn eof_field_left_undefined_for_final_patch() {
        let (bytes, spans) = encode_metadata(&nyx_plan());
        let span = spans.iter().find(|s| s.name == "Superblock.EndOfFileAddress").unwrap();
        assert_eq!(span.start, crate::types::EOF_ADDR_OFFSET);
        let v =
            u64::from_le_bytes(bytes[span.start as usize..span.end as usize].try_into().unwrap());
        assert_eq!(v, UNDEFINED_ADDR);
    }

    #[test]
    fn multiple_datasets_each_get_fields() {
        let mut b = FileBuilder::new();
        b.add_dataset("/a", Dataset::f32("a", &[2], &[1.0, 2.0])).unwrap();
        b.add_dataset("/b", Dataset::f64("b", &[2], &[3.0, 4.0])).unwrap();
        let p = plan(&b.into_root()).unwrap();
        let (bytes, spans) = encode_metadata(&p);
        assert_eq!(bytes.len() as u64, p.metadata_size);
        assert_eq!(spans.iter().filter(|s| s.name.contains("ExponentBias")).count(), 2);
        let biases: Vec<u32> = spans
            .iter()
            .filter(|s| s.name.contains("ExponentBias"))
            .map(|s| {
                u32::from_le_bytes(bytes[s.start as usize..s.end as usize].try_into().unwrap())
            })
            .collect();
        assert_eq!(biases, vec![127, 1023]);
    }
}
