//! Field-map-recording metadata emitter.
//!
//! The metadata study of the paper (§IV-D) needs to know, for every
//! byte of the packed metadata block, which format field it belongs to
//! ("we refer to the HDF5 File Format Specification to capture the
//! field information of each metadata byte"). Rather than maintaining
//! a separate offset table that can drift from the writer, the writer
//! emits every field through this [`Emitter`], which appends the bytes
//! *and* records a named span — the field map is correct by
//! construction.

use crate::bytes::Writer;

/// A named byte range `[start, end)` in the emitted metadata block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// First byte offset.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Dotted field path, e.g. `"Dataset.Datatype.ExponentBias"`.
    pub name: String,
}

/// Byte writer that labels every emitted field.
#[derive(Debug, Default)]
pub struct Emitter {
    w: Writer,
    spans: Vec<Span>,
    prefix: Vec<String>,
}

impl Emitter {
    /// Empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length (== offset of the next emitted byte).
    pub fn len(&self) -> u64 {
        self.w.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Run `f` with `name` pushed onto the field-path prefix.
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.prefix.push(name.to_string());
        let r = f(self);
        self.prefix.pop();
        r
    }

    fn full_name(&self, leaf: &str) -> String {
        if self.prefix.is_empty() {
            leaf.to_string()
        } else {
            format!("{}.{}", self.prefix.join("."), leaf)
        }
    }

    fn record(&mut self, leaf: &str, start: u64) {
        let end = self.w.len();
        if end > start {
            let name = self.full_name(leaf);
            self.spans.push(Span { start, end, name });
        }
    }

    /// Labeled raw bytes.
    pub fn bytes(&mut self, name: &str, b: &[u8]) {
        let start = self.w.len();
        self.w.put_bytes(b);
        self.record(name, start);
    }

    /// Labeled `u8`.
    pub fn u8(&mut self, name: &str, v: u8) {
        let start = self.w.len();
        self.w.put_u8(v);
        self.record(name, start);
    }

    /// Labeled little-endian `u16`.
    pub fn u16(&mut self, name: &str, v: u16) {
        let start = self.w.len();
        self.w.put_u16(v);
        self.record(name, start);
    }

    /// Labeled little-endian `u32`.
    pub fn u32(&mut self, name: &str, v: u32) {
        let start = self.w.len();
        self.w.put_u32(v);
        self.record(name, start);
    }

    /// Labeled little-endian `u64`.
    pub fn u64(&mut self, name: &str, v: u64) {
        let start = self.w.len();
        self.w.put_u64(v);
        self.record(name, start);
    }

    /// Labeled zero padding.
    pub fn pad(&mut self, name: &str, n: usize) {
        let start = self.w.len();
        self.w.pad(n);
        self.record(name, start);
    }

    /// Pad with zeros until the buffer reaches `target` bytes.
    pub fn pad_to(&mut self, name: &str, target: u64) {
        let cur = self.w.len();
        assert!(target >= cur, "pad_to({}) below current {}", target, cur);
        self.pad(name, (target - cur) as usize);
    }

    /// Finish: `(bytes, spans)`.
    pub fn finish(self) -> (Vec<u8>, Vec<Span>) {
        (self.w.into_bytes(), self.spans)
    }

    /// Spans recorded so far (for in-progress assertions).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_all_bytes_contiguously() {
        let mut e = Emitter::new();
        e.u8("A", 1);
        e.u16("B", 2);
        e.scope("S", |e| {
            e.u32("C", 3);
            e.pad("Pad", 1);
        });
        e.u64("D", 4);
        let (bytes, spans) = e.finish();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 1 + 8);
        let mut expected_start = 0;
        for s in &spans {
            assert_eq!(s.start, expected_start, "no gaps");
            expected_start = s.end;
        }
        assert_eq!(expected_start, bytes.len() as u64);
        assert_eq!(spans[2].name, "S.C");
        assert_eq!(spans[3].name, "S.Pad");
        assert_eq!(spans[4].name, "D");
    }

    #[test]
    fn nested_scopes_join_with_dots() {
        let mut e = Emitter::new();
        e.scope("Dataset", |e| {
            e.scope("Datatype", |e| {
                e.u32("ExponentBias", 127);
            });
        });
        let (_, spans) = e.finish();
        assert_eq!(spans[0].name, "Dataset.Datatype.ExponentBias");
    }

    #[test]
    fn pad_to_reaches_target() {
        let mut e = Emitter::new();
        e.u8("x", 9);
        e.pad_to("align", 16);
        assert_eq!(e.len(), 16);
        let (bytes, spans) = e.finish();
        assert_eq!(bytes.len(), 16);
        assert_eq!(spans[1].end - spans[1].start, 15);
    }

    #[test]
    fn zero_length_fields_not_recorded() {
        let mut e = Emitter::new();
        e.bytes("empty", &[]);
        e.pad("none", 0);
        e.u8("real", 1);
        let (_, spans) = e.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "real");
    }

    #[test]
    #[should_panic]
    fn pad_to_backwards_panics() {
        let mut e = Emitter::new();
        e.u64("x", 0);
        e.pad_to("bad", 4);
    }
}
