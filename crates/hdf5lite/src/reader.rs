//! The validating HDF5 reader.
//!
//! Faithfully mirrors how the HDF5 library reacts to corrupted
//! metadata (paper §V-A):
//!
//! * **Crash class** — signatures (`\x89HDF...`, `TREE`, `SNOD`,
//!   `HEAP`), version numbers, message types/sizes, addresses and
//!   dimension products are *validated*; an unjustified value raises
//!   an [`Hdf5Error`] ("mainly due to the exceptions thrown by the
//!   HDF5 library").
//! * **Benign class** — reserved bytes, padding, unused B-tree/SNOD
//!   slots and the overwritten EOF field are *not* inspected.
//! * **SDC class** — the floating-point property fields (exponent
//!   bias/location, mantissa location/size/normalization) and the
//!   Address of Raw Data are consumed *arithmetically* with no
//!   cross-checks, so corruption silently reshapes the decoded data
//!   (scaling for Exponent Bias, shifting for ARD — Figure 5).

use ffis_vfs::{FileSystem, LockKind, OpenFlags};

use crate::bytes::Reader;
use crate::floatspec::{FloatSpec, Normalization};
use crate::types::{
    align8, Hdf5Error, Hdf5Result, MessageType, HEAP_SIGNATURE, SIGNATURE, SNOD_SIGNATURE,
    SUPERBLOCK_SIZE, TREE_SIGNATURE,
};

/// Sanity ceiling on decoded element counts (prevents corrupted dims
/// from exhausting memory before validation can reject them).
const MAX_ELEMENTS: u64 = 1 << 28;

/// Absolute file offsets of the repair-relevant fields, captured
/// during the parse so [`crate::repair`] can patch them in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldOffsets {
    /// Datatype class bit-field byte 0 (mantissa normalization).
    pub bitfield0: u64,
    /// Datatype element size (u32).
    pub size: u64,
    /// Bit offset (u16).
    pub bit_offset: u64,
    /// Bit precision (u16).
    pub bit_precision: u64,
    /// Exponent location (u8).
    pub exponent_location: u64,
    /// Exponent size (u8).
    pub exponent_size: u64,
    /// Mantissa location (u8).
    pub mantissa_location: u64,
    /// Mantissa size (u8).
    pub mantissa_size: u64,
    /// Exponent bias (u32).
    pub exponent_bias: u64,
    /// Layout Address of Raw Data (u64).
    pub layout_ard: u64,
    /// Layout Size of Raw Data (u64).
    pub layout_size: u64,
}

/// A fully decoded dataset.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Slash path.
    pub path: String,
    /// Dimension sizes.
    pub dims: Vec<u64>,
    /// Values decoded through the stored [`FloatSpec`].
    pub values: Vec<f64>,
    /// The stored datatype properties (possibly corrupted!).
    pub spec: FloatSpec,
    /// Stored Address of Raw Data.
    pub stored_ard: u64,
    /// Stored Size of Raw Data.
    pub stored_size: u64,
    /// Field offsets for in-place repair.
    pub offsets: FieldOffsets,
}

/// Object-header messages we understand.
#[derive(Debug, Clone)]
enum Message {
    SymbolTable { btree: u64, heap: u64 },
    Dataspace { dims: Vec<u64> },
    Datatype { spec: FloatSpec, offsets_partial: FieldOffsets },
    Layout { ard: u64, size: u64, ard_off: u64, size_off: u64 },
    FillValue,
    ModTime,
    Nil,
}

/// An opened (fully slurped) HDF5 file.
#[derive(Debug, Clone)]
pub struct H5File {
    bytes: Vec<u8>,
    group_leaf_k: u16,
    group_internal_k: u16,
    root_ohdr: u64,
}

/// Open a file: shared-lock, read fully, validate the superblock.
pub fn open(fs: &dyn FileSystem, path: &str) -> Hdf5Result<H5File> {
    let fd = fs.open(path, OpenFlags::read_only())?;
    fs.lock(fd, LockKind::Shared)?;
    let bytes = {
        let meta = fs.getattr(path)?;
        let mut out = vec![0u8; meta.size as usize];
        let mut done = 0usize;
        while done < out.len() {
            let n = fs.pread(fd, &mut out[done..], done as u64)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        out.truncate(done);
        out
    };
    fs.unlock(fd)?;
    fs.release(fd)?;
    H5File::from_bytes(bytes)
}

impl H5File {
    /// Parse from an in-memory image (validates the superblock).
    pub fn from_bytes(bytes: Vec<u8>) -> Hdf5Result<Self> {
        if bytes.len() < SUPERBLOCK_SIZE as usize {
            return Err(Hdf5Error::new("file smaller than superblock"));
        }
        // Sealed files verify the metadata checksum before any field
        // is trusted; unsealed files (the paper's v0 format) proceed
        // with signature/version validation only.
        crate::checksum::verify_seal(&bytes)?;
        let mut r = Reader::new(&bytes);
        if r.bytes(8)? != SIGNATURE {
            return Err(Hdf5Error::new("bad HDF5 signature"));
        }
        let ver_sb = r.u8()?;
        let ver_fs = r.u8()?;
        let ver_rg = r.u8()?;
        r.skip(1)?; // reserved
        let ver_shmf = r.u8()?;
        if ver_sb != 0 || ver_fs != 0 || ver_rg != 0 || ver_shmf != 0 {
            return Err(Hdf5Error::new(format!(
                "unsupported superblock versions {}/{}/{}/{}",
                ver_sb, ver_fs, ver_rg, ver_shmf
            )));
        }
        let size_off = r.u8()?;
        let size_len = r.u8()?;
        if size_off != 8 || size_len != 8 {
            return Err(Hdf5Error::new(format!(
                "unsupported offset/length sizes {}/{}",
                size_off, size_len
            )));
        }
        r.skip(1)?; // reserved
        let leaf_k = r.u16()?;
        let internal_k = r.u16()?;
        if leaf_k == 0 || leaf_k > 1024 || internal_k == 0 || internal_k > 1024 {
            return Err(Hdf5Error::new(format!(
                "implausible B-tree K values {}/{}",
                leaf_k, internal_k
            )));
        }
        let _flags = r.u32()?;
        let base = r.u64()?;
        if base != 0 {
            return Err(Hdf5Error::new("nonzero base address unsupported"));
        }
        let _free_space = r.u64()?;
        let eof = r.u64()?;
        // HDF5 rejects files shorter than the recorded EOF ("file is
        // truncated").
        if eof > bytes.len() as u64 {
            return Err(Hdf5Error::new(format!(
                "truncated file: EOF address {:#x} beyond actual size {:#x}",
                eof,
                bytes.len()
            )));
        }
        let _driver = r.u64()?;
        // Root symbol table entry.
        let _link_name_offset = r.u64()?;
        let root_ohdr = r.u64()?;
        let _cache_type = r.u32()?;
        if root_ohdr >= bytes.len() as u64 {
            return Err(Hdf5Error::new("root object header address beyond EOF"));
        }
        Ok(H5File { bytes, group_leaf_k: leaf_k, group_internal_k: internal_k, root_ohdr })
    }

    /// Raw file image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    // ---- object headers -----------------------------------------------------

    fn parse_object_header(&self, addr: u64) -> Hdf5Result<Vec<Message>> {
        let mut r = Reader::at(&self.bytes, addr)?;
        let version = r.u8()?;
        if version != 1 {
            return Err(Hdf5Error::new(format!("object header version {} != 1", version)));
        }
        r.skip(1)?;
        let nmsgs = r.u16()?;
        if nmsgs == 0 || nmsgs > 64 {
            return Err(Hdf5Error::new(format!("implausible message count {}", nmsgs)));
        }
        let _refcount = r.u32()?;
        let header_size = r.u32()?;
        if header_size as usize > self.bytes.len() {
            return Err(Hdf5Error::new("object header size beyond file"));
        }
        r.skip(4)?; // pad
        let mut msgs = Vec::with_capacity(nmsgs as usize);
        let mut consumed = 0u64;
        for _ in 0..nmsgs {
            if consumed >= header_size as u64 {
                return Err(Hdf5Error::new("messages overrun the declared header size"));
            }
            let ty_raw = r.u16()?;
            let size = r.u16()?;
            let _flags = r.u8()?;
            r.skip(3)?;
            let body_start = r.position();
            let ty = MessageType::from_id(ty_raw)
                .ok_or_else(|| Hdf5Error::new(format!("unknown message type {:#06x}", ty_raw)))?;
            let msg = match ty {
                MessageType::SymbolTable => {
                    let btree = r.u64()?;
                    let heap = r.u64()?;
                    Message::SymbolTable { btree, heap }
                }
                MessageType::Dataspace => {
                    let ver = r.u8()?;
                    if ver != 1 {
                        return Err(Hdf5Error::new(format!("dataspace version {} != 1", ver)));
                    }
                    let rank = r.u8()?;
                    if rank == 0 || rank > 8 {
                        return Err(Hdf5Error::new(format!("implausible rank {}", rank)));
                    }
                    let _dimflags = r.u8()?;
                    r.skip(5)?;
                    let mut dims = Vec::with_capacity(rank as usize);
                    let mut product: u64 = 1;
                    for _ in 0..rank {
                        let d = r.u64()?;
                        product = product
                            .checked_mul(d.max(1))
                            .ok_or_else(|| Hdf5Error::new("dimension product overflow"))?;
                        dims.push(d);
                    }
                    if product > MAX_ELEMENTS {
                        return Err(Hdf5Error::new(format!(
                            "dimension product {} exceeds sanity limit",
                            product
                        )));
                    }
                    Message::Dataspace { dims }
                }
                MessageType::Datatype => {
                    let cav_off = r.position();
                    let cav = r.u8()?;
                    let (ver, class) = (cav >> 4, cav & 0x0F);
                    if ver != 1 {
                        return Err(Hdf5Error::new(format!("datatype version {} != 1", ver)));
                    }
                    if class != 1 {
                        return Err(Hdf5Error::new(format!(
                            "datatype class {} is not floating-point",
                            class
                        )));
                    }
                    let bf0_off = r.position();
                    let bf0 = r.u8()?;
                    let bf1 = r.u8()?;
                    let _bf2 = r.u8()?;
                    let size_off = r.position();
                    let size = r.u32()?;
                    let bit_offset_off = r.position();
                    let bit_offset = r.u16()?;
                    let bit_precision_off = r.position();
                    let bit_precision = r.u16()?;
                    let exp_loc_off = r.position();
                    let exponent_location = r.u8()?;
                    let exp_size_off = r.position();
                    let exponent_size = r.u8()?;
                    let mant_loc_off = r.position();
                    let mantissa_location = r.u8()?;
                    let mant_size_off = r.position();
                    let mantissa_size = r.u8()?;
                    let bias_off = r.position();
                    let exponent_bias = r.u32()?;
                    let spec = FloatSpec {
                        size,
                        bit_offset,
                        bit_precision,
                        sign_location: bf1,
                        exponent_location,
                        exponent_size,
                        mantissa_location,
                        mantissa_size,
                        exponent_bias,
                        normalization: Normalization::from_bits(bf0 >> 4),
                    };
                    let _ = cav_off;
                    Message::Datatype {
                        spec,
                        offsets_partial: FieldOffsets {
                            bitfield0: bf0_off,
                            size: size_off,
                            bit_offset: bit_offset_off,
                            bit_precision: bit_precision_off,
                            exponent_location: exp_loc_off,
                            exponent_size: exp_size_off,
                            mantissa_location: mant_loc_off,
                            mantissa_size: mant_size_off,
                            exponent_bias: bias_off,
                            layout_ard: 0,
                            layout_size: 0,
                        },
                    }
                }
                MessageType::Layout => {
                    let ver = r.u8()?;
                    if ver != 3 {
                        return Err(Hdf5Error::new(format!("layout version {} != 3", ver)));
                    }
                    let class = r.u8()?;
                    if class != 1 {
                        return Err(Hdf5Error::new(format!(
                            "layout class {} is not contiguous",
                            class
                        )));
                    }
                    let ard_off = r.position();
                    let ard = r.u64()?;
                    let size_off = r.position();
                    let size = r.u64()?;
                    Message::Layout { ard, size, ard_off, size_off }
                }
                MessageType::FillValue => {
                    let ver = r.u8()?;
                    if ver != 2 {
                        return Err(Hdf5Error::new(format!("fill value version {} != 2", ver)));
                    }
                    Message::FillValue
                }
                MessageType::ModTime => {
                    let ver = r.u8()?;
                    if ver != 1 {
                        return Err(Hdf5Error::new(format!("mod-time version {} != 1", ver)));
                    }
                    Message::ModTime
                }
                MessageType::Nil => Message::Nil,
            };
            // Realign to the declared message size.
            let body_consumed = r.position() - body_start;
            if body_consumed > size as u64 {
                return Err(Hdf5Error::new(format!(
                    "message body overran declared size ({} > {})",
                    body_consumed, size
                )));
            }
            r.skip((size as u64 - body_consumed) as usize)?;
            consumed += 8 + size as u64;
            msgs.push(msg);
        }
        Ok(msgs)
    }

    // ---- groups ---------------------------------------------------------------

    /// Children of a group object header: `(name, object header addr)`.
    fn group_children(&self, ohdr_addr: u64) -> Hdf5Result<Vec<(String, u64)>> {
        let msgs = self.parse_object_header(ohdr_addr)?;
        let Some(Message::SymbolTable { btree, heap }) =
            msgs.iter().find(|m| matches!(m, Message::SymbolTable { .. })).cloned()
        else {
            return Err(Hdf5Error::new("object is not a group (no symbol table message)"));
        };
        let heap_data = self.parse_heap(heap)?;
        let snod_addrs = self.parse_btree(btree)?;
        let mut out = Vec::new();
        for snod in snod_addrs {
            out.extend(self.parse_snod(snod, heap_data)?);
        }
        Ok(out)
    }

    /// Parse a local heap header; returns `(data_addr, data_size)`.
    fn parse_heap(&self, addr: u64) -> Hdf5Result<(u64, u64)> {
        let mut r = Reader::at(&self.bytes, addr)?;
        if r.bytes(4)? != HEAP_SIGNATURE {
            return Err(Hdf5Error::new("bad local heap signature"));
        }
        let ver = r.u8()?;
        if ver != 0 {
            return Err(Hdf5Error::new(format!("local heap version {} != 0", ver)));
        }
        r.skip(3)?;
        let seg_size = r.u64()?;
        let _free_head = r.u64()?;
        let data_addr = r.u64()?;
        if data_addr >= self.bytes.len() as u64 {
            return Err(Hdf5Error::new("heap data segment beyond EOF"));
        }
        if data_addr + seg_size > self.bytes.len() as u64 {
            return Err(Hdf5Error::new("heap data segment overruns file"));
        }
        Ok((data_addr, seg_size))
    }

    /// Parse a v1 group B-tree node; returns SNOD addresses.
    fn parse_btree(&self, addr: u64) -> Hdf5Result<Vec<u64>> {
        let mut r = Reader::at(&self.bytes, addr)?;
        if r.bytes(4)? != TREE_SIGNATURE {
            return Err(Hdf5Error::new("bad B-tree node signature"));
        }
        let node_type = r.u8()?;
        if node_type != 0 {
            return Err(Hdf5Error::new(format!(
                "B-tree node type {} is not a group node",
                node_type
            )));
        }
        let level = r.u8()?;
        if level != 0 {
            return Err(Hdf5Error::new(format!(
                "B-tree level {} unsupported (single-level files)",
                level
            )));
        }
        let entries = r.u16()?;
        if entries as usize > 2 * self.group_internal_k as usize {
            return Err(Hdf5Error::new(format!(
                "B-tree entries used {} exceeds 2K = {}",
                entries,
                2 * self.group_internal_k
            )));
        }
        let _left = r.u64()?;
        let _right = r.u64()?;
        let mut children = Vec::with_capacity(entries as usize);
        for _ in 0..entries {
            let _key = r.u64()?;
            let child = r.u64()?;
            if child >= self.bytes.len() as u64 {
                return Err(Hdf5Error::new("B-tree child address beyond EOF"));
            }
            children.push(child);
        }
        Ok(children)
    }

    /// Parse a symbol table node against its heap; returns
    /// `(name, ohdr addr)` per used entry.
    fn parse_snod(&self, addr: u64, heap: (u64, u64)) -> Hdf5Result<Vec<(String, u64)>> {
        let mut r = Reader::at(&self.bytes, addr)?;
        if r.bytes(4)? != SNOD_SIGNATURE {
            return Err(Hdf5Error::new("bad symbol table node signature"));
        }
        let ver = r.u8()?;
        if ver != 1 {
            return Err(Hdf5Error::new(format!("symbol table node version {} != 1", ver)));
        }
        r.skip(1)?;
        let nsyms = r.u16()?;
        if nsyms as usize > 2 * self.group_leaf_k as usize {
            return Err(Hdf5Error::new(format!(
                "symbol table node holds {} entries, over 2K = {}",
                nsyms,
                2 * self.group_leaf_k
            )));
        }
        let (heap_data, heap_size) = heap;
        let mut out = Vec::with_capacity(nsyms as usize);
        for _ in 0..nsyms {
            let name_off = r.u64()?;
            let ohdr = r.u64()?;
            let _cache = r.u32()?;
            r.skip(4)?;
            r.skip(16)?;
            if name_off >= heap_size {
                return Err(Hdf5Error::new("link name offset beyond heap segment"));
            }
            let mut hr = Reader::at(&self.bytes, heap_data + name_off)?;
            let name = hr.cstr((heap_size - name_off) as usize)?;
            if ohdr >= self.bytes.len() as u64 {
                return Err(Hdf5Error::new("link target address beyond EOF"));
            }
            out.push((name, ohdr));
        }
        Ok(out)
    }

    // ---- datasets ---------------------------------------------------------------

    /// Resolve a slash path to an object header address.
    fn resolve(&self, path: &str) -> Hdf5Result<u64> {
        let mut cur = self.root_ohdr;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let children = self.group_children(cur)?;
            cur =
                children.iter().find(|(n, _)| n == comp).map(|&(_, a)| a).ok_or_else(|| {
                    Hdf5Error::new(format!("path component '{}' not found", comp))
                })?;
        }
        Ok(cur)
    }

    /// Read and decode a dataset by path.
    pub fn read_dataset(&self, path: &str) -> Hdf5Result<DatasetInfo> {
        let ohdr = self.resolve(path)?;
        let msgs = self.parse_object_header(ohdr)?;
        let mut dims = None;
        let mut dtype: Option<(FloatSpec, FieldOffsets)> = None;
        let mut layout = None;
        for m in msgs {
            match m {
                Message::Dataspace { dims: d } => dims = Some(d),
                Message::Datatype { spec, offsets_partial } => {
                    dtype = Some((spec, offsets_partial))
                }
                Message::Layout { ard, size, ard_off, size_off } => {
                    layout = Some((ard, size, ard_off, size_off))
                }
                Message::SymbolTable { .. } => {
                    return Err(Hdf5Error::new(format!("'{}' is a group, not a dataset", path)))
                }
                _ => {}
            }
        }
        let dims = dims.ok_or_else(|| Hdf5Error::new("dataset missing dataspace message"))?;
        let (spec, mut offsets) =
            dtype.ok_or_else(|| Hdf5Error::new("dataset missing datatype message"))?;
        let (ard, stored_size, ard_off, size_off) =
            layout.ok_or_else(|| Hdf5Error::new("dataset missing layout message"))?;
        offsets.layout_ard = ard_off;
        offsets.layout_size = size_off;

        if spec.size == 0 || spec.size > 8 {
            return Err(Hdf5Error::new(format!("unsupported element size {}", spec.size)));
        }
        let count: u64 = dims.iter().product();
        let needed = count
            .checked_mul(spec.size as u64)
            .ok_or_else(|| Hdf5Error::new("raw size overflow"))?;
        // Paper §V-A SIZE field behaviour: a *larger* stored size is
        // harmless (the application still reads what it needs); a
        // *smaller* one is rejected — crash.
        if stored_size < needed {
            return Err(Hdf5Error::new(format!(
                "layout size {} smaller than required {}",
                stored_size, needed
            )));
        }
        if ard >= self.bytes.len() as u64 {
            return Err(Hdf5Error::new("raw data address beyond EOF"));
        }
        // Slice the raw window, zero-filling past the end of file —
        // a shifted ARD slides the decode window over the image
        // (Figure 5c) rather than failing outright.
        let start = ard as usize;
        let end = (ard + needed).min(self.bytes.len() as u64) as usize;
        let mut raw = self.bytes[start..end].to_vec();
        raw.resize(needed as usize, 0);

        let values = spec.decode_all(&raw, count as usize)?;
        Ok(DatasetInfo {
            path: path.to_string(),
            dims,
            values,
            spec,
            stored_ard: ard,
            stored_size,
            offsets,
        })
    }

    /// Every object path in the file (depth-first, groups ending in `/`).
    pub fn list_paths(&self) -> Hdf5Result<Vec<String>> {
        let mut out = Vec::new();
        self.walk(self.root_ohdr, "", &mut out)?;
        Ok(out)
    }

    fn walk(&self, ohdr: u64, prefix: &str, out: &mut Vec<String>) -> Hdf5Result<()> {
        match self.group_children(ohdr) {
            Ok(children) => {
                for (name, addr) in children {
                    let p = format!("{}/{}", prefix, name);
                    // Recurse; a child that is not a group is a leaf.
                    let msgs = self.parse_object_header(addr)?;
                    if msgs.iter().any(|m| matches!(m, Message::SymbolTable { .. })) {
                        out.push(format!("{}/", p));
                        self.walk(addr, &p, out)?;
                    } else {
                        out.push(p);
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// The metadata extent: one past the last metadata byte, walking
    /// every structure. For a healthy file this equals the stored ARD
    /// — the invariant the paper's ARD auto-correction exploits.
    pub fn metadata_extent(&self) -> Hdf5Result<u64> {
        let mut max_end = SUPERBLOCK_SIZE;
        self.extent_walk(self.root_ohdr, &mut max_end)?;
        Ok(align8(max_end))
    }

    fn extent_walk(&self, ohdr: u64, max_end: &mut u64) -> Hdf5Result<()> {
        // Object header extent.
        let mut r = Reader::at(&self.bytes, ohdr)?;
        r.skip(4)?;
        r.skip(4)?;
        let header_size = {
            let mut r2 = Reader::at(&self.bytes, ohdr + 8)?;
            r2.u32()?
        };
        *max_end = (*max_end).max(ohdr + 16 + header_size as u64);

        let msgs = self.parse_object_header(ohdr)?;
        if let Some(Message::SymbolTable { btree, heap }) =
            msgs.iter().find(|m| matches!(m, Message::SymbolTable { .. }))
        {
            let btree_size = 24 + (4 * self.group_internal_k as u64 + 1) * 8;
            *max_end = (*max_end).max(btree + btree_size);
            let (heap_data, heap_size) = self.parse_heap(*heap)?;
            *max_end = (*max_end).max(*heap + 32).max(heap_data + heap_size);
            for snod in self.parse_btree(*btree)? {
                let snod_size = 8 + 2 * self.group_leaf_k as u64 * 40;
                *max_end = (*max_end).max(snod + snod_size);
            }
            for (_, child) in self.group_children(ohdr)? {
                self.extent_walk(child, max_end)?;
            }
        }
        Ok(())
    }
}

/// One-call convenience: open + read a dataset.
pub fn read_dataset(fs: &dyn FileSystem, file: &str, dataset: &str) -> Hdf5Result<DatasetInfo> {
    open(fs, file)?.read_dataset(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Dataset, FileBuilder, Node};
    use crate::writer::{write_file, WriteOptions};
    use ffis_vfs::MemFs;

    fn write_nyx(fs: &MemFs, n: usize) -> crate::writer::WriteReport {
        let data: Vec<f32> = (0..n * n * n).map(|i| 1.0 + 0.125 * (i % 8) as f32).collect();
        let mut b = FileBuilder::new();
        b.add_dataset(
            "/native_fields/baryon_density",
            Dataset::f32("baryon_density", &[n as u64; 3], &data),
        )
        .unwrap();
        write_file(fs, "/plt.h5", &b.into_root(), &WriteOptions::default()).unwrap()
    }

    #[test]
    fn roundtrip_read_matches_written() {
        let fs = MemFs::new();
        write_nyx(&fs, 8);
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        assert_eq!(info.dims, vec![8, 8, 8]);
        assert_eq!(info.values.len(), 512);
        for (i, &v) in info.values.iter().enumerate() {
            let expect = 1.0 + 0.125 * (i % 8) as f64;
            assert!((v - expect).abs() < 1e-6, "[{}] {} != {}", i, v, expect);
        }
        assert_eq!(info.spec, FloatSpec::ieee_f32());
    }

    #[test]
    fn list_paths_shows_hierarchy() {
        let fs = MemFs::new();
        write_nyx(&fs, 4);
        let f = open(&fs, "/plt.h5").unwrap();
        let paths = f.list_paths().unwrap();
        assert_eq!(paths, vec!["/native_fields/", "/native_fields/baryon_density"]);
    }

    #[test]
    fn metadata_extent_equals_stored_ard() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let f = open(&fs, "/plt.h5").unwrap();
        assert_eq!(f.metadata_extent().unwrap(), report.metadata_size);
        let info = f.read_dataset("/native_fields/baryon_density").unwrap();
        assert_eq!(info.stored_ard, report.metadata_size);
    }

    #[test]
    fn missing_path_is_error() {
        let fs = MemFs::new();
        write_nyx(&fs, 4);
        let f = open(&fs, "/plt.h5").unwrap();
        assert!(f.read_dataset("/native_fields/nonexistent").is_err());
        assert!(f.read_dataset("/no_group/x").is_err());
        // Group addressed as dataset.
        assert!(f.read_dataset("/native_fields").is_err());
    }

    fn corrupt_at(fs: &MemFs, path: &str, offset: u64, xor: u8) {
        use ffis_vfs::FileSystem;
        let fd = fs.open(path, OpenFlags::read_write()).unwrap();
        let mut b = [0u8; 1];
        fs.pread(fd, &mut b, offset).unwrap();
        b[0] ^= xor;
        fs.pwrite(fd, &b, offset).unwrap();
        fs.release(fd).unwrap();
    }

    #[test]
    fn corrupted_signature_crashes() {
        let fs = MemFs::new();
        write_nyx(&fs, 4);
        corrupt_at(&fs, "/plt.h5", 0, 0xFF);
        assert!(open(&fs, "/plt.h5").is_err());
    }

    #[test]
    fn corrupted_superblock_version_crashes() {
        let fs = MemFs::new();
        write_nyx(&fs, 4);
        corrupt_at(&fs, "/plt.h5", 8, 0x01);
        assert!(open(&fs, "/plt.h5").is_err());
    }

    #[test]
    fn corrupted_tree_signature_crashes_on_read() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let tree_span = report.spans.iter().find(|s| s.name.contains("BTree.Signature")).unwrap();
        corrupt_at(&fs, "/plt.h5", tree_span.start, 0x20);
        let f = open(&fs, "/plt.h5").unwrap();
        assert!(f.read_dataset("/native_fields/baryon_density").is_err());
    }

    #[test]
    fn corrupted_snod_signature_crashes_on_read() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let span = report.spans.iter().find(|s| s.name.contains("SNOD.Signature")).unwrap();
        corrupt_at(&fs, "/plt.h5", span.start, 0x01);
        let f = open(&fs, "/plt.h5").unwrap();
        assert!(f.read_dataset("/native_fields/baryon_density").is_err());
    }

    #[test]
    fn corrupted_exponent_bias_scales_values_silently() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let span = report.spans.iter().find(|s| s.name.contains("ExponentBias")).unwrap();
        // Flip bit 2 of the low bias byte: 127 -> 123 => scale by 2^4.
        corrupt_at(&fs, "/plt.h5", span.start, 0b0000_0100);
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        let expect0 = 1.0 * 16.0;
        assert!((info.values[0] - expect0).abs() < 1e-6, "{}", info.values[0]);
        // All values scaled by the same power of two (Fig. 5b).
        for (i, &v) in info.values.iter().enumerate() {
            let expect = (1.0 + 0.125 * (i % 8) as f64) * 16.0;
            assert!((v - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn corrupted_ard_shifts_values_silently() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 8);
        let span = report.spans.iter().find(|s| s.name.contains("AddressOfRawData")).unwrap();
        // Flip bit 4 of the low ARD byte: shift the window 16 bytes =
        // 4 elements forward.
        corrupt_at(&fs, "/plt.h5", span.start, 0b0001_0000);
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        for i in 0..(info.values.len() - 4) {
            let expect = 1.0 + 0.125 * ((i + 4) % 8) as f64;
            assert!((info.values[i] - expect).abs() < 1e-6, "[{}]", i);
        }
        // Tail reads past EOF -> zero-filled.
        assert!(info.values[info.values.len() - 1].abs() < 1e-12);
    }

    #[test]
    fn corrupted_normalization_bit5_halves_values() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let span = report.spans.iter().find(|s| s.name.contains("MantissaNormalization")).unwrap();
        corrupt_at(&fs, "/plt.h5", span.start, 0x20); // bit 5
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        // Implied (2) -> none (0): value 1.0 decodes as 0.0 fraction...
        // mean of 1.0..1.875 data drops to ~0.44 of original.
        let mean: f64 = info.values.iter().sum::<f64>() / info.values.len() as f64;
        assert!(mean < 0.6, "mean = {}", mean);
    }

    #[test]
    fn corrupted_size_smaller_crashes_bigger_tolerated() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let span = report.spans.iter().find(|s| s.name.contains("SizeOfRawData")).unwrap();
        // Set high bit of byte 1: size += 32768 (bigger) -> still fine.
        corrupt_at(&fs, "/plt.h5", span.start + 1, 0x80);
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        assert_eq!(info.values.len(), 64);
        // Now make it smaller than needed: zero out low bytes.
        let fs2 = MemFs::new();
        let report2 = write_nyx(&fs2, 4);
        let span2 = report2.spans.iter().find(|s| s.name.contains("SizeOfRawData")).unwrap();
        // 64 elements * 4 = 256 = 0x100; flip bit 8 -> size 0.
        corrupt_at(&fs2, "/plt.h5", span2.start + 1, 0x01);
        assert!(read_dataset(&fs2, "/plt.h5", "/native_fields/baryon_density").is_err());
    }

    #[test]
    fn corrupted_eof_address_crashes_when_beyond_file() {
        let fs = MemFs::new();
        write_nyx(&fs, 4);
        // Raise the EOF address high byte.
        corrupt_at(&fs, "/plt.h5", crate::types::EOF_ADDR_OFFSET + 6, 0x01);
        assert!(open(&fs, "/plt.h5").is_err());
    }

    #[test]
    fn truncated_file_crashes() {
        let fs = MemFs::new();
        write_nyx(&fs, 4);
        use ffis_vfs::FileSystem;
        let meta = fs.getattr("/plt.h5").unwrap();
        fs.truncate("/plt.h5", meta.size - 100).unwrap();
        assert!(open(&fs, "/plt.h5").is_err());
    }

    #[test]
    fn reserved_byte_corruption_is_benign() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let golden = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        // Corrupt a B-tree unused slot byte.
        let span = report.spans.iter().find(|s| s.name.contains("BTree.UnusedSlots")).unwrap();
        corrupt_at(&fs, "/plt.h5", span.start + 50, 0xFF);
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        assert_eq!(info.values, golden.values);
    }

    #[test]
    fn multiple_datasets_resolve_independently() {
        let fs = MemFs::new();
        let mut b = FileBuilder::new();
        b.add_dataset("/g/a", Dataset::f32("a", &[2], &[1.0, 2.0])).unwrap();
        b.add_dataset("/g/b", Dataset::f64("b", &[3], &[3.0, 4.0, 5.0])).unwrap();
        let root: Node = b.into_root();
        write_file(&fs, "/m.h5", &root, &WriteOptions::default()).unwrap();
        let fa = read_dataset(&fs, "/m.h5", "/g/a").unwrap();
        assert_eq!(fa.values, vec![1.0, 2.0]);
        let fb = read_dataset(&fs, "/m.h5", "/g/b").unwrap();
        assert_eq!(fb.values, vec![3.0, 4.0, 5.0]);
        assert_eq!(fb.spec, FloatSpec::ieee_f64());
    }

    #[test]
    fn field_offsets_point_at_live_bytes() {
        let fs = MemFs::new();
        let report = write_nyx(&fs, 4);
        let info = read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap();
        let bias_span = report.spans.iter().find(|s| s.name.contains("ExponentBias")).unwrap();
        assert_eq!(info.offsets.exponent_bias, bias_span.start);
        let ard_span = report.spans.iter().find(|s| s.name.contains("AddressOfRawData")).unwrap();
        assert_eq!(info.offsets.layout_ard, ard_span.start);
    }
}
