//! Common types and format constants (HDF5 File Format Specification
//! v0 subset — the layout version the paper's metadata analysis
//! references \[33\]).

/// File offsets ("Size of Offsets" = 8 in our superblock).
pub type Offset = u64;

/// Lengths ("Size of Lengths" = 8).
pub type Length = u64;

/// The 8-byte HDF5 file signature.
pub const SIGNATURE: [u8; 8] = [0x89, b'H', b'D', b'F', b'\r', b'\n', 0x1a, b'\n'];

/// v1 group B-tree node signature.
pub const TREE_SIGNATURE: [u8; 4] = *b"TREE";

/// Symbol table node signature.
pub const SNOD_SIGNATURE: [u8; 4] = *b"SNOD";

/// Local heap signature.
pub const HEAP_SIGNATURE: [u8; 4] = *b"HEAP";

/// "Undefined address" marker.
pub const UNDEFINED_ADDR: u64 = u64::MAX;

/// Superblock total size (v0 with 8-byte offsets/lengths).
pub const SUPERBLOCK_SIZE: u64 = 96;

/// Byte offset of the superblock's End-of-File Address field — the
/// target of the writer's final patch write.
pub const EOF_ADDR_OFFSET: u64 = 40;

/// Group B-tree internal node K (the HDF5 default).
pub const GROUP_INTERNAL_K: usize = 16;

/// Group leaf (symbol table node) K (the HDF5 default).
pub const GROUP_LEAF_K: usize = 4;

/// Object header message types we implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// 0x0000 NIL (padding).
    Nil,
    /// 0x0001 Dataspace.
    Dataspace,
    /// 0x0003 Datatype.
    Datatype,
    /// 0x0005 Fill value.
    FillValue,
    /// 0x0008 Data layout.
    Layout,
    /// 0x0011 Symbol table.
    SymbolTable,
    /// 0x0012 Object modification time.
    ModTime,
}

impl MessageType {
    /// Wire id.
    pub fn id(self) -> u16 {
        match self {
            MessageType::Nil => 0x0000,
            MessageType::Dataspace => 0x0001,
            MessageType::Datatype => 0x0003,
            MessageType::FillValue => 0x0005,
            MessageType::Layout => 0x0008,
            MessageType::SymbolTable => 0x0011,
            MessageType::ModTime => 0x0012,
        }
    }

    /// Decode a wire id.
    pub fn from_id(id: u16) -> Option<Self> {
        Some(match id {
            0x0000 => MessageType::Nil,
            0x0001 => MessageType::Dataspace,
            0x0003 => MessageType::Datatype,
            0x0005 => MessageType::FillValue,
            0x0008 => MessageType::Layout,
            0x0011 => MessageType::SymbolTable,
            0x0012 => MessageType::ModTime,
            _ => return None,
        })
    }
}

/// Errors raised by the hdf5lite reader/writer. Every reader-side
/// validation failure maps to the paper's *crash* outcome class
/// ("exceptions thrown by the HDF5 library, indicating the values in
/// the fields become unjustified").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hdf5Error {
    /// Human-readable diagnostic.
    pub message: String,
}

impl Hdf5Error {
    /// New error.
    pub fn new(message: impl Into<String>) -> Self {
        Hdf5Error { message: message.into() }
    }
}

impl std::fmt::Display for Hdf5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HDF5 error: {}", self.message)
    }
}

impl std::error::Error for Hdf5Error {}

impl From<ffis_vfs::FsError> for Hdf5Error {
    fn from(e: ffis_vfs::FsError) -> Self {
        Hdf5Error::new(format!("I/O failure: {}", e))
    }
}

/// Result alias.
pub type Hdf5Result<T> = Result<T, Hdf5Error>;

/// Round `n` up to a multiple of 8 (HDF5 object header padding rule).
pub fn align8(n: u64) -> u64 {
    (n + 7) & !7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_is_the_hdf5_magic() {
        assert_eq!(&SIGNATURE[1..4], b"HDF");
        assert_eq!(SIGNATURE[0], 0x89);
    }

    #[test]
    fn message_type_roundtrip() {
        for t in [
            MessageType::Nil,
            MessageType::Dataspace,
            MessageType::Datatype,
            MessageType::FillValue,
            MessageType::Layout,
            MessageType::SymbolTable,
            MessageType::ModTime,
        ] {
            assert_eq!(MessageType::from_id(t.id()), Some(t));
        }
        assert_eq!(MessageType::from_id(0x7777), None);
    }

    #[test]
    fn align8_behaviour() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
        assert_eq!(align8(23), 24);
    }

    #[test]
    fn error_display_and_from() {
        let e = Hdf5Error::new("bad signature");
        assert!(e.to_string().contains("bad signature"));
        let io: Hdf5Error = ffis_vfs::FsError::Io.into();
        assert!(io.to_string().contains("EIO"));
    }
}
