//! Little-endian byte cursors with bounds-checked reads.
//!
//! The reader never panics on malformed input: every primitive read
//! returns `Hdf5Result` so corrupted length/offset fields surface as
//! the paper's *crash* outcome instead of aborting the process.

use crate::types::{Hdf5Error, Hdf5Result};

/// Read cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Cursor at absolute position `pos` of `data`.
    pub fn at(data: &'a [u8], pos: u64) -> Hdf5Result<Self> {
        if pos > data.len() as u64 {
            return Err(Hdf5Error::new(format!(
                "address {:#x} beyond end of file ({:#x})",
                pos,
                data.len()
            )));
        }
        Ok(Reader { data, pos: pos as usize })
    }

    /// Current absolute position.
    pub fn position(&self) -> u64 {
        self.pos as u64
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Hdf5Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Hdf5Error::new(format!(
                "truncated read: need {} bytes at {:#x}, have {}",
                n,
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Hdf5Result<()> {
        self.bytes(n).map(|_| ())
    }

    /// `u8`.
    pub fn u8(&mut self) -> Hdf5Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Hdf5Result<u16> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Hdf5Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Hdf5Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// NUL-terminated string starting at the cursor, bounded by `max`.
    pub fn cstr(&mut self, max: usize) -> Hdf5Result<String> {
        let avail = self.remaining().min(max);
        let window = &self.data[self.pos..self.pos + avail];
        let nul = window
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| Hdf5Error::new("unterminated string in heap"))?;
        let s = std::str::from_utf8(&window[..nul])
            .map_err(|_| Hdf5Error::new("non-UTF8 link name"))?
            .to_string();
        self.pos += nul + 1;
        Ok(s)
    }
}

/// Append-only little-endian writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Zero padding.
    pub fn pad(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    /// Consume into the byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let data = [1u8, 2, 3];
        let mut r = Reader::new(&data);
        assert!(r.u32().is_err());
        assert_eq!(r.u16().unwrap(), 0x0201); // cursor unchanged by failed read
    }

    #[test]
    fn at_validates_position() {
        let data = [0u8; 10];
        assert!(Reader::at(&data, 10).is_ok());
        assert!(Reader::at(&data, 11).is_err());
        let mut r = Reader::at(&data, 8).unwrap();
        assert_eq!(r.remaining(), 2);
        assert!(r.u64().is_err());
    }

    #[test]
    fn cstr_reads_and_validates() {
        let data = b"hello\0world";
        let mut r = Reader::new(data);
        assert_eq!(r.cstr(32).unwrap(), "hello");
        assert_eq!(r.position(), 6);
        // Unterminated within bound.
        let mut r2 = Reader::new(b"abc");
        assert!(r2.cstr(3).is_err());
        // Invalid UTF-8.
        let bad = [0xFFu8, 0xFE, 0x00];
        let mut r3 = Reader::new(&bad);
        assert!(r3.cstr(3).is_err());
    }

    #[test]
    fn pad_and_skip() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.pad(7);
        assert_eq!(w.len(), 8);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.skip(7).unwrap();
        assert_eq!(r.u8().unwrap(), 0);
        assert!(r.skip(1).is_err());
    }
}
