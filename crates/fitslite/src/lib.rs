//! # fitslite — a minimal FITS reader/writer over `ffis-vfs`
//!
//! Montage assembles Flexible Image Transport System (FITS) images
//! into mosaics (paper §IV-C.3). This crate implements the subset the
//! Montage workload exercises: a primary HDU with 80-character header
//! cards in 2880-byte blocks, `BITPIX = -64` (big-endian IEEE doubles)
//! image data, a linear small-angle WCS (`CRVAL/CRPIX/CDELT`), and
//! NaN-blank pixels.
//!
//! The reader validates the mandatory cards (`SIMPLE`, `BITPIX`,
//! `NAXIS*`) and the data length; violations surface as errors — the
//! paper's *crash* class ("for the cases where the target file cannot
//! be created, they are defined as crash").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ffis_vfs::{FileSystem, FileSystemExt};

/// FITS block size: headers and data are padded to this.
pub const FITS_BLOCK: usize = 2880;

/// Card image length.
pub const CARD_LEN: usize = 80;

/// Error type for FITS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitsError(pub String);

impl std::fmt::Display for FitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FITS error: {}", self.0)
    }
}

impl std::error::Error for FitsError {}

impl From<ffis_vfs::FsError> for FitsError {
    fn from(e: ffis_vfs::FsError) -> Self {
        FitsError(format!("I/O failure: {}", e))
    }
}

/// Result alias.
pub type FitsResult<T> = Result<T, FitsError>;

/// Linear small-angle world coordinate system (the TAN projection in
/// its small-field limit): `sky = crval + (pix − crpix) · cdelt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wcs {
    /// Reference RA (degrees).
    pub crval1: f64,
    /// Reference Dec (degrees).
    pub crval2: f64,
    /// Reference pixel x (1-based, FITS convention).
    pub crpix1: f64,
    /// Reference pixel y (1-based).
    pub crpix2: f64,
    /// Degrees per pixel in x.
    pub cdelt1: f64,
    /// Degrees per pixel in y.
    pub cdelt2: f64,
}

impl Wcs {
    /// Pixel (0-based) → sky coordinates.
    pub fn pix_to_sky(&self, x: f64, y: f64) -> (f64, f64) {
        (
            self.crval1 + (x + 1.0 - self.crpix1) * self.cdelt1,
            self.crval2 + (y + 1.0 - self.crpix2) * self.cdelt2,
        )
    }

    /// Sky coordinates → pixel (0-based).
    pub fn sky_to_pix(&self, ra: f64, dec: f64) -> (f64, f64) {
        (
            (ra - self.crval1) / self.cdelt1 + self.crpix1 - 1.0,
            (dec - self.crval2) / self.cdelt2 + self.crpix2 - 1.0,
        )
    }
}

/// An in-memory FITS image (primary HDU, `BITPIX = -64`).
#[derive(Debug, Clone, PartialEq)]
pub struct FitsImage {
    /// Width (NAXIS1).
    pub width: usize,
    /// Height (NAXIS2).
    pub height: usize,
    /// Row-major pixel data (NaN = blank).
    pub data: Vec<f64>,
    /// World coordinate system.
    pub wcs: Wcs,
}

impl FitsImage {
    /// Blank (NaN-filled) image.
    pub fn blank(width: usize, height: usize, wcs: Wcs) -> Self {
        FitsImage { width, height, data: vec![f64::NAN; width * height], wcs }
    }

    /// Pixel accessor (row-major).
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.data[y * self.width + x]
    }

    /// Mutable pixel accessor.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        self.data[y * self.width + x] = v;
    }

    /// Bilinear sample at fractional pixel coordinates; NaN outside
    /// bounds or when any contributing pixel is blank.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        if x < 0.0 || y < 0.0 || x > (self.width - 1) as f64 || y > (self.height - 1) as f64 {
            return f64::NAN;
        }
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let fx = x - x0 as f64;
        let fy = y - y0 as f64;
        let v00 = self.get(x0, y0);
        let v10 = self.get(x1, y0);
        let v01 = self.get(x0, y1);
        let v11 = self.get(x1, y1);
        v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy
    }

    /// Minimum over non-blank pixels (the statistic Montage's final
    /// step reports — the paper's SDC/detected discriminator).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().filter(|v| v.is_finite()).fold(f64::INFINITY, f64::min)
    }

    /// Maximum over non-blank pixels.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().filter(|v| v.is_finite()).fold(f64::NEG_INFINITY, f64::max)
    }
}

fn card(key: &str, value: &str) -> [u8; CARD_LEN] {
    let mut c = [b' '; CARD_LEN];
    let text =
        if value.is_empty() { key.to_string() } else { format!("{:<8}= {:>20}", key, value) };
    let bytes = text.as_bytes();
    c[..bytes.len().min(CARD_LEN)].copy_from_slice(&bytes[..bytes.len().min(CARD_LEN)]);
    c
}

/// Serialize an image to FITS bytes.
pub fn render_fits(img: &FitsImage) -> FitsResult<Vec<u8>> {
    if img.data.len() != img.width * img.height {
        return Err(FitsError(format!(
            "data length {} != {}x{}",
            img.data.len(),
            img.width,
            img.height
        )));
    }
    let mut header = Vec::with_capacity(FITS_BLOCK);
    let cards = [
        card("SIMPLE", "T"),
        card("BITPIX", "-64"),
        card("NAXIS", "2"),
        card("NAXIS1", &img.width.to_string()),
        card("NAXIS2", &img.height.to_string()),
        card("CRVAL1", &format!("{:.10}", img.wcs.crval1)),
        card("CRVAL2", &format!("{:.10}", img.wcs.crval2)),
        card("CRPIX1", &format!("{:.4}", img.wcs.crpix1)),
        card("CRPIX2", &format!("{:.4}", img.wcs.crpix2)),
        card("CDELT1", &format!("{:.10}", img.wcs.cdelt1)),
        card("CDELT2", &format!("{:.10}", img.wcs.cdelt2)),
        card("CTYPE1", "'RA---TAN'"),
        card("CTYPE2", "'DEC--TAN'"),
        card("END", ""),
    ];
    for c in &cards {
        header.extend_from_slice(c);
    }
    header.resize(FITS_BLOCK * header.len().div_ceil(FITS_BLOCK), b' ');

    let mut out = header;
    for &v in &img.data {
        out.extend_from_slice(&v.to_be_bytes());
    }
    let padded = FITS_BLOCK * out.len().div_ceil(FITS_BLOCK);
    out.resize(padded, 0);
    Ok(out)
}

/// Write an image to the filesystem in stdio-sized (4 KiB) chunks.
pub fn write_fits(fs: &dyn FileSystem, path: &str, img: &FitsImage) -> FitsResult<()> {
    let bytes = render_fits(img)?;
    fs.write_file_chunked(path, &bytes, ffis_vfs::BLOCK_SIZE)?;
    Ok(())
}

fn parse_card_value(
    cards: &std::collections::HashMap<String, String>,
    key: &str,
) -> FitsResult<f64> {
    cards
        .get(key)
        .ok_or_else(|| FitsError(format!("missing {} card", key)))?
        .parse::<f64>()
        .map_err(|_| FitsError(format!("unparsable {} card", key)))
}

/// Parse FITS bytes.
pub fn parse_fits(bytes: &[u8]) -> FitsResult<FitsImage> {
    if bytes.len() < FITS_BLOCK {
        return Err(FitsError("file smaller than one FITS block".into()));
    }
    // Walk header cards until END.
    let mut cards = std::collections::HashMap::new();
    let mut pos = 0usize;
    let mut end_found = false;
    'blocks: while pos + FITS_BLOCK <= bytes.len() {
        for i in 0..FITS_BLOCK / CARD_LEN {
            let c = &bytes[pos + i * CARD_LEN..pos + (i + 1) * CARD_LEN];
            let key = String::from_utf8_lossy(&c[..8]).trim().to_string();
            if key == "END" {
                end_found = true;
                pos += FITS_BLOCK;
                break 'blocks;
            }
            if c.len() > 10 && c[8] == b'=' {
                let value = String::from_utf8_lossy(&c[10..]).trim().to_string();
                cards.insert(key, value);
            }
        }
        pos += FITS_BLOCK;
    }
    if !end_found {
        return Err(FitsError("END card not found".into()));
    }
    if cards.get("SIMPLE").map(String::as_str) != Some("T") {
        return Err(FitsError("not a standard FITS file (SIMPLE != T)".into()));
    }
    let bitpix = parse_card_value(&cards, "BITPIX")? as i64;
    if bitpix != -64 {
        return Err(FitsError(format!("unsupported BITPIX {}", bitpix)));
    }
    let naxis = parse_card_value(&cards, "NAXIS")? as i64;
    if naxis != 2 {
        return Err(FitsError(format!("unsupported NAXIS {}", naxis)));
    }
    let width = parse_card_value(&cards, "NAXIS1")? as i64;
    let height = parse_card_value(&cards, "NAXIS2")? as i64;
    if width <= 0 || height <= 0 || width > 1 << 16 || height > 1 << 16 {
        return Err(FitsError(format!("implausible dimensions {}x{}", width, height)));
    }
    let (width, height) = (width as usize, height as usize);
    let need = width * height * 8;
    if bytes.len() < pos + need {
        return Err(FitsError(format!(
            "data truncated: need {} bytes, have {}",
            need,
            bytes.len() - pos
        )));
    }
    let mut data = Vec::with_capacity(width * height);
    for i in 0..width * height {
        let b = &bytes[pos + 8 * i..pos + 8 * (i + 1)];
        data.push(f64::from_be_bytes(b.try_into().unwrap()));
    }
    let wcs = Wcs {
        crval1: parse_card_value(&cards, "CRVAL1")?,
        crval2: parse_card_value(&cards, "CRVAL2")?,
        crpix1: parse_card_value(&cards, "CRPIX1")?,
        crpix2: parse_card_value(&cards, "CRPIX2")?,
        cdelt1: parse_card_value(&cards, "CDELT1")?,
        cdelt2: parse_card_value(&cards, "CDELT2")?,
    };
    if wcs.cdelt1 == 0.0 || wcs.cdelt2 == 0.0 {
        return Err(FitsError("degenerate CDELT".into()));
    }
    Ok(FitsImage { width, height, data, wcs })
}

/// Read an image from the filesystem.
pub fn read_fits(fs: &dyn FileSystem, path: &str) -> FitsResult<FitsImage> {
    let bytes =
        fs.read_to_vec(path).map_err(|e| FitsError(format!("cannot read {}: {}", path, e)))?;
    parse_fits(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    fn wcs() -> Wcs {
        Wcs {
            crval1: 210.8,
            crval2: 54.35,
            crpix1: 24.5,
            crpix2: 24.5,
            cdelt1: -0.001,
            cdelt2: 0.001,
        }
    }

    fn image() -> FitsImage {
        let mut img = FitsImage::blank(48, 32, wcs());
        for y in 0..32 {
            for x in 0..48 {
                img.set(x, y, 83.0 + x as f64 * 0.1 + y as f64 * 0.01);
            }
        }
        img
    }

    #[test]
    fn roundtrip_through_fs() {
        let fs = MemFs::new();
        let img = image();
        write_fits(&fs, "/m101.fits", &img).unwrap();
        let back = read_fits(&fs, "/m101.fits").unwrap();
        assert_eq!(back.width, 48);
        assert_eq!(back.height, 32);
        assert_eq!(back.data, img.data);
        assert!((back.wcs.crval1 - 210.8).abs() < 1e-9);
        assert!((back.wcs.cdelt1 + 0.001).abs() < 1e-12);
    }

    #[test]
    fn file_is_block_aligned() {
        let fs = MemFs::new();
        write_fits(&fs, "/a.fits", &image()).unwrap();
        let size = fs.getattr("/a.fits").unwrap().size;
        assert_eq!(size % FITS_BLOCK as u64, 0);
    }

    #[test]
    fn nan_blanks_survive() {
        let fs = MemFs::new();
        let mut img = image();
        img.set(3, 3, f64::NAN);
        write_fits(&fs, "/n.fits", &img).unwrap();
        let back = read_fits(&fs, "/n.fits").unwrap();
        assert!(back.get(3, 3).is_nan());
        assert!(back.min().is_finite());
    }

    #[test]
    fn corrupt_simple_card_is_crash() {
        let fs = MemFs::new();
        write_fits(&fs, "/a.fits", &image()).unwrap();
        let mut bytes = fs.read_to_vec("/a.fits").unwrap();
        bytes[0] ^= 0xFF; // SIMPLE keyword
        assert!(parse_fits(&bytes).is_err());
    }

    #[test]
    fn corrupt_naxis_is_crash() {
        let fs = MemFs::new();
        write_fits(&fs, "/a.fits", &image()).unwrap();
        let bytes = fs.read_to_vec("/a.fits").unwrap();
        // Find the NAXIS1 card's value region and damage it.
        let pos = (0..FITS_BLOCK / CARD_LEN)
            .find(|&i| &bytes[i * CARD_LEN..i * CARD_LEN + 6] == b"NAXIS1")
            .unwrap();
        let mut bad = bytes.clone();
        bad[pos * CARD_LEN + 29] = b'X';
        assert!(parse_fits(&bad).is_err());
        // Dimension inflated past the data length -> truncation error.
        let mut bigger = bytes;
        bigger[pos * CARD_LEN + 25] = b'9';
        assert!(parse_fits(&bigger).is_err());
    }

    #[test]
    fn truncated_data_is_crash() {
        let img = image();
        let bytes = render_fits(&img).unwrap();
        assert!(parse_fits(&bytes[..bytes.len() - FITS_BLOCK]).is_err());
        assert!(parse_fits(&bytes[..100]).is_err());
        assert!(parse_fits(b"").is_err());
    }

    #[test]
    fn missing_end_card_is_crash() {
        let mut bytes = render_fits(&image()).unwrap();
        // Overwrite END with spaces.
        for i in 0..FITS_BLOCK / CARD_LEN {
            if &bytes[i * CARD_LEN..i * CARD_LEN + 3] == b"END" {
                bytes[i * CARD_LEN..i * CARD_LEN + 3].copy_from_slice(b"   ");
            }
        }
        assert!(parse_fits(&bytes).is_err());
    }

    #[test]
    fn wcs_roundtrip() {
        let w = wcs();
        let (ra, dec) = w.pix_to_sky(10.0, 20.0);
        let (x, y) = w.sky_to_pix(ra, dec);
        assert!((x - 10.0).abs() < 1e-9);
        assert!((y - 20.0).abs() < 1e-9);
        // Reference pixel maps to reference value (1-based convention).
        let (ra0, dec0) = w.pix_to_sky(w.crpix1 - 1.0, w.crpix2 - 1.0);
        assert!((ra0 - w.crval1).abs() < 1e-12);
        assert!((dec0 - w.crval2).abs() < 1e-12);
    }

    #[test]
    fn bilinear_sampling() {
        let mut img = FitsImage::blank(4, 4, wcs());
        for y in 0..4 {
            for x in 0..4 {
                img.set(x, y, (x + y) as f64);
            }
        }
        assert_eq!(img.sample(1.0, 1.0), 2.0);
        assert!((img.sample(1.5, 1.5) - 3.0).abs() < 1e-12);
        assert!(img.sample(-0.1, 0.0).is_nan());
        assert!(img.sample(3.5, 0.0).is_nan());
    }

    #[test]
    fn min_max_ignore_blanks() {
        let mut img = FitsImage::blank(2, 2, wcs());
        img.set(0, 0, 5.0);
        img.set(1, 1, -3.0);
        assert_eq!(img.min(), -3.0);
        assert_eq!(img.max(), 5.0);
    }
}
