//! `repro daemon …` — the thin-client face of the campaign service.
//!
//! ```text
//! repro daemon serve  [--root DIR] [--addr H:P] [--workers N] [--bench DIR]
//!                     [--retain N] [--fanout N]
//! repro daemon submit --app nyx --model BF [--site write|read] [--grid G]
//!                     [--runs N] [--seed S] [--keep-runs K] [--fuel F]
//!                     [--wall-limit-ms M] [--files F] [--no-memo]
//!                     [--no-journal] [--serial] [--addr H:P | --local]
//! repro daemon status <id> [--addr H:P] [--digest]
//! repro daemon watch  <id> [--addr H:P]
//! repro daemon cancel <id> [--addr H:P]
//! repro daemon jobs        [--addr H:P]
//! repro daemon health      [--addr H:P]
//! ```
//!
//! Every subcommand except `serve` and `submit --local` is a pure
//! HTTP client ([`ffis_daemon::Client`]) — the CLI holds no campaign
//! state of its own. `submit --local` keeps the in-process fallback:
//! the spec runs through the same [`ffis_daemon::execute_spec`] the
//! daemon's workers use, so its tally and digest are byte-identical
//! to a served run of the same spec.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ffis_core::{CampaignSpec, CancelToken, CompletionStatus, Outcome};
use ffis_daemon::{execute_spec, Client, Daemon, DaemonConfig, ExecHooks, JobView, StreamEvent};

/// Default daemon address (the paper's seed year as a port).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7721";

/// Run `repro daemon <subcommand>`; returns the process exit code.
/// `cancel` is the binary's signal-wired token — `serve` parks on it.
pub fn run(args: &[String], cancel: &Arc<CancelToken>) -> i32 {
    let Some(sub) = args.first() else {
        eprintln!("{}", usage());
        return 2;
    };
    let (flags, positional) = match parse_flags(&args[1..]) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {}\n\n{}", e, usage());
            return 2;
        }
    };
    let result = match sub.as_str() {
        "serve" => serve(&flags, cancel),
        "submit" => submit(&flags),
        "status" => with_id(&positional, &flags, status),
        "watch" => with_id(&positional, &flags, watch),
        "cancel" => with_id(&positional, &flags, cancel_job),
        "jobs" => jobs(&flags),
        "health" => health(&flags),
        // Hidden: one fan-out worker shard (spawned by a distributed
        // coordinator, never typed by hand — its stdout is the
        // machine-readable stats line the coordinator parses).
        "worker" => ffis_daemon::distributed::worker_cli(&flags),
        other => Err(format!("unknown daemon subcommand '{}'\n\n{}", other, usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e);
            2
        }
    }
}

fn usage() -> &'static str {
    "usage: repro daemon <serve|submit|status|watch|cancel|jobs|health> [flags]\n\
     \u{20} serve   --root DIR --addr H:P --workers N --bench DIR\n\
     \u{20}         [--retain N: GC old terminal job dirs] [--fanout N: worker processes per job]\n\
     \u{20} submit  --app A --model M [--site S] [--grid G] [--runs N] [--seed S]\n\
     \u{20}         [--keep-runs K] [--fuel F] [--wall-limit-ms M] [--no-journal]\n\
     \u{20}         [--files F: output-file multiplicity] [--no-memo: whole-analyze only]\n\
     \u{20}         [--serial] [--addr H:P | --local [--root DIR]]\n\
     \u{20} status  <id> [--addr H:P] [--digest]\n\
     \u{20} watch   <id> [--addr H:P]\n\
     \u{20} cancel  <id> [--addr H:P]\n\
     \u{20} jobs    [--addr H:P]\n\
     \u{20} health  [--addr H:P]"
}

/// `--flag value` pairs plus bare `--switches`; positionals pass
/// through (job ids).
fn parse_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    const SWITCHES: [&str; 5] = ["local", "no-journal", "digest", "serial", "no-memo"];
    let mut map = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(flag) = a.strip_prefix("--") {
            if SWITCHES.contains(&flag) {
                map.insert(flag.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{} requires a value", flag))?;
            map.insert(flag.to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok((map, positional))
}

fn client(flags: &HashMap<String, String>) -> Client {
    Client::new(flags.get("addr").map(String::as_str).unwrap_or(DEFAULT_ADDR))
}

fn with_id(
    positional: &[String],
    flags: &HashMap<String, String>,
    f: impl Fn(u64, &HashMap<String, String>) -> Result<i32, String>,
) -> Result<i32, String> {
    let raw = positional.first().ok_or("expected a job id")?;
    let id = raw.parse().map_err(|_| format!("bad job id '{}'", raw))?;
    f(id, flags)
}

fn serve(flags: &HashMap<String, String>, cancel: &Arc<CancelToken>) -> Result<i32, String> {
    let mut config =
        DaemonConfig::new(flags.get("root").map(String::as_str).unwrap_or("results/daemon"));
    config.addr = flags.get("addr").cloned().unwrap_or_else(|| DEFAULT_ADDR.to_string());
    if let Some(w) = flags.get("workers") {
        config.workers = w.parse().map_err(|_| format!("bad --workers '{}'", w))?;
        if config.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
    }
    config.bench_dir = Some(flags.get("bench").map(String::as_str).unwrap_or("results").into());
    if let Some(v) = flags.get("retain") {
        config.retain = Some(v.parse().map_err(|_| format!("bad --retain '{}'", v))?);
    }
    if let Some(v) = flags.get("fanout") {
        config.fanout = v.parse().map_err(|_| format!("bad --fanout '{}'", v))?;
        if config.fanout == 0 {
            return Err("--fanout must be at least 1".into());
        }
    }
    let mut daemon = Daemon::start(config.clone()).map_err(|e| e.to_string())?;
    // The address line is the serve handshake: scripts (and the CI
    // daemon-smoke job) wait for it before submitting.
    println!("listening on {}", daemon.addr());
    eprintln!(
        "[ffis-daemon] root {} — {} worker slot(s); Ctrl-C / SIGTERM for graceful shutdown",
        config.root.display(),
        config.workers
    );
    while !cancel.is_cancelled() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("[ffis-daemon] interrupted — cancelling jobs, flushing journals");
    daemon.shutdown();
    eprintln!("[ffis-daemon] stopped; interrupted jobs resume on next serve");
    Ok(0)
}

fn spec_from_flags(flags: &HashMap<String, String>) -> Result<CampaignSpec, String> {
    let app = flags.get("app").ok_or("--app is required")?;
    let model = flags.get("model").ok_or("--model is required")?;
    let mut spec = CampaignSpec::new(app, model);
    if let Some(v) = flags.get("site") {
        spec.site = v.clone();
    }
    let parse_usize =
        |key: &str, v: &String| v.parse::<usize>().map_err(|_| format!("bad --{} '{}'", key, v));
    let parse_u64 =
        |key: &str, v: &String| v.parse::<u64>().map_err(|_| format!("bad --{} '{}'", key, v));
    if let Some(v) = flags.get("grid") {
        spec.grid = parse_usize("grid", v)?;
    }
    if let Some(v) = flags.get("runs") {
        spec.runs = parse_usize("runs", v)?;
    }
    if let Some(v) = flags.get("seed") {
        spec.seed = parse_u64("seed", v)?;
    }
    if let Some(v) = flags.get("keep-runs") {
        spec.keep_runs = Some(parse_usize("keep-runs", v)?);
    }
    if let Some(v) = flags.get("fuel") {
        spec.fuel = Some(parse_u64("fuel", v)?);
    }
    if let Some(v) = flags.get("wall-limit-ms") {
        spec.wall_limit_ms = Some(parse_u64("wall-limit-ms", v)?);
    }
    if let Some(v) = flags.get("files") {
        spec.files = parse_usize("files", v)?;
    }
    if flags.contains_key("no-memo") {
        spec.memo = false;
    }
    if flags.contains_key("no-journal") {
        spec.journal = false;
    }
    if flags.contains_key("serial") {
        spec.parallel = false;
    }
    spec.validate()?;
    Ok(spec)
}

fn submit(flags: &HashMap<String, String>) -> Result<i32, String> {
    let spec = spec_from_flags(flags)?;
    if flags.contains_key("local") {
        // In-process fallback: same spec, same executor, no daemon.
        let journal = flags.get("root").map(|root| {
            let dir = std::path::Path::new(root).join("local");
            let _ = std::fs::create_dir_all(&dir);
            dir.join(format!("{}.journal", spec.label().replace(':', "-")))
        });
        let hooks = ExecHooks { journal, ..ExecHooks::default() };
        let result = execute_spec(&spec, &hooks).map_err(|e| e.to_string())?;
        let t = &result.tally;
        println!(
            "local {} {} — benign {} detected {} sdc {} crash {} (no-fire {})",
            spec.label(),
            status_word(result.status),
            t.benign,
            t.detected,
            t.sdc,
            t.crash,
            t.no_fire
        );
        println!(
            "digest {} {} {:#018x} {:#018x}",
            spec.label(),
            spec.injection_site()?.token(),
            result.plan_fingerprint,
            result.run_digest()
        );
        return Ok(if result.status == CompletionStatus::Complete { 0 } else { 130 });
    }
    let id = client(flags).submit(&spec)?;
    println!("job {}", id);
    Ok(0)
}

fn print_view(view: &JobView) {
    let t = &view.tally;
    println!(
        "job {} {} — {} {} {} grid {} runs {}",
        view.id,
        view.state.token(),
        view.spec.app,
        view.spec.label(),
        view.spec.site,
        view.spec.grid,
        view.spec.runs
    );
    println!(
        "  executed {} resumed {} | benign {} detected {} sdc {} crash {} (no-fire {})",
        view.executed, view.resumed, t.benign, t.detected, t.sdc, t.crash, t.no_fire
    );
    if view.fuel_exhausted > 0 || view.deadline_exceeded > 0 {
        println!(
            "  aborted runs: fuel-exhausted {} deadline-exceeded {}",
            view.fuel_exhausted, view.deadline_exceeded
        );
    }
    if let Some(reason) = &view.memo_reason {
        println!(
            "  memo {} | hits {} misses {} invalidations {}",
            reason, view.memo_hits, view.memo_misses, view.memo_invalidations
        );
    }
    if let Some(failure) = &view.failure {
        println!("  failed [{}]: {}", failure.kind(), failure);
    }
}

fn status(id: u64, flags: &HashMap<String, String>) -> Result<i32, String> {
    let view = client(flags).job(id)?;
    if flags.contains_key("digest") {
        // One DIGESTS.txt-vocabulary line, for diffing against an
        // in-process control run.
        let (Some(fp), Some(digest)) = (view.plan_fingerprint, view.run_digest) else {
            return Err(format!("job {} has no digest yet (state: {})", id, view.state.token()));
        };
        println!(
            "{} {} {:#018x} {:#018x}",
            view.spec.label(),
            view.spec.injection_site()?.token(),
            fp,
            digest
        );
        return Ok(0);
    }
    print_view(&view);
    Ok(0)
}

fn watch(id: u64, flags: &HashMap<String, String>) -> Result<i32, String> {
    let final_view = client(flags).watch_live(id, |event| match event {
        StreamEvent::Snapshot(view) => {
            eprintln!(
                "watching job {} ({} {} {}) — {} of {} runs already in",
                view.id,
                view.spec.app,
                view.spec.label(),
                view.spec.site,
                view.executed + view.resumed,
                view.spec.runs
            );
        }
        StreamEvent::Run { run, outcome, fired, resumed, aborted } => {
            let mark = match outcome {
                Outcome::Benign if !fired => "no-fire",
                o => o.name(),
            };
            let suffix = match (resumed, aborted) {
                (true, _) => " (resumed)".to_string(),
                (false, Some(reason)) => format!(" [{}]", reason),
                (false, None) => String::new(),
            };
            println!("run {:>6} {}{}", run, mark, suffix);
        }
        StreamEvent::Done(_) => {}
    })?;
    print_view(&final_view);
    Ok(match final_view.state {
        ffis_core::JobState::Complete => 0,
        ffis_core::JobState::Failed => 1,
        _ => 130,
    })
}

fn cancel_job(id: u64, flags: &HashMap<String, String>) -> Result<i32, String> {
    let view = client(flags).cancel(id)?;
    println!("job {} {}", view.id, view.state.token());
    Ok(0)
}

fn jobs(flags: &HashMap<String, String>) -> Result<i32, String> {
    let views = client(flags).jobs()?;
    if views.is_empty() {
        println!("no jobs");
        return Ok(0);
    }
    for view in views {
        println!(
            "{:>4} {:<12} {:<8} {:<5} {:<5} grid {:<4} runs {:<7} done {}",
            view.id,
            view.state.token(),
            view.spec.app,
            view.spec.label(),
            view.spec.site,
            view.spec.grid,
            view.spec.runs,
            view.executed + view.resumed
        );
    }
    Ok(0)
}

fn health(flags: &HashMap<String, String>) -> Result<i32, String> {
    let (running, queued, max_concurrent) = client(flags).health()?;
    println!("ok — running {} queued {} max-concurrent {}", running, queued, max_concurrent);
    Ok(0)
}

fn status_word(status: CompletionStatus) -> &'static str {
    match status {
        CompletionStatus::Complete => "complete",
        CompletionStatus::Interrupted => "interrupted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn specs_build_from_flags_with_cli_validation() {
        let spec = spec_from_flags(&flags(&[
            ("app", "nyx"),
            ("model", "SW"),
            ("site", "read"),
            ("grid", "64"),
            ("runs", "96"),
            ("seed", "4279640097"),
            ("keep-runs", "64"),
        ]))
        .unwrap();
        assert_eq!(spec.label(), "r:SR");
        assert_eq!(spec.grid, 64);
        assert_eq!(spec.keep_runs, Some(64));
        assert!(spec.journal && spec.parallel);

        let mut multi = flags(&[("app", "montage"), ("model", "BF"), ("files", "8")]);
        multi.insert("no-memo".into(), "true".into());
        let spec = spec_from_flags(&multi).unwrap();
        assert_eq!(spec.label(), "BF:f8");
        assert!(!spec.memo);

        let err =
            spec_from_flags(&flags(&[("app", "nyx"), ("model", "BF"), ("runs", "0")])).unwrap_err();
        assert!(err.contains("runs must be at least 1"), "{err}");
        let err =
            spec_from_flags(&flags(&[("app", "nyx"), ("model", "BF"), ("grid", "8")])).unwrap_err();
        assert!(err.contains("below the minimum"), "{err}");
        let err = spec_from_flags(&flags(&[("model", "BF")])).unwrap_err();
        assert!(err.contains("--app is required"), "{err}");
    }

    #[test]
    fn switches_do_not_eat_values() {
        let (map, positional) = parse_flags(&[
            "7".to_string(),
            "--digest".to_string(),
            "--addr".to_string(),
            "127.0.0.1:9".to_string(),
        ])
        .unwrap();
        assert_eq!(positional, vec!["7"]);
        assert_eq!(map.get("digest").map(String::as_str), Some("true"));
        assert_eq!(map.get("addr").map(String::as_str), Some("127.0.0.1:9"));
        assert!(parse_flags(&["--addr".to_string()]).is_err());
    }
}
