//! Report rendering and persistence for the reproduction harness.
//!
//! Every experiment prints its table/series to stdout *and* saves a
//! copy under `results/`, so `repro all` leaves a complete paper-vs-
//! measured record on disk.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A text report being assembled.
#[derive(Debug, Default)]
pub struct Report {
    name: String,
    lines: Vec<String>,
}

impl Report {
    /// New report with an experiment name (used as the file stem).
    pub fn new(name: &str) -> Self {
        Report { name: name.to_string(), lines: Vec::new() }
    }

    /// Append a line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Append a formatted section header.
    pub fn header(&mut self, title: &str) {
        self.lines.push(String::new());
        self.lines.push(format!("== {} ==", title));
    }

    /// Append a blank line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// The rendered text.
    pub fn text(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    /// Print to stdout and save to `<out_dir>/<name>.txt`.
    pub fn emit(&self, out_dir: &Path) -> std::io::Result<PathBuf> {
        print!("{}", self.text());
        std::fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{}.txt", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.text().as_bytes())?;
        Ok(path)
    }
}

/// Save raw bytes (PGM renders, CSV series) next to the reports.
pub fn save_bytes(out_dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(name);
    std::fs::write(&path, bytes)?;
    Ok(path)
}

/// Render a grayscale f64 grid as a binary PGM (min–max stretch),
/// used for the Figure 5/6/9 visual artifacts.
pub fn grid_to_pgm(values: &[f64], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(values.len(), width * height);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &finite {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || hi <= lo {
        lo = 0.0;
        hi = 1.0;
    }
    let scale = 255.0 / (hi - lo);
    let mut out = format!("P5 {} {} 255\n", width, height).into_bytes();
    for &v in values {
        out.push(if v.is_finite() { ((v - lo) * scale).clamp(0.0, 255.0) as u8 } else { 0 });
    }
    out
}

/// Render a log-scaled PGM (better for density fields spanning decades).
pub fn grid_to_pgm_log(values: &[f64], width: usize, height: usize) -> Vec<u8> {
    let logged: Vec<f64> =
        values.iter().map(|&v| if v.is_finite() && v > 0.0 { v.ln() } else { f64::NAN }).collect();
    grid_to_pgm(&logged, width, height)
}

/// Simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let cols = self.rows.iter().map(Vec::len).max().unwrap();
        let mut widths = vec![0usize; cols];
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for r in &self.rows {
            let mut line = String::new();
            for (i, c) in r.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_and_renders() {
        let mut r = Report::new("t");
        r.line("hello");
        r.header("Section");
        r.line("world");
        let text = r.text();
        assert!(text.contains("hello"));
        assert!(text.contains("== Section =="));
        assert!(text.ends_with("world\n"));
    }

    #[test]
    fn report_emit_writes_file() {
        let dir = std::env::temp_dir().join(format!("ffis-report-{}", std::process::id()));
        let mut r = Report::new("sample");
        r.line("data");
        let path = r.emit(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "data\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let values = vec![0.0, 0.5, 1.0, 0.25];
        let pgm = grid_to_pgm(&values, 2, 2);
        assert!(pgm.starts_with(b"P5 2 2 255\n"));
        assert_eq!(pgm.len(), b"P5 2 2 255\n".len() + 4);
        assert_eq!(*pgm.last().unwrap(), 63); // 0.25 of the range
    }

    #[test]
    fn pgm_handles_nan_and_flat() {
        let values = vec![f64::NAN, 1.0, 1.0, 1.0];
        let pgm = grid_to_pgm(&values, 2, 2);
        let payload = &pgm[b"P5 2 2 255\n".len()..];
        assert_eq!(payload[0], 0);
        let flat = grid_to_pgm(&[2.0, 2.0], 2, 1);
        assert!(flat.len() > 2);
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new();
        t.row(&["a", "long-cell", "x"]);
        t.row(&["longer", "b", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].find("long-cell"), lines[1].find('b').map(|_| 8));
    }

    #[test]
    fn log_pgm_compresses_dynamic_range() {
        let values = vec![1.0, 10.0, 100.0, 1000.0];
        let lin = grid_to_pgm(&values, 4, 1);
        let log = grid_to_pgm_log(&values, 4, 1);
        let lin_payload = &lin[b"P5 4 1 255\n".len()..];
        let log_payload = &log[b"P5 4 1 255\n".len()..];
        // In log space the second value is much brighter than in
        // linear space.
        assert!(log_payload[1] > lin_payload[1]);
    }
}
