//! Minimal `--flag value` argument parsing for the `repro` binary.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use ffis_core::CancelToken;

/// Smallest Nyx grid the paper workloads run on — re-exported from the
/// core job layer so the CLI flag validation and the daemon's HTTP 400
/// validation share one floor (see `ffis_core::engine::job`).
pub use ffis_core::MIN_GRID;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Injection runs per campaign cell (paper: 1000).
    pub runs: usize,
    /// Root seed.
    pub seed: u64,
    /// Nyx grid side for campaign experiments.
    pub grid: usize,
    /// Was `--grid` given explicitly? Scale-regime experiments default
    /// to the paper's n=192 grid *unless* the operator pinned one, so
    /// scale runs never require code edits (`repro scale --grid 64`).
    pub grid_explicit: bool,
    /// Output directory for reports/artifacts.
    pub out: PathBuf,
    /// Quick mode: smaller workloads and fewer runs (CI-friendly).
    pub quick: bool,
    /// Directory for per-campaign run journals (`--journal DIR`).
    /// Campaign-grade experiments write one append-only journal per
    /// cell there; with [`Options::resume`] an interrupted invocation
    /// picks up where it stopped.
    pub journal: Option<PathBuf>,
    /// Resume from existing journals in [`Options::journal`]
    /// (`--resume`). Safe to pass unconditionally: missing journal
    /// files start fresh, and a journal from a different configuration
    /// is rejected with a clear error.
    pub resume: bool,
    /// Worker *processes* for the distributed fan-out (`--workers N`).
    /// `1` (the default) runs everything in-process; `N > 1` makes
    /// `repro scale` shard each campaign's run plan by index range
    /// across `N` spawned worker processes sharing a disk-backed
    /// checkpoint store, and write `BENCH_distributed.json` (engine
    /// law 7: the results are byte-identical either way).
    pub workers: usize,
    /// Cooperative cancellation token, wired to Ctrl-C by the `repro`
    /// binary. Not a CLI flag; experiments thread it into their
    /// campaigns.
    pub cancel: Option<Arc<CancelToken>>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            runs: 1000,
            seed: 0xFF15_2021,
            grid: 96,
            grid_explicit: false,
            out: PathBuf::from("results"),
            quick: false,
            journal: None,
            resume: false,
            workers: 1,
            cancel: None,
        }
    }
}

impl Options {
    /// Parse from `--flag value` pairs; returns the options and any
    /// positional arguments.
    pub fn parse(args: &[String]) -> Result<(Options, Vec<String>), String> {
        let mut opts = Options::default();
        let mut positional = Vec::new();
        let mut map: HashMap<String, String> = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--") {
                if flag == "quick" {
                    opts.quick = true;
                    continue;
                }
                if flag == "resume" {
                    opts.resume = true;
                    continue;
                }
                let value =
                    it.next().ok_or_else(|| format!("--{} requires a value", flag))?.clone();
                map.insert(flag.to_string(), value);
            } else {
                positional.push(a.clone());
            }
        }
        if let Some(v) = map.get("runs") {
            opts.runs = v.parse().map_err(|_| format!("bad --runs '{}'", v))?;
            if opts.runs == 0 {
                return Err("--runs must be at least 1".into());
            }
        }
        if let Some(v) = map.get("seed") {
            opts.seed = v.parse().map_err(|_| format!("bad --seed '{}'", v))?;
        }
        if let Some(v) = map.get("grid") {
            opts.grid = v.parse().map_err(|_| format!("bad --grid '{}'", v))?;
            if opts.grid < MIN_GRID {
                return Err(format!(
                    "--grid {} is below the minimum {} (the paper workloads need at least a \
                     {MIN_GRID}\u{b3} field)",
                    opts.grid, MIN_GRID
                ));
            }
            opts.grid_explicit = true;
        }
        if let Some(v) = map.get("out") {
            opts.out = PathBuf::from(v);
        }
        if let Some(v) = map.get("journal") {
            opts.journal = Some(PathBuf::from(v));
        }
        if let Some(v) = map.get("workers") {
            opts.workers = v.parse().map_err(|_| format!("bad --workers '{}'", v))?;
            if opts.workers == 0 {
                return Err("--workers must be at least 1".into());
            }
        }
        if opts.quick {
            opts.runs = opts.runs.min(120);
            opts.grid = opts.grid.min(48);
        }
        Ok((opts, positional))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> (Options, Vec<String>) {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn defaults() {
        let (o, pos) = parse(&["fig7"]);
        assert_eq!(o.runs, 1000);
        assert_eq!(o.grid, 96);
        assert!(!o.quick);
        assert_eq!(pos, vec!["fig7"]);
    }

    #[test]
    fn flags_override() {
        let (o, pos) =
            parse(&["table3", "--runs", "50", "--seed", "9", "--grid", "32", "--out", "/tmp/x"]);
        assert_eq!(o.runs, 50);
        assert_eq!(o.seed, 9);
        assert_eq!(o.grid, 32);
        assert!(o.grid_explicit);
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
        assert_eq!(pos, vec!["table3"]);
    }

    #[test]
    fn grid_defaults_are_not_explicit() {
        let (o, _) = parse(&["scale"]);
        assert!(!o.grid_explicit);
        let (o, _) = parse(&["scale", "--runs", "5"]);
        assert!(!o.grid_explicit);
    }

    #[test]
    fn quick_caps_sizes() {
        let (o, _) = parse(&["fig7", "--quick"]);
        assert!(o.quick);
        assert!(o.runs <= 120);
        assert!(o.grid <= 48);
    }

    #[test]
    fn missing_value_is_error() {
        let args: Vec<String> = vec!["--runs".into()];
        assert!(Options::parse(&args).is_err());
        let bad: Vec<String> = vec!["--runs".into(), "abc".into()];
        assert!(Options::parse(&bad).is_err());
    }

    #[test]
    fn zero_runs_is_a_clear_error_not_a_panic() {
        let args: Vec<String> = vec!["scale".into(), "--runs".into(), "0".into()];
        let err = Options::parse(&args).unwrap_err();
        assert!(err.contains("--runs must be at least 1"), "{err}");
    }

    #[test]
    fn undersized_grid_is_a_clear_error_not_a_panic() {
        for g in ["0", "1", "8", "12", "15"] {
            let args: Vec<String> = vec!["fig8".into(), "--grid".into(), g.into()];
            let err = Options::parse(&args).unwrap_err();
            assert!(err.contains("below the minimum"), "grid {g}: {err}");
        }
        let args: Vec<String> = vec!["fig8".into(), "--grid".into(), "16".into()];
        assert!(Options::parse(&args).is_ok());
    }

    #[test]
    fn workers_flag_parses_and_rejects_zero() {
        let (o, _) = parse(&["scale", "--workers", "4"]);
        assert_eq!(o.workers, 4);
        let (o, _) = parse(&["scale"]);
        assert_eq!(o.workers, 1);
        let args: Vec<String> = vec!["scale".into(), "--workers".into(), "0".into()];
        let err = Options::parse(&args).unwrap_err();
        assert!(err.contains("--workers must be at least 1"), "{err}");
    }

    #[test]
    fn journal_and_resume_flags_parse() {
        let (o, pos) = parse(&["scale", "--journal", "/tmp/j", "--resume"]);
        assert_eq!(o.journal, Some(PathBuf::from("/tmp/j")));
        assert!(o.resume);
        assert_eq!(pos, vec!["scale"]);
        let (o, _) = parse(&["scale"]);
        assert_eq!(o.journal, None);
        assert!(!o.resume);
    }
}
