//! Minimal `--flag value` argument parsing for the `repro` binary.

use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Injection runs per campaign cell (paper: 1000).
    pub runs: usize,
    /// Root seed.
    pub seed: u64,
    /// Nyx grid side for campaign experiments.
    pub grid: usize,
    /// Was `--grid` given explicitly? Scale-regime experiments default
    /// to the paper's n=192 grid *unless* the operator pinned one, so
    /// scale runs never require code edits (`repro scale --grid 64`).
    pub grid_explicit: bool,
    /// Output directory for reports/artifacts.
    pub out: PathBuf,
    /// Quick mode: smaller workloads and fewer runs (CI-friendly).
    pub quick: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            runs: 1000,
            seed: 0xFF15_2021,
            grid: 96,
            grid_explicit: false,
            out: PathBuf::from("results"),
            quick: false,
        }
    }
}

impl Options {
    /// Parse from `--flag value` pairs; returns the options and any
    /// positional arguments.
    pub fn parse(args: &[String]) -> Result<(Options, Vec<String>), String> {
        let mut opts = Options::default();
        let mut positional = Vec::new();
        let mut map: HashMap<String, String> = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--") {
                if flag == "quick" {
                    opts.quick = true;
                    continue;
                }
                let value =
                    it.next().ok_or_else(|| format!("--{} requires a value", flag))?.clone();
                map.insert(flag.to_string(), value);
            } else {
                positional.push(a.clone());
            }
        }
        if let Some(v) = map.get("runs") {
            opts.runs = v.parse().map_err(|_| format!("bad --runs '{}'", v))?;
        }
        if let Some(v) = map.get("seed") {
            opts.seed = v.parse().map_err(|_| format!("bad --seed '{}'", v))?;
        }
        if let Some(v) = map.get("grid") {
            opts.grid = v.parse().map_err(|_| format!("bad --grid '{}'", v))?;
            opts.grid_explicit = true;
        }
        if let Some(v) = map.get("out") {
            opts.out = PathBuf::from(v);
        }
        if opts.quick {
            opts.runs = opts.runs.min(120);
            opts.grid = opts.grid.min(48);
        }
        Ok((opts, positional))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> (Options, Vec<String>) {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn defaults() {
        let (o, pos) = parse(&["fig7"]);
        assert_eq!(o.runs, 1000);
        assert_eq!(o.grid, 96);
        assert!(!o.quick);
        assert_eq!(pos, vec!["fig7"]);
    }

    #[test]
    fn flags_override() {
        let (o, pos) =
            parse(&["table3", "--runs", "50", "--seed", "9", "--grid", "32", "--out", "/tmp/x"]);
        assert_eq!(o.runs, 50);
        assert_eq!(o.seed, 9);
        assert_eq!(o.grid, 32);
        assert!(o.grid_explicit);
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
        assert_eq!(pos, vec!["table3"]);
    }

    #[test]
    fn grid_defaults_are_not_explicit() {
        let (o, _) = parse(&["scale"]);
        assert!(!o.grid_explicit);
        let (o, _) = parse(&["scale", "--runs", "5"]);
        assert!(!o.grid_explicit);
    }

    #[test]
    fn quick_caps_sizes() {
        let (o, _) = parse(&["fig7", "--quick"]);
        assert!(o.quick);
        assert!(o.runs <= 120);
        assert!(o.grid <= 48);
    }

    #[test]
    fn missing_value_is_error() {
        let args: Vec<String> = vec!["--runs".into()];
        assert!(Options::parse(&args).is_err());
        let bad: Vec<String> = vec!["--runs".into(), "abc".into()];
        assert!(Options::parse(&bad).is_err());
    }
}
