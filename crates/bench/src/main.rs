//! `repro` — regenerate every table and figure of the paper.

use std::sync::Arc;
use std::sync::OnceLock;

use ffis_bench::{experiments, Options};
use ffis_core::CancelToken;

fn usage() -> String {
    let mut s = String::from(
        "usage: repro <experiment> [--runs N] [--seed S] [--grid G] [--out DIR] [--quick]\n\
         \u{20}                    [--journal DIR] [--resume] [--workers N]\n\n\
         experiments:\n",
    );
    for name in experiments::ALL {
        s.push_str(&format!("  {}\n", name));
    }
    s.push_str(
        "  repair\n  profile\n  read-faults\n  checksum\n  param-faults\n  scale      \
         (n=192 paper regime unless --grid given)\n  analyze-memo  \
         (multi-file cells, memoized vs full analyze; BENCH_analyze_memo.json)\n  \
         replay-opt  (plan-aware replay vs log-spaced control; BENCH_replay_opt.json)\n  \
         all        (everything above except scale, analyze-memo, and replay-opt)\n\n\
         daemon:\n  repro daemon serve|submit|status|watch|cancel|jobs|health\n  \
         campaign-as-a-service: persistent job queue + REST/NDJSON API (see `repro daemon`)\n\n\
         durability:\n  --journal DIR   write per-campaign run journals under DIR\n  \
         --resume        resume from existing journals (safe with no journal present)\n  \
         Ctrl-C          graceful stop: completed runs are journaled, partial tallies reported\n\n\
         distribution:\n  --workers N     (scale only) shard each campaign across N worker \
         processes\n  \
         \u{20}                sharing a disk checkpoint store; writes BENCH_distributed.json\n",
    );
    s
}

/// The one Ctrl-C token, shared with every campaign of the invocation.
static CANCEL: OnceLock<Arc<CancelToken>> = OnceLock::new();

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;
const SIG_DFL: usize = 0;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// First Ctrl-C (or SIGTERM — the daemon's service-manager stop)
/// requests a graceful stop (an atomic store — async-signal-safe); the
/// handler then restores the default dispositions so a second signal
/// kills the process outright.
extern "C" fn on_sigint(_sig: i32) {
    if let Some(cancel) = CANCEL.get() {
        cancel.cancel();
    }
    unsafe {
        signal(SIGINT, SIG_DFL);
        signal(SIGTERM, SIG_DFL);
    }
}

fn install_sigint() -> Arc<CancelToken> {
    let cancel = CANCEL.get_or_init(CancelToken::new).clone();
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
        signal(SIGTERM, on_sigint as *const () as usize);
    }
    cancel
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The daemon subcommands have their own flag grammar (`--addr`,
    // `--digest`, …) — route them before Options parsing.
    if args.first().map(String::as_str) == Some("daemon") {
        let cancel = install_sigint();
        std::process::exit(ffis_bench::daemon_cli::run(&args[1..], &cancel));
    }
    let (mut opts, positional) = match Options::parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {}\n\n{}", e, usage());
            std::process::exit(2);
        }
    };
    let Some(cmd) = positional.first() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    let cancel = install_sigint();
    opts.cancel = Some(cancel.clone());

    let names: Vec<&str> = if cmd == "all" {
        let mut v: Vec<&str> = experiments::ALL.to_vec();
        v.extend(["repair", "profile", "read-faults", "checksum", "param-faults"]);
        v
    } else {
        vec![cmd.as_str()]
    };

    for name in names {
        if cancel.is_cancelled() {
            break;
        }
        let started = std::time::Instant::now();
        match experiments::run(name, &opts) {
            Ok(report) => {
                if let Err(e) = report.emit(&opts.out) {
                    eprintln!("warning: could not save {}: {}", name, e);
                }
                eprintln!("[{}] done in {:.1}s", name, started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {}\n\n{}", e, usage());
                std::process::exit(2);
            }
        }
    }
    if cancel.is_cancelled() {
        eprintln!(
            "interrupted: completed runs {} — rerun with --resume to continue",
            if opts.journal.is_some() { "are journaled" } else { "were reported (no --journal)" }
        );
        std::process::exit(130);
    }
}
