//! `repro` — regenerate every table and figure of the paper.

use ffis_bench::{experiments, Options};

fn usage() -> String {
    let mut s = String::from(
        "usage: repro <experiment> [--runs N] [--seed S] [--grid G] [--out DIR] [--quick]\n\n\
         experiments:\n",
    );
    for name in experiments::ALL {
        s.push_str(&format!("  {}\n", name));
    }
    s.push_str(
        "  repair\n  profile\n  read-faults\n  checksum\n  param-faults\n  scale      \
         (n=192 paper regime unless --grid given)\n  all        (everything above except scale)\n",
    );
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, positional) = match Options::parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {}\n\n{}", e, usage());
            std::process::exit(2);
        }
    };
    let Some(cmd) = positional.first() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };

    let names: Vec<&str> = if cmd == "all" {
        let mut v: Vec<&str> = experiments::ALL.to_vec();
        v.extend(["repair", "profile", "read-faults", "checksum", "param-faults"]);
        v
    } else {
        vec![cmd.as_str()]
    };

    for name in names {
        let started = std::time::Instant::now();
        match experiments::run(name, &opts) {
            Ok(report) => {
                if let Err(e) = report.emit(&opts.out) {
                    eprintln!("warning: could not save {}: {}", name, e);
                }
                eprintln!("[{}] done in {:.1}s", name, started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {}\n\n{}", e, usage());
                std::process::exit(2);
            }
        }
    }
}
