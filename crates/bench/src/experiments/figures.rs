//! Figures 5, 6, 8 and 9 — the visual/series artifacts.

use ffis_core::{
    locate_write, run_with_byte_fault, ByteFlip, FaultModel, FaultSignature, Histogram, Outcome,
    TargetFilter, WritePick,
};
use ffis_vfs::{FfisFs, MemFs};
use std::sync::Arc;

use crate::cli::Options;
use crate::experiments::tables::{metadata_app, nyx_field_map};
use crate::report::{grid_to_pgm_log, save_bytes, Report, Table};

fn mid_slice(values: &[f64], n: usize) -> Vec<f64> {
    let z = n / 2;
    values[z * n * n..(z + 1) * n * n].to_vec()
}

/// Figure 5 — visualization of typical SDC cases: original field,
/// Exponent-Bias-scaled field, ARD-shifted field (mid-plane slices,
/// log stretch, written as PGMs + a CSV of slice statistics).
pub fn fig5(opts: &Options) -> Report {
    let mut report = Report::new("fig5");
    report.line("Figure 5 — Visualization of typical SDC cases (mid-plane slices)");
    report.blank();

    let app = metadata_app(opts);
    let map = nyx_field_map(&app);
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, golden) =
        locate_write(&app, &target, WritePick::Penultimate).expect("locatable");
    let n = app.n();

    let golden_field = golden.field.clone().expect("keep_field enabled");
    let slice = mid_slice(&golden_field, n);
    save_bytes(&opts.out, "fig5_original.pgm", &grid_to_pgm_log(&slice, n, n)).ok();

    let mut t = Table::new();
    t.row(&["case", "outcome", "mean", "slice min", "slice max", "artifact"]);
    let gmean = golden.catalog.mean;
    t.row(&[
        "original",
        "-",
        &format!("{:.4}", gmean),
        &format!("{:.3}", slice.iter().cloned().fold(f64::INFINITY, f64::min)),
        &format!("{:.3}", slice.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
        "fig5_original.pgm",
    ]);

    for (case, needle, flip, artifact) in [
        ("Exponent Bias", "ExponentBias", ByteFlip::Xor(0x0C), "fig5_exponent_bias.pgm"),
        ("ARD", "AddressOfRawData", ByteFlip::Xor(0x40), "fig5_ard.pgm"),
    ] {
        let span = map.find(needle)[0].clone();
        let (outcome, faulty, _) =
            run_with_byte_fault(&app, &golden, &target, instance, span.start as usize, flip);
        if let Some(f) = faulty.as_ref().and_then(|o| o.field.clone()) {
            let s = mid_slice(&f, n);
            save_bytes(&opts.out, artifact, &grid_to_pgm_log(&s, n, n)).ok();
            let fmean = faulty.as_ref().unwrap().catalog.mean;
            t.row(&[
                case,
                outcome.name(),
                &format!("{:.4}", fmean),
                &format!("{:.3}", s.iter().cloned().fold(f64::INFINITY, f64::min)),
                &format!("{:.3}", s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
                artifact,
            ]);
        } else {
            t.row(&[case, outcome.name(), "-", "-", "-", "-"]);
        }
    }
    report.line(t.render());
    report.line("Paper: a faulty Exponent Bias scales the input (Fig. 5b); a faulty ARD shifts it (Fig. 5c).");
    report
}

/// Figure 6 — halo candidate cells around the strongest halo, original
/// vs a faulty Mantissa Size field (ASCII map + PGMs).
pub fn fig6(opts: &Options) -> Report {
    let mut report = Report::new("fig6");
    report.line("Figure 6 — Halo candidate cells with a faulty Mantissa Size field");
    report.blank();

    let app = metadata_app(opts);
    let map = nyx_field_map(&app);
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, golden) =
        locate_write(&app, &target, WritePick::Penultimate).expect("locatable");
    let n = app.n();

    let span = map.find("MantissaSize")[0].clone();
    let (outcome, faulty, _) = run_with_byte_fault(
        &app,
        &golden,
        &target,
        instance,
        span.start as usize,
        ByteFlip::Xor(0x04),
    );

    let gfield = golden.field.as_ref().expect("keep_field");
    let gmask = nyx_sim::candidate_mask(gfield, golden.catalog.threshold);
    let gcount = gmask.iter().filter(|&&m| m).count();
    report.line(format!(
        "original: {} candidate cells, {} halos",
        gcount,
        golden.catalog.halos.len()
    ));

    if let Some(fout) = &faulty {
        let ffield = fout.field.as_ref().expect("keep_field");
        let fmask = nyx_sim::candidate_mask(ffield, fout.catalog.threshold);
        let fcount = fmask.iter().filter(|&&m| m).count();
        report.line(format!(
            "faulty Mantissa Size ({}): {} candidate cells, {} halos",
            outcome.name(),
            fcount,
            fout.catalog.halos.len()
        ));
        report.blank();

        // ASCII map of the z-plane with the most golden candidates.
        let plane = (0..n)
            .max_by_key(|&z| gmask[z * n * n..(z + 1) * n * n].iter().filter(|&&m| m).count())
            .unwrap_or(n / 2);
        report
            .line(format!("candidate map at z = {} ('#' original, 'o' faulty, '@' both):", plane));
        for y in 0..n {
            let mut row = String::with_capacity(n);
            for x in 0..n {
                let idx = (plane * n + y) * n + x;
                row.push(match (gmask[idx], fmask[idx]) {
                    (true, true) => '@',
                    (true, false) => '#',
                    (false, true) => 'o',
                    (false, false) => '.',
                });
            }
            report.line(row);
        }
        report.blank();
        report.line("Paper: \"In the faulty case, the number of halo cell candidates is reduced");
        report.line("compared to the original case thus there are not enough halo candidates to form a halo.\"");
    } else {
        report.line(format!("faulty run did not complete ({})", outcome.name()));
    }
    report
}

/// Figure 8 — halo-mass distribution, original vs DROPPED-WRITE faulty.
pub fn fig8(opts: &Options) -> Report {
    let mut report = Report::new("fig8");
    report.line("Figure 8 — Halo-finder analysis on original and faulty (DROPPED WRITE) data");
    report.blank();

    let app = crate::experiments::campaigns::nyx_app(opts);
    let golden = {
        use ffis_core::FaultApp;
        app.run(&MemFs::new()).expect("golden run")
    };

    // Inject one dropped write into an early data chunk.
    use ffis_core::{ArmedInjector, FaultApp};
    let sig = FaultSignature::on_write(FaultModel::dropped_write());
    let injector = Arc::new(ArmedInjector::new(sig, 3, opts.seed));
    let ffs = FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(injector);
    let faulty = app.run(&*ffs).expect("faulty run completes");
    let outcome = app.classify(&golden, &faulty);

    let mut gh = Histogram::log10(1.5, 5.0, 14);
    for h in &golden.catalog.halos {
        gh.add_log10(h.mass);
    }
    let mut fh = Histogram::log10(1.5, 5.0, 14);
    for h in &faulty.catalog.halos {
        fh.add_log10(h.mass);
    }

    let mut t = Table::new();
    t.row(&["log10(mass) bin center", "original count", "faulty count"]);
    for (i, (center, count)) in gh.series().into_iter().enumerate() {
        t.row(&[&format!("{:.2}", center), &count.to_string(), &fh.counts()[i].to_string()]);
    }
    report.line(t.render());
    report.line(format!(
        "original: {} halos (mean {:.6}); faulty: {} halos (mean {:.6}); outcome: {}",
        golden.catalog.halos.len(),
        golden.catalog.mean,
        faulty.catalog.halos.len(),
        faulty.catalog.mean,
        outcome.name()
    ));
    report.line("Paper: \"the SDC curve is different from the original curve, especially when the");
    report
        .line("mass is relatively large, because halos with larger mass have more halo cells and");
    report.line("are more susceptible to DROPPED WRITE.\"");
    report
}

/// Figure 9 — a typical faulty mosaic due to DROPPED WRITE (PGMs +
/// min statistics).
pub fn fig9(opts: &Options) -> Report {
    let mut report = Report::new("fig9");
    report.line("Figure 9 — A typical faulty Montage mosaic due to DROPPED WRITE");
    report.blank();

    use ffis_core::{ArmedInjector, FaultApp};
    use montage_sim::MontageApp;

    let app = MontageApp::paper_default();
    let golden = app.run(&MemFs::new()).expect("golden run");
    save_bytes(&opts.out, "fig9_original.pgm", &golden.image.bytes).ok();

    // Drop a data chunk inside the co-addition inputs (stage-4 path).
    let mut found = None;
    for instance in 1..40u64 {
        let mut sig = FaultSignature::on_write(FaultModel::dropped_write());
        sig.target = MontageApp::stage_filter(montage_sim::Stage::Add);
        let injector = Arc::new(ArmedInjector::new(sig, instance, opts.seed));
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(injector.clone());
        match app.run(&*ffs) {
            Ok(faulty) => {
                let outcome = app.classify(&golden, &faulty);
                if outcome != Outcome::Benign {
                    found = Some((instance, faulty, outcome));
                    break;
                }
            }
            Err(_) => continue,
        }
    }

    match found {
        Some((instance, faulty, outcome)) => {
            save_bytes(&opts.out, "fig9_faulty.pgm", &faulty.image.bytes).ok();
            let mut t = Table::new();
            t.row(&["", "min", "max", "artifact"]);
            t.row(&[
                "original",
                &format!("{:.4}", golden.image.min),
                &format!("{:.4}", golden.image.max),
                "fig9_original.pgm",
            ]);
            t.row(&[
                "faulty",
                &format!("{:.4}", faulty.image.min),
                &format!("{:.4}", faulty.image.max),
                "fig9_faulty.pgm",
            ]);
            report.line(t.render());
            report.line(format!(
                "dropped write instance {} in the mAdd output path; outcome: {}",
                instance,
                outcome.name()
            ));
            report.line(
                "Paper: \"there is a black line in the middle of the vortex, which is caused by",
            );
            report
                .line("missing a large piece of data due to DROPPED WRITE\"; the faulty min falls");
            report.line("outside [golden-0.01, golden+0.01], so the case is detected.");
        }
        None => report.line("no visible faulty case found in the scanned instances"),
    }
    report
}
