//! Ablations and the repair evaluation: the paper's footnote-3 bit-width
//! study, the Table I shorn-keep feature, the shorn-fill model, and the
//! §V-A detection/correction methodology.

use ffis_core::{
    locate_write, ByteFlip, FaultModel, Outcome, ShornFill, ShornKeep, TargetFilter, WritePick,
};
use ffis_vfs::{FileSystem, FileSystemExt, MemFs};

use std::sync::Arc;

use crate::cli::Options;
use crate::experiments::campaigns::{nyx_app, run_cell};
use crate::experiments::tables::{metadata_app, nyx_field_map};
use crate::report::{Report, Table};

/// Footnote 3 — "We also tested the 4-bit bit flip model and the SDC
/// rate remains minimal for Nyx." Sweep the flip width.
pub fn ablation_bits(opts: &Options) -> Report {
    let mut report = Report::new("ablation_bits");
    report.line("Ablation — BIT FLIP width sweep on Nyx (paper footnote 3)");
    report.blank();

    let app = nyx_app(opts);
    let store = Arc::new(ffis_vfs::CheckpointStore::new());
    let mut t = Table::new();
    t.row(&["bits", "benign%", "detected%", "SDC%", "crash%"]);
    for bits in [1u32, 2, 4, 8] {
        let tally = run_cell(
            &app,
            FaultModel::BitFlip { bits },
            TargetFilter::Any,
            opts,
            400 + bits as u64,
            Some(&store),
        );
        t.row(&[
            &bits.to_string(),
            &format!("{:.1}", tally.rate_pct(Outcome::Benign)),
            &format!("{:.1}", tally.rate_pct(Outcome::Detected)),
            &format!("{:.1}", tally.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", tally.rate_pct(Outcome::Crash)),
        ]);
    }
    report.line(t.render());
    report.line("Paper: the SDC rate remains minimal for Nyx at 4 bits.");
    report
}

/// Table I feature ablation — shorn keep fraction (3/8 vs 7/8) and
/// torn-region fill model (stale / zeros / random) on Nyx.
pub fn ablation_shorn(opts: &Options) -> Report {
    let mut report = Report::new("ablation_shorn");
    report.line("Ablation — SHORN WRITE keep fraction and torn-fill model (Nyx)");
    report.blank();

    let app = nyx_app(opts);
    let store = Arc::new(ffis_vfs::CheckpointStore::new());
    let mut t = Table::new();
    t.row(&["keep", "fill", "benign%", "detected%", "SDC%", "crash%"]);
    for keep in [ShornKeep::SevenEighths, ShornKeep::ThreeEighths] {
        for fill in [ShornFill::Stale, ShornFill::Zeros, ShornFill::Random] {
            let tally = run_cell(
                &app,
                FaultModel::ShornWrite { keep, fill },
                TargetFilter::Any,
                opts,
                500 + keep.sectors_kept() as u64 * 10 + fill as u64,
                Some(&store),
            );
            t.row(&[
                &format!("{}/8", keep.sectors_kept()),
                &format!("{:?}", fill),
                &format!("{:.1}", tally.rate_pct(Outcome::Benign)),
                &format!("{:.1}", tally.rate_pct(Outcome::Detected)),
                &format!("{:.1}", tally.rate_pct(Outcome::Sdc)),
                &format!("{:.1}", tally.rate_pct(Outcome::Crash)),
            ]);
        }
    }
    report.line(t.render());
    report.line("The Stale fill reproduces the paper's \"undefined data within an order of");
    report.line("magnitude of the original\" observation (Nyx SW ~ benign); Zeros/Random fills");
    report.line("show how sensitive the result is to the torn-region content model.");
    report
}

/// Extension — metadata checksum seal: rerun the Table III byte scan
/// with the plotfile metadata protected by a Fletcher-32 seal, and
/// compare the outcome distribution. Quantifies the protection the
/// paper discusses qualitatively ("the metadata of HDF5 file format
/// itself has a certain degree of redundancy ... we do not choose to
/// replicate the metadata").
pub fn checksum(opts: &Options) -> Report {
    use ffis_core::{scan, ScanConfig};
    use nyx_sim::{NyxApp, NyxConfig};

    let mut report = Report::new("checksum");
    report.line("Extension — Table III scan with and without a metadata checksum seal");
    report.blank();

    let mut t = Table::new();
    t.row(&["format", "benign%", "detected%", "SDC%", "crash%", "n"]);
    for sealed in [false, true] {
        let mut cfg =
            NyxConfig { keep_field: false, seal_metadata: sealed, ..NyxConfig::default() };
        cfg.field.n = if opts.quick { 24 } else { 32 };
        let app = NyxApp::new(cfg);
        let mut scan_cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
        scan_cfg.stride = if opts.quick { 4 } else { 1 };
        let result = scan(&app, &scan_cfg).expect("scan");
        t.row(&[
            if sealed { "sealed (Fletcher-32)" } else { "plain v0 (paper)" },
            &format!("{:.1}", result.tally.rate_pct(Outcome::Benign)),
            &format!("{:.1}", result.tally.rate_pct(Outcome::Detected)),
            &format!("{:.1}", result.tally.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", result.tally.rate_pct(Outcome::Crash)),
            &result.tally.total().to_string(),
        ]);
    }
    report.line(t.render());
    report.line("The seal eliminates every silent case (SDC -> 0) but converts the previously");
    report.line("harmless faults in reserved/unused bytes into integrity failures — the");
    report.line("availability-vs-integrity trade-off behind the paper's choice to exploit field");
    report.line("correlations instead of whole-metadata protection.");
    report
}

/// §V-A repair — inject each SDC-prone field, run the paper's
/// detection + auto-correction, verify the halo analysis recovers.
pub fn repair(opts: &Options) -> Report {
    let mut report = Report::new("repair");
    report.line("§V-A — Detection and auto-correction of faulty metadata fields");
    report.blank();

    let app = metadata_app(opts);
    let map = nyx_field_map(&app);
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, golden) =
        locate_write(&app, &target, WritePick::Penultimate).expect("locatable");

    let cases: [(&str, &str, ByteFlip); 6] = [
        ("Mantissa Normalization (bit 5)", "MantissaNormalization", ByteFlip::Xor(0x20)),
        ("Exponent Location", "ExponentLocation", ByteFlip::Xor(0x02)),
        ("Mantissa Location", "MantissaLocation", ByteFlip::Xor(0x02)),
        ("Mantissa Size", "MantissaSize", ByteFlip::Xor(0x04)),
        ("Exponent Bias", "ExponentBias", ByteFlip::Xor(0x0C)),
        ("Address of Raw Data (ARD)", "AddressOfRawData", ByteFlip::Xor(0x40)),
    ];

    let mut t = Table::new();
    t.row(&[
        "field",
        "fault outcome",
        "diagnosis",
        "corrections",
        "mean before",
        "mean after",
        "halos recovered",
    ]);
    for (label, needle, flip) in cases {
        let span = map.find(needle)[0].clone();
        // Build a faulty file on a private filesystem (not via the
        // campaign machinery — we need the file to persist for repair).
        let fs = MemFs::new();
        {
            use ffis_core::{ByteFaultInjector, FaultApp};
            use std::sync::Arc;
            let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
            let inj = Arc::new(ByteFaultInjector::new(
                target.clone(),
                instance,
                span.start as usize,
                flip,
            ));
            ffs.attach(inj);
            let _ = app.run(&*ffs); // outcome irrelevant; we want the file
                                    // Copy the faulty plotfile onto the repair filesystem.
            let bytes = ffs.read_to_vec(nyx_sim::PLOTFILE).expect("plotfile exists");
            fs.mkdir("/run", 0o755).unwrap();
            fs.write_file(nyx_sim::PLOTFILE, &bytes).unwrap();
        }

        let fault_outcome = {
            use ffis_core::FaultApp;
            // What would the analysis say pre-repair?
            match hdf5lite::read_dataset(&fs, nyx_sim::PLOTFILE, nyx_sim::DATASET) {
                Ok(info) => {
                    let dims =
                        [info.dims[0] as usize, info.dims[1] as usize, info.dims[2] as usize];
                    let catalog = nyx_sim::find_halos(
                        &info.values,
                        dims,
                        &nyx_sim::HaloFinderConfig::default(),
                    );
                    let out = nyx_sim::NyxOutput {
                        catalog_text: catalog.render(),
                        catalog,
                        field: None,
                        dims,
                        extra: vec![],
                    };
                    app.classify(&golden, &out)
                }
                Err(_) => Outcome::Crash,
            }
        };

        match hdf5lite::repair_file(&fs, nyx_sim::PLOTFILE, nyx_sim::DATASET, 1.0) {
            Ok(rep) => {
                // Post-repair analysis.
                let recovered =
                    match hdf5lite::read_dataset(&fs, nyx_sim::PLOTFILE, nyx_sim::DATASET) {
                        Ok(info) => {
                            let dims = [
                                info.dims[0] as usize,
                                info.dims[1] as usize,
                                info.dims[2] as usize,
                            ];
                            let catalog = nyx_sim::find_halos(
                                &info.values,
                                dims,
                                &nyx_sim::HaloFinderConfig::default(),
                            );
                            catalog.render() == golden.catalog_text
                        }
                        Err(_) => false,
                    };
                let fields: Vec<&str> = rep.corrections.iter().map(|c| c.field.as_str()).collect();
                t.row(&[
                    label,
                    fault_outcome.name(),
                    &format!("{:?}", rep.diagnosis),
                    &if fields.is_empty() { "none".to_string() } else { fields.join("; ") },
                    &format!("{:.4}", rep.mean_before),
                    &format!("{:.4}", rep.mean_after),
                    if recovered { "yes" } else { "no" },
                ]);
            }
            Err(e) => {
                t.row(&[label, fault_outcome.name(), "unreadable", &e.to_string(), "-", "-", "no"]);
            }
        }
    }
    report.line(t.render());
    report.line("Paper: the average-value test identifies the faulty field class; the exponent");
    report.line("bias is re-scaled by the observed power of two; the float-field constraints");
    report.line("(expLoc == mantSize, mantSize + expSize == precision - 1) repair the datatype;");
    report.line("ARD is restored to the metadata size.");
    report
}
