//! Extension experiments beyond the paper's evaluation matrix:
//! the I/O-pattern profiles of the three workloads (the Figure 2
//! "I/O pattern profiler" component made visible), and read-path
//! fault injection (the abstract's "faults into the data returned
//! from underlying file systems").

use ffis_core::{FaultApp, FaultModel, FaultSignature, IoProfiler, Outcome, TargetFilter};
use ffis_vfs::Primitive;

use crate::cli::Options;
use crate::report::{Report, Table};

/// `repro profile` — fault-free I/O profiles (dynamic primitive
/// counts) for the three workloads.
pub fn profile(opts: &Options) -> Report {
    let mut report = Report::new("profile");
    report.line("I/O pattern profiles — fault-free dynamic primitive counts (Fig. 2/4 profiler)");
    report.blank();

    let nyx = crate::experiments::campaigns::nyx_app(opts);
    let qmc = qmc_sim::QmcApp::paper_default();
    let montage = montage_sim::MontageApp::paper_default();

    let mut table = Table::new();
    let mut header = vec!["primitive".to_string()];
    for name in ["NYX", "QMC", "MT"] {
        header.push(name.to_string());
    }
    table.row(&header.iter().map(String::as_str).collect::<Vec<_>>());

    let profiles: Vec<ffis_core::ProfileReport> = [
        IoProfiler::new(Primitive::Write, TargetFilter::Any)
            .profile(|fs| nyx.run(fs))
            .map(|(p, _)| p)
            .expect("nyx profile"),
        IoProfiler::new(Primitive::Write, TargetFilter::Any)
            .profile(|fs| qmc.run(fs))
            .map(|(p, _)| p)
            .expect("qmc profile"),
        IoProfiler::new(Primitive::Write, TargetFilter::Any)
            .profile(|fs| montage.run(fs))
            .map(|(p, _)| p)
            .expect("montage profile"),
    ]
    .into();

    for p in ffis_vfs::PRIMITIVES {
        let counts: Vec<u64> = profiles.iter().map(|r| r.counters.get(p)).collect();
        if counts.iter().all(|&c| c == 0) {
            continue;
        }
        let cells: Vec<String> = std::iter::once(p.ffis_name().to_string())
            .chain(counts.iter().map(|c| c.to_string()))
            .collect();
        table.row(&cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
    report.line(table.render());
    report.line("The paper's common feature of the three applications: \"they all have a large");
    report.line("number of I/O operations\" — the FFIS_write rows carry the injection spaces.");
    report
}

/// `repro read-faults` — read-site BIT FLIP campaigns (2-bit flips in
/// the data returned by reads), uniformly over each workload's
/// eligible read instances, through the first-class campaign engine:
/// the exec column records `analyze-only` on every cell (all three
/// apps read only during analyze), or the phase-aware fallback reason
/// when the fast path cannot engage.
pub fn read_faults(opts: &Options) -> Report {
    use crate::experiments::campaigns::run_cell_sig;

    let runs = opts.runs.min(400);
    let mut report = Report::new("read_faults");
    report.line("Extension — read-site BIT FLIP campaigns (faults in data returned by reads)");
    report.line(format!("(runs per cell: {}, seed {:#x})", runs, opts.seed));
    report.blank();

    let nyx = crate::experiments::campaigns::nyx_app(opts);
    let qmc = qmc_sim::QmcApp::paper_default();
    let montage = montage_sim::MontageApp::paper_default();

    let mut table = Table::new();
    table.row(&["app", "benign%", "detected%", "SDC%", "crash%", "n", "eligible reads", "exec"]);
    let mut row = |name: String, result: Option<ffis_core::CampaignResult>| match result {
        Some(r) => table.row(&[
            &name,
            &format!("{:.1}", r.tally.rate_pct(Outcome::Benign)),
            &format!("{:.1}", r.tally.rate_pct(Outcome::Detected)),
            &format!("{:.1}", r.tally.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", r.tally.rate_pct(Outcome::Crash)),
            &r.tally.total().to_string(),
            &r.profile.eligible.to_string(),
            &r.mode.to_string(),
        ]),
        None => table.row(&[&name, "-", "-", "-", "-", "0", "-", "-"]),
    };
    let sig = |target: TargetFilter| {
        let mut sig = FaultSignature::on_read(FaultModel::bit_flip());
        sig.target = target;
        sig
    };
    row(nyx.name(), run_cell_sig(&nyx, sig(TargetFilter::Any), runs, opts, 0x5EAD, None));
    row(qmc.name(), run_cell_sig(&qmc, sig(TargetFilter::Any), runs, opts, 0x5EAE, None));
    row(montage.name(), run_cell_sig(&montage, sig(TargetFilter::Any), runs, opts, 0x5EAF, None));
    // Scoped rows: each app's sensitive read channel, via the apps'
    // own target filters. QMC's checkpoint is the restart handoff —
    // every fault there lands in the walkers DMC restarts from.
    row(
        format!("{} (plotfile)", nyx.name()),
        run_cell_sig(&nyx, sig(nyx_sim::NyxApp::plotfile_filter()), runs, opts, 0x5EB0, None),
    );
    row(
        format!("{} (checkpoint)", qmc.name()),
        run_cell_sig(&qmc, sig(qmc_sim::QmcApp::checkpoint_filter()), runs, opts, 0x5EB1, None),
    );
    row(
        format!("{} (series)", qmc.name()),
        run_cell_sig(&qmc, sig(qmc_sim::QmcApp::series_filter()), runs, opts, 0x5EB3, None),
    );
    row(
        format!("{} (mosaic)", montage.name()),
        run_cell_sig(
            &montage,
            sig(montage_sim::MontageApp::mosaic_filter()),
            runs,
            opts,
            0x5EB2,
            None,
        ),
    );
    report.line(table.render());
    report.line("Reads outnumber writes in multi-stage pipelines, so read-side corruption gives");
    report.line("Montage a larger injection surface than its write side; the stored files stay");
    report.line("clean, making every non-benign case silent at the device level. The scoped rows");
    report.line("isolate each app's sensitive read channel (Nyx plotfile, QMC restart checkpoint,");
    report.line("Montage mosaic) from its log/ancillary reads.");
    report
}

/// `repro param-faults` — Table I's non-write primitives: BIT FLIP on
/// the scalar parameters of `FFIS_mknod`, `FFIS_chmod` and
/// `FFIS_truncate` (Figure 3b's instrumentation), against a synthetic
/// staging workload that exercises all three.
pub fn param_faults(opts: &Options) -> Report {
    use ffis_core::prelude::*;
    use ffis_vfs::{FileSystem, FileSystemExt, NodeKind};

    /// A staging workload: creates a working tree, mknods a control
    /// FIFO, stages data files, chmods them read-only, truncates the
    /// journal, then reports the tree state.
    struct StagingApp;

    impl FaultApp for StagingApp {
        type Output = String;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.mkdir("/stage", 0o755).map_err(|e| e.to_string())?;
            fs.mknod("/stage/control.fifo", NodeKind::Fifo, 0o600, 0).map_err(|e| e.to_string())?;
            fs.mknod("/stage/dev0", NodeKind::CharDev, 0o660, 0x0501).map_err(|e| e.to_string())?;
            for i in 0..6 {
                let p = format!("/stage/part{:02}.dat", i);
                fs.write_file_chunked(&p, &vec![i as u8; 8192], 4096).map_err(|e| e.to_string())?;
                fs.chmod(&p, 0o444).map_err(|e| e.to_string())?;
            }
            fs.write_file("/stage/journal.log", &vec![b'j'; 9000]).map_err(|e| e.to_string())?;
            fs.truncate("/stage/journal.log", 4096).map_err(|e| e.to_string())
        }

        fn analyze(&self, fs: &dyn FileSystem, _golden: Option<&String>) -> Result<String, String> {
            // Report: sorted listing with kind, mode, size, rdev.
            let mut lines = Vec::new();
            for e in fs.readdir("/stage").map_err(|e| e.to_string())? {
                let p = format!("/stage/{}", e.name);
                let m = fs.getattr(&p).map_err(|e| e.to_string())?;
                lines.push(format!("{} {:?} {:o} {} {}", e.name, m.kind, m.mode, m.size, m.rdev));
            }
            Ok(lines.join("\n"))
        }

        fn classify(&self, golden: &String, faulty: &String) -> Outcome {
            if golden == faulty {
                Outcome::Benign
            } else {
                // The listing itself is the detector: any deviation in
                // mode/size/rdev is visible metadata damage.
                Outcome::Detected
            }
        }

        fn name(&self) -> String {
            "STAGING".into()
        }
    }

    let mut report = Report::new("param_faults");
    report.line("Extension — BIT FLIP on FFIS_mknod / FFIS_chmod / FFIS_truncate parameters");
    report.line("(Table I's non-write primitives, Figure 3b's instrumentation)");
    report.blank();

    let mut table = Table::new();
    table.row(&["primitive", "benign%", "detected%", "SDC%", "crash%", "eligible instances"]);
    for prim in ["mknod", "chmod", "truncate"] {
        let mut fc = ffis_core::FaultConfig::model("bitflip");
        fc.primitive = Some(prim.to_string());
        let sig = fc.build().expect("valid");
        let cfg =
            CampaignConfig::new(sig).with_runs(opts.runs.min(300)).with_seed(opts.seed ^ 0x9A7A);
        match Campaign::new(&StagingApp, cfg).run() {
            Ok(r) => table.row(&[
                &format!("FFIS_{}", prim),
                &format!("{:.1}", r.tally.rate_pct(Outcome::Benign)),
                &format!("{:.1}", r.tally.rate_pct(Outcome::Detected)),
                &format!("{:.1}", r.tally.rate_pct(Outcome::Sdc)),
                &format!("{:.1}", r.tally.rate_pct(Outcome::Crash)),
                &r.profile.eligible.to_string(),
            ]),
            Err(e) => table.row(&[&format!("FFIS_{}", prim), "-", "-", "-", "-", &e.to_string()]),
        }
    }
    report.line(table.render());
    report.line("Mode/dev/size parameter flips surface as visible metadata deviations (detected)");
    report.line("rather than data corruption — one reason the paper's data-centric study focuses");
    report.line("its campaigns on FFIS_write.");
    report
}
