//! Tables I–IV of the paper.

use ffis_core::{
    attribute, fields_with_outcome, locate_write, run_with_byte_fault, scan, ByteFlip, FaultModel,
    FieldMap, FieldSpan, Outcome, ScanConfig, TargetFilter, WritePick,
};
use nyx_sim::{NyxApp, NyxConfig, NyxOutput};

use crate::cli::Options;
use crate::report::{Report, Table};

/// Table I — fault models supported by FFIS, printed from the live
/// model definitions (not a hard-coded copy). The write-site rows are
/// the paper's; the read-site rows are the reproduction's extension
/// (same models hosted on `FFIS_read`, site-aware vocabulary).
pub fn table1(_opts: &Options) -> Report {
    use ffis_core::InjectionSite;

    let mut report = Report::new("table1");
    report.line("Table I — Fault models supported by FFIS");
    report.blank();
    let mut t = Table::new();
    t.row(&["Fault model", "Examples of affected FUSE primitives", "Features"]);
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        t.row(&[
            model.name_at(InjectionSite::Write),
            "FFIS_write, FFIS_mknod, FFIS_chmod ...",
            &model.feature_description_at(InjectionSite::Write),
        ]);
    }
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        t.row(&[
            model.name_at(InjectionSite::Read),
            "FFIS_read",
            &model.feature_description_at(InjectionSite::Read),
        ]);
    }
    report.line(t.render());
    report.line("(Read-site rows are a reproduction extension: the same manifestations planted");
    report
        .line(" in the data returned from the underlying file system, per the paper's abstract.)");
    report
}

/// Table II — tested HPC applications.
pub fn table2(_opts: &Options) -> Report {
    let mut report = Report::new("table2");
    report.line("Table II — Description of tested HPC applications (reproduction builds)");
    report.blank();
    let mut t = Table::new();
    t.row(&["Benchmark", "Domain", "Method"]);
    let rows = [
        nyx_sim::NyxApp::describe(),
        qmc_sim::QmcApp::describe(),
        montage_sim::MontageApp::describe(),
    ];
    for (name, domain, method) in rows {
        t.row(&[name, domain, method]);
    }
    report.line(t.render());
    report.line("(Package sizes / LoC in the paper describe the real applications; the");
    report.line(" reproduction substitutes behaviourally faithful Rust builds — see DESIGN.md.)");
    report
}

/// The Nyx app used for metadata experiments: small grid (metadata
/// structure does not depend on grid size) for fast byte-scans — but
/// large enough that the golden catalog contains halos, otherwise
/// globally-scaled fields compare equal and SDC cases disappear.
pub fn metadata_app(opts: &Options) -> NyxApp {
    let mut cfg = NyxConfig { keep_field: true, ..NyxConfig::default() };
    cfg.field.n = if opts.quick { 24 } else { 32 };
    let app = NyxApp::new(cfg);
    let golden = {
        use ffis_core::FaultApp;
        app.run(&ffis_vfs::MemFs::new()).expect("golden metadata app run")
    };
    assert!(
        !golden.catalog.halos.is_empty(),
        "metadata experiments need a golden catalog with halos (grid {} too small)",
        app.n()
    );
    app
}

/// Build the core [`FieldMap`] from the app's hdf5lite span list.
pub fn nyx_field_map(app: &NyxApp) -> FieldMap {
    let spans = app
        .metadata_spans()
        .into_iter()
        .map(|s| FieldSpan { start: s.start, end: s.end, name: s.name })
        .collect();
    FieldMap::new(spans).expect("writer-emitted spans are non-overlapping")
}

/// Table III — output classification of faulty HDF5 metadata:
/// byte-by-byte 2-bit flips over the packed metadata write.
pub fn table3(opts: &Options) -> Report {
    let mut report = Report::new("table3");
    report.line("Table III — Output classification of faulty metadata (byte-by-byte scan)");
    report.blank();

    let app = metadata_app(opts);
    let map = nyx_field_map(&app);
    let cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    let result = scan(&app, &cfg).expect("scan must run");

    report.line(format!(
        "metadata write: offset {:#x}, {} bytes (instance {} of the matching writes)",
        result.write_offset, result.write_len, result.write_instance
    ));
    report.blank();

    let fields = attribute(&result, &map);
    let mut t = Table::new();
    t.row(&["Fault type", "Cases", "Share", "Example metadata fields"]);
    for outcome in [Outcome::Sdc, Outcome::Benign, Outcome::Crash, Outcome::Detected] {
        let count = result.tally.count(outcome);
        if count == 0 && outcome == Outcome::Detected {
            continue;
        }
        let names = fields_with_outcome(&fields, outcome);
        let shortlist = summarize_fields(&names, 5);
        t.row(&[
            outcome.name(),
            &count.to_string(),
            &format!("{:.1}%", result.tally.rate_pct(outcome)),
            &shortlist,
        ]);
    }
    report.line(t.render());

    report.header("Per-field breakdown (fields with any non-benign outcome)");
    let mut ft = Table::new();
    ft.row(&["field", "bytes", "benign", "detected", "SDC", "crash"]);
    for f in &fields {
        if f.tally.count(Outcome::Benign) == f.tally.total() {
            continue;
        }
        ft.row(&[
            &shorten(&f.name),
            &f.bytes_scanned.to_string(),
            &f.tally.benign.to_string(),
            &f.tally.detected.to_string(),
            &f.tally.sdc.to_string(),
            &f.tally.crash.to_string(),
        ]);
    }
    report.line(ft.render());
    report.header("Paper reference");
    report.line("SDC 4 (0.2%) | Benign 2085 (85.7%) | Crash 343 (14.1%)");
    report
        .line("SDC fields: Bit-5 of Mantissa Normalization, Exponent Location, Mantissa Location,");
    report.line("            Mantissa Size, Exponent Bias, Address of Raw Data (ARD)");
    report
}

fn shorten(name: &str) -> String {
    // Keep the last two meaningful path components.
    let parts: Vec<&str> = name.split('.').collect();
    if parts.len() <= 3 {
        name.to_string()
    } else {
        parts[parts.len() - 3..].join(".")
    }
}

fn summarize_fields(names: &[&str], max: usize) -> String {
    let mut tails: Vec<String> = names.iter().map(|n| shorten(n)).collect();
    tails.sort();
    tails.dedup();
    let extra = tails.len().saturating_sub(max);
    let mut s = tails.into_iter().take(max).collect::<Vec<_>>().join(", ");
    if extra > 0 {
        s.push_str(&format!(" (+{} more)", extra));
    }
    s
}

/// Symptom analysis of a faulty output vs the golden one — the Table
/// IV metrics (halo mass / location / number / average value).
pub struct Symptoms {
    /// Description of mass behaviour.
    pub mass: String,
    /// Description of location behaviour.
    pub location: String,
    /// Halo-count change.
    pub number: String,
    /// Average-value change.
    pub average: String,
    /// Outcome of the run.
    pub outcome: Outcome,
}

/// Compare golden and faulty Nyx outputs per the Table IV metrics.
pub fn analyze_symptoms(
    golden: &NyxOutput,
    faulty: Option<&NyxOutput>,
    outcome: Outcome,
) -> Symptoms {
    let Some(faulty) = faulty else {
        return Symptoms {
            mass: "-".into(),
            location: "-".into(),
            number: "-".into(),
            average: "-".into(),
            outcome,
        };
    };
    let g = &golden.catalog;
    let f = &faulty.catalog;

    let number = if f.halos.len() == g.halos.len() {
        "unchanged".to_string()
    } else {
        format!("{} -> {}", g.halos.len(), f.halos.len())
    };

    let average = if (f.mean / g.mean - 1.0).abs() < 1e-6 {
        "unchanged".to_string()
    } else {
        let ratio = f.mean / g.mean;
        let log2 = ratio.log2();
        if (log2 - log2.round()).abs() < 1e-6 && log2.round() != 0.0 {
            format!("scaled by 2^{}", log2.round() as i64)
        } else {
            format!("{:.4} (x{:.4})", f.mean, ratio)
        }
    };

    // Mass / location comparison over paired halos (by rank).
    let paired = g.halos.len().min(f.halos.len());
    let (mass, location) = if paired == 0 {
        ("no halos to compare".to_string(), "no halos to compare".to_string())
    } else {
        let ratios: Vec<f64> = (0..paired).map(|i| f.halos[i].mass / g.halos[i].mass).collect();
        let uniform_ratio = ratios.iter().all(|r| (r / ratios[0] - 1.0).abs() < 1e-6);
        let mass = if ratios.iter().all(|r| (r - 1.0).abs() < 1e-9) {
            "unchanged".to_string()
        } else if uniform_ratio {
            format!("all scaled x{:.4}", ratios[0])
        } else {
            let changed = ratios.iter().filter(|r| (*r - 1.0).abs() > 1e-9).count();
            format!("{}/{} changed", changed, paired)
        };
        let shifts: Vec<[f64; 3]> = (0..paired)
            .map(|i| {
                [
                    f.halos[i].center[0] - g.halos[i].center[0],
                    f.halos[i].center[1] - g.halos[i].center[1],
                    f.halos[i].center[2] - g.halos[i].center[2],
                ]
            })
            .collect();
        let moved = shifts.iter().filter(|s| s.iter().any(|d| d.abs() > 1e-9)).count();
        let uniform_shift = moved == paired
            && shifts.iter().all(|s| {
                (s[0] - shifts[0][0]).abs() < 0.51
                    && (s[1] - shifts[0][1]).abs() < 0.51
                    && (s[2] - shifts[0][2]).abs() < 0.51
            })
            && shifts[0].iter().any(|d| d.abs() > 0.1);
        let location = if moved == 0 {
            "unchanged".to_string()
        } else if uniform_shift {
            format!(
                "all shifted (~[{:+.1}, {:+.1}, {:+.1}])",
                shifts[0][0], shifts[0][1], shifts[0][2]
            )
        } else {
            format!("{}/{} moved", moved, paired)
        };
        (mass, location)
    };

    Symptoms { mass, location, number, average, outcome }
}

/// Table IV — erroneous post-analysis results for targeted faults in
/// the six SDC-prone metadata fields.
pub fn table4(opts: &Options) -> Report {
    let mut report = Report::new("table4");
    report.line("Table IV — Erroneous post-analysis in Nyx with faulty metadata fields");
    report.blank();

    let app = metadata_app(opts);
    let map = nyx_field_map(&app);
    let (instance, _, _, golden) =
        locate_write(&app, &TargetFilter::PathSuffix(".h5".into()), WritePick::Penultimate)
            .expect("metadata write locatable");

    // The six fields, with the specific flip the paper discusses.
    let cases: [(&str, &str, ByteFlip, usize); 6] = [
        ("Mantissa Normalization (bit 5)", "MantissaNormalization", ByteFlip::Xor(0x20), 0),
        ("Exponent Location", "ExponentLocation", ByteFlip::Xor(0x02), 0),
        ("Mantissa Location", "MantissaLocation", ByteFlip::Xor(0x02), 0),
        ("Mantissa Size", "MantissaSize", ByteFlip::Xor(0x04), 0),
        ("Exponent Bias", "ExponentBias", ByteFlip::Xor(0x0C), 0),
        ("Address of Raw Data (ARD)", "AddressOfRawData", ByteFlip::Xor(0x40), 0),
    ];

    let mut t = Table::new();
    t.row(&["Field", "Outcome", "Halo mass", "Halo location", "Halo number", "Average value"]);
    for (label, needle, flip, byte_in_field) in cases {
        let span = map
            .find(needle)
            .first()
            .copied()
            .cloned()
            .unwrap_or_else(|| panic!("field {} missing from map", needle));
        let byte_index = (span.start + byte_in_field as u64) as usize;
        let (outcome, faulty, _) = run_with_byte_fault(
            &app,
            &golden,
            &TargetFilter::PathSuffix(".h5".into()),
            instance,
            byte_index,
            flip,
        );
        let s = analyze_symptoms(&golden, faulty.as_ref(), outcome);
        t.row(&[label, s.outcome.name(), &s.mass, &s.location, &s.number, &s.average]);
    }
    report.line(t.render());
    report.header("Paper reference (Table IV)");
    report.line(
        "Mantissa Normalization: mass changed, 45% locations changed, count +24%, avg -> 0.55",
    );
    report.line("Exponent Location: mass/locations changed, count +20%, avg -> 1.04");
    report
        .line("Mantissa Location/Size: mass/locations changed, count varies, avg in [1.04, 1.55]");
    report.line(
        "Exponent Bias: mass scaled, locations unchanged, count unchanged, avg scaled by 2^k",
    );
    report.line("ARD: mass unchanged, locations shifted, count unchanged, avg unchanged");
    report
}
