//! `repro scale` — the scale-regime experiment: paper-scale Nyx grids
//! (n=192 by default) driven through the streaming engine with bounded
//! run-record retention and a shared checkpoint store.
//!
//! This is the ROADMAP "Scale experiments" item made executable: the
//! three write-site fault models run as full campaigns against the Nyx
//! paper-regime preset at the requested grid, and the experiment
//! *asserts* the engine's scale contracts instead of just reporting
//! them — the retained run records never exceed the
//! [`SCALE_KEEP_RUNS`] reservoir bound while the tallies still cover
//! every run, and the three campaigns share a single checkpoint-cache
//! build through the [`CheckpointStore`].
//!
//! `--grid`/`--runs` plumb straight through (`repro scale --grid 64
//! --runs 96` is the CI smoke configuration); without an explicit
//! `--grid` the experiment picks the paper-scale n=192.

use std::mem::size_of;
use std::sync::Arc;
use std::time::Instant;

use ffis_core::prelude::*;
use ffis_core::RunResult;
use ffis_vfs::CheckpointStore;

use crate::cli::Options;
use crate::experiments::campaigns::{models, nyx_app};
use crate::report::{Report, Table};

/// Record-retention bound for scale campaigns: the seed-stable
/// reservoir keeps this many representative [`RunResult`]s per
/// campaign; every other record is dropped in the worker that produced
/// it.
pub const SCALE_KEEP_RUNS: usize = 64;

/// Approximate resident size of one retained run record (struct plus
/// owned strings).
fn record_bytes(r: &RunResult) -> usize {
    size_of::<RunResult>()
        + r.crash_message.as_ref().map_or(0, |m| m.len())
        + r.injection
            .as_ref()
            .map_or(0, |i| i.detail.len() + i.path.as_ref().map_or(0, |p| p.len()))
}

/// The scale experiment (see the module docs).
pub fn scale(opts: &Options) -> Report {
    let n = if opts.grid_explicit || opts.quick { opts.grid } else { 192 };
    let mut scale_opts = opts.clone();
    scale_opts.grid = n;

    let mut report = Report::new("scale");
    report.line("Scale regime — Nyx paper preset through the streaming planner/executor engine");
    report.line(format!(
        "(grid: {n}³, runs per cell: {}, keep_runs: {SCALE_KEEP_RUNS}, seed: {:#x})",
        opts.runs, opts.seed
    ));
    report.blank();

    let app = nyx_app(&scale_opts);
    let store = Arc::new(CheckpointStore::new());

    let mut table = Table::new();
    table.row(&[
        "model",
        "benign%",
        "detected%",
        "SDC%",
        "crash%",
        "n",
        "kept",
        "kept KiB",
        "exec",
        "wall s",
        "runs/s",
    ]);
    let mut total_runs = 0u64;
    for (i, (label, model)) in models().into_iter().enumerate() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(model))
            .with_runs(opts.runs)
            .with_seed(opts.seed.wrapping_add(900 + i as u64))
            .with_keep_runs(Some(SCALE_KEEP_RUNS))
            .with_checkpoints(store.clone());
        let started = Instant::now();
        let result = match Campaign::new(&app, cfg).run() {
            Ok(r) => r,
            Err(e) => {
                report.line(format!("{} failed: {}", label, e));
                continue;
            }
        };
        let wall = started.elapsed().as_secs_f64();

        // The engine's scale contracts, asserted where the numbers are
        // produced: bounded record retention, full-coverage tallies.
        assert!(
            result.runs.len() <= SCALE_KEEP_RUNS,
            "{}: retained {} run records, reservoir bound is {}",
            label,
            result.runs.len(),
            SCALE_KEEP_RUNS
        );
        assert_eq!(
            result.tally.total() as usize,
            opts.runs,
            "{}: tally must cover every run, kept or dropped",
            label
        );

        let kept_bytes: usize = result.runs.iter().map(record_bytes).sum();
        let t = &result.tally;
        table.row(&[
            label,
            &format!("{:.1}", t.rate_pct(Outcome::Benign)),
            &format!("{:.1}", t.rate_pct(Outcome::Detected)),
            &format!("{:.1}", t.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", t.rate_pct(Outcome::Crash)),
            &t.total().to_string(),
            &result.runs.len().to_string(),
            &format!("{:.1}", kept_bytes as f64 / 1024.0),
            &result.mode.to_string(),
            &format!("{:.1}", wall),
            &format!("{:.1}", opts.runs as f64 / wall.max(1e-9)),
        ]);
        total_runs += t.total();
    }

    // Checkpoint sharing across the three campaigns: one build, the
    // rest hits (identical deterministic golden traces).
    assert!(
        store.builds() <= 1,
        "the three write-model campaigns must share one checkpoint build, got {}",
        store.builds()
    );

    report.line(table.render());
    report.line(format!(
        "(checkpoint store: {} build, {} hits across 3 campaigns; {} total runs; record \
         memory bounded at keep_runs={} per campaign — dropped records freed in the worker)",
        store.builds(),
        store.hits(),
        total_runs,
        SCALE_KEEP_RUNS
    ));
    report.line("Read-site campaigns at this scale stay on the full-rerun regime (non-replayable");
    report.line("by construction); the planner interleaves them with replay shards when mixed.");
    report
}
