//! `repro scale` — the scale-regime experiment: paper-scale Nyx grids
//! (n=192 by default) driven through the streaming engine with bounded
//! run-record retention and a shared checkpoint store.
//!
//! This is the ROADMAP "Scale experiments" item made executable — and,
//! since the analyze-only read path landed, the read-model rows of the
//! paper's campaign matrix run at the same grid: the three write-site
//! fault models execute as replay-backed campaigns, their read-site
//! mirrors (r:BF / r:SR / r:DR) as analyze-only campaigns, and the
//! summary pairs each model's two sites by runs/s. The experiment
//! *asserts* the engine's scale contracts instead of just reporting
//! them — the retained run records never exceed the
//! [`SCALE_KEEP_RUNS`] reservoir bound while the tallies still cover
//! every run, the three write campaigns reuse checkpoint-cache
//! builds through the [`CheckpointStore`] (one demand-placed set per
//! campaign under `FFIS_REPLAY_OPT`, one shared log-spaced build with
//! it off), and (when the fast paths are enabled) every read campaign
//! engages `analyze-only` rather than silently rerunning. Write-site
//! rows additionally report the plan-aware replay accounting: total
//! replayed suffix ops and checkpoint overshoot per cell, in the
//! table and in `BENCH_scale.json`.
//!
//! `--grid`/`--runs` plumb straight through (`repro scale --grid 64
//! --runs 96` is the CI smoke configuration); without an explicit
//! `--grid` the experiment picks the paper-scale n=192. The measured
//! numbers are also written as machine-readable JSON
//! (`BENCH_scale.json` in `--out`) for the CI perf-trajectory
//! artifact.
//!
//! With `--workers N` (N > 1) the whole matrix runs *distributed*:
//! each cell's run plan is sharded by index range across N spawned
//! worker processes sharing one disk-backed content-addressed
//! checkpoint store under `--out/store`, the workers' journal
//! segments are merged, and the final result is re-derived through
//! the engine's resume path. Engine law 7 makes that byte-identical
//! to the in-process run — same tallies, same `DIGESTS.txt` — which
//! the experiment *asserts* by rerunning two cells as serial controls
//! (the CPU-bound nyx BF cell and a latency-bound paced cell whose
//! fan-out speedup survives even a single-core host). The per-cell
//! speedups and the shared store's dedup accounting land in
//! `BENCH_distributed.json`.

use std::mem::size_of;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ffis_core::prelude::*;
use ffis_core::{CampaignResult, CampaignSpec, CompletionStatus, RunResult};
use ffis_daemon::{execute_spec, run_distributed, self_worker_cmd, ExecHooks, StoreTotals};
use ffis_vfs::{CheckpointStore, MemoStats, MemoStore};

use crate::bench_json;
use crate::cli::Options;
use crate::experiments::campaigns::{models, read_models};
use crate::report::{Report, Table};

/// Record-retention bound for scale campaigns: the seed-stable
/// reservoir keeps this many representative [`RunResult`]s per
/// campaign; every other record is dropped in the worker that produced
/// it.
pub const SCALE_KEEP_RUNS: usize = 64;

/// Approximate resident size of one retained run record (struct plus
/// owned strings).
fn record_bytes(r: &RunResult) -> usize {
    size_of::<RunResult>()
        + r.crash_message.as_ref().map_or(0, |m| m.len())
        + r.injection
            .as_ref()
            .map_or(0, |i| i.detail.len() + i.path.as_ref().map_or(0, |p| p.len()))
}

/// One executed cell's numbers, kept for the paired summary and the
/// JSON artifact.
struct CellStats {
    label: &'static str,
    site: InjectionSite,
    mode: String,
    wall_s: f64,
    runs_per_s: f64,
    total: u64,
    plan_fingerprint: u64,
    run_digest: u64,
    executed: usize,
    resumed: usize,
    complete: bool,
    journal: Option<String>,
    memo_reason: String,
    replay_opt_engaged: bool,
    replayed_suffix_ops: u64,
    overshoot: u64,
}

/// The scale experiment (see the module docs).
pub fn scale(opts: &Options) -> Report {
    let n = if opts.grid_explicit || opts.quick { opts.grid } else { 192 };

    let mut report = Report::new("scale");
    report.line("Scale regime — Nyx paper preset through the streaming planner/executor engine");
    report.line(format!(
        "(grid: {n}³, runs per cell: {}, keep_runs: {SCALE_KEEP_RUNS}, seed: {:#x})",
        opts.runs, opts.seed
    ));
    report.blank();

    let store = Arc::new(CheckpointStore::new());
    // One analyze memo store shared across every in-process cell —
    // the scale mirror of the daemon's per-root store. The matrix
    // cells are single-file (files=1), so the engine records the
    // `no-substeps` fallback and the counters stay zero; the store is
    // wired (and reported) anyway so the accounting line below is the
    // same one a multi-file regime populates (see `repro
    // analyze-memo` for the cells that actually hit it).
    let memo_store = Arc::new(MemoStore::in_memory());
    let mut memo_totals = MemoStats::default();
    let fast_paths = ffis_core::replay_default();

    // Distributed fan-out (`--workers N`): shard every cell across N
    // worker processes re-invoking this same binary's hidden
    // `daemon worker` subcommand. If we cannot even name our own
    // executable there is nothing to spawn — say so once and run
    // in-process rather than dying.
    let worker_cmd: Option<Vec<String>> = if opts.workers > 1 {
        match self_worker_cmd() {
            Ok(cmd) => Some(cmd),
            Err(e) => {
                report.line(format!(
                    "--workers {}: cannot locate own executable ({}); running in-process",
                    opts.workers, e
                ));
                None
            }
        }
    } else {
        None
    };
    if worker_cmd.is_some() {
        report.line(format!(
            "(distributed: {} worker processes per cell, shared disk checkpoint store under {})",
            opts.workers,
            opts.out.join("store").display()
        ));
        report.blank();
    }
    let fan_root = opts.out.join("fanout");
    let fan_store_dir = opts.out.join("store");
    let mut fan_store = StoreTotals::default();

    let mut table = Table::new();
    table.row(&[
        "model",
        "site",
        "benign%",
        "detected%",
        "SDC%",
        "crash%",
        "n",
        "kept",
        "kept KiB",
        "exec",
        "wall s",
        "runs/s",
        "replay ops",
        "overshoot",
    ]);
    let mut total_runs = 0u64;
    let mut stats: Vec<CellStats> = Vec::new();

    // The full campaign matrix at scale, as the same [`CampaignSpec`]s
    // a daemon submission would carry: the three write-site models
    // (replay-backed, sharing one checkpoint build) and their
    // read-site mirrors (analyze-only, no checkpoints needed — the
    // golden state is the checkpoint). The CI daemon-smoke job submits
    // these exact specs over HTTP and diffs the digests against this
    // in-process run.
    let cells: [(&'static str, &'static str, &'static str, u64); 6] = [
        ("BF", "BF", "write", 900),
        ("SW", "SW", "write", 901),
        ("DW", "DW", "write", 902),
        ("r:BF", "BF", "read", 950),
        ("r:SR", "SW", "read", 951),
        ("r:DR", "DW", "read", 952),
    ];

    for (label, model, site_name, salt) in cells {
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            report.line(format!("{} skipped: interrupted", label));
            continue;
        }
        let mut spec = CampaignSpec::new("nyx", model);
        spec.site = site_name.into();
        spec.grid = n;
        spec.runs = opts.runs;
        spec.seed = opts.seed.wrapping_add(salt);
        spec.keep_runs = Some(SCALE_KEEP_RUNS);
        spec.journal = opts.journal.is_some();
        spec.resume = opts.resume;
        // The DIGESTS vocabulary is the spec's own label — pinned so a
        // daemon-submitted cell reports under the same name.
        assert_eq!(spec.label(), label, "cell label drifted from the spec vocabulary");
        let site = spec.injection_site().expect("static cell sites are valid");
        // Durability plumbing: one journal per cell under --journal,
        // resumed on --resume; Ctrl-C stops between runs with
        // everything completed so far already journaled.
        let journal_path = opts.journal.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            dir.join(format!("scale_{}_{}.journal", label.replace(':', "-"), site.token()))
        });
        let work_dir = fan_root.join(format!("{}_{}", label.replace(':', "-"), site.token()));
        let started = Instant::now();
        let exec = match worker_cmd.as_deref() {
            Some(cmd) => {
                distribute_cell(&spec, opts, cmd, &work_dir, &fan_store_dir, &mut fan_store)
            }
            None => {
                let hooks = ExecHooks {
                    journal: journal_path.clone(),
                    cancel: opts.cancel.clone(),
                    checkpoints: (site == InjectionSite::Write).then(|| store.clone()),
                    memo: Some(Arc::clone(&memo_store)),
                    observer: None,
                    index_range: None,
                };
                execute_spec(&spec, &hooks).map_err(|e| e.to_string())
            }
        };
        let result = match exec {
            Ok(r) => r,
            Err(e) => {
                report.line(format!("{} failed: {}", label, e));
                continue;
            }
        };
        let wall = started.elapsed().as_secs_f64();

        // The engine's scale contracts, asserted where the numbers are
        // produced: bounded record retention, full-coverage tallies,
        // and — when the fast paths are on — no silent fallback to
        // full reruns on either site. An interrupted cell legitimately
        // covers only its completed runs, so the coverage assert is
        // conditional on completion.
        let complete = result.status == CompletionStatus::Complete;
        assert!(
            result.runs.len() <= SCALE_KEEP_RUNS,
            "{}: retained {} run records, reservoir bound is {}",
            label,
            result.runs.len(),
            SCALE_KEEP_RUNS
        );
        if complete {
            assert_eq!(
                result.tally.total() as usize,
                opts.runs,
                "{}: tally must cover every run, kept or dropped",
                label
            );
        } else {
            report.line(format!(
                "{} interrupted after {} of {} runs (journaled: {}) — rerun with --resume",
                label,
                result.tally.total(),
                opts.runs,
                journal_path.is_some() || worker_cmd.is_some()
            ));
        }
        if fast_paths {
            match site {
                InjectionSite::Write => assert_eq!(
                    result.mode,
                    ExecutionMode::Replay,
                    "{}: write-site scale cells must replay",
                    label
                ),
                InjectionSite::Read => assert_eq!(
                    result.mode,
                    ExecutionMode::AnalyzeOnly,
                    "{}: read-site scale cells must run analyze-only",
                    label
                ),
            }
        }

        memo_totals.merge(&result.memo.stats);
        let kept_bytes: usize = result.runs.iter().map(record_bytes).sum();
        let t = &result.tally;
        // Write-site rows carry the plan-aware replay accounting:
        // total replayed suffix ops across the cell's replay runs and
        // the checkpoint overshoot (replayed minus minimal suffix ops
        // — 0 means every run forked exactly at its target). Read
        // rows never replay a suffix.
        let ro = &result.replay_opt;
        let (replay_ops_col, overshoot_col) = if site == InjectionSite::Write {
            (ro.replayed_suffix_ops.to_string(), ro.overshoot.to_string())
        } else {
            ("-".to_string(), "-".to_string())
        };
        table.row(&[
            label,
            site.token(),
            &format!("{:.1}", t.rate_pct(Outcome::Benign)),
            &format!("{:.1}", t.rate_pct(Outcome::Detected)),
            &format!("{:.1}", t.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", t.rate_pct(Outcome::Crash)),
            &t.total().to_string(),
            &result.runs.len().to_string(),
            &format!("{:.1}", kept_bytes as f64 / 1024.0),
            &result.mode.to_string(),
            &format!("{:.1}", wall),
            &format!("{:.1}", opts.runs as f64 / wall.max(1e-9)),
            &replay_ops_col,
            &overshoot_col,
        ]);
        total_runs += t.total();
        stats.push(CellStats {
            label,
            site,
            mode: result.mode.to_string(),
            wall_s: wall,
            runs_per_s: opts.runs as f64 / wall.max(1e-9),
            total: t.total(),
            plan_fingerprint: result.plan_fingerprint,
            run_digest: result.run_digest(),
            executed: result.executed,
            resumed: result.resumed,
            complete,
            journal: if worker_cmd.is_some() {
                // Distributed cells are journal-carried by construction:
                // the merged segment file is the cell's journal.
                Some(work_dir.join("merged.journal").display().to_string())
            } else {
                journal_path.map(|p| p.display().to_string())
            },
            memo_reason: result.memo.reason().to_string(),
            replay_opt_engaged: ro.engaged,
            replayed_suffix_ops: ro.replayed_suffix_ops,
            overshoot: ro.overshoot,
        });
    }

    // Checkpoint sharing across the three write campaigns. Under
    // demand-driven placement (FFIS_REPLAY_OPT, default on) the store
    // key carries each campaign's demand fingerprint, and the three
    // campaigns draw distinct target sets — so each builds its own
    // demand-placed set: at most one build per write campaign. With
    // the optimization off all three share a single log-spaced build
    // (identical deterministic golden traces). Read campaigns never
    // touch the store — the golden snapshot is their checkpoint. (In
    // distributed mode the in-process store sits idle; the workers'
    // shared disk store carries the same contract as content dedup,
    // asserted below.)
    let max_builds = if ffis_core::replay_opt_default() { 3 } else { 1 };
    assert!(
        store.builds() <= max_builds,
        "write-model campaigns must reuse checkpoint builds (at most {} under this regime), got {}",
        max_builds,
        store.builds()
    );

    report.line(table.render());
    if worker_cmd.is_some() {
        // Fresh builds put checkpoint pages; identical page extents
        // (across the set's snapshots and across racing workers) dedup
        // to one stored blob. A rerun over an already-populated store
        // legitimately loads instead of putting, so the >1 assert only
        // fires when bytes actually flowed.
        if fan_store.physical_bytes > 0 {
            assert!(
                fan_store.dedup_ratio() > 1.0,
                "shared store saw fresh builds but no page dedup (logical {} / physical {})",
                fan_store.logical_bytes,
                fan_store.physical_bytes
            );
        }
        report.line(format!(
            "(shared disk checkpoint store: {} builds, {} disk loads across {} workers per cell; \
             {} unique blobs, {:.2}x page dedup — {} logical / {} physical bytes; {} total runs)",
            fan_store.builds,
            fan_store.disk_hits,
            opts.workers,
            fan_store.blobs,
            fan_store.dedup_ratio(),
            fan_store.logical_bytes,
            fan_store.physical_bytes,
            total_runs
        ));
    } else {
        report.line(format!(
            "(checkpoint store: {} builds, {} hits across 3 write campaigns — demand-keyed sets \
             under FFIS_REPLAY_OPT, one shared log-spaced build with it off; {} total runs; \
             record memory bounded at keep_runs={} per campaign — dropped records freed in the \
             worker)",
            store.builds(),
            store.hits(),
            total_runs,
            SCALE_KEEP_RUNS
        ));
    }
    // The analyze memo store's accounting, alongside the checkpoint
    // store's: hit/miss/invalidation counters summed over every cell.
    // Single-file matrix cells record the `no-substeps` fallback, so
    // all three stay zero here — the multi-file cells of `repro
    // analyze-memo` drive the same counters hot.
    report.line(format!(
        "(analyze memo store: {} hits, {} misses, {} invalidations across {} cells; per-cell \
         fallback reasons in BENCH_scale.json)",
        memo_totals.hits,
        memo_totals.misses,
        memo_totals.invalidations,
        stats.len()
    ));

    // Paired read-vs-write throughput: the ISSUE target is read-site
    // campaign throughput within ~2x of write-site replay throughput
    // (it was unboundedly worse in the full-rerun regime).
    report.header("Paired read-vs-write throughput (runs/s)");
    let mut pairs = Table::new();
    pairs.row(&["model", "write runs/s", "read runs/s", "read/write"]);
    for ((wl, _), (rl, _)) in models().into_iter().zip(read_models()) {
        let w = stats.iter().find(|s| s.label == wl && s.site == InjectionSite::Write);
        let r = stats.iter().find(|s| s.label == rl && s.site == InjectionSite::Read);
        if let (Some(w), Some(r)) = (w, r) {
            pairs.row(&[
                &format!("{} / {}", wl, rl),
                &format!("{:.1}", w.runs_per_s),
                &format!("{:.1}", r.runs_per_s),
                &format!("{:.2}x", r.runs_per_s / w.runs_per_s.max(1e-9)),
            ]);
        }
    }
    report.line(pairs.render());
    report.line("Read rows ride the analyze-only fast path: fork the golden post-produce state,");
    report.line("pre-seed the phase-boundary counters, and run only analyze with the fault armed");
    report.line("— produce-phase read targets (none on Nyx) would rerun as produce-read-fault.");

    // Machine-readable artifact for the CI perf trajectory, including
    // the run/commit metadata that identifies each cell's plan: the
    // journal schema, the plan fingerprint a resume must match, and
    // the run digest the resume-law CI job diffs against its control.
    let cells_json: Vec<String> = stats
        .iter()
        .map(|s| {
            bench_json::object(&[
                ("model", bench_json::string(s.label)),
                ("site", bench_json::string(s.site.token())),
                ("exec", bench_json::string(&s.mode)),
                ("runs", bench_json::number(s.total as f64)),
                ("wall_s", bench_json::number(s.wall_s)),
                ("runs_per_s", bench_json::number(s.runs_per_s)),
                ("plan_fingerprint", bench_json::string(&format!("{:#018x}", s.plan_fingerprint))),
                ("run_digest", bench_json::string(&format!("{:#018x}", s.run_digest))),
                ("executed", bench_json::number(s.executed as f64)),
                ("resumed", bench_json::number(s.resumed as f64)),
                ("complete", bench_json::bool(s.complete)),
                (
                    "journal",
                    s.journal.as_deref().map_or_else(|| "null".to_string(), bench_json::string),
                ),
                ("memo", bench_json::string(&s.memo_reason)),
                ("replay_opt_engaged", bench_json::bool(s.replay_opt_engaged)),
                ("replayed_suffix_ops", bench_json::number(s.replayed_suffix_ops as f64)),
                ("checkpoint_overshoot", bench_json::number(s.overshoot as f64)),
            ])
        })
        .collect();
    let json = bench_json::object(&[
        ("bench", bench_json::string("scale")),
        (
            "journal_schema",
            bench_json::number(f64::from(ffis_core::engine::journal::JOURNAL_SCHEMA)),
        ),
        ("grid", bench_json::number(n as f64)),
        ("seed", bench_json::number(opts.seed as f64)),
        ("runs_per_cell", bench_json::number(opts.runs as f64)),
        ("keep_runs", bench_json::number(SCALE_KEEP_RUNS as f64)),
        ("checkpoint_builds", bench_json::number(store.builds() as f64)),
        ("checkpoint_hits", bench_json::number(store.hits() as f64)),
        ("memo_hits", bench_json::number(memo_totals.hits as f64)),
        ("memo_misses", bench_json::number(memo_totals.misses as f64)),
        ("memo_invalidations", bench_json::number(memo_totals.invalidations as f64)),
        ("total_runs", bench_json::number(total_runs as f64)),
        ("cells", bench_json::array(&cells_json)),
    ]);
    if let Some(path) = bench_json::save_in(&opts.out, "BENCH_scale.json", &json) {
        report.line(format!("(machine-readable numbers: {})", path.display()));
    }

    // DIGESTS.txt: one deterministic `label site fingerprint digest`
    // line per completed cell — what the CI resume-smoke job diffs
    // between its killed-and-resumed pass and its uninterrupted
    // control.
    let mut digests = String::new();
    for s in stats.iter().filter(|s| s.complete) {
        digests.push_str(&format!(
            "{} {} {:#018x} {:#018x}\n",
            s.label,
            s.site.token(),
            s.plan_fingerprint,
            s.run_digest
        ));
    }
    let digests_path = opts.out.join("DIGESTS.txt");
    if std::fs::create_dir_all(&opts.out).is_ok() && std::fs::write(&digests_path, &digests).is_ok()
    {
        report.line(format!("(per-cell run digests: {})", digests_path.display()));
    }

    if let Some(cmd) = worker_cmd.as_deref() {
        distributed_summary(
            opts,
            n,
            cmd,
            &fan_root,
            &fan_store_dir,
            fan_store,
            &stats,
            &mut report,
        );
    }
    report
}

/// Run one matrix cell through the multi-process fan-out: journaling
/// forced on (segments live under `work_dir`), the workers sharing
/// the disk checkpoint store under `store_dir` (and its analyze-memo
/// sibling under `store_dir/memo`), and the fan-out's store
/// accounting folded into `totals`. Any failure is the cell's
/// failure — a distributed invocation never silently mixes regimes by
/// falling back in-process mid-matrix.
fn distribute_cell(
    spec: &CampaignSpec,
    opts: &Options,
    worker_cmd: &[String],
    work_dir: &Path,
    store_dir: &Path,
    totals: &mut StoreTotals,
) -> Result<CampaignResult, String> {
    let mut spec = spec.clone();
    spec.journal = true;
    let hooks = ExecHooks {
        journal: None,
        cancel: opts.cancel.clone(),
        checkpoints: None,
        memo: None,
        observer: None,
        index_range: None,
    };
    let memo_dir = store_dir.join("memo");
    let report = run_distributed(
        &spec,
        opts.workers,
        work_dir,
        Some(store_dir),
        Some(&memo_dir),
        worker_cmd,
        hooks,
    )
    .map_err(|e| e.to_string())?;
    totals.merge(&report.store);
    Ok(report.result)
}

/// Execute `spec` in-process with a fresh memory checkpoint store and
/// no journal — the serial side of a speedup measurement — returning
/// the completed result and its wall-clock seconds.
fn serial_control(spec: &CampaignSpec, opts: &Options) -> Result<(CampaignResult, f64), String> {
    let hooks = ExecHooks {
        journal: None,
        cancel: opts.cancel.clone(),
        checkpoints: Some(Arc::new(CheckpointStore::new())),
        memo: None,
        observer: None,
        index_range: None,
    };
    let started = Instant::now();
    let result = execute_spec(spec, &hooks).map_err(|e| e.to_string())?;
    if result.status != CompletionStatus::Complete {
        return Err("interrupted".into());
    }
    Ok((result, started.elapsed().as_secs_f64()))
}

/// One serial-vs-distributed measurement row of
/// `BENCH_distributed.json`. The digests are asserted equal before a
/// row is admitted, so `digest_match` in the artifact is always the
/// literal truth.
struct SpeedCell {
    app: &'static str,
    model: &'static str,
    site: &'static str,
    runs: usize,
    wall_serial_s: f64,
    wall_distributed_s: f64,
    plan_fingerprint: u64,
    run_digest: u64,
}

impl SpeedCell {
    fn speedup(&self) -> f64 {
        self.wall_serial_s / self.wall_distributed_s.max(1e-9)
    }
}

/// The distributed section of the scale report: rerun two cells as
/// serial controls, assert byte-identity against the fan-out (engine
/// law 7), and write `BENCH_distributed.json`. The nyx row is
/// CPU-bound (its speedup honestly tracks the host's cores); the
/// paced row is latency-bound, so the fan-out's overlap shows even on
/// a single-core host.
#[allow(clippy::too_many_arguments)]
fn distributed_summary(
    opts: &Options,
    n: usize,
    worker_cmd: &[String],
    fan_root: &Path,
    store_dir: &Path,
    mut fan_store: StoreTotals,
    stats: &[CellStats],
    report: &mut Report,
) {
    if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        report.line("distributed speedup section skipped: interrupted");
        return;
    }
    report
        .header(&format!("Distributed fan-out — {} worker processes (engine law 7)", opts.workers));
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let mut speed: Vec<SpeedCell> = Vec::new();

    // nyx BF write: the distributed wall is the matrix cell's own —
    // only the serial control runs here. Journal flags don't enter the
    // plan, so law 7 demands the control reproduce the fan-out's
    // fingerprint and digest exactly.
    if let Some(d) =
        stats.iter().find(|s| s.label == "BF" && s.site == InjectionSite::Write && s.complete)
    {
        let mut cspec = CampaignSpec::new("nyx", "BF");
        cspec.site = "write".into();
        cspec.grid = n;
        cspec.runs = opts.runs;
        cspec.seed = opts.seed.wrapping_add(900);
        cspec.keep_runs = Some(SCALE_KEEP_RUNS);
        match serial_control(&cspec, opts) {
            Ok((serial, wall)) => {
                assert_eq!(
                    (serial.plan_fingerprint, serial.run_digest()),
                    (d.plan_fingerprint, d.run_digest),
                    "law 7 violated: nyx BF fan-out diverged from its serial control"
                );
                speed.push(SpeedCell {
                    app: "nyx",
                    model: "BF",
                    site: "write",
                    runs: opts.runs,
                    wall_serial_s: wall,
                    wall_distributed_s: d.wall_s,
                    plan_fingerprint: d.plan_fingerprint,
                    run_digest: d.run_digest,
                });
            }
            Err(e) => report.line(format!("nyx serial control skipped: {}", e)),
        }
    }

    // paced: both sides measured here, work dir wiped first so the row
    // times a cold fan-out rather than a segment resume.
    if !opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        let mut pspec = CampaignSpec::new("paced", "BF");
        pspec.site = "write".into();
        pspec.runs = opts.runs;
        pspec.seed = opts.seed.wrapping_add(970);
        pspec.keep_runs = Some(SCALE_KEEP_RUNS);
        let work_dir = fan_root.join("paced_speedup");
        let _ = std::fs::remove_dir_all(&work_dir);
        let serial = serial_control(&pspec, opts);
        let started = Instant::now();
        let dist = distribute_cell(&pspec, opts, worker_cmd, &work_dir, store_dir, &mut fan_store);
        let dist_wall = started.elapsed().as_secs_f64();
        match (serial, dist) {
            (Ok((s, s_wall)), Ok(d)) if d.status == CompletionStatus::Complete => {
                assert_eq!(
                    (s.plan_fingerprint, s.run_digest()),
                    (d.plan_fingerprint, d.run_digest()),
                    "law 7 violated: paced fan-out diverged from its serial control"
                );
                speed.push(SpeedCell {
                    app: "paced",
                    model: "BF",
                    site: "write",
                    runs: opts.runs,
                    wall_serial_s: s_wall,
                    wall_distributed_s: dist_wall,
                    plan_fingerprint: d.plan_fingerprint,
                    run_digest: d.run_digest(),
                });
            }
            (Err(e), _) => report.line(format!("paced serial control skipped: {}", e)),
            (_, Err(e)) => report.line(format!("paced fan-out skipped: {}", e)),
            _ => report.line("paced speedup row skipped: interrupted"),
        }
    }

    let mut t = Table::new();
    t.row(&["app", "model", "site", "runs", "serial s", "distributed s", "speedup", "digest"]);
    for c in &speed {
        t.row(&[
            c.app,
            c.model,
            c.site,
            &c.runs.to_string(),
            &format!("{:.2}", c.wall_serial_s),
            &format!("{:.2}", c.wall_distributed_s),
            &format!("{:.2}x", c.speedup()),
            "match",
        ]);
    }
    report.line(t.render());
    report.line(format!(
        "(host cores: {} — the nyx row is CPU-bound and tracks them; the paced row is \
         latency-bound and measures the fan-out overlap directly)",
        cores
    ));

    let cells_json: Vec<String> = speed
        .iter()
        .map(|c| {
            bench_json::object(&[
                ("app", bench_json::string(c.app)),
                ("model", bench_json::string(c.model)),
                ("site", bench_json::string(c.site)),
                ("runs", bench_json::number(c.runs as f64)),
                ("wall_serial_s", bench_json::number(c.wall_serial_s)),
                ("wall_distributed_s", bench_json::number(c.wall_distributed_s)),
                ("speedup", bench_json::number(c.speedup())),
                ("plan_fingerprint", bench_json::string(&format!("{:#018x}", c.plan_fingerprint))),
                ("run_digest", bench_json::string(&format!("{:#018x}", c.run_digest))),
                ("digest_match", bench_json::bool(true)),
            ])
        })
        .collect();
    let json = bench_json::object(&[
        ("bench", bench_json::string("distributed")),
        ("workers", bench_json::number(opts.workers as f64)),
        ("cores", bench_json::number(cores as f64)),
        ("grid", bench_json::number(n as f64)),
        ("runs_per_cell", bench_json::number(opts.runs as f64)),
        ("cells", bench_json::array(&cells_json)),
        (
            "store",
            bench_json::object(&[
                ("builds", bench_json::number(fan_store.builds as f64)),
                ("disk_hits", bench_json::number(fan_store.disk_hits as f64)),
                ("blobs", bench_json::number(fan_store.blobs as f64)),
                ("logical_bytes", bench_json::number(fan_store.logical_bytes as f64)),
                ("physical_bytes", bench_json::number(fan_store.physical_bytes as f64)),
                ("dedup_hits", bench_json::number(fan_store.dedup_hits as f64)),
                ("dedup_ratio", bench_json::number(fan_store.dedup_ratio())),
                ("corrupt_discards", bench_json::number(fan_store.corrupt_discards as f64)),
            ]),
        ),
    ]);
    if let Some(path) = bench_json::save_in(&opts.out, "BENCH_distributed.json", &json) {
        report.line(format!("(distributed numbers: {})", path.display()));
    }
}
