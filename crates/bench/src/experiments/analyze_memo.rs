//! `repro analyze-memo` — the incremental-analyze measurement: the
//! multi-file campaign cells (multi-tile Montage mosaics, multi-restart
//! QMC runs) where the dirty-cascade memoization layer earns its keep.
//!
//! Each cell runs the same spec three times at an equal run count:
//!
//! 1. **full** — `memo` off: every run re-analyzes the whole file set
//!    (the whole-analyze reference path, read cells on analyze-only).
//! 2. **cold** — `memo` on over a fresh store: the first run populates
//!    the memo store, later runs replay every clean sub-step from
//!    cache and recompute only the sub-steps whose read fingerprints
//!    the injected fault actually changed.
//! 3. **warm** — the same store again: every clean sub-step is a cache
//!    hit from run zero (`misses == 0` is asserted).
//!
//! The experiment *asserts* engine law 8 where the numbers are made —
//! all three passes must agree byte-for-byte on tallies and run
//! digests — and asserts the perf target on the Montage headline cell:
//! memoized analyze at least [`COLD_SPEEDUP_FLOOR`]x faster than full
//! analyze, warm replays at least [`WARM_SPEEDUP_FLOOR`]x (the CI
//! `memo-smoke` gate). Walls are compared on the *run phase* (total
//! wall minus the time to the first run event) so the one-time golden
//! produce, shared by every pass, does not dilute the per-run ratio.
//!
//! The measured numbers land in `BENCH_analyze_memo.json`, with the
//! memo store's hit/miss/invalidation counters per pass.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ffis_core::{CampaignResult, CampaignSpec, CompletionStatus, RunObserver};
use ffis_daemon::{execute_spec, ExecHooks};
use ffis_vfs::MemoStore;

use crate::bench_json;
use crate::cli::Options;
use crate::report::{Report, Table};

/// Acceptance floor for the Montage headline cell, cold store:
/// memoized analyze must beat full analyze by at least this factor.
pub const COLD_SPEEDUP_FLOOR: f64 = 5.0;

/// CI `memo-smoke` floor for the warm-store pass of the headline cell.
pub const WARM_SPEEDUP_FLOOR: f64 = 3.0;

/// One spec executed once, with the run phase timed separately: the
/// first run event marks the end of planning + golden produce (work
/// every pass repeats identically), so `run_phase_s` is the wall the
/// memo layer can actually shrink.
struct TimedRun {
    result: CampaignResult,
    wall_s: f64,
    run_phase_s: f64,
}

fn timed_exec(
    spec: &CampaignSpec,
    opts: &Options,
    memo: Option<Arc<MemoStore>>,
) -> Result<TimedRun, String> {
    let started = Instant::now();
    let first_event: Arc<Mutex<Option<f64>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&first_event);
    let hooks = ExecHooks {
        journal: None,
        cancel: opts.cancel.clone(),
        checkpoints: None,
        memo,
        observer: Some(RunObserver::new(move |_, _| {
            let mut slot = sink.lock().unwrap();
            if slot.is_none() {
                *slot = Some(started.elapsed().as_secs_f64());
            }
        })),
        index_range: None,
    };
    let result = execute_spec(spec, &hooks).map_err(|e| e.to_string())?;
    if result.status != CompletionStatus::Complete {
        return Err("interrupted".into());
    }
    let wall_s = started.elapsed().as_secs_f64();
    let setup_s = first_event.lock().unwrap().unwrap_or(0.0);
    Ok(TimedRun { result, wall_s, run_phase_s: (wall_s - setup_s).max(1e-9) })
}

/// One cell's three passes plus the derived speedups, for the table
/// and the JSON artifact.
struct MemoCell {
    app: &'static str,
    files: usize,
    label: String,
    site: &'static str,
    runs: usize,
    substeps: usize,
    full: TimedRun,
    cold: TimedRun,
    warm: TimedRun,
}

impl MemoCell {
    fn cold_speedup(&self) -> f64 {
        self.full.run_phase_s / self.cold.run_phase_s.max(1e-9)
    }
    fn warm_speedup(&self) -> f64 {
        self.full.run_phase_s / self.warm.run_phase_s.max(1e-9)
    }
}

/// The analyze-memo experiment (see the module docs).
pub fn analyze_memo(opts: &Options) -> Report {
    let mut report = Report::new("analyze-memo");
    report.line("Incremental analyze — dirty-cascade memoization on multi-file campaigns");
    report.line(format!(
        "(runs per pass: {}, seed: {:#x}; equal run counts, engine law 8 asserted per cell)",
        opts.runs, opts.seed
    ));
    report.blank();

    // The multi-file matrix: the Montage 48-tile mosaic is the headline
    // (read site — the pure analyze-vs-analyze comparison, full pass
    // on analyze-only, memo passes on incremental-analyze); the QMC
    // 4-restart cell covers the second multi-file app; the Montage
    // write cell shows the memo layer composing with replay.
    let cells: [(&'static str, usize, &'static str, &'static str, u64); 3] = [
        ("montage", 48, "BF", "read", 910),
        ("qmc", 4, "BF", "read", 920),
        ("montage", 48, "BF", "write", 930),
    ];
    let mut measured: Vec<MemoCell> = Vec::new();

    for (app, files, model, site, salt) in cells {
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            report.line(format!("{} {} skipped: interrupted", app, site));
            continue;
        }
        let mut spec = CampaignSpec::new(app, model);
        spec.site = site.into();
        spec.files = files;
        spec.runs = opts.runs;
        spec.seed = opts.seed.wrapping_add(salt);
        spec.journal = false;

        let mut full_spec = spec.clone();
        full_spec.memo = false;
        spec.memo = true;

        let store = Arc::new(MemoStore::in_memory());
        let exec = timed_exec(&full_spec, opts, None).and_then(|full| {
            let cold = timed_exec(&spec, opts, Some(Arc::clone(&store)))?;
            let warm = timed_exec(&spec, opts, Some(Arc::clone(&store)))?;
            Ok((full, cold, warm))
        });
        let (full, cold, warm) = match exec {
            Ok(x) => x,
            Err(e) => {
                report.line(format!("{} {} failed: {}", app, site, e));
                continue;
            }
        };
        // Progress on stderr — three full campaigns per cell is the
        // slowest thing `repro` does short of `scale` at n=192.
        eprintln!(
            "[analyze-memo] {} {} {} — run phase: full {:.3}s cold {:.3}s warm {:.3}s",
            app,
            spec.label(),
            site,
            full.run_phase_s,
            cold.run_phase_s,
            warm.run_phase_s
        );

        // Engine law 8, asserted where the speedup is claimed: the
        // memoized passes must be byte-identical to the whole-analyze
        // reference — same tallies, same run digests — and the
        // fallback accounting must say what actually happened.
        assert!(!full.result.memo.engaged, "memo-off pass must not engage the memo layer");
        for (name, pass) in [("cold", &cold), ("warm", &warm)] {
            assert!(
                pass.result.memo.engaged,
                "{} {}: {} pass fell back to whole analyze ({})",
                app,
                site,
                name,
                pass.result.memo.reason()
            );
            assert_eq!(
                pass.result.tally, full.result.tally,
                "law 8 violated: {} {} {} tally diverged from full analyze",
                app, site, name
            );
            assert_eq!(
                pass.result.run_digest(),
                full.result.run_digest(),
                "law 8 violated: {} {} {} run digest diverged from full analyze",
                app,
                site,
                name
            );
        }
        let (cold_stats, warm_stats) = (cold.result.memo.stats, warm.result.memo.stats);
        assert!(cold_stats.misses > 0, "{} {}: a fresh store cannot start warm", app, site);
        assert_eq!(
            warm_stats.misses, 0,
            "{} {}: warm pass missed {} sub-steps over a populated store",
            app, site, warm_stats.misses
        );
        assert!(warm_stats.hits > cold_stats.hits, "{} {}: warm pass must hit more", app, site);

        measured.push(MemoCell {
            app,
            files,
            label: spec.label(),
            site,
            runs: opts.runs,
            substeps: cold.result.memo.substeps,
            full,
            cold,
            warm,
        });
    }

    let mut table = Table::new();
    table.row(&[
        "cell", "site", "files", "substeps", "runs", "full s", "cold s", "warm s", "cold x",
        "warm x", "hits", "misses", "inval", "digest",
    ]);
    for c in &measured {
        table.row(&[
            &format!("{} {}", c.app, c.label),
            c.site,
            &c.files.to_string(),
            &c.substeps.to_string(),
            &c.runs.to_string(),
            &format!("{:.2}", c.full.run_phase_s),
            &format!("{:.2}", c.cold.run_phase_s),
            &format!("{:.2}", c.warm.run_phase_s),
            &format!("{:.1}x", c.cold_speedup()),
            &format!("{:.1}x", c.warm_speedup()),
            &(c.cold.result.memo.stats.hits + c.warm.result.memo.stats.hits).to_string(),
            &(c.cold.result.memo.stats.misses + c.warm.result.memo.stats.misses).to_string(),
            &(c.cold.result.memo.stats.invalidations + c.warm.result.memo.stats.invalidations)
                .to_string(),
            "match",
        ]);
    }
    report.line(table.render());
    report.line("Walls are run-phase only (total minus time to the first run event), so the");
    report.line("one-time golden produce every pass repeats identically is not counted as a");
    report.line("memoization win. Digest column: law 8 asserted, all passes byte-identical.");

    // The acceptance gate: the Montage read-site headline cell must
    // clear the floors. The write-site and QMC rows are reported but
    // not gated — replay already skips most of the write-site wall,
    // and the QMC analyze is cheap enough per restart that its ratio
    // is allowed to be host-noisy.
    if let Some(head) = measured.iter().find(|c| c.app == "montage" && c.site == "read") {
        assert!(
            head.cold_speedup() >= COLD_SPEEDUP_FLOOR,
            "memoized analyze below the acceptance floor: {:.2}x < {}x (full {:.3}s, cold {:.3}s)",
            head.cold_speedup(),
            COLD_SPEEDUP_FLOOR,
            head.full.run_phase_s,
            head.cold.run_phase_s
        );
        assert!(
            head.warm_speedup() >= WARM_SPEEDUP_FLOOR,
            "warm memo replay below the smoke floor: {:.2}x < {}x (full {:.3}s, warm {:.3}s)",
            head.warm_speedup(),
            WARM_SPEEDUP_FLOOR,
            head.full.run_phase_s,
            head.warm.run_phase_s
        );
        report.line(format!(
            "(headline: montage {} {} — cold {:.1}x >= {}x, warm {:.1}x >= {}x, floors asserted)",
            head.label,
            head.site,
            head.cold_speedup(),
            COLD_SPEEDUP_FLOOR,
            head.warm_speedup(),
            WARM_SPEEDUP_FLOOR
        ));
    } else {
        report.line("headline cell missing — floors not asserted (interrupted or failed above)");
    }

    let memo_json = |s: &ffis_vfs::MemoStats| {
        bench_json::object(&[
            ("hits", bench_json::number(s.hits as f64)),
            ("misses", bench_json::number(s.misses as f64)),
            ("invalidations", bench_json::number(s.invalidations as f64)),
        ])
    };
    let cells_json: Vec<String> = measured
        .iter()
        .map(|c| {
            bench_json::object(&[
                ("app", bench_json::string(c.app)),
                ("model", bench_json::string(&c.label)),
                ("site", bench_json::string(c.site)),
                ("files", bench_json::number(c.files as f64)),
                ("substeps", bench_json::number(c.substeps as f64)),
                ("runs", bench_json::number(c.runs as f64)),
                ("wall_full_s", bench_json::number(c.full.wall_s)),
                ("wall_cold_s", bench_json::number(c.cold.wall_s)),
                ("wall_warm_s", bench_json::number(c.warm.wall_s)),
                ("run_phase_full_s", bench_json::number(c.full.run_phase_s)),
                ("run_phase_cold_s", bench_json::number(c.cold.run_phase_s)),
                ("run_phase_warm_s", bench_json::number(c.warm.run_phase_s)),
                ("cold_speedup", bench_json::number(c.cold_speedup())),
                ("warm_speedup", bench_json::number(c.warm_speedup())),
                ("memo_cold", memo_json(&c.cold.result.memo.stats)),
                ("memo_warm", memo_json(&c.warm.result.memo.stats)),
                (
                    "run_digest",
                    bench_json::string(&format!("{:#018x}", c.full.result.run_digest())),
                ),
                ("digest_match", bench_json::bool(true)),
            ])
        })
        .collect();
    let json = bench_json::object(&[
        ("bench", bench_json::string("analyze_memo")),
        ("runs_per_pass", bench_json::number(opts.runs as f64)),
        ("seed", bench_json::number(opts.seed as f64)),
        ("cold_speedup_floor", bench_json::number(COLD_SPEEDUP_FLOOR)),
        ("warm_speedup_floor", bench_json::number(WARM_SPEEDUP_FLOOR)),
        ("cells", bench_json::array(&cells_json)),
    ]);
    if let Some(path) = bench_json::save_in(&opts.out, "BENCH_analyze_memo.json", &json) {
        report.line(format!("(machine-readable numbers: {})", path.display()));
    }
    report
}
