//! Experiment implementations, one per paper table/figure (see the
//! experiment index in DESIGN.md).

pub mod ablations;
pub mod analyze_memo;
pub mod campaigns;
pub mod extensions;
pub mod figures;
pub mod replay_opt;
pub mod scale;
pub mod tables;

use crate::cli::Options;
use crate::report::Report;

/// All experiment names, in `repro all` execution order.
pub const ALL: [&str; 13] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "read-vs-write",
    "protect",
    "ablation-bits",
    "ablation-shorn",
];

/// Dispatch one experiment by name.
pub fn run(name: &str, opts: &Options) -> Result<Report, String> {
    Ok(match name {
        "table1" => tables::table1(opts),
        "table2" => tables::table2(opts),
        "table3" => tables::table3(opts),
        "table4" => tables::table4(opts),
        "fig5" => figures::fig5(opts),
        "fig6" => figures::fig6(opts),
        "fig7" => campaigns::fig7(opts),
        "fig8" => figures::fig8(opts),
        "fig9" => figures::fig9(opts),
        "read-vs-write" => campaigns::read_vs_write(opts),
        "protect" => campaigns::protect(opts),
        "ablation-bits" => ablations::ablation_bits(opts),
        "ablation-shorn" => ablations::ablation_shorn(opts),
        "repair" => ablations::repair(opts),
        "profile" => extensions::profile(opts),
        "read-faults" => extensions::read_faults(opts),
        "checksum" => ablations::checksum(opts),
        "param-faults" => extensions::param_faults(opts),
        "scale" => scale::scale(opts),
        "analyze-memo" => analyze_memo::analyze_memo(opts),
        "replay-opt" => replay_opt::replay_opt(opts),
        other => return Err(format!("unknown experiment '{}'", other)),
    })
}
