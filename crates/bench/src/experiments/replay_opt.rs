//! `repro replay-opt` — the plan-aware replay measurement: the
//! write-site, suffix-replay-dominated cells where demand-driven
//! checkpoint placement, checkpoint-grouped batch execution, and
//! suffix op coalescing earn their keep.
//!
//! Each cell runs the same spec twice at an equal run count:
//!
//! 1. **control** — `replay_opt` off: log-spaced checkpoints, one
//!    mounted per-run suffix replay from the nearest preceding
//!    checkpoint (the pre-optimization replay fast path).
//! 2. **optimized** — `replay_opt` on: checkpoints placed against the
//!    campaign's own fork-offset histogram (overshoot driven toward
//!    zero), runs batch-grouped by checkpoint so each group shares one
//!    bare reconstruction pass, and post-fire suffixes applied
//!    off-mount through coalesced vectored writes.
//!
//! The experiment *asserts* the optimization contract where the
//! numbers are made — the two regimes must agree byte-for-byte on
//! tallies and run digests (the optimizations are invisible to every
//! digest), the optimized pass must engage demand placement and
//! batching, and its measured checkpoint overshoot must be strictly
//! below the control's. The headline Montage multi-file cell — the
//! memoized regime PR 9 left the replay engine as the hot path of —
//! must clear the [`OPT_SPEEDUP_FLOOR`] on cold run-phase wall-clock
//! (the CI `replay-opt-smoke` gate, n=64): with the dirty cascade
//! pinning analyze to one tile, the batched arm also filters the
//! replayed tail to that tile's declared reads, so the per-run suffix
//! shrinks by roughly the tile count. Walls are compared on the *run
//! phase* (total wall minus the time to the first run event) so the
//! one-time golden produce and checkpoint build, shared by both
//! regimes, do not dilute the per-run ratio.
//!
//! The measured numbers land in `BENCH_replay_opt.json`, with both
//! regimes' suffix-op accounting and the optimized pass's
//! batch/coalescing counters.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ffis_core::{CampaignResult, CampaignSpec, CompletionStatus, ExecutionMode, RunObserver};
use ffis_daemon::{execute_spec, ExecHooks};

use crate::bench_json;
use crate::cli::Options;
use crate::report::{Report, Table};

/// Acceptance floor for the headline Montage multi-file write cell:
/// the optimized regime must beat the log-spaced/no-batching control
/// by at least this factor on cold run-phase wall-clock.
pub const OPT_SPEEDUP_FLOOR: f64 = 2.0;

/// One spec executed once, with the run phase timed separately: the
/// first run event marks the end of planning + golden produce +
/// checkpoint build (work both regimes repeat near-identically), so
/// `run_phase_s` is the wall the replay optimizations can actually
/// shrink.
struct TimedRun {
    result: CampaignResult,
    wall_s: f64,
    run_phase_s: f64,
}

fn timed_exec(spec: &CampaignSpec, opts: &Options) -> Result<TimedRun, String> {
    let started = Instant::now();
    let first_event: Arc<Mutex<Option<f64>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&first_event);
    let hooks = ExecHooks {
        journal: None,
        cancel: opts.cancel.clone(),
        checkpoints: None,
        memo: None,
        observer: Some(RunObserver::new(move |_, _| {
            let mut slot = sink.lock().unwrap();
            if slot.is_none() {
                *slot = Some(started.elapsed().as_secs_f64());
            }
        })),
        index_range: None,
    };
    let result = execute_spec(spec, &hooks).map_err(|e| e.to_string())?;
    if result.status != CompletionStatus::Complete {
        return Err("interrupted".into());
    }
    let wall_s = started.elapsed().as_secs_f64();
    let setup_s = first_event.lock().unwrap().unwrap_or(0.0);
    Ok(TimedRun { result, wall_s, run_phase_s: (wall_s - setup_s).max(1e-9) })
}

/// One cell's two passes plus the derived speedup, for the table and
/// the JSON artifact.
struct OptCell {
    app: &'static str,
    label: String,
    files: usize,
    grid: usize,
    runs: usize,
    control: TimedRun,
    optimized: TimedRun,
}

impl OptCell {
    fn speedup(&self) -> f64 {
        self.control.run_phase_s / self.optimized.run_phase_s.max(1e-9)
    }
}

/// The replay-opt experiment (see the module docs).
pub fn replay_opt(opts: &Options) -> Report {
    // The acceptance regime is n >= 64 (suffix replay must dominate
    // the run phase); an explicit smaller --grid is floored, the
    // default is the paper-proportioned n=96.
    let n = if opts.grid_explicit || opts.quick { opts.grid.max(64) } else { 96 };

    let mut report = Report::new("replay-opt");
    report.line("Plan-aware replay — demand placement + batch grouping + suffix coalescing");
    report.line(format!(
        "(grid: {n}³, runs per pass: {}, seed: {:#x}; equal run counts, digest identity asserted \
         per cell)",
        opts.runs, opts.seed
    ));
    report.blank();

    // Write-site suffix-replay-dominated cells. The Montage 48-tile
    // mosaic is the headline: its memoized dirty cascade pins each
    // run's analyze to one tile, so the batched arm filters the
    // replayed tail to that tile and the control's full-suffix replay
    // towers over it. The single-plotfile Nyx cell covers the
    // unmemoized batched arm (no memo basis, full tail) — reported,
    // not gated, since its halo-finder analyze is the same order as
    // its replay.
    let cells: [(&'static str, usize, &'static str, u64); 2] =
        [("montage", 48, "BF", 941), ("nyx", 1, "BF", 940)];
    let mut measured: Vec<OptCell> = Vec::new();

    for (app, files, model, salt) in cells {
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            report.line(format!("{} skipped: interrupted", app));
            continue;
        }
        let mut spec = CampaignSpec::new(app, model);
        spec.site = "write".into();
        spec.grid = n;
        spec.files = files;
        spec.runs = opts.runs;
        spec.seed = opts.seed.wrapping_add(salt);
        spec.journal = false;

        let mut control_spec = spec.clone();
        control_spec.replay_opt = false;
        spec.replay_opt = true;

        let exec = timed_exec(&control_spec, opts)
            .and_then(|control| Ok((control, timed_exec(&spec, opts)?)));
        let (control, optimized) = match exec {
            Ok(x) => x,
            Err(e) => {
                report.line(format!("{} failed: {}", app, e));
                continue;
            }
        };
        eprintln!(
            "[replay-opt] {} {} — run phase: control {:.3}s optimized {:.3}s ({:.2}x)",
            app,
            spec.label(),
            control.run_phase_s,
            optimized.run_phase_s,
            control.run_phase_s / optimized.run_phase_s.max(1e-9)
        );

        // The optimization contract, asserted where the speedup is
        // claimed: both regimes replay, the optimized pass actually
        // engages every layer, and nothing observable moves.
        assert_eq!(
            control.result.mode,
            ExecutionMode::Replay,
            "{}: control must run the replay fast path",
            app
        );
        assert_eq!(
            optimized.result.mode,
            ExecutionMode::Replay,
            "{}: optimized pass must run the replay fast path",
            app
        );
        let co = &control.result.replay_opt;
        let oo = &optimized.result.replay_opt;
        assert!(!co.engaged, "{}: control pass must not engage the optimizations", app);
        assert!(oo.engaged && oo.demand_placed, "{}: optimized pass fell back to log-spaced", app);
        assert!(oo.batches > 0 && oo.batched_runs > 0, "{}: no runs executed batched", app);
        assert!(oo.coalesced_calls > 0, "{}: batched suffixes never coalesced", app);
        assert!(
            oo.overshoot < co.overshoot,
            "{}: demand placement did not reduce checkpoint overshoot ({} -> {})",
            app,
            co.overshoot,
            oo.overshoot
        );
        assert_eq!(
            optimized.result.tally, control.result.tally,
            "{}: optimized tally diverged from control",
            app
        );
        assert_eq!(
            optimized.result.run_digest(),
            control.result.run_digest(),
            "{}: optimized run digest diverged from control",
            app
        );

        measured.push(OptCell {
            app,
            label: spec.label(),
            files,
            grid: n,
            runs: opts.runs,
            control,
            optimized,
        });
    }

    let mut table = Table::new();
    table.row(&[
        "cell",
        "runs",
        "ctrl s",
        "opt s",
        "speedup",
        "ctrl overshoot",
        "opt overshoot",
        "batches",
        "batched",
        "coalesced ops",
        "skipped ops",
        "digest",
    ]);
    for c in &measured {
        let (co, oo) = (&c.control.result.replay_opt, &c.optimized.result.replay_opt);
        table.row(&[
            &format!("{} {}", c.app, c.label),
            &c.runs.to_string(),
            &format!("{:.2}", c.control.run_phase_s),
            &format!("{:.2}", c.optimized.run_phase_s),
            &format!("{:.2}x", c.speedup()),
            &co.overshoot.to_string(),
            &oo.overshoot.to_string(),
            &oo.batches.to_string(),
            &oo.batched_runs.to_string(),
            &oo.coalesced_ops.to_string(),
            &oo.skipped_tail_ops.to_string(),
            "match",
        ]);
    }
    report.line(table.render());
    report.line("Walls are run-phase only (total minus time to the first run event), so the");
    report.line("golden produce and checkpoint build both regimes repeat are not counted as");
    report.line("an optimization win. Digest column: tallies and run digests asserted equal.");

    // The acceptance gate: the Montage headline cell must clear the
    // floor. The Nyx row is reported but not gated — with no memo
    // basis its tail cannot filter, and its per-run halo-finder
    // analyze is the same order as the replay it shares the run phase
    // with.
    if let Some(head) = measured.iter().find(|c| c.app == "montage") {
        assert!(
            head.speedup() >= OPT_SPEEDUP_FLOOR,
            "plan-aware replay below the acceptance floor: {:.2}x < {}x (control {:.3}s, \
             optimized {:.3}s)",
            head.speedup(),
            OPT_SPEEDUP_FLOOR,
            head.control.run_phase_s,
            head.optimized.run_phase_s
        );
        report.line(format!(
            "(headline: montage {} write — {:.2}x >= {}x cold, overshoot {} -> {}, floor \
             asserted)",
            head.label,
            head.speedup(),
            OPT_SPEEDUP_FLOOR,
            head.control.result.replay_opt.overshoot,
            head.optimized.result.replay_opt.overshoot
        ));
    } else {
        report.line("headline cell missing — floor not asserted (interrupted or failed above)");
    }

    let opt_json = |r: &ffis_core::ReplayOptReport| {
        bench_json::object(&[
            ("engaged", bench_json::bool(r.engaged)),
            ("demand_placed", bench_json::bool(r.demand_placed)),
            ("replayed_suffix_ops", bench_json::number(r.replayed_suffix_ops as f64)),
            ("minimal_suffix_ops", bench_json::number(r.minimal_suffix_ops as f64)),
            ("overshoot", bench_json::number(r.overshoot as f64)),
            ("batches", bench_json::number(r.batches as f64)),
            ("batched_runs", bench_json::number(r.batched_runs as f64)),
            ("coalesced_calls", bench_json::number(r.coalesced_calls as f64)),
            ("coalesced_ops", bench_json::number(r.coalesced_ops as f64)),
            ("skipped_tail_ops", bench_json::number(r.skipped_tail_ops as f64)),
        ])
    };
    let cells_json: Vec<String> = measured
        .iter()
        .map(|c| {
            bench_json::object(&[
                ("app", bench_json::string(c.app)),
                ("model", bench_json::string(&c.label)),
                ("site", bench_json::string("write")),
                ("grid", bench_json::number(c.grid as f64)),
                ("files", bench_json::number(c.files as f64)),
                ("runs", bench_json::number(c.runs as f64)),
                ("wall_control_s", bench_json::number(c.control.wall_s)),
                ("wall_optimized_s", bench_json::number(c.optimized.wall_s)),
                ("run_phase_control_s", bench_json::number(c.control.run_phase_s)),
                ("run_phase_optimized_s", bench_json::number(c.optimized.run_phase_s)),
                ("speedup", bench_json::number(c.speedup())),
                ("control", opt_json(&c.control.result.replay_opt)),
                ("optimized", opt_json(&c.optimized.result.replay_opt)),
                (
                    "overshoot_reduction",
                    bench_json::number(
                        c.control
                            .result
                            .replay_opt
                            .overshoot
                            .saturating_sub(c.optimized.result.replay_opt.overshoot)
                            as f64,
                    ),
                ),
                (
                    "run_digest",
                    bench_json::string(&format!("{:#018x}", c.control.result.run_digest())),
                ),
                ("digest_match", bench_json::bool(true)),
            ])
        })
        .collect();
    let json = bench_json::object(&[
        ("bench", bench_json::string("replay_opt")),
        ("grid", bench_json::number(n as f64)),
        ("runs_per_pass", bench_json::number(opts.runs as f64)),
        ("seed", bench_json::number(opts.seed as f64)),
        ("speedup_floor", bench_json::number(OPT_SPEEDUP_FLOOR)),
        ("cells", bench_json::array(&cells_json)),
    ]);
    if let Some(path) = bench_json::save_in(&opts.out, "BENCH_replay_opt.json", &json) {
        report.line(format!("(machine-readable numbers: {})", path.display()));
    }
    report
}
