//! Figure 7 — the main characterization — and the average-value
//! protection variant (the figure's footnote).

use std::sync::Arc;

use ffis_core::prelude::*;
use ffis_vfs::CheckpointStore;
use montage_sim::{MontageApp, Stage};
use nyx_sim::NyxApp;
use qmc_sim::QmcApp;

use crate::cli::Options;
use crate::report::{Report, Table};

/// The three paper fault models in Figure 7 order.
pub fn models() -> [(&'static str, FaultModel); 3] {
    [
        ("BF", FaultModel::bit_flip()),
        ("SW", FaultModel::shorn_write()),
        ("DW", FaultModel::dropped_write()),
    ]
}

/// The read-site mirror of [`models`]: the same three models hosted on
/// `FFIS_read`, labeled with the read-site vocabulary (`r:` marks the
/// site; BIT FLIP keeps its name at both sites).
pub fn read_models() -> [(&'static str, FaultModel); 3] {
    [
        ("r:BF", FaultModel::bit_flip()),
        ("r:SR", FaultModel::shorn_write()),
        ("r:DR", FaultModel::dropped_write()),
    ]
}

/// Build the Nyx app at the harness scale. The sieve-buffer write
/// size scales with the grid volume so the data-write count (and with
/// it the metadata-write hit probability, i.e. the crash share) stays
/// at the paper-scale proportion for smaller `--grid` values.
pub fn nyx_app(opts: &Options) -> NyxApp {
    // One grid/volume scaling rule for the whole workspace: the
    // harness and the daemon's spec executor must agree byte-for-byte
    // on what "Nyx at grid n" means, or an HTTP-submitted campaign
    // would diverge from its in-process control.
    ffis_daemon::apps::nyx_at_grid(opts.grid)
}

fn tally_row(table: &mut Table, cell: &str, model: &str, t: &OutcomeTally, mode: ExecutionMode) {
    table.row(&[
        cell,
        model,
        &format!("{:.1}", t.rate_pct(Outcome::Benign)),
        &format!("{:.1}", t.rate_pct(Outcome::Detected)),
        &format!("{:.1}", t.rate_pct(Outcome::Sdc)),
        &format!("{:.1}", t.rate_pct(Outcome::Crash)),
        &format!("{}", t.total()),
        &format!("±{:.1}", t.proportion(Outcome::Sdc).error_bar_pct()),
        &mode.to_string(),
    ]);
}

/// One campaign cell. `store` shares one built checkpoint cache
/// across every cell over the same deterministic golden run (pass a
/// per-app store when running several models against one workload).
pub fn run_cell<A: FaultApp>(
    app: &A,
    model: FaultModel,
    target: TargetFilter,
    opts: &Options,
    salt: u64,
    store: Option<&Arc<CheckpointStore>>,
) -> OutcomeTally {
    run_cell_full(app, model, target, opts, salt, store).map(|r| r.tally).unwrap_or_default()
}

/// One campaign cell, returning the full result (per-run records,
/// crash breakdown, CSV access).
pub fn run_cell_full<A: FaultApp>(
    app: &A,
    model: FaultModel,
    target: TargetFilter,
    opts: &Options,
    salt: u64,
    store: Option<&Arc<CheckpointStore>>,
) -> Option<ffis_core::CampaignResult> {
    let mut sig = FaultSignature::on_write(model);
    sig.target = target;
    run_cell_sig(app, sig, opts.runs, opts, salt, store)
}

/// One campaign cell for an arbitrary (write- or read-site) fault
/// signature.
pub fn run_cell_sig<A: FaultApp>(
    app: &A,
    sig: FaultSignature,
    runs: usize,
    opts: &Options,
    salt: u64,
    store: Option<&Arc<CheckpointStore>>,
) -> Option<ffis_core::CampaignResult> {
    let mut cfg = CampaignConfig::new(sig).with_runs(runs).with_seed(opts.seed.wrapping_add(salt));
    if let Some(store) = store {
        cfg = cfg.with_checkpoints(store.clone());
    }
    match Campaign::new(app, cfg).run() {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("campaign failed for {}: {}", app.name(), e);
            None
        }
    }
}

/// Figure 7: outcome distribution for {NYX, QMC, MT1..MT4} × {BF, SW, DW}.
pub fn fig7(opts: &Options) -> Report {
    let mut report = Report::new("fig7");
    report.line("Figure 7 — Characterization result of I/O faults with Nyx, QMCPACK, and Montage");
    report.line(format!(
        "(runs per cell: {}, seed: {:#x}, Nyx grid: {}³)",
        opts.runs, opts.seed, opts.grid
    ));
    report.blank();

    let mut table = Table::new();
    table.row(&["cell", "model", "benign%", "detected%", "SDC%", "crash%", "n", "SDC CI", "exec"]);
    let mut csv = String::from(ffis_core::CampaignResult::csv_header());
    csv.push('\n');
    let mut crash_notes: Vec<String> = Vec::new();
    // Per-app Σ rows fold the cell tallies with OutcomeTally::merge
    // instead of re-walking run vectors (which a bounded-reservoir
    // campaign no longer retains in full).
    let mut group_tally = OutcomeTally::new();
    let mut record = |cell: &str,
                      label: &str,
                      result: Option<ffis_core::CampaignResult>,
                      table: &mut Table|
     -> Option<OutcomeTally> {
        let Some(result) = result else {
            table.row(&[cell, label, "-", "-", "-", "-", "0", "-", "-"]);
            return None;
        };
        tally_row(table, cell, label, &result.tally, result.mode);
        csv.push_str(&result.csv_row(&format!("{},{}", cell, label)));
        csv.push('\n');
        if result.tally.crash > 0 {
            let top: Vec<String> = result
                .crash_breakdown()
                .into_iter()
                .take(2)
                .map(|(m, c)| format!("{} ({}x)", m, c))
                .collect();
            crash_notes.push(format!("{} {}: {}", cell, label, top.join("; ")));
        }
        Some(result.tally)
    };
    fn sigma_row(table: &mut Table, cell: &str, t: &OutcomeTally) {
        table.row(&[
            cell,
            "Σ",
            &format!("{:.1}", t.rate_pct(Outcome::Benign)),
            &format!("{:.1}", t.rate_pct(Outcome::Detected)),
            &format!("{:.1}", t.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", t.rate_pct(Outcome::Crash)),
            &format!("{}", t.total()),
            &format!("±{:.1}", t.proportion(Outcome::Sdc).error_bar_pct()),
            "-",
        ]);
    }

    // One checkpoint store per workload: the write-model campaigns
    // over one deterministic app record identical golden traces, so
    // the first cell builds the checkpoint cache and the others share
    // it through the engine.
    let nyx = nyx_app(opts);
    let nyx_store = Arc::new(CheckpointStore::new());
    for (i, (label, model)) in models().into_iter().enumerate() {
        let r =
            run_cell_full(&nyx, model, TargetFilter::Any, opts, 100 + i as u64, Some(&nyx_store));
        if let Some(t) = record("NYX", label, r, &mut table) {
            group_tally.merge(&t);
        }
    }
    sigma_row(&mut table, "NYX", &std::mem::take(&mut group_tally));

    // QMC.
    let qmc = QmcApp::paper_default();
    let qmc_store = Arc::new(CheckpointStore::new());
    for (i, (label, model)) in models().into_iter().enumerate() {
        let r =
            run_cell_full(&qmc, model, TargetFilter::Any, opts, 200 + i as u64, Some(&qmc_store));
        if let Some(t) = record("QMC", label, r, &mut table) {
            group_tally.merge(&t);
        }
    }
    sigma_row(&mut table, "QMC", &std::mem::take(&mut group_tally));

    // MT1..MT4 — all twelve cells share one golden-trace store.
    let montage = MontageApp::paper_default();
    let montage_store = Arc::new(CheckpointStore::new());
    for (s, stage) in Stage::ALL.into_iter().enumerate() {
        for (i, (label, model)) in models().into_iter().enumerate() {
            let r = run_cell_full(
                &montage,
                model,
                MontageApp::stage_filter(stage),
                opts,
                300 + 10 * s as u64 + i as u64,
                Some(&montage_store),
            );
            if let Some(t) = record(stage.label(), label, r, &mut table) {
                group_tally.merge(&t);
            }
        }
        sigma_row(&mut table, stage.label(), &std::mem::take(&mut group_tally));
    }

    // Read-site rows (reproduction extension): the same models hosted
    // on FFIS_read. All three apps declare produce_read_count == 0, so
    // every eligible read is analyze-phase and the exec column reads
    // analyze-only (the fast path that skips produce entirely);
    // produce-phase targets would surface as rerun(produce-read-fault)
    // instead — never silently.
    for (i, (label, model)) in read_models().into_iter().enumerate() {
        let r = run_cell_sig(
            &nyx,
            FaultSignature::on_read(model),
            opts.runs,
            opts,
            400 + i as u64,
            None,
        );
        let _ = record("NYX", label, r, &mut table);
    }
    for (i, (label, model)) in read_models().into_iter().enumerate() {
        let r = run_cell_sig(
            &qmc,
            FaultSignature::on_read(model),
            opts.runs,
            opts,
            500 + i as u64,
            None,
        );
        let _ = record("QMC", label, r, &mut table);
    }
    for (i, (label, model)) in read_models().into_iter().enumerate() {
        let r = run_cell_sig(
            &montage,
            FaultSignature::on_read(model),
            opts.runs,
            opts,
            600 + i as u64,
            None,
        );
        let _ = record("MT", label, r, &mut table);
    }

    report.line(table.render());
    report.line(format!(
        "(checkpoint sharing: NYX {}b/{}h, QMC {}b/{}h, MT {}b/{}h — builds/hits per store)",
        nyx_store.builds(),
        nyx_store.hits(),
        qmc_store.builds(),
        qmc_store.hits(),
        montage_store.builds(),
        montage_store.hits()
    ));
    crate::report::save_bytes(&opts.out, "fig7.csv", csv.as_bytes()).ok();
    if !crash_notes.is_empty() {
        report.header("Crash-source breakdown (top messages per cell)");
        for n in crash_notes {
            report.line(n);
        }
    }
    report.header("Paper reference points");
    report.line("NYX BF: 91.1% benign, 0.8% SDC (lowest SDC of the three apps)");
    report.line("NYX SW: 100% benign;  NYX DW: 100% SDC (1000/1000)");
    report.line("QMC BF: ~60% SDC, ~37% benign, 0.8% detected; SW: 54% SDC; DW: 8% SDC, 43% detected, 12% crash");
    report.line(
        "MT BF SDC by stage: 12.8/8/9/6.8%;  SW: 56.6/40/52.5/48.5%;  DW: 83.5/37.3/98.3/50.4%",
    );
    report
}

/// `repro read-vs-write` — the read-site characterization extension:
/// for each paper workload, one seeded [`MixedCampaign`] hosts the
/// write-site models (BF/SW/DW, replay-backed) and their read-site
/// mirrors (BF/SR/DR, analyze-only — every target fires during
/// analyze on these apps) over the *same* golden run, and the table
/// pairs each model's two sites. Read-site rows carry `analyze-only`
/// in the exec column; the device state stays pristine on every
/// read-site run, so all damage there is transfer-level.
pub fn read_vs_write(opts: &Options) -> Report {
    use ffis_core::{MixedCampaign, MixedCampaignConfig};

    let mut report = Report::new("read_vs_write");
    report.line("Read-site vs write-site characterization — Nyx, QMCPACK, Montage");
    report.line(format!(
        "(total runs per app: {} across 6 interleaved shards, seed: {:#x})",
        opts.runs, opts.seed
    ));
    report.blank();

    let mut table = Table::new();
    table.row(&["app", "model", "site", "benign%", "detected%", "SDC%", "crash%", "n", "exec"]);
    let mut csv = String::from(ffis_core::CampaignResult::csv_header());
    csv.push('\n');

    let mut run_app = |name: &str, result: Result<ffis_core::MixedCampaignResult, _>| {
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mixed campaign failed for {}: {}", name, e);
                table.row(&[name, "-", "-", "-", "-", "-", "-", "0", "-"]);
                return;
            }
        };
        // Pair each model's write shard (0..3) with its read shard
        // (3..6): adjacent rows compare the sites.
        for m in 0..3 {
            for shard in [&result.shards[m], &result.shards[m + 3]] {
                let t = &shard.tally;
                table.row(&[
                    name,
                    shard.signature.label(),
                    shard.signature.site().token(),
                    &format!("{:.1}", t.rate_pct(Outcome::Benign)),
                    &format!("{:.1}", t.rate_pct(Outcome::Detected)),
                    &format!("{:.1}", t.rate_pct(Outcome::Sdc)),
                    &format!("{:.1}", t.rate_pct(Outcome::Crash)),
                    &t.total().to_string(),
                    &shard.mode.to_string(),
                ]);
                csv.push_str(&format!(
                    "{} {}@{},{},{},{},{},{},{}\n",
                    name,
                    shard.signature.label(),
                    shard.signature.site().token(),
                    t.benign,
                    t.detected,
                    t.sdc,
                    t.crash,
                    t.total(),
                    shard.mode
                ));
            }
        }
    };

    let sigs: Vec<FaultSignature> = models()
        .into_iter()
        .map(|(_, m)| FaultSignature::on_write(m))
        .chain(read_models().into_iter().map(|(_, m)| FaultSignature::on_read(m)))
        .collect();
    let mk_cfg = |salt: u64| {
        MixedCampaignConfig::new(sigs.clone())
            .with_runs(opts.runs)
            .with_seed(opts.seed.wrapping_add(salt))
    };

    let nyx = nyx_app(opts);
    run_app("NYX", MixedCampaign::new(&nyx, mk_cfg(700)).run());
    let qmc = QmcApp::paper_default();
    run_app("QMC", MixedCampaign::new(&qmc, mk_cfg(710)).run());
    let montage = MontageApp::paper_default();
    run_app("MT", MixedCampaign::new(&montage, mk_cfg(720)).run());

    report.line(table.render());
    crate::report::save_bytes(&opts.out, "read_vs_write.csv", csv.as_bytes()).ok();
    report.header("Reading the table");
    report.line("Write-site faults persist on the device (every later read observes them);");
    report.line("read-site faults corrupt one transfer while the stored bytes stay pristine, so");
    report.line("the damage reaches only the consumer of that read — multi-stage pipelines");
    report.line("(Montage) re-derive everything downstream of one poisoned read, while Nyx's");
    report.line("single read-back makes the two sites look alike at the classifier.");
    report
}

/// Wrapper applying the paper's average-value-based protection to the
/// Nyx classification (all SDCs become detected).
pub struct ProtectedNyx(pub NyxApp);

impl FaultApp for ProtectedNyx {
    type Output = nyx_sim::NyxOutput;

    fn produce(&self, fs: &dyn ffis_vfs::FileSystem) -> Result<(), String> {
        self.0.produce(fs)
    }

    fn analyze(
        &self,
        fs: &dyn ffis_vfs::FileSystem,
        golden: Option<&Self::Output>,
    ) -> Result<Self::Output, String> {
        self.0.analyze(fs, golden)
    }

    fn classify(&self, golden: &Self::Output, faulty: &Self::Output) -> Outcome {
        nyx_sim::protected_classify(golden, faulty, nyx_sim::MEAN_TOLERANCE)
    }

    fn name(&self) -> String {
        "NYX+avg".into()
    }
}

/// The protection experiment: Nyx campaigns classified with and
/// without the average-value method, same injections.
pub fn protect(opts: &Options) -> Report {
    let mut report = Report::new("protect");
    report.line("§V-B insight — average-value-based protection on Nyx");
    report.line("(same injections, classified without and with the mean check)");
    report.blank();

    let nyx = nyx_app(opts);
    let protected = ProtectedNyx(nyx_app(opts));
    // Plain and protected Nyx produce byte-identical golden traces
    // (only classification differs), so all six campaigns share one
    // checkpoint build.
    let store = Arc::new(CheckpointStore::new());

    let mut table = Table::new();
    table.row(&[
        "model",
        "SDC% (plain)",
        "SDC% (protected)",
        "detected% (plain)",
        "detected% (protected)",
    ]);
    for (i, (label, model)) in models().into_iter().enumerate() {
        let plain = run_cell(&nyx, model, TargetFilter::Any, opts, 100 + i as u64, Some(&store));
        let prot =
            run_cell(&protected, model, TargetFilter::Any, opts, 100 + i as u64, Some(&store));
        table.row(&[
            label,
            &format!("{:.1}", plain.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", prot.rate_pct(Outcome::Sdc)),
            &format!("{:.1}", plain.rate_pct(Outcome::Detected)),
            &format!("{:.1}", prot.rate_pct(Outcome::Detected)),
        ]);
    }
    report.line(table.render());
    report.line("Paper: \"all SDC cases with Nyx will be changed to detected cases after using the average-value-based method\".");
    report
}
