//! Machine-readable benchmark emission (`BENCH_*.json`).
//!
//! The report tables are for humans; CI archives the same numbers as
//! JSON artifacts so the perf trajectory (runs/s, wall time,
//! checkpoint hits, speedups) is queryable across commits. The
//! environment is offline — no serde — so this is a deliberately tiny
//! hand-rolled emitter covering exactly the value shapes the harness
//! needs: numbers, strings, arrays, and flat objects.

use std::path::PathBuf;

/// Render a JSON number (finite floats trimmed; non-finite values
/// become `null`, which JSON has no number for).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{}", v)
    }
}

/// Render a JSON boolean.
pub fn bool(v: bool) -> String {
    if v { "true" } else { "false" }.to_string()
}

/// Render a JSON string with the mandatory escapes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a JSON array from already-rendered values.
pub fn array(values: &[String]) -> String {
    format!("[{}]", values.join(","))
}

/// Render a JSON object from `(key, already-rendered value)` pairs.
pub fn object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("{}:{}", string(k), v)).collect();
    format!("{{{}}}", body.join(","))
}

/// Where benchmark JSON lands: `$FFIS_BENCH_JSON_DIR` when set (the CI
/// artifact staging directory), `target/bench-json` otherwise.
pub fn out_dir() -> PathBuf {
    std::env::var_os("FFIS_BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/bench-json"))
}

/// Write one rendered JSON document under [`out_dir`], returning the
/// path. Best-effort by design: a bench must never fail because an
/// artifact directory is read-only — the numbers were already printed.
pub fn save(name: &str, json: &str) -> Option<PathBuf> {
    save_in(&out_dir(), name, json)
}

/// [`save`] into an explicit directory (the `repro` experiments write
/// next to their reports in `--out`).
pub fn save_in(dir: &std::path::Path, name: &str, json: &str) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(name);
    std::fs::write(&path, format!("{}\n", json)).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_json() {
        assert_eq!(number(5.0), "5");
        assert_eq!(number(5.25), "5.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(bool(true), "true");
        assert_eq!(bool(false), "false");
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(array(&[number(1.0), string("x")]), "[1,\"x\"]");
        assert_eq!(object(&[("n", number(2.0)), ("s", string("v"))]), "{\"n\":2,\"s\":\"v\"}");
    }

    #[test]
    fn save_in_writes_the_document() {
        let dir = std::env::temp_dir().join(format!("ffis-bench-json-{}", std::process::id()));
        let path = save_in(&dir, "BENCH_t.json", &object(&[("ok", number(1.0))])).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":1}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
