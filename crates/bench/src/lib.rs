//! # ffis-bench — the reproduction harness
//!
//! One subcommand per table/figure of the paper's evaluation section
//! (see DESIGN.md's experiment index), plus ablations and the §V-A
//! repair study. The `repro` binary prints each table and saves it
//! (with any PGM/CSV artifacts) under `results/`.
//!
//! ```text
//! repro table1 | table2 | table3 | table4
//! repro fig5 | fig6 | fig7 | fig8 | fig9
//! repro protect | repair | ablation-bits | ablation-shorn
//! repro all [--quick] [--runs N] [--seed S] [--grid G] [--out DIR]
//! ```

pub mod bench_json;
pub mod cli;
pub mod daemon_cli;
pub mod experiments;
pub mod report;

pub use cli::Options;
pub use report::{Report, Table};
