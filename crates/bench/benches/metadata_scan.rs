//! Metadata byte-scan throughput (Table III's engine): full
//! write→inject→read→analyze cycles per scanned byte.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ffis_core::{scan, FlipMode, ScanConfig, TargetFilter};
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn bench_scan(c: &mut Criterion) {
    let app = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        ..Default::default()
    });
    let mut group = c.benchmark_group("metadata_scan");
    group.sample_size(10);
    // Stride 32 ⇒ ~68 injected runs per iteration.
    let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    cfg.stride = 32;
    cfg.flip = FlipMode::TwoBitsRandom;
    group.throughput(Throughput::Elements(2184 / 32));
    group.bench_function("stride32", |b| {
        b.iter(|| scan(&app, &cfg).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
