//! Perf companion to the paper's transparency requirement (R1): the
//! FFISFS interception layer must not meaningfully perturb the I/O
//! path it instruments. Measures the write path bare vs mounted vs
//! mounted-with-armed-injector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_core::{ArmedInjector, FaultModel, FaultSignature};
use ffis_vfs::{FfisFs, FileSystem, FileSystemExt, MemFs};
use std::sync::Arc;

fn write_workload(fs: &dyn FileSystem, total: usize) {
    fs.write_file_chunked("/bench.dat", &vec![0xA5u8; total], 4096).unwrap();
    fs.unlink("/bench.dat").unwrap();
}

fn bench_interception(c: &mut Criterion) {
    let mut group = c.benchmark_group("interception_overhead");
    for &kib in &[64usize, 1024] {
        let total = kib * 1024;
        group.throughput(Throughput::Bytes(total as u64));

        group.bench_with_input(BenchmarkId::new("bare_memfs", kib), &total, |b, &total| {
            let fs = MemFs::new();
            b.iter(|| write_workload(&fs, total));
        });

        group.bench_with_input(BenchmarkId::new("ffisfs_mounted", kib), &total, |b, &total| {
            let ffs = FfisFs::mount(Arc::new(MemFs::new()));
            b.iter(|| write_workload(&*ffs, total));
        });

        group.bench_with_input(BenchmarkId::new("ffisfs_armed", kib), &total, |b, &total| {
            let ffs = FfisFs::mount(Arc::new(MemFs::new()));
            // Armed far beyond the instance count: the hot path pays
            // the eligibility check on every write without firing.
            ffs.attach(Arc::new(ArmedInjector::new(
                FaultSignature::on_write(FaultModel::bit_flip()),
                u64::MAX,
                7,
            )));
            b.iter(|| write_workload(&*ffs, total));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interception);
criterion_main!(benches);
