//! DMC step throughput vs walker population — the QMCPACK substrate
//! cost when a corrupted checkpoint forces a trajectory recompute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_sim::{run_dmc, run_vmc, DmcConfig, TrialWavefunction, VmcConfig};

fn bench_dmc(c: &mut Criterion) {
    let wf = TrialWavefunction::default();
    let mut group = c.benchmark_group("dmc_walkers");
    group.sample_size(10);
    for &walkers in &[64usize, 256] {
        let vmc =
            run_vmc(&wf, &VmcConfig { walkers, warmup: 200, steps: 10, ..Default::default() });
        let steps = 200usize;
        group.throughput(Throughput::Elements((walkers * steps) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(walkers), &walkers, |b, &walkers| {
            let cfg = DmcConfig { target_walkers: walkers, warmup: 0, steps, ..Default::default() };
            b.iter(|| run_dmc(&wf, &vmc.walkers, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dmc);
criterion_main!(benches);
