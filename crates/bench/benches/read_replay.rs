//! Analyze-only read-site campaigns vs legacy full-rerun campaigns on
//! the hdf5lite-backed Nyx workload — the read-path mirror of
//! `campaign_replay.rs`. The legacy path re-executes the whole
//! application (field simulation, HDF5 encode, float packing, halo
//! finding) once per injection run even though a read fault never
//! touches device state; the fast path forks the golden post-produce
//! filesystem, pre-seeds the mount's counters with the golden
//! produce-phase counts, and runs only the analyze phase with the
//! fault armed.
//!
//! Beyond the two criterion timings, the bench asserts the headline
//! claim directly: the analyze-only campaign must run at least 5x
//! faster than the full-rerun campaign on identical configuration,
//! with identical tallies and injection records — and it reports how
//! the read-site fast path compares to the write-site replay fast
//! path (the ISSUE target: within ~2x of write-replay throughput).
//!
//! The measured numbers are also emitted as machine-readable JSON
//! (`BENCH_read_replay.json`, see `ffis_bench::bench_json`) so CI can
//! archive the perf trajectory as an artifact.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_bench::bench_json;
use ffis_core::prelude::*;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn read_campaign(app: &NyxApp, replay: bool, runs: usize) -> CampaignResult {
    let mut cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
        .with_runs(runs)
        .with_seed(0xCA4)
        .with_replay(replay);
    // Serial: measure per-run work, not rayon scheduling.
    cfg.parallel = false;
    Campaign::new(app, cfg).run().unwrap()
}

fn write_campaign(app: &NyxApp, runs: usize) -> CampaignResult {
    let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(runs)
        .with_seed(0xCA4)
        .with_replay(true);
    cfg.parallel = false;
    Campaign::new(app, cfg).run().unwrap()
}

fn bench_read_replay(c: &mut Criterion) {
    // `resimulate` charges each legacy rerun its true application
    // cost, exactly as in campaign_replay.rs: that redundant produce
    // work is precisely what the analyze-only strategy skips.
    let app = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        resimulate: true,
        ..Default::default()
    });
    let runs = 60usize;

    let probe = read_campaign(&app, true, runs);
    assert_eq!(probe.mode, ExecutionMode::AnalyzeOnly, "fast path must engage");

    let mut group = c.benchmark_group("read_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(runs as u64));
    for replay in [false, true] {
        let label = if replay { "analyze_only" } else { "legacy_rerun" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &replay, |b, &replay| {
            b.iter(|| read_campaign(&app, replay, runs));
        });
    }
    group.finish();

    // Headline assertion: >= 5x on identical work, identical results.
    // Median of several timed pairs so one scheduler stall on a shared
    // CI runner cannot flake the gate.
    let timed = |replay: bool| {
        let start = Instant::now();
        let result = read_campaign(&app, replay, runs);
        (start.elapsed(), result)
    };
    // One warmup each, then measure.
    timed(false);
    timed(true);
    let mut legacy_times = Vec::new();
    let mut fast_times = Vec::new();
    for _ in 0..3 {
        let (legacy_t, legacy) = timed(false);
        let (fast_t, fast) = timed(true);
        assert_eq!(legacy.tally, fast.tally, "paths must classify identically");
        for (l, f) in legacy.runs.iter().zip(&fast.runs) {
            assert_eq!(l.outcome, f.outcome, "run {}", l.run);
            assert_eq!(l.injection, f.injection, "run {}", l.run);
        }
        legacy_times.push(legacy_t);
        fast_times.push(fast_t);
    }
    legacy_times.sort();
    fast_times.sort();
    let (legacy_t, fast_t) = (legacy_times[1], fast_times[1]);
    let speedup = legacy_t.as_secs_f64() / fast_t.as_secs_f64().max(1e-12);

    // Context: how close is the read-site fast path to the write-site
    // replay fast path on the same workload? (Informational — the
    // analyze phase runs real application logic per run, a suffix
    // replay is mostly memcpy.)
    let write_start = Instant::now();
    let _ = write_campaign(&app, runs);
    let write_t = write_start.elapsed();
    let read_runs_s = runs as f64 / fast_t.as_secs_f64().max(1e-12);
    let write_runs_s = runs as f64 / write_t.as_secs_f64().max(1e-12);

    println!(
        "read_replay: legacy {:?} vs analyze-only {:?} over {} runs (median of 3) -> {:.1}x \
         speedup; read fast path {:.0} runs/s vs write replay {:.0} runs/s ({:.2}x of write)",
        legacy_t,
        fast_t,
        runs,
        speedup,
        read_runs_s,
        write_runs_s,
        read_runs_s / write_runs_s.max(1e-12),
    );
    assert!(
        speedup >= 5.0,
        "analyze-only read campaigns must be >= 5x faster than full reruns (got {:.1}x)",
        speedup
    );

    bench_json::save(
        "BENCH_read_replay.json",
        &bench_json::object(&[
            ("bench", bench_json::string("read_replay")),
            ("runs", bench_json::number(runs as f64)),
            ("legacy_wall_s", bench_json::number(legacy_t.as_secs_f64())),
            ("analyze_only_wall_s", bench_json::number(fast_t.as_secs_f64())),
            ("speedup", bench_json::number(speedup)),
            ("read_runs_per_s", bench_json::number(read_runs_s)),
            ("write_replay_runs_per_s", bench_json::number(write_runs_s)),
            (
                "read_vs_write_throughput_ratio",
                bench_json::number(read_runs_s / write_runs_s.max(1e-12)),
            ),
        ]),
    );
}

criterion_group!(benches, bench_read_replay);
criterion_main!(benches);
