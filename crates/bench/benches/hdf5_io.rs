//! hdf5lite write/read throughput vs grid size — the substrate cost
//! under every Nyx campaign cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_vfs::MemFs;
use hdf5lite::{read_dataset, write_file, Dataset, FileBuilder, WriteOptions};

fn bench_hdf5(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdf5_io");
    for &n in &[16usize, 32, 48] {
        let data: Vec<f32> = (0..n * n * n).map(|i| 1.0 + (i % 13) as f32 * 0.05).collect();
        let bytes = (n * n * n * 4) as u64;
        group.throughput(Throughput::Bytes(bytes));

        group.bench_with_input(BenchmarkId::new("write", n), &n, |b, &n| {
            b.iter(|| {
                let fs = MemFs::new();
                let mut builder = FileBuilder::new();
                builder
                    .add_dataset(
                        "/native_fields/baryon_density",
                        Dataset::f32("baryon_density", &[n as u64; 3], &data),
                    )
                    .unwrap();
                write_file(&fs, "/plt.h5", &builder.into_root(), &WriteOptions::default()).unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("read_decode", n), &n, |b, &n| {
            let fs = MemFs::new();
            let mut builder = FileBuilder::new();
            builder
                .add_dataset(
                    "/native_fields/baryon_density",
                    Dataset::f32("baryon_density", &[n as u64; 3], &data),
                )
                .unwrap();
            write_file(&fs, "/plt.h5", &builder.into_root(), &WriteOptions::default()).unwrap();
            b.iter(|| read_dataset(&fs, "/plt.h5", "/native_fields/baryon_density").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hdf5);
criterion_main!(benches);
