//! Fork+replay vs legacy full-rerun metadata scan on the
//! hdf5lite-backed Nyx workload — the tentpole speedup of the replay
//! engine. The legacy path re-executes the whole application (HDF5
//! encode, float packing, halo finding) once per scanned byte; the
//! fast path forks the pre-injection CoW snapshot and replays only the
//! trace suffix before verifying.
//!
//! Beyond the two criterion timings, the bench asserts the headline
//! claim directly: the replay scan must run at least 5x faster than
//! the legacy scan on identical configuration, with identical
//! outcomes.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_core::{scan_detailed, FlipMode, ScanConfig, TargetFilter};
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn cfg(replay: bool, stride: usize) -> ScanConfig {
    let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    cfg.stride = stride;
    cfg.flip = FlipMode::TwoBitsRandom;
    cfg.replay = replay;
    // Serial: measure per-byte work, not rayon scheduling.
    cfg.parallel = false;
    cfg
}

fn bench_scan_replay(c: &mut Criterion) {
    // `resimulate` charges each legacy rerun its true application
    // cost (the paper's injection runs execute Nyx end-to-end,
    // simulation included); the replay path never pays it — that is
    // precisely the redundant prefix work the engine eliminates.
    let app = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        resimulate: true,
        ..Default::default()
    });
    let stride = 32; // ~68 injected bytes per scan iteration

    let mut group = c.benchmark_group("scan_replay");
    group.sample_size(10);
    let bytes_scanned = {
        let probe = scan_detailed(&app, &cfg(true, stride)).unwrap();
        assert!(probe.used_replay(), "fast path must engage for the bench to be meaningful");
        probe.runs.len() as u64
    };
    group.throughput(Throughput::Elements(bytes_scanned));

    for replay in [false, true] {
        let label = if replay { "fork_replay" } else { "legacy_rerun" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &replay, |b, &replay| {
            let c = cfg(replay, stride);
            b.iter(|| scan_detailed(&app, &c).unwrap());
        });
    }
    group.finish();

    // Headline assertion: >= 5x on identical work, identical outcomes.
    // Median of several timed pairs so one scheduler stall on a shared
    // CI runner cannot flake the gate (measured headroom is ~12x).
    let timed = |replay: bool| {
        let c = cfg(replay, stride);
        let start = Instant::now();
        let result = scan_detailed(&app, &c).unwrap();
        (start.elapsed(), result)
    };
    // One warmup each, then measure.
    timed(false);
    timed(true);
    let mut legacy_times = Vec::new();
    let mut replay_times = Vec::new();
    let mut bytes = 0;
    for _ in 0..3 {
        let (legacy_t, legacy) = timed(false);
        let (replay_t, replay) = timed(true);
        assert_eq!(legacy.tally, replay.tally, "paths must classify identically");
        legacy_times.push(legacy_t);
        replay_times.push(replay_t);
        bytes = legacy.runs.len();
    }
    legacy_times.sort();
    replay_times.sort();
    let (legacy_t, replay_t) = (legacy_times[1], replay_times[1]);
    let speedup = legacy_t.as_secs_f64() / replay_t.as_secs_f64().max(1e-12);
    println!(
        "scan_replay: legacy {:?} vs fork+replay {:?} over {} bytes (median of 3) -> {:.1}x speedup",
        legacy_t, replay_t, bytes, speedup
    );
    assert!(
        speedup >= 5.0,
        "fork+replay must be >= 5x faster than full reruns (got {:.1}x)",
        speedup
    );
}

criterion_group!(benches, bench_scan_replay);
criterion_main!(benches);
