//! Halo-finder (Friends-of-Friends) cost vs grid size — the Nyx
//! post-analysis on every campaign run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nyx_sim::{find_halos, generate, FieldConfig, HaloFinderConfig};

fn bench_halo(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_finder");
    for &n in &[24usize, 32, 48] {
        let field = generate(&FieldConfig { n, ..Default::default() });
        let values: Vec<f64> = field.iter().map(|&v| v as f64).collect();
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| find_halos(&values, [n; 3], &HaloFinderConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_halo);
criterion_main!(benches);
