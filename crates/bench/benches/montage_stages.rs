//! Per-stage Montage pipeline cost — identifies which of the four
//! instrumented stages dominates a campaign run.

use criterion::{criterion_group, criterion_main, Criterion};
use ffis_vfs::{FileSystem, MemFs};
use montage_sim::{
    m_add, m_bg_exec, m_diff_exec, m_proj_exec, m_viewer, make_raw_images, write_raws,
    PipelineConfig,
};

fn prepared_fs(cfg: &PipelineConfig, through: usize) -> MemFs {
    let fs = MemFs::new();
    for d in ["/raw", "/proj", "/diff", "/corr", "/mosaic"] {
        fs.mkdir(d, 0o755).unwrap();
    }
    write_raws(&fs, &make_raw_images(cfg)).unwrap();
    if through >= 1 {
        m_proj_exec(&fs, cfg).unwrap();
    }
    if through >= 3 {
        let pairs = m_diff_exec(&fs, cfg).unwrap();
        m_bg_exec(&fs, cfg, &pairs).unwrap();
    }
    if through >= 4 {
        m_add(&fs, cfg).unwrap();
    }
    fs
}

fn bench_stages(c: &mut Criterion) {
    let cfg = PipelineConfig::default();
    let mut group = c.benchmark_group("montage_stages");
    group.sample_size(20);

    group.bench_function("mProjExec", |b| {
        let fs = prepared_fs(&cfg, 0);
        b.iter(|| m_proj_exec(&fs, &cfg).unwrap());
    });
    group.bench_function("mDiffExec", |b| {
        let fs = prepared_fs(&cfg, 1);
        b.iter(|| m_diff_exec(&fs, &cfg).unwrap());
    });
    group.bench_function("mBgExec", |b| {
        let fs = prepared_fs(&cfg, 1);
        let pairs = m_diff_exec(&fs, &cfg).unwrap();
        b.iter(|| m_bg_exec(&fs, &cfg, &pairs).unwrap());
    });
    group.bench_function("mAdd", |b| {
        let fs = prepared_fs(&cfg, 3);
        b.iter(|| m_add(&fs, &cfg).unwrap());
    });
    group.bench_function("mViewer", |b| {
        let fs = prepared_fs(&cfg, 4);
        b.iter(|| m_viewer(&fs, &cfg).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
