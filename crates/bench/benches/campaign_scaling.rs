//! Campaign throughput, serial vs rayon-parallel — the paper runs
//! 1,000-run campaigns on a 24-core node; this measures how the
//! reproduction exploits cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_core::prelude::*;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn bench_campaign(c: &mut Criterion) {
    let app = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 24, ..Default::default() },
        ..Default::default()
    });
    let runs = 40usize;
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(runs as u64));
    for parallel in [false, true] {
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &parallel, |b, &parallel| {
            b.iter(|| {
                let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                    .with_runs(runs)
                    .with_seed(3);
                cfg.parallel = parallel;
                Campaign::new(&app, cfg).run().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
