//! Checkpointed golden-trace replay vs legacy full-rerun campaigns on
//! the hdf5lite-backed Nyx workload — the tentpole speedup of the
//! two-phase application contract. The legacy path re-executes the
//! whole application (field simulation, HDF5 encode, float packing,
//! halo finding) once per injection run; the fast path forks the
//! nearest log-spaced CoW checkpoint preceding each run's target
//! instance, replays only the trace suffix through the armed
//! injector, and runs just the analyze phase.
//!
//! Beyond the two criterion timings, the bench asserts the headline
//! claim directly: the replay campaign must run at least 5x faster
//! than the full-rerun campaign on identical configuration, with
//! identical tallies.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_core::prelude::*;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn campaign(app: &NyxApp, replay: bool, runs: usize) -> CampaignResult {
    let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(runs)
        .with_seed(0xCA3)
        .with_replay(replay);
    // Serial: measure per-run work, not rayon scheduling.
    cfg.parallel = false;
    Campaign::new(app, cfg).run().unwrap()
}

fn bench_campaign_replay(c: &mut Criterion) {
    // `resimulate` charges each legacy rerun its true application
    // cost (the paper's injection runs execute Nyx end-to-end,
    // simulation included); the replay path never pays it — that is
    // precisely the redundant prefix work the engine eliminates.
    let app = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        resimulate: true,
        ..Default::default()
    });
    let runs = 60usize;

    let probe = campaign(&app, true, runs);
    assert_eq!(probe.mode, ExecutionMode::Replay, "fast path must engage");

    let mut group = c.benchmark_group("campaign_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(runs as u64));
    for replay in [false, true] {
        let label = if replay { "checkpointed_replay" } else { "legacy_rerun" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &replay, |b, &replay| {
            b.iter(|| campaign(&app, replay, runs));
        });
    }
    group.finish();

    // Headline assertion: >= 5x on identical work, identical tallies.
    // Median of several timed pairs so one scheduler stall on a shared
    // CI runner cannot flake the gate.
    let timed = |replay: bool| {
        let start = Instant::now();
        let result = campaign(&app, replay, runs);
        (start.elapsed(), result)
    };
    // One warmup each, then measure.
    timed(false);
    timed(true);
    let mut legacy_times = Vec::new();
    let mut replay_times = Vec::new();
    for _ in 0..3 {
        let (legacy_t, legacy) = timed(false);
        let (replay_t, replay) = timed(true);
        assert_eq!(legacy.tally, replay.tally, "paths must classify identically");
        for (l, r) in legacy.runs.iter().zip(&replay.runs) {
            assert_eq!(l.outcome, r.outcome, "run {}", l.run);
            assert_eq!(l.injection, r.injection, "run {}", l.run);
        }
        legacy_times.push(legacy_t);
        replay_times.push(replay_t);
    }
    legacy_times.sort();
    replay_times.sort();
    let (legacy_t, replay_t) = (legacy_times[1], replay_times[1]);
    let speedup = legacy_t.as_secs_f64() / replay_t.as_secs_f64().max(1e-12);
    println!(
        "campaign_replay: legacy {:?} vs checkpointed replay {:?} over {} runs (median of 3) -> {:.1}x speedup",
        legacy_t, replay_t, runs, speedup
    );
    assert!(
        speedup >= 5.0,
        "checkpointed replay must be >= 5x faster than full reruns (got {:.1}x)",
        speedup
    );
}

criterion_group!(benches, bench_campaign_replay);
criterion_main!(benches);
