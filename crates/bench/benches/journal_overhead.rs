//! Run-journal overhead on the checkpointed-replay campaign path —
//! the durability tax of appending one CRC-framed record per
//! completed run, flushed incrementally.
//!
//! Beyond the two criterion timings, the bench asserts the acceptance
//! claim directly: a journaled campaign must finish within 5% of an
//! unjournaled one on identical configuration, with byte-identical
//! tallies and run digests. The assertion runs at the n=64 grid (the
//! CI scale smoke) — already *harsher* than the paper's n=192 scale
//! preset, whose per-run work is ~27x larger still while the journal
//! append cost (one small framed write per completed run, ~tens of
//! microseconds) stays constant — so margin here implies margin there.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffis_core::prelude::*;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

const RUNS: usize = 80;

fn campaign(app: &NyxApp, journal: Option<&std::path::Path>) -> CampaignResult {
    let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(RUNS)
        .with_seed(0x10A7)
        .with_replay(true);
    // Serial: measure per-run work, not rayon scheduling.
    cfg.parallel = false;
    if let Some(path) = journal {
        cfg = cfg.with_journal(path);
    }
    Campaign::new(app, cfg).run().unwrap()
}

fn bench_journal_overhead(c: &mut Criterion) {
    let app = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 64, ..Default::default() },
        ..Default::default()
    });
    let dir = std::env::temp_dir().join(format!("ffis-journal-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = dir.join("bench.journal");

    // Durability must not change a single byte of the result.
    let plain = campaign(&app, None);
    let journaled = campaign(&app, Some(&jpath));
    assert_eq!(plain.tally, journaled.tally, "journaling changed the tally");
    assert_eq!(plain.run_digest(), journaled.run_digest(), "journaling changed the run digest");

    let mut group = c.benchmark_group("journal_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RUNS as u64));
    for with_journal in [false, true] {
        let label = if with_journal { "journaled" } else { "plain" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &with_journal, |b, &wj| {
            b.iter(|| campaign(&app, if wj { Some(jpath.as_path()) } else { None }));
        });
    }
    group.finish();

    // The acceptance assertion: best-of-5 wall time within 5%.
    let best = |journal: Option<&std::path::Path>| -> Duration {
        (0..5)
            .map(|_| {
                let t = Instant::now();
                campaign(&app, journal);
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let t_plain = best(None);
    let t_journal = best(Some(&jpath));
    let overhead = t_journal.as_secs_f64() / t_plain.as_secs_f64() - 1.0;
    println!(
        "journal overhead: plain {:.1?}, journaled {:.1?} ({:+.2}%)",
        t_plain,
        t_journal,
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "journal overhead {:.2}% exceeds the 5% budget (plain {:?}, journaled {:?})",
        overhead * 100.0,
        t_plain,
        t_journal
    );
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_journal_overhead);
criterion_main!(benches);
