//! Smoke tests for the reproduction harness: every cheap experiment
//! runs end-to-end in quick mode and its report carries the markers a
//! reader would look for. (The campaign-heavy experiments — fig7,
//! protect, ablations — are exercised by the app crates' own shape
//! tests and by `repro all`.)

use ffis_bench::{experiments, Options};

fn opts() -> Options {
    let args: Vec<String> = vec![
        "--quick".into(),
        "--out".into(),
        std::env::temp_dir().join("ffis-smoke").to_string_lossy().into_owned(),
    ];
    Options::parse(&args).unwrap().0
}

fn run(name: &str) -> String {
    let report = experiments::run(name, &opts()).unwrap_or_else(|e| panic!("{}: {}", name, e));
    report.text()
}

#[test]
fn table1_lists_all_three_models() {
    let text = run("table1");
    for needle in ["BIT FLIP", "SHORN WRITE", "DROPPED WRITE", "FFIS_write", "7/8th"] {
        assert!(text.contains(needle), "{} missing:\n{}", needle, text);
    }
}

#[test]
fn table2_lists_all_three_apps() {
    let text = run("table2");
    for needle in ["Nyx", "QMCPACK", "Montage", "Astrophysics", "Quantum Chemistry", "Astronomy"] {
        assert!(text.contains(needle), "{} missing", needle);
    }
}

#[test]
fn table4_covers_the_six_sdc_fields() {
    let text = run("table4");
    for needle in [
        "Mantissa Normalization",
        "Exponent Location",
        "Mantissa Location",
        "Mantissa Size",
        "Exponent Bias",
        "Address of Raw Data",
    ] {
        assert!(text.contains(needle), "{} missing", needle);
    }
    // The two signature symptoms must be present.
    assert!(text.contains("scaled x4096"), "bias scale symptom missing:\n{}", text);
    assert!(text.contains("shifted") || text.contains("moved"), "ARD shift symptom missing");
}

#[test]
fn fig5_reports_scale_and_shift() {
    let text = run("fig5");
    assert!(text.contains("Exponent Bias"));
    assert!(text.contains("ARD"));
    assert!(text.contains("fig5_original.pgm"));
}

#[test]
fn repair_recovers_every_field() {
    let text = run("repair");
    let yes_count = text.matches("yes").count();
    assert!(yes_count >= 6, "expected all six fields recovered:\n{}", text);
    assert!(text.contains("ExponentBias"));
    assert!(text.contains("AddressOfRawData"));
}

#[test]
fn param_faults_covers_three_primitives() {
    let text = run("param-faults");
    for needle in ["FFIS_mknod", "FFIS_chmod", "FFIS_truncate"] {
        assert!(text.contains(needle), "{} missing", needle);
    }
}

#[test]
fn unknown_experiment_is_an_error() {
    assert!(experiments::run("figure-42", &opts()).is_err());
}

#[test]
fn experiment_list_is_dispatchable() {
    // Every name in ALL must at least resolve in the dispatcher (we
    // run only the cheap ones here, but none may be unknown).
    for name in experiments::ALL {
        // Dispatch errors only for unknown names; cheap probe: the
        // error string of an unknown name mentions 'unknown'.
        if ["table1", "table2"].contains(&name) {
            let _ = experiments::run(name, &opts()).unwrap();
        }
    }
}
