//! The true multi-*process* distributed differential: run the real
//! `repro` binary once with `--workers 2` (spawning real worker
//! processes over a shared disk checkpoint store) and once
//! single-process, and demand byte-identical `DIGESTS.txt` — engine
//! law 7 at the outermost boundary the project has. This is the same
//! comparison the `distributed-smoke` CI job makes at grid 64.

use std::path::{Path, PathBuf};
use std::process::Command;

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffis-distproc-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro_scale(out: &Path, extra: &[&str]) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["scale", "--grid", "16", "--runs", "8", "--seed", "42", "--out"])
        .arg(out)
        .args(extra);
    let status = cmd.status().expect("repro binary runs");
    assert!(status.success(), "repro scale {:?} failed", extra);
}

#[test]
fn worker_processes_reproduce_the_single_process_digests() {
    let dist = out_dir("dist");
    let ctrl = out_dir("ctrl");
    repro_scale(&dist, &["--workers", "2"]);
    repro_scale(&ctrl, &[]);

    let dist_digests = std::fs::read_to_string(dist.join("DIGESTS.txt")).unwrap();
    let ctrl_digests = std::fs::read_to_string(ctrl.join("DIGESTS.txt")).unwrap();
    assert!(!dist_digests.is_empty(), "distributed run produced no digests");
    assert_eq!(dist_digests, ctrl_digests, "law 7 violated across process boundaries");

    // The distributed invocation also leaves its measurement artifact,
    // with the digest-equality asserts already passed in-process.
    let bench = std::fs::read_to_string(dist.join("BENCH_distributed.json")).unwrap();
    for needle in [r#""bench":"distributed""#, r#""workers":2"#, r#""digest_match":true"#] {
        assert!(bench.contains(needle), "{} missing in {}", needle, bench);
    }
    // And the single-process control must not claim one.
    assert!(!ctrl.join("BENCH_distributed.json").exists());

    let _ = std::fs::remove_dir_all(&dist);
    let _ = std::fs::remove_dir_all(&ctrl);
}
